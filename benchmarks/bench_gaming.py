"""Bench G1 — the Section 3 gaming case studies (TSUBAME-KFC −10.9%,
L-CSC −23.9%)."""

from repro.experiments import gaming_case_studies


def bench_gaming(benchmark, report_sink):
    result = benchmark.pedantic(
        gaming_case_studies.run, rounds=1, iterations=1
    )
    assert result.all_ok(), "\n".join(
        c.line() for c in result.comparisons() if not c.ok
    )
    report_sink("G1 / gaming case studies", result.report())
