"""Bench R1 — the Section 1 ranking discussion (list mix, #1-vs-#3
gap, rank churn under measurement error)."""

from repro.experiments import ranking


def bench_ranking_impact(benchmark, report_sink):
    result = benchmark.pedantic(
        ranking.run, kwargs={"n_trials": 1000}, rounds=1, iterations=1
    )
    assert result.all_ok(), "\n".join(
        c.line() for c in result.comparisons() if not c.ok
    )
    report_sink("R1 / ranking impact", result.report())
