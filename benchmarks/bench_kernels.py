"""Performance microbenchmarks of the library's hot kernels.

Unlike the artefact benches (one pedantic round each), these run
pytest-benchmark properly — many rounds — so regressions in the
vectorised cores show up in the timing table:

* whole-fleet power evaluation at Titan scale (18 688 nodes),
* the 100 000-replicate coverage engine per sample-size point,
* the sliding-window sweep over an hour-long 1 Hz trace,
* trace synthesis for a 5 000-node GPU machine.
"""

import numpy as np
import pytest

from repro.analysis.gaming import optimal_window_gain
from repro.cluster.registry import get_system, get_trace_setup
from repro.core.coverage import coverage_study
from repro.traces.synth import simulate_run


@pytest.fixture(scope="module")
def titan():
    system = get_system("titan")
    system.node_total_powers(0.9)  # materialise the fleet off the clock
    return system


def bench_fleet_power_titan(benchmark, titan):
    """18 688-node fleet power evaluation (one utilisation point)."""
    watts = benchmark(titan.node_total_powers, 0.9)
    assert watts.shape == (18_688,)


def bench_coverage_engine(benchmark):
    """100k-replicate coverage at one (n, level) point, LRZ-scale."""
    rng = np.random.default_rng(0)
    pilot = rng.normal(210.0, 5.3, 516)

    def run():
        return coverage_study(
            pilot, population=9216, sample_sizes=(10,),
            confidences=(0.95,), n_sims=100_000,
            rng=np.random.default_rng(1),
        )

    res = benchmark(run)
    assert abs(res.coverage[0, 0] - 0.95) < 0.01


def bench_window_sweep(benchmark):
    """Optimal-window search over a 1 Hz hour-long trace."""
    from repro.traces.powertrace import PowerTrace

    t = np.arange(3600.0)
    watts = 1000.0 * (1.0 - 0.3 * np.clip((t / 3600.0 - 0.5) * 2, 0, 1))
    trace = PowerTrace(t, watts)
    res = benchmark(optimal_window_gain, trace)
    assert res.spread > 0


def bench_trace_synthesis(benchmark):
    """Full-run synthesis for the 5 272-node Piz Daint model at 1 Hz."""
    system, workload = get_trace_setup("piz-daint")

    def run():
        return simulate_run(system, workload, dt=1.0)

    sim = benchmark.pedantic(run, rounds=3, iterations=1)
    assert sim.trace.mean_power() > 0
