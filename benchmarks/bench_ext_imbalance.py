"""Extension X1 — imbalanced workloads vs the sampling methodology."""

from repro.experiments import ext_imbalance


def bench_ext_imbalance(benchmark, report_sink):
    result = benchmark.pedantic(
        ext_imbalance.run, kwargs={"n_sims": 50_000}, rounds=1,
        iterations=1,
    )
    assert result.all_ok(), "\n".join(
        c.line() for c in result.comparisons() if not c.ok
    )
    report_sink("X1 / imbalance extension", result.report())
