"""Bench S1 — the Section 4 worked example (1/64 rule accuracy)."""

from repro.experiments import sample_size_example


def bench_sample_size_example(benchmark, report_sink):
    result = benchmark(sample_size_example.run)
    assert result.all_ok(), "\n".join(
        c.line() for c in result.comparisons() if not c.ok
    )
    report_sink("S1 / worked example", result.report())
