"""Bench Z1 — the Section 4.2 t-vs-z approximation error (~9% too
narrow at n = 15)."""

from repro.experiments import t_vs_z


def bench_t_vs_z(benchmark, report_sink):
    result = benchmark.pedantic(
        t_vs_z.run, kwargs={"n_sims": 100_000}, rounds=1, iterations=1
    )
    assert result.all_ok(), "\n".join(
        c.line() for c in result.comparisons() if not c.ok
    )
    report_sink("Z1 / t vs z", result.report())
