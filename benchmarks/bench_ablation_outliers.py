"""Ablation A3 — outlier contamination vs coverage calibration.

The paper's Figure 3 argues that the real systems' mild outliers do not
de-calibrate the Eq. 1 intervals.  This ablation turns the knob: how
much contamination *does* it take before t-interval coverage at small n
visibly degrades?
"""

import numpy as np

from repro.analysis.report import Table
from repro.core.coverage import coverage_study


def _sweep(n_sims=40_000):
    rng = np.random.default_rng(7)
    base = rng.normal(210.0, 5.3, 516)
    rows = []
    for rate in (0.0, 0.01, 0.05, 0.15):
        pilot = base.copy()
        n_out = int(rate * pilot.size)
        if n_out:
            idx = rng.choice(pilot.size, size=n_out, replace=False)
            pilot[idx] *= rng.uniform(1.5, 2.5, size=n_out)
        res = coverage_study(
            pilot, population=9216, sample_sizes=(5,),
            confidences=(0.95,), n_sims=n_sims,
            rng=np.random.default_rng(11),
        )
        rows.append((rate, float(res.coverage[0, 0])))
    return rows


def bench_ablation_outliers(benchmark, report_sink):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    t = Table(
        ["outlier rate", "95% CI coverage at n=5"],
        title="A3 — outlier contamination vs t-interval calibration",
    )
    for rate, cov in rows:
        t.add_row([f"{rate:.0%}", f"{cov:.4f}"])
    clean = rows[0][1]
    heavy = rows[-1][1]
    # Mild contamination (paper's regime) stays calibrated; heavy
    # right-skew contamination visibly dents coverage at n = 5.
    assert abs(clean - 0.95) < 0.01
    assert heavy < clean - 0.005
    report_sink("A3 / outlier ablation", t.render())
