"""Bench F1 — regenerate paper Figure 1 (power-vs-time series)."""

from repro.experiments import figure1


def bench_figure1(benchmark, report_sink):
    result = benchmark.pedantic(figure1.run, rounds=1, iterations=1)
    assert result.all_ok(), "\n".join(
        c.line() for c in result.comparisons() if not c.ok
    )
    report_sink("F1 / Figure 1", result.report())
