"""Extension X6 — subsystem coverage by level (the [19] overstatement)."""

from repro.experiments import ext_subsystems


def bench_ext_subsystems(benchmark, report_sink):
    result = benchmark.pedantic(ext_subsystems.run, rounds=1, iterations=1)
    assert result.all_ok(), "\n".join(
        c.line() for c in result.comparisons() if not c.ok
    )
    report_sink("X6 / subsystem-coverage extension", result.report())
