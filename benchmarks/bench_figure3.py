"""Bench F3 — regenerate paper Figure 3 (CI coverage calibration).

Paper-scale: 100 000 simulations per (n, level) point on a 516-node
LRZ pilot, plus the Section 4.2 claim that calibration holds on *all*
systems as low as n = 5.
"""

from repro.analysis.report import Table
from repro.experiments import figure3


def bench_figure3(benchmark, report_sink):
    result = benchmark.pedantic(
        figure3.run, kwargs={"n_sims": 100_000}, rounds=1, iterations=1
    )
    assert result.all_ok(), "\n".join(
        c.line() for c in result.comparisons() if not c.ok
    )
    report_sink("F3 / Figure 3", result.report())

    # "good calibration as low as n = 5 on all systems".  Calibration
    # failure means *under*-coverage; mild over-coverage happens on the
    # 210-node TU Dresden fleet, where Eq. 1's missing FPC makes the
    # intervals conservative at n = 20 (n/N no longer negligible).
    import numpy as np

    per_system = figure3.run_all_systems(n_sims=40_000)
    t = Table(
        ["system", "worst under-coverage", "worst over-coverage"],
        title="Figure 3 addendum — calibration across every fleet "
              "(n in 5/10/20)",
    )
    for name, cov in per_system.items():
        nominal = np.asarray(cov.confidences)[:, None]
        delta = cov.coverage - nominal
        under = float(-delta.min())
        over = float(delta.max())
        t.add_row([name, f"{max(under, 0):.4f}", f"{max(over, 0):.4f}"])
        assert under < 0.012, f"{name} under-covers by {under:.4f}"
        assert over < 0.03, f"{name} over-covers by {over:.4f}"
    report_sink("F3b / all-systems calibration", t.render())
