"""Telemetry service benchmarks — requests/s and samples/s in-process.

The service's sizing question mirrors the wire layer's: one asyncio
loop fronts a whole fleet's collectors, so dispatch overhead (routing,
tenant auth, token bucket, metrics) must stay far below the per-request
work, and the ingest path (HTTP body → validated batch → bounded queue
→ estimator fold) must clear a 10 000-node × 1 Hz fleet with headroom.

Everything runs through :meth:`TelemetryApp.dispatch` on a
:class:`SimClock` — no sockets — so the numbers isolate service-layer
cost from kernel TCP cost, exactly like the load-test suite does.
``extra_info`` records ``cpu_count`` so baselines from different hosts
compare honestly.
"""

from __future__ import annotations

import asyncio
import json
import os

import numpy as np

from repro.serve import ServiceConfig, TelemetryApp, make_request
from repro.serve.app import RPWR_CONTENT_TYPE
from repro.stream.ingest import SampleBatch, SimClock
from repro.wire.session import WireWriter

#: Dispatch bench: enough requests that per-call overhead dominates
#: and the round is long enough for the 30% regression gate to sit
#: well above single-core scheduling noise.
_N_REQUESTS = 10_000
_FLOOR_REQUESTS_PER_S = 5_000.0

#: Ingest bench: 20 batches x 50 ticks x 500 nodes = 500k samples.
_N_BATCHES, _N_TICKS, _N_NODES = 20, 50, 500
_FLOOR_JSON_SAMPLES_PER_S = 100_000.0
_FLOOR_RPWR_SAMPLES_PER_S = 150_000.0

#: A bucket the benches can never drain (rate limiting is not the
#: thing under measurement here; the load suite covers it).
_OPEN_THROTTLE = ServiceConfig(
    rate_capacity=1e9, rate_refill_per_request_s=1e9
)

_SESSION_CONFIG = {
    "population": _N_NODES,
    "core_t0_s": 0.0,
    "core_t1_s": float(_N_BATCHES * _N_TICKS),
    "interval_s": 1.0,
    "queue_capacity": _N_BATCHES + 1,
}


def _batches() -> list[SampleBatch]:
    rng = np.random.default_rng(2015)
    return [
        SampleBatch(
            times=np.arange(i * _N_TICKS, (i + 1) * _N_TICKS) * 1.0,
            watts=1500.0
            + 10.0 * rng.standard_normal((_N_TICKS, _N_NODES)),
            node_ids=np.arange(_N_NODES, dtype=np.int64),
        )
        for i in range(_N_BATCHES)
    ]


def _json_bodies(batches: list[SampleBatch]) -> list[bytes]:
    return [
        json.dumps({
            "times": batch.times.tolist(),
            "watts": batch.watts.tolist(),
            "node_ids": batch.node_ids.tolist(),
        }).encode()
        for batch in batches
    ]


def _rpwr_bodies(batches: list[SampleBatch]) -> list[bytes]:
    writer = WireWriter(codec="raw64")
    return [writer.write(batch).data for batch in batches]


async def _open_session(app: TelemetryApp) -> str:
    response = await app.dispatch(make_request(
        "POST", "/v1/sessions", tenant="bench",
        body=json.dumps(_SESSION_CONFIG).encode(),
    ))
    assert response.status == 201
    return json.loads(response.body)["session"]["session_id"]


def bench_dispatch_requests(benchmark, report_sink):
    """Middleware + routing cost: requests/s through dispatch()."""

    def burst() -> int:
        async def run() -> int:
            clock = SimClock(dt_s=1.0)
            app = TelemetryApp(clock, _OPEN_THROTTLE)
            sid = await _open_session(app)
            requests = [
                make_request("GET", "/healthz"),
                make_request(
                    "GET", "/v1/plan",
                    query={"population": "10000", "cv": "0.05"},
                ),
                make_request(
                    "GET", f"/v1/sessions/{sid}", tenant="bench"
                ),
            ]
            n_ok = 0
            for i in range(_N_REQUESTS):
                response = await app.dispatch(
                    requests[i % len(requests)]
                )
                n_ok += response.status == 200
            await app.shutdown()
            return n_ok

        return asyncio.run(run())

    n_ok = benchmark.pedantic(burst, rounds=3, iterations=1)
    rate = _N_REQUESTS / benchmark.stats.stats.min
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["n_requests"] = _N_REQUESTS
    report_sink(
        "serve dispatch",
        f"{_N_REQUESTS:,} requests (healthz/plan/info mix), "
        f"{rate / 1e3:.1f} k requests/s in-process",
    )
    assert n_ok == _N_REQUESTS
    assert rate >= _FLOOR_REQUESTS_PER_S, (
        f"dispatch at {rate:.0f} requests/s is below the "
        f"{_FLOOR_REQUESTS_PER_S:.0f} requests/s floor"
    )


def _bench_ingest(benchmark, bodies: list[bytes], content_type: str):
    """Shared driver: open, ingest every body, drain, close."""
    n_samples = _N_BATCHES * _N_TICKS * _N_NODES

    def session_run() -> int:
        async def run() -> int:
            clock = SimClock(dt_s=1.0)
            app = TelemetryApp(clock, _OPEN_THROTTLE)
            sid = await _open_session(app)
            for body in bodies:
                response = await app.dispatch(make_request(
                    "POST", f"/v1/sessions/{sid}/batches",
                    tenant="bench", body=body,
                    content_type=content_type,
                ))
                assert response.status == 202
            await app.registry.get("bench", sid).drain()
            response = await app.dispatch(make_request(
                "DELETE", f"/v1/sessions/{sid}", tenant="bench"
            ))
            summary = json.loads(response.body)["summary"]
            return summary["samples_ingested"]

        return asyncio.run(run())

    ingested = benchmark.pedantic(session_run, rounds=3, iterations=1)
    assert ingested == n_samples
    rate = n_samples / benchmark.stats.stats.min
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["n_samples"] = n_samples
    benchmark.extra_info["body_bytes"] = sum(len(b) for b in bodies)
    return rate


def bench_ingest_json(benchmark, report_sink):
    """End-to-end JSON ingest: body -> batch -> queue -> fold -> close."""
    bodies = _json_bodies(_batches())
    rate = _bench_ingest(benchmark, bodies, "application/json")
    report_sink(
        "serve JSON ingest",
        f"{_N_BATCHES} batches, "
        f"{_N_BATCHES * _N_TICKS * _N_NODES:,} samples, "
        f"{sum(len(b) for b in bodies):,} B of JSON, "
        f"{rate / 1e3:.0f} k samples/s end to end",
    )
    assert rate >= _FLOOR_JSON_SAMPLES_PER_S, (
        f"JSON ingest at {rate / 1e3:.0f} k samples/s is below the "
        f"{_FLOOR_JSON_SAMPLES_PER_S / 1e3:.0f} k samples/s floor"
    )


def bench_ingest_rpwr(benchmark, report_sink):
    """End-to-end RPWR ingest: frames -> parser -> queue -> fold."""
    bodies = _rpwr_bodies(_batches())
    rate = _bench_ingest(benchmark, bodies, RPWR_CONTENT_TYPE)
    report_sink(
        "serve RPWR ingest",
        f"{_N_BATCHES} frames, "
        f"{_N_BATCHES * _N_TICKS * _N_NODES:,} samples, "
        f"{sum(len(b) for b in bodies):,} B on the wire, "
        f"{rate / 1e3:.0f} k samples/s end to end "
        "(estimator fold dominates; wire decode is noise next to it)",
    )
    assert rate >= _FLOOR_RPWR_SAMPLES_PER_S, (
        f"RPWR ingest at {rate / 1e3:.0f} k samples/s is below the "
        f"{_FLOOR_RPWR_SAMPLES_PER_S / 1e3:.0f} k samples/s floor"
    )
