"""Ablation A4 — subset-selection strategy bias.

The sampling theory assumes uniform random subsets.  This bench
quantifies the extrapolation bias of the realistic alternatives —
contiguous (one instrumented rack), VID-screened (Section 5's gaming
vector) and power-screened (outright cherry-picking) — on a GPU fleet.
"""

import numpy as np

from repro.analysis.report import Table
from repro.cluster.registry import get_trace_setup
from repro.metering.subset import (
    contiguous_subset,
    power_screened_subset,
    random_subset,
    vid_screened_subset,
)


def _sweep(n=8, trials=200):
    system, _ = get_trace_setup("l-csc")
    watts = system.node_total_powers(0.95)
    truth = watts.mean()
    rng = np.random.default_rng(3)

    def bias_of(indices) -> float:
        return float(watts[indices].mean() / truth - 1.0)

    random_biases = [
        bias_of(random_subset(system.n_nodes, n, rng)) for _ in range(trials)
    ]
    contiguous_biases = [
        bias_of(contiguous_subset(system.n_nodes, n, rng))
        for _ in range(trials)
    ]
    return {
        "random (mean bias)": float(np.mean(random_biases)),
        "random (spread)": float(np.ptp(random_biases)),
        "contiguous (mean bias)": float(np.mean(contiguous_biases)),
        "vid-screened low": bias_of(vid_screened_subset(system, n, prefer="low")),
        "vid-screened mid": bias_of(vid_screened_subset(system, n, prefer="mid")),
        "power-screened low": bias_of(
            power_screened_subset(system, n, utilisation=0.95, prefer="low")
        ),
    }


def bench_ablation_subset_bias(benchmark, report_sink):
    stats = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    t = Table(
        ["strategy", "extrapolation bias"],
        title="A4 — subset-selection bias on the L-CSC fleet (n=8 of 56)",
    )
    for k, v in stats.items():
        t.add_row([k, f"{v:+.2%}"])
    # Random selection is unbiased; screened selection is not.
    assert abs(stats["random (mean bias)"]) < 0.01
    assert stats["power-screened low"] < stats["vid-screened low"] < 0.005
    assert abs(stats["vid-screened mid"]) < abs(stats["vid-screened low"]) + 0.01
    report_sink("A4 / subset-bias ablation", t.render())
