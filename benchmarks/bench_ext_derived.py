"""Extension X5 — derived power numbers vs ground truth."""

from repro.experiments import ext_derived


def bench_ext_derived(benchmark, report_sink):
    result = benchmark(ext_derived.run)
    assert result.all_ok(), "\n".join(
        c.line() for c in result.comparisons() if not c.ok
    )
    report_sink("X5 / derived numbers extension", result.report())
