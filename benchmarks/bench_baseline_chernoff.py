"""Baseline B1 — Eq. 5 vs the Chernoff-Hoeffding rule of Davis et al.

Section 2.1: Davis et al. "propose using a very conservative
Chernoff-Hoeffding bound to select the subset size ... For regular
workloads ... we find that a much less conservative bound is
sufficient."  This bench puts numbers on "much less conservative".
"""

from repro.analysis.report import Table
from repro.core.sampling import (
    chernoff_hoeffding_sample_size,
    recommend_sample_size,
)


def _compare():
    rows = []
    # A typical fleet: mean 400 W, sigma/mu 2.5%, node range 300-550 W
    # (idle-capable hardware has a wide *possible* range even when the
    # loaded distribution is tight — exactly why Hoeffding is loose).
    mean, cv, rng_w = 400.0, 0.025, (300.0, 550.0)
    for lam in (0.005, 0.01, 0.02, 0.05):
        eq5 = recommend_sample_size(10_000, cv, lam).n
        ch = chernoff_hoeffding_sample_size(rng_w, mean, lam)
        rows.append((lam, eq5, ch, ch / eq5))
    return rows


def bench_baseline_chernoff(benchmark, report_sink):
    rows = benchmark(_compare)
    t = Table(
        ["lambda", "Eq. 5 nodes", "Chernoff-Hoeffding nodes", "ratio"],
        title="B1 — Eq. 5 vs the Chernoff-Hoeffding baseline "
              "(mean 400 W, sigma/mu 2.5%, range 300-550 W, N=10000)",
    )
    for lam, eq5, ch, ratio in rows:
        t.add_row([f"{lam:.1%}", eq5, ch, f"{ratio:.0f}x"])
    # The baseline demands at least an order of magnitude more nodes at
    # every accuracy level.
    assert all(ch > 10 * eq5 for _, eq5, ch, _ in rows)
    report_sink("B1 / Chernoff-Hoeffding baseline", t.render())
