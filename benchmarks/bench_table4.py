"""Bench T4 — regenerate paper Table 4 (per-node power statistics).

The report header also covers Table 3 (the system inventory the fleets
are built from).
"""

from repro.analysis.report import Table
from repro.cluster.registry import PAPER_TABLE3
from repro.experiments import table4


def _table3_report() -> str:
    t = Table(
        ["system", "CPUs per node", "RAM per node", "components measured",
         "workload"],
        title="Table 3 — test systems (registry inventory)",
    )
    for name, row in PAPER_TABLE3.items():
        t.add_row([name, row.cpus_per_node, row.ram_per_node,
                   row.components_measured, row.workload])
    return t.render()


def bench_table4(benchmark, report_sink):
    result = benchmark.pedantic(table4.run, rounds=1, iterations=1)
    assert result.all_ok(), "\n".join(
        c.line() for c in result.comparisons() if not c.ok
    )
    report_sink("T3 / Table 3", _table3_report())
    report_sink("T4 / Table 4", result.report())
