"""Bench V1 — the abstract's Level 1 variance decomposition
(~20% timing + 10-15% sampling)."""

from repro.experiments import level1_variance


def bench_level1_variance(benchmark, report_sink):
    result = benchmark.pedantic(
        level1_variance.run, kwargs={"n_trials": 400}, rounds=1,
        iterations=1,
    )
    assert result.all_ok(), "\n".join(
        c.line() for c in result.comparisons() if not c.ok
    )
    report_sink("V1 / Level 1 variance decomposition", result.report())
