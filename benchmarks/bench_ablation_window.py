"""Ablation A2 — timing rule: old (any 20% of the middle 80%) vs new
(full core phase), per machine class.

The old rule's worst-case spread is the quantity the paper's Section 3
is about; the new rule reduces it to (near) zero by construction.  This
bench measures both on every Table 2 system.
"""

from repro.analysis.gaming import optimal_window_gain
from repro.analysis.report import Table
from repro.cluster.registry import TRACE_SYSTEMS, get_trace_setup
from repro.traces.synth import simulate_run


def _sweep():
    rows = []
    for name in TRACE_SYSTEMS:
        system, workload = get_trace_setup(name)
        dt = max(1.0, workload.phases.total_s / 7200)
        core = simulate_run(system, workload, dt=dt).core_trace()
        old = optimal_window_gain(core)
        rows.append((name, old.spread, abs(old.gaming_gain)))
    return rows


def bench_ablation_window(benchmark, report_sink):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    t = Table(
        ["system", "old-rule spread", "old-rule max understatement",
         "new-rule spread"],
        title="A2 — measurement-window rule ablation",
    )
    by_name = {}
    for name, spread, gain in rows:
        t.add_row([name, f"{spread:.2%}", f"{gain:.2%}", "0.00%"])
        by_name[name] = spread
    # CPU systems are barely gameable; GPU systems badly so.
    assert by_name["colosse"] < 0.01
    assert by_name["l-csc"] > 0.15
    assert by_name["piz-daint"] > 0.10
    report_sink("A2 / window-rule ablation", t.render())
