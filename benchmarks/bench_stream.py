"""Streaming subsystem benchmarks — ingestion throughput and merge cost.

Two questions a site sizing a live collector asks:

* how many samples/s can the single-threaded ingest → estimator path
  absorb at fleet scale (1k and 10k nodes)?
* what does the per-node → fleet estimator roll-up (shard merges plus
  the pooled collapse) cost when readings arrive sharded?

Node power matrices are synthesised directly (seeded RNG, no system
calibration) so the numbers isolate the streaming layer itself.

The committed ``BENCH_stream.json`` was produced on a single-core VM
(see its ``machine_info.cpu.count``); absolute throughput on real
hardware will be higher, and cross-machine comparisons should go
through ``scripts/bench_compare.py``, which refuses to compare timings
from different machines.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.analysis.report import Table
from repro.stream.estimators import RunningMoments
from repro.stream.ingest import IngestLoop, SampleBatch
from repro.stream.monitor import ComplianceMonitor

_TICKS = 600
_TICKS_PER_BATCH = 60
_DT_S = 1.0


def _batches(n_nodes: int) -> list[SampleBatch]:
    rng = np.random.default_rng(2015)
    node_scale = rng.normal(1.0, 0.03, size=n_nodes)
    out = []
    ids = np.arange(n_nodes, dtype=np.int64)
    for lo in range(0, _TICKS, _TICKS_PER_BATCH):
        n_t = min(_TICKS_PER_BATCH, _TICKS - lo)
        times = (lo + np.arange(n_t)) * _DT_S
        common = rng.normal(1.0, 0.004, size=n_t)
        watts = 250.0 * node_scale[None, :] * common[:, None]
        out.append(SampleBatch(times=times, watts=watts, node_ids=ids))
    return out


def _ingest_throughput(n_nodes: int) -> tuple[float, int]:
    batches = _batches(n_nodes)
    monitor = ComplianceMonitor(
        (0.0, _TICKS * _DT_S), required_interval_s=_DT_S
    )
    fleet = RunningMoments()

    def consume(batch: SampleBatch) -> None:
        monitor.observe(batch)
        fleet.push_batch(batch.watts.ravel())

    t0 = time.perf_counter()
    loop = IngestLoop(iter(batches), consume, queue_capacity=8).run()
    elapsed = time.perf_counter() - t0
    return loop.samples_ingested / elapsed, loop.samples_ingested


def _merge_cost(n_nodes: int, n_shards: int = 64) -> tuple[float, float]:
    rng = np.random.default_rng(7)
    shards = []
    for _ in range(n_shards):
        m = RunningMoments()
        m.push_batch(rng.normal(250.0, 12.0, size=(50, n_nodes)))
        shards.append(m)
    t0 = time.perf_counter()
    total = RunningMoments()
    for m in shards:
        total.merge(m)
    merge_s = time.perf_counter() - t0
    t1 = time.perf_counter()
    total.pooled()
    pooled_s = time.perf_counter() - t1
    return merge_s / n_shards, pooled_s


def _sweep():
    rows = []
    for n_nodes in (1_000, 10_000):
        rate, n_samples = _ingest_throughput(n_nodes)
        per_merge_s, pooled_s = _merge_cost(n_nodes)
        rows.append((n_nodes, n_samples, rate, per_merge_s, pooled_s))
    return rows


def bench_stream_pipeline(benchmark, report_sink):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    t = Table(
        ["nodes", "samples", "ingest (samples/s)",
         "merge/shard (us)", "pooled roll-up (us)"],
        title="streaming pipeline — ingestion throughput and merge cost",
    )
    for n_nodes, n_samples, rate, per_merge_s, pooled_s in rows:
        t.add_row(
            [f"{n_nodes}", f"{n_samples}", f"{rate:,.0f}",
             f"{per_merge_s * 1e6:.1f}", f"{pooled_s * 1e6:.1f}"]
        )
    report_sink("streaming throughput", t.render())
    assert all(r[2] > 100_000 for r in rows), "ingest slower than 100k/s"
