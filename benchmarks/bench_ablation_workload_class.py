"""Ablation A6 — window-rule exposure by workload class.

Section 3 rejects the partial-window rule partly for "the lack of
generalizability to workloads with more complex patterns".  This bench
measures the legal-window spread across the workload taxonomy — flat
stress tests, out-of-core CPU HPL, in-core GPU HPL, an iterative CFD
solver and bursty Graph500 BFS — on one fixed fleet, isolating the
workload's contribution.
"""

from repro.analysis.gaming import optimal_window_gain
from repro.analysis.report import Table
from repro.cluster.components import CpuModel, DramModel, FanModel
from repro.cluster.node import NodeConfig
from repro.cluster.system import SystemModel
from repro.traces.synth import simulate_run
from repro.workloads.graph500 import Graph500Workload
from repro.workloads.hpl import HplWorkload
from repro.workloads.rodinia import RodiniaCfdWorkload
from repro.workloads.stress import FirestarterWorkload, MPrimeWorkload


def _fleet() -> SystemModel:
    config = NodeConfig(
        cpu=CpuModel(idle_watts=20.0, peak_watts=130.0),
        n_cpus=2,
        dram=DramModel.for_capacity(64.0),
        fan=FanModel(max_watts=40.0),
        other_watts=25.0,
    )
    return SystemModel("workload-ablation", 128, config, seed=23)


def _sweep():
    system = _fleet()
    workloads = [
        FirestarterWorkload(core_s=1800.0),
        MPrimeWorkload(core_s=1800.0),
        HplWorkload.cpu_out_of_core(1800.0),
        RodiniaCfdWorkload(core_s=1800.0),
        HplWorkload.gpu_in_core(1800.0),
        Graph500Workload(core_s=1800.0, n_searches=16),
    ]
    rows = []
    for wl in workloads:
        run = simulate_run(system, wl, dt=1.0, noise_cv=0.0)
        res = optimal_window_gain(run.core_trace())
        rows.append((wl.name, res.spread, -res.gaming_gain))
    return rows


def bench_ablation_workload_class(benchmark, report_sink):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    t = Table(
        ["workload", "legal-window spread", "max understatement"],
        title="A6 — partial-window exposure by workload class "
              "(identical 128-node fleet)",
    )
    spread = {}
    for name, s, g in rows:
        t.add_row([name, f"{s:.2%}", f"{g:.2%}"])
        spread[name] = s
    # Stress tests and out-of-core HPL are nearly window-proof; the
    # in-core GPU profile and BFS are not.
    assert spread["FIRESTARTER"] < 0.01
    assert spread["HPL-CPU"] < 0.02
    assert spread["HPL-GPU"] > 0.10
    assert spread["Graph500-BFS"] > spread["HPL-CPU"]
    report_sink("A6 / workload-class ablation", t.render())
