"""Extension X4 — instrument quality and metering-point sensitivity."""

from repro.experiments import ext_meter_quality


def bench_ext_meter_quality(benchmark, report_sink):
    result = benchmark.pedantic(ext_meter_quality.run, rounds=1, iterations=1)
    assert result.all_ok(), "\n".join(
        c.line() for c in result.comparisons() if not c.ok
    )
    report_sink("X4 / meter quality extension", result.report())
