"""Ablation A5 — fan policy vs node-to-node power variability.

The paper's Section 5 mitigation: "The fans of all nodes should be
pinned to the same speed.  This has a larger influence than processor
variability."  This bench measures σ/μ of the same fleet under auto vs
pinned fans, at two levels of silicon variation.
"""

from repro.analysis.report import Table
from repro.cluster.components import CpuModel, DramModel, FanModel, GpuModel
from repro.cluster.node import NodeConfig
from repro.cluster.system import SystemModel
from repro.cluster.thermal import FanController, FanPolicy, ThermalEnvironment
from repro.cluster.variability import ManufacturingVariation


def _build(sigma: float) -> SystemModel:
    config = NodeConfig(
        cpu=CpuModel(idle_watts=20.0, peak_watts=120.0),
        n_cpus=2,
        gpu=GpuModel(idle_watts=18.0, peak_watts=220.0),
        n_gpus=4,
        dram=DramModel.for_capacity(128.0),
        fan=FanModel(max_watts=250.0, min_speed=0.3),
        other_watts=30.0,
    )
    return SystemModel(
        "fan-ablation",
        512,
        config,
        variation=ManufacturingVariation(sigma=sigma),
        environment=ThermalEnvironment(inlet_spread_c=2.0),
        fan_controller=FanController(
            fan_model=config.fan, reference_watts=1200.0, k_inlet=0.5
        ),
        seed=99,
    )


def _sweep():
    rows = []
    for sigma in (0.005, 0.02):
        system = _build(sigma)
        cv_auto = system.node_sample(0.95).coefficient_of_variation()
        pinned = system.with_fan_policy(FanPolicy.PINNED, pinned_speed=0.45)
        cv_pinned = pinned.node_sample(0.95).coefficient_of_variation()
        rows.append((sigma, cv_auto, cv_pinned))
    return rows


def bench_ablation_fans(benchmark, report_sink):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    t = Table(
        ["silicon sigma", "sigma/mu (auto fans)", "sigma/mu (pinned fans)",
         "reduction"],
        title="A5 — fan-policy ablation (512-node 4-GPU fleet)",
    )
    for sigma, auto, pinned in rows:
        t.add_row(
            [f"{sigma:.1%}", f"{auto:.2%}", f"{pinned:.2%}",
             f"{1 - pinned / auto:.0%}"]
        )
    # Pinning always reduces variability, and with quiet silicon the
    # fans dominate (the paper's "larger influence than processor
    # variability").
    for sigma, auto, pinned in rows:
        assert pinned < auto
    quiet_sigma, quiet_auto, quiet_pinned = rows[0]
    assert quiet_auto > 2.0 * quiet_pinned
    report_sink("A5 / fan-policy ablation", t.render())
