"""Bench T5 — regenerate paper Table 5 (recommended sample sizes).

Exact reproduction: the grid must match the published integers cell
for cell.
"""

import numpy as np

from repro.experiments import table5


def bench_table5(benchmark, report_sink):
    result = benchmark(table5.run)
    assert np.array_equal(result.grid, table5.PAPER_TABLE5)
    report_sink("T5 / Table 5", result.report())
