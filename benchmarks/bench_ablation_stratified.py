"""Ablation A7 — stratified sampling as the imbalance repair.

Experiment X1 shows simple random sampling's intervals collapsing on a
straggler-heavy fleet.  This bench quantifies the constructive fix:
with the imbalance source known (job placement), stratified sampling at
the *same* node budget restores calibrated coverage, and Neyman
allocation beats proportional on interval width.
"""

import numpy as np

from repro.analysis.report import Table
from repro.cluster.registry import get_system, workload_utilisation
from repro.core.confidence import mean_confidence_interval
from repro.core.stratified import stratified_sample
from repro.workloads.schedule import imbalanced


def _study(n_budget=16, trials=2000):
    system = get_system("tu-dresden")
    rng = np.random.default_rng(0)
    schedule = imbalanced(
        system.n_nodes, rng, spread=0.10, straggler_rate=0.08,
        straggler_level=0.4,
    )
    watts = system.node_sample(
        workload_utilisation("tu-dresden"), schedule=schedule
    ).watts
    labels = (schedule.multipliers < 0.7).astype(int)
    truth = watts.mean()

    srs_hits = 0
    srs_widths = []
    for _ in range(trials):
        idx = rng.choice(watts.size, size=n_budget, replace=False)
        ci = mean_confidence_interval(watts[idx], confidence=0.95)
        srs_hits += ci.contains(truth)
        srs_widths.append(ci.half_width)

    strat_hits = {"proportional": 0, "neyman": 0}
    strat_widths = {"proportional": [], "neyman": []}
    for method in strat_hits:
        for _ in range(trials):
            est = stratified_sample(
                watts, labels, n_budget, rng, method=method
            )
            ci = est.interval(0.95)
            strat_hits[method] += ci.contains(truth)
            strat_widths[method].append(ci.half_width)

    return {
        "srs": (srs_hits / trials, float(np.mean(srs_widths))),
        "proportional": (
            strat_hits["proportional"] / trials,
            float(np.mean(strat_widths["proportional"])),
        ),
        "neyman": (
            strat_hits["neyman"] / trials,
            float(np.mean(strat_widths["neyman"])),
        ),
    }


def bench_ablation_stratified(benchmark, report_sink):
    stats = benchmark.pedantic(_study, rounds=1, iterations=1)
    t = Table(
        ["estimator", "95% CI coverage", "mean half-width (W)"],
        title="A7 — straggler-heavy fleet, 16-node budget: SRS vs "
              "stratified",
    )
    for label, (cov, width) in stats.items():
        t.add_row([label, f"{cov:.3f}", width])
    assert stats["srs"][0] < 0.90
    assert stats["proportional"][0] > 0.92
    assert stats["neyman"][0] > 0.92
    report_sink("A7 / stratified-repair ablation", t.render())
