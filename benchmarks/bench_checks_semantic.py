"""Benchmark — whole-project semantic analysis, cold vs warm.

Measures ``repro.checks.semantic`` over the repo's own ``src/repro``
tree (the workload CI actually pays for): once with an empty cache
(parse + summarise + link + rules) and once with the per-module
summary cache fully warm (parse + link + rules only).  The gap is the
summarisation cost the AST-normalised cache key amortises away across
runs; the warm number is the steady-state pre-merge latency.
"""

import shutil
import tempfile
from pathlib import Path

from repro.checks import LintCache, load_config
from repro.checks.semantic import run_semantic_lint

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"
CONFIG = load_config(REPO_ROOT)


def _run(cache: LintCache | None):
    return run_semantic_lint([SRC], config=CONFIG, cache=cache)


def bench_semantic_cold(benchmark, report_sink):
    """Empty cache every round: the first-run / post-rebase cost."""
    workdir = Path(tempfile.mkdtemp(prefix="bench-semantic-cold-"))
    counter = [0]

    def setup():
        counter[0] += 1
        return (LintCache(workdir / f"cache-{counter[0]}.json"),), {}

    report = benchmark.pedantic(_run, setup=setup, rounds=3, iterations=1)
    shutil.rmtree(workdir, ignore_errors=True)
    assert report.summary_cache_hits == 0
    report_sink(
        "semantic lint, cold cache",
        f"{report.files_scanned} files, {len(report.findings)} findings, "
        f"{report.summary_cache_hits} summary cache hits",
    )


def bench_semantic_warm(benchmark, report_sink):
    """Summary cache pre-populated: the steady-state re-run cost."""
    workdir = Path(tempfile.mkdtemp(prefix="bench-semantic-warm-"))
    cache = LintCache(workdir / "cache.json")
    _run(cache)  # populate summaries

    report = benchmark.pedantic(_run, args=(cache,), rounds=3, iterations=1)
    shutil.rmtree(workdir, ignore_errors=True)
    assert report.summary_cache_hits == report.files_scanned
    report_sink(
        "semantic lint, warm summary cache",
        f"{report.files_scanned} files, {len(report.findings)} findings, "
        f"all {report.summary_cache_hits} summaries cached",
    )
