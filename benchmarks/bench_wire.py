"""Wire codec benchmarks — samples/s through encode and decode.

The wire layer's sizing question: can a single collector thread keep up
with a fleet?  At 10 000 nodes × 1 Hz a collector ingests 10k
samples/s, so the ISSUE's ≥ 10 M samples/s floor for ``delta-varint``
leaves three orders of magnitude of headroom — enough for bursts,
replays and the rest of the pipeline sharing the core.

Matrices are synthesised telemetry (slow common drift + per-node
jitter, seeded) so the varint length distribution matches what real
frames carry — this is the regime the one-pass-per-byte-slot
vectorisation was built for.  The framing bench measures the full
session path (writer → parser → reader) per frame, where codec cost is
joined by CRC, header packing and batch assembly.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import Table
from repro.stream.ingest import SampleBatch
from repro.wire.codecs import make_codec
from repro.wire.session import WireReader, WireWriter

#: One benchmark block: enough samples that per-call overhead vanishes.
_N_TICKS, _N_NODES = 400, 2500
_FLOOR_SAMPLES_PER_S = 10_000_000.0


def _telemetry(n_ticks: int = _N_TICKS, n_nodes: int = _N_NODES):
    rng = np.random.default_rng(2015)
    base = 1500.0 + 40.0 * rng.standard_normal(n_nodes)
    drift = 25.0 * np.sin(np.linspace(0.0, 3.0, n_ticks))[:, None]
    jitter = rng.normal(0.0, 3.0, (n_ticks, n_nodes))
    return base[None, :] + drift + jitter


def bench_delta_varint_encode(benchmark, report_sink):
    """Quantise + delta + zigzag + varint-pack one telemetry block."""
    codec = make_codec("delta-varint")
    watts = _telemetry()
    payload, _ = benchmark(codec.encode, watts)
    rate = watts.size / benchmark.stats.stats.min
    report_sink(
        "delta-varint encode",
        f"{watts.size:,} samples -> {len(payload):,} B "
        f"({watts.size * 8 / len(payload):.1f}x vs raw64), "
        f"{rate / 1e6:.1f} M samples/s",
    )
    assert rate >= _FLOOR_SAMPLES_PER_S, (
        f"delta-varint encode at {rate / 1e6:.1f} M samples/s "
        "is below the 10 M samples/s floor"
    )


def bench_delta_varint_decode(benchmark, report_sink):
    """Varint-unpack + unzigzag + cumsum one telemetry block."""
    codec = make_codec("delta-varint")
    watts = _telemetry()
    payload, _ = codec.encode(watts)
    decoded, _ = benchmark(codec.decode, payload, _N_TICKS, _N_NODES)
    rate = decoded.size / benchmark.stats.stats.min
    report_sink(
        "delta-varint decode",
        f"{len(payload):,} B -> {decoded.size:,} samples, "
        f"{rate / 1e6:.1f} M samples/s",
    )
    assert rate >= _FLOOR_SAMPLES_PER_S, (
        f"delta-varint decode at {rate / 1e6:.1f} M samples/s "
        "is below the 10 M samples/s floor"
    )


def bench_codec_sweep(benchmark, report_sink):
    """Encode+decode cost and wire size of every codec, one table."""
    watts = _telemetry(n_ticks=200, n_nodes=1000)
    specs = (
        "raw64",
        "delta-varint",
        "zlib(delta-varint)",
        "quant12",
        "quant8",
    )

    def sweep():
        import time

        rows = []
        for spec in specs:
            codec = make_codec(spec)
            t0 = time.perf_counter()
            payload, bound = codec.encode(watts)
            t1 = time.perf_counter()
            codec.decode(payload, *watts.shape)
            t2 = time.perf_counter()
            rows.append(
                (spec, len(payload), bound, t1 - t0, t2 - t1)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    t = Table(
        ["codec", "B/sample", "bound (W)",
         "encode (M samp/s)", "decode (M samp/s)"],
        title="wire codecs — size vs speed at 200x1000 samples",
    )
    for spec, n_bytes, bound, enc_s, dec_s in rows:
        t.add_row(
            [spec, f"{n_bytes / watts.size:.3f}", f"{bound:g}",
             f"{watts.size / enc_s / 1e6:.1f}",
             f"{watts.size / dec_s / 1e6:.1f}"]
        )
    report_sink("wire codec sweep", t.render())
    assert all(r[1] > 0 for r in rows)


def bench_session_round_trip(benchmark, report_sink):
    """Full wire path: writer -> bytes -> parser -> reader -> batches."""
    n_ticks_per_batch, n_batches, n_nodes = 50, 20, 500
    rng = np.random.default_rng(7)
    batches = [
        SampleBatch(
            times=np.arange(
                i * n_ticks_per_batch, (i + 1) * n_ticks_per_batch
            )
            * 1.0,
            watts=1500.0
            + 10.0 * rng.standard_normal((n_ticks_per_batch, n_nodes)),
            node_ids=np.arange(n_nodes, dtype=np.int64),
        )
        for i in range(n_batches)
    ]
    n_samples = n_ticks_per_batch * n_batches * n_nodes

    def round_trip():
        writer = WireWriter("delta-varint")
        data = b"".join(f.data for f in writer.write_all(batches))
        reader = WireReader(dt_s=1.0)
        got = reader.feed(data)
        got.extend(reader.close())
        return reader.frames_ok, len(data)

    frames_ok, n_wire_bytes = benchmark.pedantic(
        round_trip, rounds=3, iterations=1
    )
    rate = n_samples / benchmark.stats.stats.min
    report_sink(
        "wire session round trip",
        f"{n_batches} frames, {n_samples:,} samples, "
        f"{n_wire_bytes:,} B on the wire, "
        f"{rate / 1e6:.1f} M samples/s end to end",
    )
    assert frames_ok == n_batches
