"""Ablation A1 — finite-population correction on/off.

DESIGN.md calls out the FPC (the second step of Eq. 5) as a design
choice; this bench quantifies what it buys across fleet sizes: without
it, small systems are told to measure more nodes than they have, and
the extra nodes buy no accuracy.
"""

import math

from repro.analysis.report import Table
from repro.core.sampling import recommend_sample_size, required_sample_size_infinite


def _grid(cv=0.03, accuracy=0.01):
    rows = []
    n0 = required_sample_size_infinite(cv, accuracy)
    uncorrected = int(math.ceil(n0))
    for n_nodes in (50, 210, 1000, 10_000, 100_000):
        corrected = recommend_sample_size(n_nodes, cv, accuracy).n
        rows.append((n_nodes, uncorrected, corrected,
                     corrected / uncorrected))
    return rows


def bench_ablation_fpc(benchmark, report_sink):
    rows = benchmark(_grid)
    t = Table(
        ["N", "n without FPC (Eq. 4)", "n with FPC (Eq. 5)", "ratio"],
        title="A1 — finite-population correction "
              "(sigma/mu = 3%, lambda = 1%)",
    )
    for row in rows:
        t.add_row(row)
    # The correction only ever reduces the requirement, and the
    # reduction matters most for small fleets.
    assert all(c <= u for _, u, c, _ in rows)
    ratios = [r for *_, r in rows]
    assert ratios == sorted(ratios)
    report_sink("A1 / FPC ablation", t.render())
