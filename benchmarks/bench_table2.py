"""Bench T2 — regenerate paper Table 2 (HPL segment averages)."""

from repro.experiments import table2


def bench_table2(benchmark, report_sink):
    result = benchmark.pedantic(table2.run, rounds=1, iterations=1)
    assert result.all_ok(), "\n".join(
        c.line() for c in result.comparisons() if not c.ok
    )
    report_sink("T2 / Table 2", result.report())
