"""Extension X3 — exascale outlook: rule adequacy as variability grows."""

from repro.experiments import ext_exascale


def bench_ext_exascale(benchmark, report_sink):
    result = benchmark(ext_exascale.run)
    assert result.all_ok(), "\n".join(
        c.line() for c in result.comparisons() if not c.ok
    )
    report_sink("X3 / exascale outlook extension", result.report())
