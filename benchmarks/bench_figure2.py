"""Bench F2 — regenerate paper Figure 2 (per-node power histograms)."""

from repro.experiments import figure2


def bench_figure2(benchmark, report_sink):
    result = benchmark.pedantic(figure2.run, rounds=1, iterations=1)
    assert result.all_ok(), "\n".join(
        c.line() for c in result.comparisons() if not c.ok
    )
    report_sink("F2 / Figure 2", result.report())
