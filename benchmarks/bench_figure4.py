"""Bench F4 — regenerate paper Figure 4 (L-CSC efficiency vs VID)."""

from repro.experiments import figure4


def bench_figure4(benchmark, report_sink):
    result = benchmark(figure4.run)
    assert result.all_ok(), "\n".join(
        c.line() for c in result.comparisons() if not c.ok
    )
    report_sink("F4 / Figure 4", result.report())
