"""Fault subsystem benchmark — injection and recovery cost, audited.

The question a site sizing a hardened collector asks: what does the
self-healing path (detect + repair + quarantine + provenance) cost
over the clean ingest, per sample, at fleet scale?  The bench times
fault injection and the full recovery pipeline on a synthetic node
matrix, and — like every run of the chaos harness — refuses to report
a timing for a pipeline whose accounting does not reconcile exactly.

Matrices are synthesised directly (seeded RNG, no system calibration)
so the numbers isolate the fault layer itself.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.report import Table
from repro.faults.detectors import CorrelatedDetectors
from repro.faults.models import FaultPlan, NodeLoss, SampleDropout, StuckAtLastValue
from repro.faults.pathology import (
    AliasingMeter,
    DeviceSpreadModel,
    EntropyPowerModel,
)
from repro.faults.recovery import RecoveryPipeline
from repro.stream.ingest import SampleBatch

_TICKS = 600
_TICKS_PER_BATCH = 60
_DT_S = 1.0


def _matrix(n_nodes: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(2015)
    node_scale = rng.normal(1.0, 0.03, size=n_nodes)
    common = rng.normal(1.0, 0.004, size=_TICKS)
    times = np.arange(_TICKS) * _DT_S
    watts = 250.0 * node_scale[None, :] * common[:, None]
    return times, watts


def _degraded_cost(n_nodes: int) -> tuple[float, float, int]:
    times, watts = _matrix(n_nodes)
    plan = FaultPlan.canonical(
        [
            SampleDropout(rate=0.05),
            StuckAtLastValue(rate=0.002),
            NodeLoss(count=max(1, n_nodes // 500)),
        ],
        seed=7,
    )
    t0 = time.perf_counter()
    injection = plan.apply(times, watts)
    inject_s = time.perf_counter() - t0

    pipe = RecoveryPipeline(gap_policy="hold", quarantine_after=30)
    t1 = time.perf_counter()
    for batch in injection.batches(_TICKS_PER_BATCH):
        pipe.observe(batch)
    report = pipe.finalize(expected_ticks=injection.ledger.n_ticks_planned)
    recover_s = time.perf_counter() - t1

    # No timing without a reconciled ledger: the bench must exercise
    # the same exactness contract the chaos harness enforces.
    assert report.samples_missing == int(injection.missing_mask.sum())
    assert report.samples_stuck == int(injection.stuck_mask.sum())
    n_samples = _TICKS * n_nodes
    return n_samples / inject_s, n_samples / recover_s, n_samples


def _sweep():
    return [
        (n_nodes, *_degraded_cost(n_nodes)) for n_nodes in (1_000, 10_000)
    ]


def _pathology_cost(n_nodes: int) -> tuple[float, float, int]:
    """Correlated-pathology injection + streaming detection cost."""
    times, watts = _matrix(n_nodes)
    plan = FaultPlan.canonical(
        [
            AliasingMeter(period_ticks=10, duty_frac=0.6),
            EntropyPowerModel(amplitude_w=20.0, segment_ticks=60),
            DeviceSpreadModel(spread_frac=0.03),
        ],
        seed=11,
    )
    t0 = time.perf_counter()
    injection = plan.apply(times, watts)
    inject_s = time.perf_counter() - t0

    node_ids = np.arange(n_nodes)
    detectors = CorrelatedDetectors(segment_ticks=60)
    t1 = time.perf_counter()
    for lo in range(0, _TICKS, _TICKS_PER_BATCH):
        hi = lo + _TICKS_PER_BATCH
        detectors.observe(
            SampleBatch(
                times=times[lo:hi],
                watts=injection.watts[lo:hi],
                node_ids=node_ids,
            )
        )
    verdict = detectors.verdict()
    detect_s = time.perf_counter() - t1

    # Same exactness contract: no timing unless the bias ledger
    # reconciles against the per-cell matrix and the detectors see
    # the injected structure.
    assert injection.ledger.samples_aliased == int(
        injection.aliased_mask.sum()
    )
    assert abs(
        injection.ledger.aliasing_bias_w_sum
        + injection.ledger.entropy_bias_w_sum
        + injection.ledger.spread_bias_w_sum
        - float(injection.bias_w.sum())
    ) <= 1e-6 * max(1.0, abs(float(injection.bias_w.sum())))
    assert verdict.aliasing.suspected and verdict.offset.suspected
    n_samples = _TICKS * n_nodes
    return n_samples / inject_s, n_samples / detect_s, n_samples


def _pathology_sweep():
    return [
        (n_nodes, *_pathology_cost(n_nodes)) for n_nodes in (1_000, 10_000)
    ]


def bench_fault_recovery(benchmark, report_sink):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    t = Table(
        ["nodes", "inject (samples/s)", "recover (samples/s)", "samples"],
        title="fault subsystem — injection and self-healing recovery cost",
    )
    for n_nodes, inject_rate, recover_rate, n_samples in rows:
        t.add_row(
            [
                f"{n_nodes}",
                f"{inject_rate:,.0f}",
                f"{recover_rate:,.0f}",
                f"{n_samples}",
            ]
        )
    report_sink("fault recovery throughput", t.render())
    assert all(r[2] > 500_000 for r in rows), "recovery slower than 500k/s"


def bench_pathology_detection(benchmark, report_sink):
    rows = benchmark.pedantic(_pathology_sweep, rounds=1, iterations=1)
    t = Table(
        ["nodes", "inject (samples/s)", "detect (samples/s)", "samples"],
        title="correlated pathologies — injection and streaming detection",
    )
    for n_nodes, inject_rate, detect_rate, n_samples in rows:
        t.add_row(
            [
                f"{n_nodes}",
                f"{inject_rate:,.0f}",
                f"{detect_rate:,.0f}",
                f"{n_samples}",
            ]
        )
    report_sink("pathology detection throughput", t.render())
    assert all(r[2] > 500_000 for r in rows), "detection slower than 500k/s"
