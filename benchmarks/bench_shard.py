"""Shard engine benchmark — zero-copy streaming and shard scaling.

Two questions the million-node hot path must answer with numbers:

* what does the zero-copy slab path (:meth:`SimulatedRun.stream_run`
  into a :class:`SlabRing`) save over the materialise-then-slice
  replay of the same kernel?
* how does the per-shard critical path shrink as the fleet is split —
  i.e. what aggregate throughput would ``k`` cores reach?

This VM has a single core, so shards execute sequentially and the
*elapsed* time cannot show a speedup; the scaling evidence is the
**critical path** (the slowest single shard), which is what bounds
wall-clock on a ``k``-core machine.  ``extra_info`` records the
machine's core count and the per-shard times so a multi-core rerun can
be compared honestly (see docs/sharding.md).

Like the fault bench, no timing is reported unless the sharded states
reduce to bit-identical fleet statistics — the exactness audit rides
inside the benchmark.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.analysis.report import Table
from repro.cluster.components import CpuModel, DramModel, FanModel
from repro.cluster.node import NodeConfig
from repro.cluster.system import SystemModel
from repro.cluster.thermal import FanController
from repro.cluster.variability import ManufacturingVariation
from repro.faults.recovery import RecoveryPipeline
from repro.shard.engine import fleet_reference, run_shard
from repro.shard.plan import plan_shards
from repro.shard.reduce import reduce_states
from repro.stream.estimators import P2Quantile, RunningCovariance
from repro.stream.ingest import SampleBatch
from repro.stream.monitor import ComplianceMonitor
from repro.traces.synth import SimulatedRun, simulate_run
from repro.workloads.hpl import HplWorkload

_N_NODES = 1024
_DT_S = 1.0
_CORE_S = 600.0
_TICKS_PER_BATCH = 60
_SHARD_COUNTS = (1, 2, 4, 8)


def _make_run() -> SimulatedRun:
    config = NodeConfig(
        cpu=CpuModel(idle_watts=20.0, peak_watts=120.0),
        n_cpus=2,
        dram=DramModel.for_capacity(64.0),
        fan=FanModel(max_watts=60.0),
        other_watts=25.0,
    )
    system = SystemModel(
        "bench-shard",
        _N_NODES,
        config,
        variation=ManufacturingVariation(sigma=0.02),
        fan_controller=FanController(
            fan_model=config.fan, reference_watts=400.0
        ),
        seed=41,
    )
    workload = HplWorkload.cpu_out_of_core(
        _CORE_S, setup_s=30.0, teardown_s=15.0
    )
    return simulate_run(system, workload, dt=_DT_S, seed=2015)


def _materialised_pass(run: SimulatedRun) -> tuple[float, int]:
    """The old path: materialise the full matrix, slice, copy, feed."""
    t0 = time.perf_counter()
    lo_s, hi_s = run.core_window
    times, watts = run.node_power_matrix(lo_s, hi_s)
    ids = np.arange(run.system.n_nodes, dtype=np.int64)
    monitor = ComplianceMonitor(
        run.core_window, required_interval_s=max(run.dt, 1.0)
    )
    covar = RunningCovariance()
    p2 = {q: P2Quantile(q) for q in (0.5, 0.95)}
    pipeline = RecoveryPipeline(gap_policy="hold", original_level=2)
    for lo in range(0, times.size, _TICKS_PER_BATCH):
        hi = min(lo + _TICKS_PER_BATCH, times.size)
        batch = SampleBatch(
            times=times[lo:hi].copy(),
            watts=watts[lo:hi].copy(),
            node_ids=ids,
        )
        fleet_w = batch.fleet_means()
        monitor.observe(batch, fleet_w=fleet_w)
        for est in p2.values():
            est.push_batch(batch.watts)
        covar.push_batch(
            batch.watts,
            np.broadcast_to(fleet_w[:, None], batch.watts.shape),
        )
        pipeline.observe(batch)
    elapsed = time.perf_counter() - t0
    return elapsed, times.size * run.system.n_nodes


def _sharded_pass(run: SimulatedRun, n_shards: int, reference_w):
    """Time every shard kernel; return (states, per-shard seconds)."""
    plan = plan_shards(
        run.system.n_nodes, n_shards, ticks_per_batch=_TICKS_PER_BATCH
    )
    states, shard_s = [], []
    for spec in plan:
        t0 = time.perf_counter()
        states.append(
            run_shard(
                run,
                spec,
                ticks_per_batch=_TICKS_PER_BATCH,
                reference_w=reference_w,
            )
        )
        shard_s.append(time.perf_counter() - t0)
    return plan, states, shard_s


def _sweep():
    run = _make_run()
    mat_s, n_samples = _materialised_pass(run)

    t0 = time.perf_counter()
    reference_w = fleet_reference(
        run, ticks_per_batch=_TICKS_PER_BATCH
    )
    reference_s = time.perf_counter() - t0

    rows = []
    node_means = None
    for k in _SHARD_COUNTS:
        plan, states, shard_s = _sharded_pass(run, k, reference_w)
        fleet = reduce_states(states, plan)
        means = np.asarray(fleet.node_moments.mean)
        if node_means is None:
            node_means = means
        elif not np.array_equal(means, node_means):
            raise AssertionError(
                f"{k}-shard reduction diverged from serial — refusing "
                "to report a timing for a broken kernel"
            )
        rows.append((k, sum(shard_s), max(shard_s), shard_s))
    return mat_s, reference_s, n_samples, rows


def bench_shard_scaling(benchmark, report_sink):
    mat_s, reference_s, n_samples, rows = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )
    serial_s = rows[0][1]

    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["n_nodes"] = _N_NODES
    benchmark.extra_info["n_samples"] = n_samples
    benchmark.extra_info["shard_counts"] = list(_SHARD_COUNTS)
    benchmark.extra_info["materialised_s"] = mat_s
    benchmark.extra_info["fleet_reference_s"] = reference_s
    benchmark.extra_info["per_shard_s"] = {
        str(k): shard_s for k, _, _, shard_s in rows
    }
    benchmark.extra_info["critical_path_s"] = {
        str(k): max_s for k, _, max_s, _ in rows
    }
    benchmark.extra_info["note"] = (
        "single-core host: scaling evidence is the per-shard critical "
        "path, which bounds wall-clock at k workers"
    )

    t = Table(
        ["shards", "sum (s)", "critical path (s)",
         "projected samples/s", "speedup bound"],
        title=(
            f"shard scaling — {_N_NODES} nodes, "
            f"{n_samples:,} samples, cpu_count={os.cpu_count()}"
        ),
    )
    for k, total_s, max_s, _ in rows:
        t.add_row(
            [
                f"{k}",
                f"{total_s:.3f}",
                f"{max_s:.3f}",
                f"{n_samples / max_s:,.0f}",
                f"{serial_s / max_s:.2f}x",
            ]
        )
    t.add_row(
        ["materialised", f"{mat_s:.3f}", f"{mat_s:.3f}",
         f"{n_samples / mat_s:,.0f}", "baseline"]
    )
    report_sink("shard scaling", t.render())

    # Linear-scaling gate: at 8 shards the critical path must be well
    # over 4x shorter than the serial pass (measured 5.5x on the
    # committed run; the gate leaves headroom for timer noise on a
    # loaded box while still catching any real scaling regression).
    max_8 = next(max_s for k, _, max_s, _ in rows if k == 8)
    assert serial_s / max_8 >= 4.0, (
        f"8-way critical path only {serial_s / max_8:.2f}x shorter "
        "than serial"
    )
