"""Parallel-runner benchmarks — pool speedup and cache replay latency.

Three questions a site running the sweep repeatedly asks:

* what does ``--jobs N`` buy on the full 19-experiment sweep (the
  serial sweep is dominated by V1 at ~70% of wall-clock, so
  longest-first scheduling matters as much as the worker count)?
* what does a warm-cache replay cost (the target is ≥ 10× faster than
  recomputation — it is pure unpickling)?
* what is the per-experiment overhead the pool itself adds on a sweep
  of sub-millisecond experiments (the scheduling floor)?

Run with ``python -m pytest benchmarks/bench_runner_parallel.py
--benchmark-only``.  Speedup over serial scales with available cores;
on a single-core box the pool can only demonstrate overhead, so the
bench reports the measured ratio rather than asserting one.
"""

from __future__ import annotations

import time

from repro.analysis.report import Table
from repro.experiments.runner import run_all
from repro.parallel.cache import ResultCache

#: The sub-second experiments — enough work to time, cheap enough to
#: repeat (the full sweep variant runs them all, see bench_sweep).
FAST_IDS = ["T5", "T4", "S1", "F4", "X3", "X5", "F2", "Z1", "X2"]


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def bench_serial_subset(benchmark):
    benchmark(lambda: run_all(ids=FAST_IDS, verbose=False))


def bench_parallel_subset(benchmark):
    benchmark(lambda: run_all(ids=FAST_IDS, verbose=False, jobs=4))


def bench_cache_replay(benchmark, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    run_all(ids=FAST_IDS, verbose=False, cache=cache)  # warm it
    benchmark(lambda: run_all(ids=FAST_IDS, verbose=False, cache=cache))


def bench_sweep_speedup_report(report_sink):
    """One full paper-scale sweep per layout, reported as a table."""
    serial_s = _timed(lambda: run_all(verbose=False))
    parallel_s = _timed(lambda: run_all(verbose=False, jobs=4))

    import tempfile

    with tempfile.TemporaryDirectory() as td:
        cache = ResultCache(td)
        run_all(verbose=False, jobs=4, cache=cache)
        replay_s = _timed(lambda: run_all(verbose=False, cache=cache))

    table = Table(
        ["layout", "wall s", "vs serial"],
        title="full 19-experiment sweep, paper scale",
    )
    table.add_row(["serial", f"{serial_s:.2f}", "1.0x"])
    table.add_row(
        ["--jobs 4", f"{parallel_s:.2f}", f"{serial_s / parallel_s:.1f}x"]
    )
    table.add_row(
        ["warm cache", f"{replay_s:.2f}", f"{serial_s / replay_s:.1f}x"]
    )
    report_sink("runner parallel/cache sweep", table.render())
