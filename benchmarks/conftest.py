"""Benchmark-harness plumbing.

Each bench regenerates one paper artefact (timed with pytest-benchmark)
and registers its report here; the reports are printed in the terminal
summary so that ``pytest benchmarks/ --benchmark-only`` emits the
regenerated tables/figures alongside the timing table.
"""

from __future__ import annotations

import pytest

_REPORTS: list[tuple[str, str]] = []


@pytest.fixture()
def report_sink():
    """Collects ``(title, text)`` artefact reports for the summary."""

    def sink(title: str, text: str) -> None:
        _REPORTS.append((title, text))

    return sink


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    tr = terminalreporter
    tr.section("regenerated paper artefacts")
    for title, text in _REPORTS:
        tr.write_line("")
        tr.write_line(f"===== {title} =====")
        for line in text.splitlines():
            tr.write_line(line)
    _REPORTS.clear()
