"""Extension X2 — DVFS × partial-window interaction."""

from repro.experiments import ext_dvfs_gaming


def bench_ext_dvfs_gaming(benchmark, report_sink):
    result = benchmark.pedantic(ext_dvfs_gaming.run, rounds=1, iterations=1)
    assert result.all_ok(), "\n".join(
        c.line() for c in result.comparisons() if not c.ok
    )
    report_sink("X2 / DVFS gaming extension", result.report())
