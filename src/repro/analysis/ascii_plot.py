"""Terminal line plots for the figure-regenerating benches.

The benchmark harness runs in a terminal; these renderers let the F1/F3
benches *show* the regenerated curves rather than only summarising
them.  Pure text, no plotting dependency.
"""

from __future__ import annotations

import numpy as np

__all__ = ["line_plot", "multi_line_plot", "histogram_sparkline"]

_MARKS = "abcdefghij"
_BLOCKS = " ▁▂▃▄▅▆▇█"


def histogram_sparkline(counts, *, width: int | None = None) -> str:
    """Render histogram counts as a one-line block sparkline.

    Used by the Figure 2 report to show each fleet's distribution shape
    inline.  Counts are rebinned to ``width`` columns if narrower than
    the input.
    """
    c = np.asarray(counts, dtype=float).ravel()
    if c.size == 0:
        raise ValueError("empty counts")
    if np.any(c < 0):
        raise ValueError("counts must be non-negative")
    if width is not None:
        if width < 1:
            raise ValueError("width must be >= 1")
        if width < c.size:
            edges = np.linspace(0, c.size, width + 1).astype(int)
            c = np.array([
                c[a:b].sum() for a, b in zip(edges[:-1], edges[1:])
            ])
    peak = c.max()
    if peak == 0:
        return _BLOCKS[0] * c.size
    levels = np.ceil(c / peak * (len(_BLOCKS) - 1)).astype(int)
    return "".join(_BLOCKS[v] for v in levels)


def line_plot(
    x,
    y,
    *,
    width: int = 72,
    height: int = 14,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render one series as an ASCII plot."""
    return multi_line_plot(
        x, {y_label or "y": np.asarray(y)}, width=width, height=height,
        title=title,
    )


def multi_line_plot(
    x,
    series: dict,
    *,
    width: int = 72,
    height: int = 14,
    title: str = "",
) -> str:
    """Render several aligned series in one ASCII plot.

    Parameters
    ----------
    x:
        Common x values (monotone).
    series:
        Mapping label → y array (same length as ``x``).  Each series is
        drawn with its own letter mark; the legend maps letters back.
    width / height:
        Plot canvas size in characters.
    """
    xv = np.asarray(x, dtype=float).ravel()
    if xv.size < 2:
        raise ValueError("need at least two x values")
    if not series:
        raise ValueError("need at least one series")
    if len(series) > len(_MARKS):
        raise ValueError(f"at most {len(_MARKS)} series supported")
    if width < 16 or height < 4:
        raise ValueError("canvas too small")
    ys = {}
    for label, y in series.items():
        arr = np.asarray(y, dtype=float).ravel()
        if arr.shape != xv.shape:
            raise ValueError(
                f"series {label!r} length {arr.size} != x length {xv.size}"
            )
        ys[label] = arr

    all_y = np.concatenate(list(ys.values()))
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if y_hi - y_lo < 1e-12:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(xv[0]), float(xv[-1])

    canvas = [[" "] * width for _ in range(height)]
    for mark, (label, y) in zip(_MARKS, ys.items()):
        cols = np.clip(
            ((xv - x_lo) / (x_hi - x_lo) * (width - 1)).round().astype(int),
            0, width - 1,
        )
        rows = np.clip(
            ((y_hi - y) / (y_hi - y_lo) * (height - 1)).round().astype(int),
            0, height - 1,
        )
        for c, r in zip(cols, rows):
            cell = canvas[r][c]
            canvas[r][c] = "*" if cell not in (" ", mark) else mark

    lines = []
    if title:
        lines.append(title)
    label_hi = f"{y_hi:.4g}"
    label_lo = f"{y_lo:.4g}"
    pad = max(len(label_hi), len(label_lo))
    for i, row in enumerate(canvas):
        if i == 0:
            prefix = label_hi.rjust(pad)
        elif i == height - 1:
            prefix = label_lo.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}")
    axis = " " * pad + " +" + "-" * width
    lines.append(axis)
    lines.append(
        " " * pad + f"  {x_lo:<.4g}" + " " * max(width - 16, 1)
        + f"{x_hi:>.4g}"
    )
    legend = ", ".join(
        f"{mark}={label}" for mark, label in zip(_MARKS, ys)
    )
    lines.append(" " * pad + f"  [{legend}; *=overlap]")
    return "\n".join(lines)
