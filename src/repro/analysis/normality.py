"""Normality diagnostics for per-node power distributions.

The paper's sampling rule rests on approximate normality ("the power
distribution has proved to be near-normal for all systems tested") but
also flags "the presence of outliers in several of the systems that are
of a larger magnitude than we would typically see arising in truly
normal data".  This module quantifies both: moment tests, a QQ
correlation statistic, and an explicit outlier census, so an
experimenter can decide whether the Section 4 machinery applies to
their fleet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["NormalityReport", "normality_report", "qq_correlation", "count_outliers"]


def qq_correlation(watts) -> float:
    """Correlation between sample order statistics and normal quantiles.

    Values near 1 indicate the QQ plot is straight (normal-ish); heavy
    tails or skew pull it down.  This is the probability-plot
    correlation coefficient (PPCC) test statistic.
    """
    x = np.sort(np.asarray(watts, dtype=float).ravel())
    n = x.size
    if n < 3:
        raise ValueError("need at least three observations")
    # Blom plotting positions.
    p = (np.arange(1, n + 1) - 0.375) / (n + 0.25)
    q = stats.norm.ppf(p)
    if x.std() == 0:
        return 1.0  # degenerate: all equal, trivially "normal"
    return float(np.corrcoef(x, q)[0, 1])


def count_outliers(watts, *, z_threshold: float = 3.5) -> int:
    """Nodes beyond ``z_threshold`` robust z-scores (MAD-based).

    The MAD scale resists masking: a classical z-score threshold lets a
    cluster of outliers inflate σ̂ and hide itself.
    """
    x = np.asarray(watts, dtype=float).ravel()
    if x.size < 3:
        return 0
    med = np.median(x)
    mad = np.median(np.abs(x - med))
    if mad == 0:
        return int(np.count_nonzero(x != med))
    robust_z = 0.6745 * (x - med) / mad
    return int(np.count_nonzero(np.abs(robust_z) > z_threshold))


@dataclass(frozen=True)
class NormalityReport:
    """Outcome of the normality diagnostics for one system."""

    n: int
    skewness: float
    excess_kurtosis: float
    qq_r: float
    n_outliers: int
    dagostino_p: float | None

    @property
    def outlier_fraction(self) -> float:
        """Fraction of nodes flagged as outliers."""
        return self.n_outliers / self.n

    def is_approximately_normal(
        self,
        *,
        max_abs_skew: float = 1.0,
        max_outlier_fraction: float = 0.02,
        min_qq_r: float = 0.97,
    ) -> bool:
        """The paper's pragmatic criterion: the sampling machinery is
        appropriate unless the distribution "contains many outliers or
        is heavily skewed"."""
        return (
            abs(self.skewness) <= max_abs_skew
            and self.outlier_fraction <= max_outlier_fraction
            and self.qq_r >= min_qq_r
        )


def normality_report(watts) -> NormalityReport:
    """Run all diagnostics on a per-node power sample."""
    x = np.asarray(watts, dtype=float).ravel()
    if x.size < 8:
        raise ValueError("need at least eight observations for the tests")
    if not np.all(np.isfinite(x)):
        raise ValueError("sample contains non-finite values")
    skew = float(stats.skew(x))
    kurt = float(stats.kurtosis(x))  # Fisher (excess)
    try:
        _, p = stats.normaltest(x)
        p = float(p)
    except ValueError:  # pragma: no cover - tiny-sample guard
        p = None
    return NormalityReport(
        n=int(x.size),
        skewness=skew,
        excess_kurtosis=kurt,
        qq_r=qq_correlation(x),
        n_outliers=count_outliers(x),
        dagostino_p=p,
    )
