"""Generic vectorised bootstrap machinery.

:mod:`repro.core.coverage` implements the paper's specific Figure 3
procedure; this module provides the general-purpose resampling the
other experiments (and downstream users) need: bootstrap distributions
and percentile CIs for arbitrary statistics of per-node samples.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["bootstrap_statistic", "bootstrap_ci"]


def bootstrap_statistic(
    values,
    statistic: Callable[[np.ndarray], np.ndarray],
    *,
    n_boot: int = 10_000,
    rng: np.random.Generator | None = None,
    batch: int = 1_000,
) -> np.ndarray:
    """Bootstrap distribution of ``statistic`` over resamples of
    ``values``.

    ``statistic`` must be vectorised: given a ``(b, n)`` array it
    returns a length-``b`` array (e.g. ``lambda x: x.mean(axis=1)``).
    Resampling proceeds in batches of ``batch`` replicates to bound
    memory for large samples.
    """
    x = np.asarray(values, dtype=float).ravel()
    if x.size < 2:
        raise ValueError("need at least two observations")
    if n_boot < 1:
        raise ValueError("n_boot must be >= 1")
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if rng is None:
        rng = np.random.default_rng(0)
    out = np.empty(n_boot)
    n = x.size
    for lo in range(0, n_boot, batch):
        hi = min(lo + batch, n_boot)
        idx = rng.integers(0, n, size=(hi - lo, n))
        stat = np.asarray(statistic(x[idx]), dtype=float)
        if stat.shape != (hi - lo,):
            raise ValueError(
                "statistic must map a (b, n) array to a length-b array; "
                f"got shape {stat.shape} for batch {hi - lo}"
            )
        out[lo:hi] = stat
    return out


def bootstrap_ci(
    values,
    statistic: Callable[[np.ndarray], np.ndarray],
    *,
    confidence: float = 0.95,
    n_boot: int = 10_000,
    rng: np.random.Generator | None = None,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for a statistic."""
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must be in (0, 1)")
    dist = bootstrap_statistic(values, statistic, n_boot=n_boot, rng=rng)
    alpha = 1.0 - confidence
    lo, hi = np.quantile(dist, [alpha / 2.0, 1.0 - alpha / 2.0])
    return float(lo), float(hi)
