"""Measurement-window gaming analysis (paper Section 3).

Under the pre-2015 Level 1 rule, a submitter could place the
measurement window anywhere in the middle 80% of the core phase.  On a
run whose power tails off — every in-core GPU HPL run — the window over
the lowest-power stretch understates the machine's power and inflates
its FLOPS/W.  The paper quantifies two real cases:

* TSUBAME-KFC (SC '13): −10.9% reported power from an "optimal" window;
* L-CSC (SC '14): −23.9% was achievable by tweaking the interval.

:func:`optimal_window_gain` performs that adversarial search on any
trace: it sweeps every legal placement and reports the best/worst
windows and the resulting spread.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.windows import (
    LEVEL1_MIN_FRACTION,
    LEVEL1_MIN_SECONDS,
    MIDDLE_80,
    MeasurementWindow,
)
from repro.traces.ops import sliding_window_averages
from repro.traces.powertrace import PowerTrace

__all__ = ["WindowGamingResult", "optimal_window_gain"]


@dataclass(frozen=True)
class WindowGamingResult:
    """Outcome of the adversarial window search on one trace.

    All powers are full-trace-scale averages in watts.
    """

    true_average: float
    best_window: MeasurementWindow
    best_average: float
    worst_window: MeasurementWindow
    worst_average: float
    window_fraction: float

    @property
    def gaming_gain(self) -> float:
        """Relative power understatement from the optimal window —
        negative means the reported power drops (efficiency inflates)."""
        return (self.best_average - self.true_average) / self.true_average

    @property
    def worst_case_overstatement(self) -> float:
        """Relative overstatement from the unluckiest window."""
        return (self.worst_average - self.true_average) / self.true_average

    @property
    def spread(self) -> float:
        """Window-to-window relative spread (max − min)/truth — the
        measurement-timing variability the abstract quotes."""
        return (self.worst_average - self.best_average) / self.true_average

    @property
    def efficiency_inflation(self) -> float:
        """Relative FLOPS/W gain from the optimal window (performance is
        fixed; efficiency scales as 1/power)."""
        return self.true_average / self.best_average - 1.0


def optimal_window_gain(
    core_trace: PowerTrace,
    *,
    window_fraction: float | None = None,
    within: tuple[float, float] = MIDDLE_80,
    n_placements: int = 2_000,
) -> WindowGamingResult:
    """Sweep legal window placements and find the extremes.

    Parameters
    ----------
    core_trace:
        The *core-phase* power trace (ground truth is its full mean).
    window_fraction:
        Window length as a fraction of the core phase; defaults to the
        legal minimum (the longer of one minute or 16% of the core
        phase) — the strongest legal gaming position.
    within:
        Legal placement bounds; the pre-2015 rule's middle 80% by
        default.  Pass ``(0.0, 1.0)`` to study unconstrained placement.
    n_placements:
        Sweep resolution.
    """
    if core_trace.duration <= 0:
        raise ValueError("core trace must have positive duration")
    lo, hi = within
    if window_fraction is None:
        window_fraction = max(
            LEVEL1_MIN_FRACTION, LEVEL1_MIN_SECONDS / core_trace.duration
        )
    if not (0.0 < window_fraction <= hi - lo):
        raise ValueError(
            f"window_fraction {window_fraction} does not fit in {within}"
        )
    step = (hi - lo - window_fraction) / max(n_placements - 1, 1)
    starts, averages = sliding_window_averages(
        core_trace,
        window_fraction,
        within=within,
        step_fraction=max(step, 1e-6),
    )
    i_best = int(np.argmin(averages))
    i_worst = int(np.argmax(averages))
    return WindowGamingResult(
        true_average=core_trace.mean_power(),
        best_window=MeasurementWindow(
            float(starts[i_best]), float(starts[i_best] + window_fraction)
        ),
        best_average=float(averages[i_best]),
        worst_window=MeasurementWindow(
            float(starts[i_worst]), float(starts[i_worst] + window_fraction)
        ),
        worst_average=float(averages[i_worst]),
        window_fraction=float(window_fraction),
    )
