"""Plain-text table rendering for the benchmark harness.

Every bench regenerates a paper table or figure and prints it in a
stable, diff-friendly format; this module is the single place that
formatting lives.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["Table", "format_paper_vs_measured"]


class Table:
    """A fixed-column text table.

    Examples
    --------
    >>> t = Table(["system", "mu (W)"])
    >>> t.add_row(["lrz", 209.88])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], *, title: str = "") -> None:
        if not headers:
            raise ValueError("need at least one column")
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, cells: Iterable) -> None:
        """Append a row; numbers are formatted compactly."""
        row = [self._fmt(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    @staticmethod
    def _fmt(cell) -> str:
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) >= 10_000:
                return f"{cell:,.1f}"
            if abs(cell) >= 1:
                return f"{cell:.2f}"
            return f"{cell:.4f}"
        return str(cell)

    def render(self) -> str:
        """Render the table with aligned columns."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(c.rjust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_paper_vs_measured(
    label: str, paper_value: float, measured_value: float, unit: str = ""
) -> str:
    """One comparison line: ``label: paper X, measured Y (+Z%)``."""
    if paper_value == 0:
        rel = float("nan")
    else:
        rel = (measured_value - paper_value) / abs(paper_value)
    unit_s = f" {unit}" if unit else ""
    return (
        f"{label}: paper {paper_value:g}{unit_s}, "
        f"measured {measured_value:g}{unit_s} ({rel:+.2%})"
    )
