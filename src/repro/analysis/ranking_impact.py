"""Rank impact of measurement error (paper Section 1).

"This variability has significant ramifications for Green500 rankings.
For instance, the advantage of the current 1st ranked system over the
current 3rd ranked system is less than 20%" — i.e. smaller than the
measurement variation the old Level 1 rules admit.  This module runs
that argument quantitatively: perturb the measured submissions' powers
by level-appropriate error distributions, re-rank, and count movement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.methodology import Level
from repro.lists.green500 import Green500List
from repro.lists.submission import PowerSource

__all__ = ["RankImpactResult", "rank_impact_study"]

#: Default half-spread of the relative power error by level, from the
#: paper's findings: old Level 1 admits ~±10% around truth (20% total
#: spread) on modern systems; Level 2 ~±1%; Level 3 ~±0.3% (instrument
#: only).  Derived numbers are treated as fixed (they do not re-draw).
DEFAULT_LEVEL_SPREAD: dict[Level, float] = {
    Level.L1: 0.10,
    Level.L2: 0.01,
    Level.L3: 0.003,
}


@dataclass(frozen=True)
class RankImpactResult:
    """Outcome of the rank-perturbation study."""

    n_trials: int
    top1_change_probability: float
    top3_set_change_probability: float
    mean_abs_rank_shift_top10: float
    max_rank_shift_observed: int
    baseline_top3_gap: float

    def summary(self) -> str:
        """Human-readable digest."""
        return (
            f"#1 changes in {self.top1_change_probability:.1%} of trials; "
            f"top-3 set changes in {self.top3_set_change_probability:.1%}; "
            f"mean |Δrank| in top 10 = {self.mean_abs_rank_shift_top10:.2f} "
            f"(baseline #1 vs #3 gap {self.baseline_top3_gap:.1%})"
        )


def rank_impact_study(
    base_list: Green500List,
    rng: np.random.Generator,
    *,
    n_trials: int = 1_000,
    level_spread: dict[Level, float] | None = None,
) -> RankImpactResult:
    """Re-draw measured powers and measure rank churn.

    Each trial multiplies every *measured* submission's power by
    ``1 + U(-s, +s)`` with ``s`` the level's spread (window placement
    and subset luck both enter roughly uniformly across their legal
    ranges), then re-ranks.  Derived powers stay fixed.
    """
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    spread = dict(DEFAULT_LEVEL_SPREAD)
    if level_spread:
        spread.update(level_spread)

    baseline_names = [e.submission.system_name for e in base_list]
    baseline_rank = {name: i + 1 for i, name in enumerate(baseline_names)}
    top10 = set(baseline_names[:10])
    top3 = set(baseline_names[:3])

    measured = [
        e.submission
        for e in base_list
        if e.submission.source is PowerSource.MEASURED
    ]
    true_powers = {
        s.system_name: (
            s.true_power_watts if s.true_power_watts is not None else s.power_watts
        )
        for s in measured
    }

    top1_changes = 0
    top3_changes = 0
    shift_sum = 0.0
    max_shift = 0
    for _ in range(n_trials):
        new_powers = {}
        for s in measured:
            sp = spread.get(s.level, 0.0)
            factor = 1.0 + rng.uniform(-sp, sp)
            new_powers[s.system_name] = true_powers[s.system_name] * factor
        trial = base_list.reranked_with_powers(new_powers)
        trial_names = [e.submission.system_name for e in trial]
        if trial_names[0] != baseline_names[0]:
            top1_changes += 1
        if set(trial_names[:3]) != top3:
            top3_changes += 1
        shifts = [
            abs((i + 1) - baseline_rank[name])
            for i, name in enumerate(trial_names)
            if name in top10
        ]
        shift_sum += float(np.mean(shifts))
        max_shift = max(
            max_shift,
            max(
                abs((i + 1) - baseline_rank[name])
                for i, name in enumerate(trial_names)
            ),
        )

    return RankImpactResult(
        n_trials=n_trials,
        top1_change_probability=top1_changes / n_trials,
        top3_set_change_probability=top3_changes / n_trials,
        mean_abs_rank_shift_top10=shift_sum / n_trials,
        max_rank_shift_observed=int(max_shift),
        baseline_top3_gap=base_list.efficiency_gap(1, 3),
    )
