"""Core-phase detection in raw power traces.

The methodology's rules are phrased relative to the **core phase**, but
a meter log is just power vs time — before any window rule can be
applied or audited, the core phase must be located.  (List operators
face exactly this when auditing a submission from its raw trace.)

:func:`detect_core_phase` finds the sustained high-power region of a
full-run trace: the longest contiguous stretch where power stays above
a threshold between the idle/setup floor and the plateau level.  It is
deliberately simple and transparent — an auditable rule, not a learned
detector — and is validated against the trace synthesiser's known
ground truth in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.powertrace import PowerTrace

__all__ = ["DetectedPhase", "detect_core_phase"]


@dataclass(frozen=True)
class DetectedPhase:
    """A detected core phase within a full-run trace."""

    start_s: float
    end_s: float
    threshold_watts: float
    plateau_watts: float

    @property
    def duration_s(self) -> float:
        """Detected core-phase length."""
        return self.end_s - self.start_s

    def overlap_fraction(self, true_start: float, true_end: float) -> float:
        """Intersection-over-union with a known core window (for
        validation)."""
        if true_end <= true_start:
            raise ValueError("need true_start < true_end")
        inter = max(
            0.0, min(self.end_s, true_end) - max(self.start_s, true_start)
        )
        union = (
            max(self.end_s, true_end) - min(self.start_s, true_start)
        )
        return inter / union if union > 0 else 0.0


def detect_core_phase(
    trace: PowerTrace,
    *,
    threshold_fraction: float = 0.5,
    min_duration_fraction: float = 0.05,
) -> DetectedPhase:
    """Locate the core phase of a full-run trace.

    Parameters
    ----------
    trace:
        The full-run power trace (idle/setup + core + teardown).
    threshold_fraction:
        Where to place the detection threshold between the trace's low
        level (5th percentile) and plateau level (95th percentile);
        0.5 = midway.
    min_duration_fraction:
        Shortest admissible core phase, as a fraction of the trace
        span — guards against a power spike being mistaken for the run.

    Raises
    ------
    ValueError
        If no above-threshold region of the minimum duration exists
        (e.g. an idle-only trace).
    """
    if not (0.0 < threshold_fraction < 1.0):
        raise ValueError("threshold_fraction must be in (0, 1)")
    if not (0.0 < min_duration_fraction <= 1.0):
        raise ValueError("min_duration_fraction must be in (0, 1]")
    if len(trace) < 8 or trace.duration <= 0:
        raise ValueError("trace too short for phase detection")

    # Level estimation on a lightly smoothed signal: the smoothing
    # window (~1% of the trace) makes the floor/plateau levels robust
    # to sample noise and keeps short spikes from defining the plateau,
    # while not requiring the idle phases to be any minimum length
    # (a 28 h HPL run has seconds of setup in hours of core).
    watts = trace.watts
    win = max(3, len(trace) // 100)
    kernel = np.full(win, 1.0 / win)
    # Edge-pad before convolving: zero padding would fabricate a dip at
    # the trace boundaries and a spurious "plateau" on flat signals.
    padded = np.pad(watts, (win // 2, win - 1 - win // 2), mode="edge")
    smooth = np.convolve(padded, kernel, mode="valid")
    lo = float(smooth.min())
    hi = float(smooth.max())
    if hi - lo < 1e-9 or (hi - lo) / max(hi, 1e-9) < 0.02:
        raise ValueError(
            "trace has no distinguishable plateau (flat signal); the "
            "core phase cannot be detected from power alone"
        )
    threshold = lo + threshold_fraction * (hi - lo)

    above = watts >= threshold
    # Longest contiguous run of `above`.
    edges = np.flatnonzero(np.diff(above.astype(np.int8)))
    starts = np.concatenate(([0], edges + 1))
    ends = np.concatenate((edges + 1, [above.size]))
    best_len = -1.0
    best: tuple[int, int] | None = None
    for s, e in zip(starts, ends):
        if not above[s]:
            continue
        length = trace.times[e - 1] - trace.times[s]
        if length > best_len:
            best_len = length
            best = (int(s), int(e))
    if best is None or best_len < min_duration_fraction * trace.duration:
        raise ValueError(
            "no above-threshold region long enough to be a core phase"
        )
    s, e = best
    return DetectedPhase(
        start_s=float(trace.times[s]),
        end_s=float(trace.times[e - 1]),
        threshold_watts=threshold,
        plateau_watts=hi,
    )
