"""Statistical analysis and reporting utilities.

* :mod:`~repro.analysis.descriptive` — summary statistics and the
  histogram machinery behind Figure 2.
* :mod:`~repro.analysis.normality` — the normality diagnostics the
  paper's Section 4 leans on.
* :mod:`~repro.analysis.bootstrap` — generic vectorised resampling.
* :mod:`~repro.analysis.gaming` — optimal measurement-window search
  (the TSUBAME-KFC / L-CSC case studies).
* :mod:`~repro.analysis.ranking_impact` — how measurement error moves
  Green500 ranks.
* :mod:`~repro.analysis.report` — plain-text table rendering shared by
  the benchmark harness.
"""

from repro.analysis.descriptive import DescriptiveStats, describe, histogram
from repro.analysis.normality import NormalityReport, normality_report
from repro.analysis.bootstrap import bootstrap_ci, bootstrap_statistic
from repro.analysis.gaming import WindowGamingResult, optimal_window_gain
from repro.analysis.phases import DetectedPhase, detect_core_phase
from repro.analysis.ranking_impact import RankImpactResult, rank_impact_study
from repro.analysis.report import Table, format_paper_vs_measured

__all__ = [
    "DescriptiveStats",
    "describe",
    "histogram",
    "NormalityReport",
    "normality_report",
    "bootstrap_ci",
    "bootstrap_statistic",
    "WindowGamingResult",
    "optimal_window_gain",
    "DetectedPhase",
    "detect_core_phase",
    "RankImpactResult",
    "rank_impact_study",
    "Table",
    "format_paper_vs_measured",
]
