"""Descriptive statistics and histograms.

Table 4 reports (N, μ̂, σ̂, σ̂/μ̂) per system; Figure 2 shows the
per-node power histograms those numbers summarise.  This module
produces both from a :class:`~repro.traces.nodeset.NodeSample` or any
array of per-node powers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DescriptiveStats", "describe", "histogram"]


@dataclass(frozen=True)
class DescriptiveStats:
    """Summary statistics of a per-node power sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    skewness: float
    excess_kurtosis: float

    @property
    def cv(self) -> float:
        """Coefficient of variation σ̂/μ̂."""
        if self.mean == 0:
            raise ValueError("cv undefined for zero mean")
        return self.std / self.mean

    @property
    def range_fraction(self) -> float:
        """(max − min)/mean — the full node-to-node spread."""
        if self.mean == 0:
            raise ValueError("range fraction undefined for zero mean")
        return (self.maximum - self.minimum) / self.mean


def describe(watts) -> DescriptiveStats:
    """Summarise per-node powers (sample std, ddof=1)."""
    x = np.asarray(watts, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("empty sample")
    if not np.all(np.isfinite(x)):
        raise ValueError("sample contains non-finite values")
    mu = float(x.mean())
    sd = float(x.std(ddof=1)) if x.size > 1 else 0.0
    if x.size > 2 and sd > 0:
        c = x - mu
        m2 = float((c**2).mean())
        skew = float((c**3).mean() / m2**1.5)
        kurt = float((c**4).mean() / m2**2 - 3.0)
    else:
        skew = 0.0
        kurt = 0.0
    return DescriptiveStats(
        n=int(x.size),
        mean=mu,
        std=sd,
        minimum=float(x.min()),
        maximum=float(x.max()),
        median=float(np.median(x)),
        skewness=skew,
        excess_kurtosis=kurt,
    )


def histogram(
    watts, *, bins: int = 40, range_sigmas: float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram counts and bin edges for a Figure 2-style panel.

    ``range_sigmas`` optionally clips the plotted range to
    ``median ± k·σ_robust`` (MAD-based scale, so the outliers being
    clipped cannot inflate the clip bounds themselves); clipped values
    land in the edge bins rather than stretching the axis.
    """
    x = np.asarray(watts, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("empty sample")
    if bins < 1:
        raise ValueError("bins must be >= 1")
    if range_sigmas is not None:
        if range_sigmas <= 0:
            raise ValueError("range_sigmas must be positive")
        center = float(np.median(x))
        mad = float(np.median(np.abs(x - center)))
        scale = 1.4826 * mad if mad > 0 else float(x.std(ddof=1) if x.size > 1 else 0.0)
        lo = center - range_sigmas * scale
        hi = center + range_sigmas * scale
        if hi > lo:
            x = np.clip(x, lo, hi)
    counts, edges = np.histogram(x, bins=bins)
    return counts, edges
