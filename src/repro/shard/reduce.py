"""Exact reduction of per-shard estimator state to fleet state.

The pipeline's per-node state is *column-independent*: a Welford
component, a masked-moment column, a recovery column, an excursion
counter — each depends only on its own node's sample stream.  Under a
contiguous node partition, a shard therefore holds exactly the column
slice of the state a full-fleet run would hold, and the fleet state is
the node-ordered **concatenation** of the shard states.  Concatenation
is associative and involves no floating-point combination at all, so
the reduction is exact to the bit and independent of both the shard
count and the shape of the merge tree — the property the hypothesis
suite drives with random partitions and random tree arities.

Fleet *scalars* (pooled mean/σ, correlations, Eq. 1–5 stopping) are
derived **after** the concatenation, from the full per-node vectors,
by the same deterministic expressions regardless of shard count —
which is how ``sharded(k) == sharded(1)`` holds bitwise for every
``k`` (see :mod:`docs/sharding.md` for the contract's fine print on
the serial ``stream_session`` fleet scalar, whose sample *order*
differs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.recovery import RecoveryState
from repro.shard.plan import ShardPlan, ShardSpec
from repro.stream.estimators import P2Quantile, RunningCovariance, RunningMoments
from repro.stream.monitor import ComplianceMonitor

__all__ = ["ShardState", "FleetState", "concat_tree", "reduce_states"]


def concat_tree(parts: list, combine, *, arity: int = 2):
    """Reduce ``parts`` through a merge tree of the given arity.

    ``combine`` maps a list of adjacent parts to one part (e.g.
    :meth:`RunningMoments.concat`).  Because the shard reductions are
    pure ordered concatenations, the tree shape cannot change the
    result — a flat ``combine(parts)`` and any tree are bit-identical —
    but reducing as a tree keeps peak intermediate sizes logarithmic
    when thousands of shards stream their states in.
    """
    if not parts:
        raise ValueError("concat_tree needs at least one part")
    if arity < 2:
        raise ValueError("arity must be >= 2")
    level = list(parts)
    while len(level) > 1:
        level = [
            level[i] if len(level[i : i + arity]) == 1
            else combine(level[i : i + arity])
            for i in range(0, len(level), arity)
        ]
    return level[0]


@dataclass
class ShardState:
    """Everything one shard worker learned about its node range.

    Picklable — the unit a worker process returns.  ``monitor`` was fed
    the *global* fleet reference series, so its ratio/excursion state
    is the exact column slice of a full-fleet monitor's.
    """

    spec: ShardSpec
    monitor: ComplianceMonitor
    covar: RunningCovariance
    quantiles: dict[float, P2Quantile]
    recovery: RecoveryState
    samples_ingested: int


@dataclass
class FleetState:
    """The merged fleet view, ready for report rendering.

    ``quantile_merge_approximate`` is True when more than one shard's
    P² summaries were merged — the one non-exact reduction, which the
    session layer must surface as a provenance note
    (:data:`~repro.stream.estimators.P2Quantile.MERGE_CAVEAT`).
    """

    plan: ShardPlan
    monitor: ComplianceMonitor
    node_moments: RunningMoments
    covar: RunningCovariance
    quantiles: dict[float, P2Quantile]
    recovery: RecoveryState
    samples_ingested: int
    quantile_merge_approximate: bool

    def fleet_moments(self) -> RunningMoments:
        """Pooled scalar moments over every node's every sample.

        Derived deterministically from the concatenated per-node
        vector, so it is identical for any shard count.
        """
        return self.node_moments.pooled()


def reduce_states(states: list[ShardState], plan: ShardPlan) -> FleetState:
    """Merge per-shard states into the fleet state (exact).

    Validates that the states tile the plan exactly — every planned
    shard present once, keys matching — then reduces every per-node
    estimator through :func:`concat_tree` and merges the P² summaries
    (approximate; flagged).
    """
    if len(states) != plan.n_shards:
        raise ValueError(
            f"got {len(states)} shard states for a {plan.n_shards}-shard "
            "plan"
        )
    ordered = sorted(states, key=lambda s: s.spec.node_lo)
    for state, spec in zip(ordered, plan):
        if state.spec != spec:
            raise ValueError(
                f"shard state {state.spec.shard_index} does not match "
                f"the plan's shard {spec.shard_index}: keys or ranges "
                "disagree"
            )
    monitor = concat_tree(
        [s.monitor for s in ordered], ComplianceMonitor.merge_shards
    )
    covar = concat_tree(
        [s.covar for s in ordered], RunningCovariance.concat
    )
    recovery = concat_tree(
        [s.recovery for s in ordered], RecoveryState.concat
    )
    qs = sorted(ordered[0].quantiles)
    for i, s in enumerate(ordered):
        if sorted(s.quantiles) != qs:
            raise ValueError(f"shard {i} tracked different quantiles")
    quantiles: dict[float, P2Quantile] = {}
    for q in qs:
        est = P2Quantile(q)
        for s in ordered:
            est.merge(s.quantiles[q])
        quantiles[q] = est
    return FleetState(
        plan=plan,
        monitor=monitor,
        node_moments=monitor.node_moments,
        covar=covar,
        quantiles=quantiles,
        recovery=recovery,
        samples_ingested=sum(s.samples_ingested for s in ordered),
        quantile_merge_approximate=len(ordered) > 1,
    )
