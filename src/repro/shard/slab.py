"""Zero-copy columnar slab storage for the million-node hot path.

A :class:`Slab` is one preallocated struct-of-arrays block — a
``times`` column, a C-contiguous ``(capacity_ticks, n_nodes)`` float64
``watts`` matrix, and an integer ``node_ids`` column — sized once and
reused for every batch a producer emits, so the hot path performs no
per-batch allocation.  :class:`SlabRing` cycles a fixed set of slabs
(double-buffered by default) with explicit acquire/release borrow
tracking: cycling onto a slab that is still borrowed raises instead of
silently aliasing a live view, which is the property the ring's
hypothesis suite locks.

Slabs can optionally be backed by
:class:`multiprocessing.shared_memory.SharedMemory`, so a producer
process can synthesize or decode directly into memory a consumer
process reads without a copy.  The backing is an implementation detail:
the column views behave identically either way.
"""

from __future__ import annotations

import numpy as np

from repro.stream.ingest import SampleBatch

__all__ = ["ColumnBatch", "Slab", "SlabRing"]


class ColumnBatch:
    """A struct-of-arrays view of one batch inside a slab.

    Lightweight column handles (no copies): ``times`` ``(n_ticks,)``
    float64, ``watts`` ``(n_ticks, n_nodes)`` C-contiguous float64,
    ``node_ids`` ``(n_nodes,)`` int64.  :meth:`as_batch` wraps the same
    views in a :class:`~repro.stream.ingest.SampleBatch` via the strict
    zero-copy constructor.
    """

    __slots__ = ("times", "watts", "node_ids")

    def __init__(
        self,
        times: np.ndarray,
        watts: np.ndarray,
        node_ids: np.ndarray,
    ) -> None:
        self.times = times
        self.watts = watts
        self.node_ids = node_ids

    @property
    def n_ticks(self) -> int:
        """Rows in the view."""
        return int(self.times.size)

    @property
    def n_nodes(self) -> int:
        """Columns in the view."""
        return int(self.node_ids.size)

    def as_batch(self) -> SampleBatch:
        """The same views as a :class:`SampleBatch` (zero-copy)."""
        return SampleBatch.from_columns(
            times=self.times, watts=self.watts, node_ids=self.node_ids
        )


class Slab:
    """One preallocated columnar block of batch storage.

    Parameters
    ----------
    capacity_ticks:
        Maximum rows a batch written into this slab may have.
    n_nodes:
        Fixed column count (the shard's node range width).
    shared:
        Back the columns with one
        :class:`multiprocessing.shared_memory.SharedMemory` segment so
        another process can map the same bytes.  The creator must call
        :meth:`close` (and :meth:`unlink` exactly once fleet-wide) when
        done; private slabs need no cleanup.
    """

    def __init__(
        self, capacity_ticks: int, n_nodes: int, *, shared: bool = False
    ) -> None:
        if capacity_ticks < 1:
            raise ValueError("capacity_ticks must be >= 1")
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self._capacity = int(capacity_ticks)
        self._n_nodes = int(n_nodes)
        times_b = self._capacity * 8
        watts_b = self._capacity * self._n_nodes * 8
        ids_b = self._n_nodes * 8
        self._shm = None
        if shared:
            from multiprocessing import shared_memory

            self._shm = shared_memory.SharedMemory(
                create=True, size=times_b + watts_b + ids_b
            )
            buf = self._shm.buf
            self.times = np.frombuffer(
                buf, dtype=np.float64, count=self._capacity
            )
            self.watts = np.frombuffer(
                buf,
                dtype=np.float64,
                count=self._capacity * self._n_nodes,
                offset=times_b,
            ).reshape(self._capacity, self._n_nodes)
            self.node_ids = np.frombuffer(
                buf,
                dtype=np.int64,
                count=self._n_nodes,
                offset=times_b + watts_b,
            )
        else:
            self.times = np.zeros(self._capacity)
            self.watts = np.zeros((self._capacity, self._n_nodes))
            self.node_ids = np.zeros(self._n_nodes, dtype=np.int64)

    @property
    def capacity_ticks(self) -> int:
        """Maximum batch rows this slab can hold."""
        return self._capacity

    @property
    def n_nodes(self) -> int:
        """Fixed column count."""
        return self._n_nodes

    @property
    def shared(self) -> bool:
        """Whether the columns live in a shared-memory segment."""
        return self._shm is not None

    @property
    def nbytes(self) -> int:
        """Total bytes of column storage."""
        return (
            self.times.nbytes + self.watts.nbytes + self.node_ids.nbytes
        )

    def view(self, n_ticks: int) -> ColumnBatch:
        """A :class:`ColumnBatch` over the first ``n_ticks`` rows."""
        if not (1 <= n_ticks <= self._capacity):
            raise ValueError(
                f"n_ticks must be in [1, {self._capacity}], got {n_ticks}"
            )
        return ColumnBatch(
            times=self.times[:n_ticks],
            watts=self.watts[:n_ticks],
            node_ids=self.node_ids,
        )

    def close(self) -> None:
        """Release this process's mapping of a shared slab (no-op else).

        The numpy views become invalid afterwards; drop them first.
        """
        if self._shm is None:
            return
        # The views hold references into the mapped buffer; break them
        # before closing or the mapping cannot be released.
        self.times = self.watts = self.node_ids = None
        shm, self._shm = self._shm, None
        shm.close()

    def unlink(self) -> None:
        """Destroy the shared segment (creator only; no-op if private)."""
        if self._shm is None:
            return
        shm = self._shm
        self.close()
        shm.unlink()


class SlabRing:
    """A fixed cycle of slabs with aliasing-safe borrow tracking.

    ``depth`` slabs (2 = double buffering) are handed out round-robin by
    :meth:`acquire` and returned by :meth:`release`.  Acquiring a slab
    that has not been released raises — the producer is about to
    overwrite rows a consumer may still be reading through a zero-copy
    view, and that must be an error, never silent corruption.  The
    property suite drives random acquire/release schedules against this
    invariant.
    """

    def __init__(
        self,
        capacity_ticks: int,
        n_nodes: int,
        *,
        depth: int = 2,
        shared: bool = False,
    ) -> None:
        if depth < 2:
            raise ValueError(
                "depth must be >= 2: with a single slab every acquire "
                "would alias the view handed out before it"
            )
        self._slabs = [
            Slab(capacity_ticks, n_nodes, shared=shared)
            for _ in range(depth)
        ]
        self._borrowed = [False] * depth
        self._next = 0
        self.acquired_total = 0

    @property
    def depth(self) -> int:
        """Number of slabs in the cycle."""
        return len(self._slabs)

    @property
    def borrowed(self) -> int:
        """Slabs currently on loan."""
        return sum(self._borrowed)

    def acquire(self) -> Slab:
        """Borrow the next slab in the cycle.

        Raises :class:`RuntimeError` when the cycle comes back around
        to a slab that was never released — the caller is holding too
        many live views for the ring's depth.
        """
        i = self._next
        if self._borrowed[i]:
            raise RuntimeError(
                f"slab {i} is still borrowed; a ring of depth "
                f"{self.depth} cannot hand out another view without "
                "aliasing one still live — release it first or deepen "
                "the ring"
            )
        self._borrowed[i] = True
        self._next = (i + 1) % len(self._slabs)
        self.acquired_total += 1
        return self._slabs[i]

    def release(self, slab: Slab) -> None:
        """Return a borrowed slab to the ring."""
        for i, candidate in enumerate(self._slabs):
            if candidate is slab:
                if not self._borrowed[i]:
                    raise RuntimeError(f"slab {i} was not borrowed")
                self._borrowed[i] = False
                return
        raise ValueError("slab does not belong to this ring")

    def close(self) -> None:
        """Close every slab's shared mapping (no-op for private slabs)."""
        for slab in self._slabs:
            slab.close()

    def unlink(self) -> None:
        """Destroy every slab's shared segment (creator only)."""
        for slab in self._slabs:
            slab.unlink()
