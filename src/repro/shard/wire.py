"""Route wire frames into shard slabs by node-range header.

The :mod:`repro.wire` frame header already carries the shard key in
plain sight: ``(node_lo, n_nodes)``.  :class:`FrameShardRouter` uses it
to dispatch each validated frame to the matching shard of a
:class:`~repro.shard.plan.ShardPlan` and decode its payload **straight
into that shard's slab ring** via
:meth:`~repro.wire.codecs.Codec.decode_into` — the receive path's
zero-copy counterpart of
:meth:`~repro.traces.synth.SimulatedRun.stream_run`: no per-frame
matrix allocation, and the decoded batch is a view into preallocated
storage.

Frames whose node range does not name a planned shard exactly are
counted unroutable, never split or silently dropped; corrupt events are
counted, matching the wire layer's nothing-disappears bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.shard.plan import ShardPlan
from repro.shard.slab import SlabRing
from repro.stream.ingest import SampleBatch
from repro.wire.codecs import codec_for_frame
from repro.wire.framing import FrameEvent, FrameParser

__all__ = ["RoutedBatch", "FrameShardRouter"]


@dataclass(frozen=True)
class RoutedBatch:
    """One decoded frame, addressed to its shard.

    ``batch`` is a zero-copy view into the shard's slab ring: it stays
    valid until one more frame routes to the *same* shard (double
    buffering), after which its rows are recycled.
    """

    shard_index: int
    batch: SampleBatch


class FrameShardRouter:
    """Dispatch validated frames into per-shard slab storage.

    One :class:`~repro.shard.slab.SlabRing` per planned shard, sized to
    the plan's ``ticks_per_batch``.  Feed either raw bytes
    (:meth:`feed`, which runs the crash-proof
    :class:`~repro.wire.framing.FrameParser`) or already-parsed
    :class:`~repro.wire.framing.FrameEvent` objects (:meth:`route`).
    """

    def __init__(
        self, plan: ShardPlan, *, depth: int = 2, shared: bool = False
    ) -> None:
        self._plan = plan
        self._rings = [
            SlabRing(
                plan.ticks_per_batch,
                spec.n_nodes,
                depth=depth,
                shared=shared,
            )
            for spec in plan
        ]
        self._held: list[list] = [[] for _ in plan]
        self._parser = FrameParser()
        self.frames_routed = 0
        self.frames_unroutable = 0
        self.frames_corrupt = 0
        self.frames_undecodable = 0
        self.error_bound_w = 0.0

    @property
    def plan(self) -> ShardPlan:
        """The plan frames are routed against."""
        return self._plan

    def feed(self, data: bytes):
        """Parse a byte chunk; lazily route the frames it completes.

        A generator: each frame is decoded into its shard's slab only
        as the caller advances, so a yielded view is never recycled
        before the caller has seen it — consume (or copy) each batch
        before requesting the next, exactly as with
        :meth:`~repro.traces.synth.SimulatedRun.stream_run`.
        """
        for event in self._parser.feed(data):
            routed = self.route(event)
            if routed is not None:
                yield routed

    def route(self, event: FrameEvent) -> RoutedBatch | None:
        """Route one parser event; ``None`` if it produced no batch."""
        if not event.ok:
            self.frames_corrupt += 1
            return None
        header = event.header
        spec = self._plan.shard_for_range(header.node_lo, header.n_nodes)
        if spec is None or header.n_ticks < 1:
            self.frames_unroutable += 1
            return None
        if header.n_ticks > self._plan.ticks_per_batch:
            self.frames_unroutable += 1
            return None
        times_len = header.n_ticks * 8
        if len(event.payload) < times_len:
            self.frames_undecodable += 1
            return None
        i = spec.shard_index
        ring = self._rings[i]
        while len(self._held[i]) >= ring.depth - 1:
            ring.release(self._held[i].pop(0))
        slab = ring.acquire()
        n_t = header.n_ticks
        slab.times[:n_t] = np.frombuffer(
            event.payload[:times_len], dtype="<f8"
        )
        slab.node_ids[:] = spec.node_indices
        try:
            codec = codec_for_frame(header.codec_id, header.flags)
            bound_w = codec.decode_into(
                event.payload[times_len:], slab.watts[:n_t]
            )
        except ValueError:
            ring.release(slab)
            self.frames_undecodable += 1
            return None
        if not np.all(np.isfinite(slab.times[:n_t])):
            ring.release(slab)
            self.frames_undecodable += 1
            return None
        self._held[i].append(slab)
        self.frames_routed += 1
        self.error_bound_w = max(self.error_bound_w, bound_w)
        return RoutedBatch(
            shard_index=i, batch=slab.view(n_t).as_batch()
        )

    def close(self) -> None:
        """Flush the parser and return every borrowed slab."""
        for event in self._parser.close():
            if not event.ok:
                self.frames_corrupt += 1
        for i, ring in enumerate(self._rings):
            while self._held[i]:
                ring.release(self._held[i].pop())
            ring.close()
