"""Shard planning: partition a fleet into contiguous node ranges.

:func:`plan_shards` splits ``n_nodes`` into ``n_shards`` contiguous,
near-equal ranges — the partition under which every per-node estimator
in the pipeline is column-independent, so shard results reassemble
bit-identically (see :mod:`repro.shard.reduce`).

Each shard carries a **content-address key** built with the PR 3
machinery (:mod:`repro.parallel.hashing`): a digest over the shard
package's import-closure source plus the shard's coordinates.  Two
plans agree on a shard key exactly when re-running that shard would
execute the same code over the same node range with the same batching —
which is what lets a scheduler cache or dedupe shard work safely.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.parallel.hashing import closure_digest

__all__ = ["ShardSpec", "ShardPlan", "plan_shards"]


@lru_cache(maxsize=1)
def _shard_code_digest() -> str:
    """Digest of the shard package's import closure (cached per process)."""
    return closure_digest("repro.shard")


@dataclass(frozen=True)
class ShardSpec:
    """One shard: a contiguous node range and its content-address key."""

    shard_index: int
    n_shards: int
    node_lo: int
    node_hi: int
    key: str

    def __post_init__(self) -> None:
        if not (0 <= self.shard_index < self.n_shards):
            raise ValueError("shard_index must be in [0, n_shards)")
        if not (0 <= self.node_lo < self.node_hi):
            raise ValueError("need 0 <= node_lo < node_hi")

    @property
    def n_nodes(self) -> int:
        """Nodes covered by this shard."""
        return self.node_hi - self.node_lo

    @property
    def node_indices(self) -> np.ndarray:
        """The shard's node ids, ``[node_lo, node_hi)``."""
        return np.arange(self.node_lo, self.node_hi, dtype=np.int64)


@dataclass(frozen=True)
class ShardPlan:
    """A full fleet partition: ordered, contiguous, gap-free shards."""

    n_nodes: int
    ticks_per_batch: int
    shards: tuple[ShardSpec, ...]
    plan_key: str

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError("a plan needs at least one shard")
        expected_lo = 0
        for i, spec in enumerate(self.shards):
            if spec.shard_index != i:
                raise ValueError("shards must be ordered by index")
            if spec.node_lo != expected_lo:
                raise ValueError(
                    f"shard {i} starts at node {spec.node_lo}, expected "
                    f"{expected_lo}: shards must tile the fleet"
                )
            expected_lo = spec.node_hi
        if expected_lo != self.n_nodes:
            raise ValueError(
                f"shards cover [0, {expected_lo}) but the fleet has "
                f"{self.n_nodes} nodes"
            )

    @property
    def n_shards(self) -> int:
        """Number of shards in the plan."""
        return len(self.shards)

    def __iter__(self):
        """Iterate the shards in index order."""
        return iter(self.shards)

    def __len__(self) -> int:
        return len(self.shards)

    def shard_for_range(
        self, node_lo: int, n_nodes: int
    ) -> ShardSpec | None:
        """The shard exactly matching ``[node_lo, node_lo + n_nodes)``.

        The wire router's lookup: a frame header's node range either
        names a planned shard exactly or the frame is unroutable
        (``None``) — partial overlaps are never silently split.
        """
        for spec in self.shards:
            if spec.node_lo == node_lo and spec.n_nodes == n_nodes:
                return spec
        return None


def plan_shards(
    n_nodes: int,
    n_shards: int,
    *,
    ticks_per_batch: int = 60,
    code_digest: str | None = None,
) -> ShardPlan:
    """Partition ``n_nodes`` into ``n_shards`` contiguous ranges.

    Ranges are near-equal: the first ``n_nodes % n_shards`` shards get
    one extra node (``np.array_split`` semantics).  ``code_digest``
    overrides the shard package's import-closure digest — injectable so
    tests can pin keys without hashing real sources.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if not (1 <= n_shards <= n_nodes):
        raise ValueError(
            f"n_shards must be in [1, n_nodes={n_nodes}], got {n_shards}"
        )
    if ticks_per_batch < 1:
        raise ValueError("ticks_per_batch must be >= 1")
    digest = code_digest if code_digest is not None else _shard_code_digest()
    base, extra = divmod(n_nodes, n_shards)
    shards = []
    lo = 0
    for i in range(n_shards):
        hi = lo + base + (1 if i < extra else 0)
        key = hashlib.sha256(
            f"{digest}:{i}/{n_shards}:[{lo},{hi}):{ticks_per_batch}".encode()
        ).hexdigest()
        shards.append(
            ShardSpec(
                shard_index=i,
                n_shards=n_shards,
                node_lo=lo,
                node_hi=hi,
                key=key,
            )
        )
        lo = hi
    plan_key = hashlib.sha256(
        f"{digest}:{n_nodes}:{n_shards}:{ticks_per_batch}".encode()
    ).hexdigest()
    return ShardPlan(
        n_nodes=n_nodes,
        ticks_per_batch=ticks_per_batch,
        shards=tuple(shards),
        plan_key=plan_key,
    )
