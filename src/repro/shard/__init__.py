"""Million-node hot path: slabs, shard planning, exact reduction.

The scale layer of the pipeline.  A fleet too large for one process is
partitioned into contiguous node ranges (:mod:`repro.shard.plan`), each
range streams through the full per-node kernel with zero-copy columnar
slab storage (:mod:`repro.shard.slab`,
:meth:`~repro.traces.synth.SimulatedRun.stream_run`), and the per-shard
estimator states reassemble through an exact merge tree
(:mod:`repro.shard.reduce`) into fleet statistics that are
**bit-identical for any shard count** (:mod:`repro.shard.engine`).
Wire-transported fleets decode straight into shard slabs by node-range
header (:mod:`repro.shard.wire`).
"""

from repro.shard.engine import (
    ShardSessionResult,
    fleet_reference,
    run_shard,
    run_sharded,
    sharded_session,
)
from repro.shard.plan import ShardPlan, ShardSpec, plan_shards
from repro.shard.reduce import (
    FleetState,
    ShardState,
    concat_tree,
    reduce_states,
)
from repro.shard.slab import ColumnBatch, Slab, SlabRing
from repro.shard.wire import FrameShardRouter, RoutedBatch

__all__ = [
    "ColumnBatch",
    "FleetState",
    "FrameShardRouter",
    "RoutedBatch",
    "ShardPlan",
    "ShardSessionResult",
    "ShardSpec",
    "ShardState",
    "Slab",
    "SlabRing",
    "concat_tree",
    "fleet_reference",
    "plan_shards",
    "reduce_states",
    "run_shard",
    "run_sharded",
    "sharded_session",
]
