"""Sharded multiprocess ingest over contiguous node ranges.

The driver for the million-node hot path:

* :func:`fleet_reference` — one vectorised streaming pass computing the
  global per-tick fleet mean.  Every shard judges covariance and
  excursion ratios against this *same* series, which is what makes the
  per-shard state the exact column slice of a full-fleet run's.
* :func:`run_shard` — the per-shard kernel: synthesize the shard's node
  columns straight into a :class:`~repro.shard.slab.SlabRing` (zero
  copies, no per-batch allocation), feed the compliance monitor, the
  covariance tracker, the P² quantiles and the masked row-push recovery
  kernel, and snapshot the result as a picklable
  :class:`~repro.shard.reduce.ShardState`.
* :func:`run_sharded` — fan the plan's shards over a ``fork`` worker
  pool (or run them inline when ``processes`` is 0, the deterministic
  default), then reduce through the exact merge tree.
* :func:`sharded_session` — the full-session entry point: Eq. 1–5
  sequential stopping, the merged :class:`MonitorReport` and the
  :class:`~repro.faults.quality.QualityReport` all rendered from merged
  shard state, bit-identical for any shard count.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass

import numpy as np

from repro.faults.quality import QualityReport
from repro.faults.recovery import RecoveryPipeline, build_quality_report
from repro.shard.plan import ShardPlan, ShardSpec, plan_shards
from repro.shard.reduce import FleetState, ShardState, reduce_states
from repro.shard.slab import SlabRing
from repro.stream.estimators import P2Quantile, RunningCovariance, RunningMoments
from repro.stream.monitor import ComplianceMonitor, MonitorReport
from repro.stream.stopping import SequentialStopper, StoppingDecision
from repro.traces.synth import SimulatedRun

__all__ = [
    "fleet_reference",
    "run_shard",
    "run_sharded",
    "ShardSessionResult",
    "sharded_session",
]


def fleet_reference(
    run: SimulatedRun,
    *,
    ticks_per_batch: int = 60,
    core_only: bool = True,
) -> np.ndarray:
    """The global per-tick fleet mean power, computed in one pass.

    Streams the whole fleet through
    :meth:`~repro.traces.synth.SimulatedRun.stream_run` (slab-backed,
    never materialising the run) and keeps only the across-node mean of
    each tick — O(n_ticks) memory.  The values are bit-identical to the
    ``batch.fleet_means()`` a serial session computes, so a shard
    pushing ratios or covariance against this series reproduces the
    serial arithmetic exactly.
    """
    ring = SlabRing(ticks_per_batch, run.system.n_nodes)
    chunks = [
        batch.fleet_means()
        for batch in run.stream_run(
            ticks_per_batch=ticks_per_batch, core_only=core_only, ring=ring
        )
    ]
    return np.concatenate(chunks)


def run_shard(
    run: SimulatedRun,
    spec: ShardSpec,
    *,
    ticks_per_batch: int,
    reference_w: np.ndarray,
    quantiles: tuple[float, ...] = (0.5, 0.95),
    core_only: bool = True,
    gap_policy: str = "hold",
    original_level: int = 2,
) -> ShardState:
    """Run the full per-shard kernel over one contiguous node range.

    This is the unit of work a pool worker executes — and the unit the
    shard benchmark times.  ``reference_w`` is the
    :func:`fleet_reference` series; its length must match the shard's
    tick count.
    """
    ring = SlabRing(ticks_per_batch, spec.n_nodes)
    monitor = ComplianceMonitor(
        run.core_window, required_interval_s=max(run.dt, 1.0)
    )
    covar = RunningCovariance()
    p2 = {q: P2Quantile(q) for q in quantiles}
    pipeline = RecoveryPipeline(
        gap_policy=gap_policy, original_level=original_level
    )
    ticks_seen = 0
    for batch in run.stream_run(
        node_indices=spec.node_indices,
        ticks_per_batch=ticks_per_batch,
        core_only=core_only,
        ring=ring,
    ):
        n_t = batch.n_ticks
        if ticks_seen + n_t > reference_w.size:
            raise ValueError(
                "reference series shorter than the shard's tick stream"
            )
        ref_w = reference_w[ticks_seen : ticks_seen + n_t]
        monitor.observe(batch, fleet_w=ref_w)
        for est in p2.values():
            est.push_batch(batch.watts)
        covar.push_batch(
            batch.watts,
            np.broadcast_to(ref_w[:, None], batch.watts.shape),
        )
        pipeline.observe(batch)
        ticks_seen += n_t
    if ticks_seen != reference_w.size:
        raise ValueError(
            f"shard saw {ticks_seen} ticks but the reference series has "
            f"{reference_w.size}"
        )
    return ShardState(
        spec=spec,
        monitor=monitor,
        covar=covar,
        quantiles=p2,
        recovery=pipeline.state_snapshot(),
        samples_ingested=ticks_seen * spec.n_nodes,
    )


def _shard_worker(payload: tuple) -> ShardState:
    """Pool entry point: unpack one shard task and run its kernel."""
    (
        run,
        spec,
        ticks_per_batch,
        reference_w,
        quantiles,
        core_only,
        gap_policy,
        original_level,
    ) = payload
    return run_shard(
        run,
        spec,
        ticks_per_batch=ticks_per_batch,
        reference_w=reference_w,
        quantiles=quantiles,
        core_only=core_only,
        gap_policy=gap_policy,
        original_level=original_level,
    )


def run_sharded(
    run: SimulatedRun,
    plan: ShardPlan,
    *,
    processes: int = 0,
    quantiles: tuple[float, ...] = (0.5, 0.95),
    core_only: bool = True,
    gap_policy: str = "hold",
    original_level: int = 2,
    reference_w: np.ndarray | None = None,
) -> FleetState:
    """Execute every shard of a plan and reduce to the fleet state.

    ``processes`` is the worker-pool width: 0 (the default) runs every
    shard inline in this process — still through the identical kernel,
    so results are bit-identical either way; ``>= 2`` fans shards over
    a ``fork`` multiprocessing pool (falling back to inline where fork
    is unavailable).  ``reference_w`` lets a caller reuse an already
    computed :func:`fleet_reference` series.
    """
    if plan.n_nodes != run.system.n_nodes:
        raise ValueError(
            f"plan covers {plan.n_nodes} nodes but the run has "
            f"{run.system.n_nodes}"
        )
    if processes < 0:
        raise ValueError("processes must be >= 0")
    if reference_w is None:
        reference_w = fleet_reference(
            run,
            ticks_per_batch=plan.ticks_per_batch,
            core_only=core_only,
        )
    payloads = [
        (
            run,
            spec,
            plan.ticks_per_batch,
            reference_w,
            quantiles,
            core_only,
            gap_policy,
            original_level,
        )
        for spec in plan
    ]
    use_pool = (
        processes >= 2
        and plan.n_shards >= 2
        and "fork" in multiprocessing.get_all_start_methods()
    )
    if use_pool:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(min(processes, plan.n_shards)) as pool:
            states = pool.map(_shard_worker, payloads)
    else:
        states = [_shard_worker(p) for p in payloads]
    return reduce_states(states, plan)


@dataclass
class ShardSessionResult:
    """A finished sharded session: fleet statistics plus provenance."""

    plan: ShardPlan
    monitor_report: MonitorReport
    stopping: StoppingDecision
    quality: QualityReport
    fleet_moments: RunningMoments
    node_moments: RunningMoments
    node_fleet_correlation: float
    quantiles_w: dict[float, float]
    samples_ingested: int
    notes: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        """JSON-friendly rendering of the final state."""
        pooled = self.fleet_moments
        return {
            "n_shards": self.plan.n_shards,
            "plan_key": self.plan.plan_key,
            "samples_ingested": self.samples_ingested,
            "fleet_mean_w": float(np.asarray(pooled.mean)),
            "fleet_std_w": float(np.asarray(pooled.std())),
            "quantiles_w": {
                f"{q:g}": v for q, v in self.quantiles_w.items()
            },
            "node_fleet_correlation": self.node_fleet_correlation,
            "stopping": self.stopping.to_dict(),
            "monitor": self.monitor_report.to_dict(),
            "quality": self.quality.to_dict(),
            "notes": list(self.notes),
        }

    def render_text(self) -> str:
        """Plain-text session summary."""
        lines = [
            f"== sharded session ({self.plan.n_shards} shards, "
            f"{self.plan.n_nodes} nodes) ==",
            f"samples ingested: {self.samples_ingested}",
            f"fleet per-node power: mean "
            f"{float(np.asarray(self.fleet_moments.mean)):.1f} W, "
            f"sd {float(np.asarray(self.fleet_moments.std())):.1f} W",
        ]
        for q, v in self.quantiles_w.items():
            lines.append(f"  p{int(round(q * 100))}: {v:.1f} W")
        lines.append(
            f"node-vs-fleet correlation: {self.node_fleet_correlation:.3f}"
        )
        lines.extend(self.monitor_report.lines())
        d = self.stopping
        verdict = "met" if d.should_stop else "NOT met"
        lam = (
            f"{d.achieved_lambda:.2%}"
            if np.isfinite(d.achieved_lambda)
            else "inf"
        )
        lines.append(
            f"sequential stopping: target {verdict} at n={d.n_observed} "
            f"nodes (achieved lambda {lam})"
        )
        lines.append(
            f"quality: coverage {self.quality.effective_coverage:.1%}, "
            f"effective level L{self.quality.effective_level}"
        )
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)


def sharded_session(
    run: SimulatedRun,
    *,
    n_shards: int = 1,
    ticks_per_batch: int = 60,
    quantiles: tuple[float, ...] = (0.5, 0.95),
    accuracy: float = 0.01,
    confidence: float = 0.95,
    core_only: bool = True,
    processes: int = 0,
    gap_policy: str = "hold",
    original_level: int = 2,
    expected_ticks: int | None = None,
) -> ShardSessionResult:
    """Run a full streaming session through the shard engine.

    The sharded counterpart of
    :func:`~repro.stream.session.stream_session`: identical Eq. 1–5
    stopping mathematics, compliance monitoring and quality labelling,
    evaluated over merged shard state.  The result is **bit-identical
    for any ``n_shards``** — the per-node reductions are exact
    concatenations and every fleet scalar derives from the merged
    vectors by the same deterministic expressions.  The one documented
    exception is the P² quantile set, whose cross-shard merge is
    approximate; sessions with more than one shard carry
    :data:`~repro.stream.estimators.P2Quantile.MERGE_CAVEAT` in
    ``notes``.
    """
    for q in quantiles:
        if not (0.0 < q < 1.0):
            raise ValueError(f"quantiles must be in (0, 1), got {q}")
    plan = plan_shards(
        run.system.n_nodes, n_shards, ticks_per_batch=ticks_per_batch
    )
    fleet = run_sharded(
        run,
        plan,
        processes=processes,
        quantiles=quantiles,
        core_only=core_only,
        gap_policy=gap_policy,
        original_level=original_level,
    )
    # Eq. 1–5 sequential stopping over the merged node means, admitted
    # in node order — deterministic and shard-count independent.
    stopper = SequentialStopper(
        accuracy=accuracy,
        population=run.system.n_nodes,
        confidence=confidence,
        method="t",
    )
    decision = stopper.evaluate()
    for mean_w in np.asarray(fleet.node_moments.mean):
        decision = stopper.update(float(mean_w))
    quality = build_quality_report(
        fleet.recovery,
        expected_ticks=(
            fleet.recovery.ticks_seen
            if expected_ticks is None
            else expected_ticks
        ),
    )
    notes = (
        (P2Quantile.MERGE_CAVEAT,)
        if fleet.quantile_merge_approximate
        else ()
    )
    return ShardSessionResult(
        plan=plan,
        monitor_report=fleet.monitor.report(),
        stopping=decision,
        quality=quality,
        fleet_moments=fleet.fleet_moments(),
        node_moments=fleet.node_moments,
        node_fleet_correlation=float(
            np.mean(np.asarray(fleet.covar.correlation()))
        ),
        quantiles_w={q: est.value for q, est in fleet.quantiles.items()},
        samples_ingested=fleet.samples_ingested,
        notes=notes,
    )
