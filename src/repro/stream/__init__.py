"""Online power-telemetry: single-pass estimators, live compliance,
sequential stopping.

The batch pipeline materialises a full :class:`~repro.traces.synth.SimulatedRun`
and post-processes it; this package answers the same questions *while
the samples arrive*:

* :mod:`repro.stream.estimators` — single-pass Welford moments,
  covariance, min/max and P²-quantile estimators with ``merge()`` for
  per-node → fleet roll-up;
* :mod:`repro.stream.ring` — fixed-capacity sample/time ring buffers
  backing rolling windows;
* :mod:`repro.stream.ingest` — a deterministic tick-driven ingestion
  loop (simulated clock only, bounded-queue backpressure) replaying
  simulated runs or per-node traces as batched samples;
* :mod:`repro.stream.monitor` — live EE HPC WG rule compliance and
  per-node anomaly flags;
* :mod:`repro.stream.stopping` — sequential Eq. 1–5 sample-size logic
  emitting a stop signal once the requested accuracy is met;
* :mod:`repro.stream.session` — the orchestration the ``repro stream``
  CLI subcommand drives.

Everything in this package is a pure function of ``(inputs, seed)``:
time advances only via the simulated tick clock, never the wall clock.
"""

from repro.stream.estimators import (
    P2Quantile,
    RunningCovariance,
    RunningMoments,
)
from repro.stream.ingest import (
    BoundedQueue,
    IngestLoop,
    SampleBatch,
    SimClock,
    replay_run,
    replay_traces,
)
from repro.stream.monitor import ComplianceMonitor, MonitorReport
from repro.stream.ring import RingBuffer, TimeRing
from repro.stream.session import (
    LiveStreamState,
    StreamSessionResult,
    StreamSnapshot,
    stream_session,
)
from repro.stream.stopping import SequentialStopper, StoppingDecision

__all__ = [
    "P2Quantile",
    "RunningCovariance",
    "RunningMoments",
    "BoundedQueue",
    "IngestLoop",
    "SampleBatch",
    "SimClock",
    "replay_run",
    "replay_traces",
    "ComplianceMonitor",
    "MonitorReport",
    "RingBuffer",
    "TimeRing",
    "LiveStreamState",
    "StreamSessionResult",
    "StreamSnapshot",
    "stream_session",
    "SequentialStopper",
    "StoppingDecision",
]
