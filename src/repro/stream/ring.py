"""Fixed-capacity ring buffers backing rolling windows.

Two flavours, both O(capacity) memory with no per-push allocation:

* :class:`RingBuffer` keeps the last ``capacity`` samples — the
  "last k ticks" view.
* :class:`TimeRing` keeps ``(t, value)`` pairs no older than a time
  horizon — the "last 60 simulated seconds" view the live monitor
  reports, independent of sampling cadence.

Timestamps are *simulated* seconds supplied by the caller (see
:class:`repro.stream.ingest.SimClock`); nothing here reads a clock.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RingBuffer", "TimeRing"]


class RingBuffer:
    """Last-``capacity`` samples of a scalar stream."""

    __slots__ = ("_data", "_head", "_size")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._data = np.zeros(capacity, dtype=float)
        self._head = 0  # next write slot
        self._size = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained samples."""
        return int(self._data.size)

    @property
    def full(self) -> bool:
        """Whether the buffer has wrapped at least once."""
        return self._size == self._data.size

    def __len__(self) -> int:
        return self._size

    def push(self, value: float) -> None:
        """Append one sample, evicting the oldest when full."""
        self._data[self._head] = float(value)
        self._head = (self._head + 1) % self._data.size
        if self._size < self._data.size:
            self._size += 1

    def push_batch(self, values) -> None:
        """Append many samples in order."""
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size >= self._data.size:
            # Only the tail survives; lay it out contiguously.
            self._data[:] = arr[-self._data.size:]
            self._head = 0
            self._size = self._data.size
            return
        for v in self._split_for(arr):
            n = v.size
            self._data[self._head:self._head + n] = v
            self._head = (self._head + n) % self._data.size
        self._size = min(self._size + arr.size, self._data.size)

    def _split_for(self, arr: np.ndarray) -> list[np.ndarray]:
        room = self._data.size - self._head
        if arr.size <= room:
            return [arr]
        return [arr[:room], arr[room:]]

    def values(self) -> np.ndarray:
        """Retained samples, oldest first (a fresh array)."""
        if self._size < self._data.size:
            return self._data[: self._size].copy()
        return np.concatenate(
            (self._data[self._head:], self._data[: self._head])
        )

    def mean(self) -> float:
        """Mean of the retained samples."""
        if self._size == 0:
            raise ValueError("empty buffer")
        if self._size < self._data.size:
            return float(self._data[: self._size].mean())
        return float(self._data.mean())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingBuffer(size={self._size}/{self.capacity})"


class TimeRing:
    """Samples within a sliding time horizon.

    Holds ``(t, value)`` pairs with ``t`` within ``horizon_s`` of the
    newest timestamp.  Capacity bounds worst-case memory; when cadence
    outpaces capacity the oldest in-horizon samples are evicted (the
    window degrades gracefully to "last ``capacity`` samples").
    """

    __slots__ = ("_horizon_s", "_times", "_values", "_head", "_size")

    def __init__(self, horizon_s: float, capacity: int = 4096) -> None:
        if horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, got {horizon_s}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._horizon_s = float(horizon_s)
        self._times = np.zeros(capacity, dtype=float)
        self._values = np.zeros(capacity, dtype=float)
        self._head = 0
        self._size = 0

    @property
    def horizon_s(self) -> float:
        """Sliding-window length in simulated seconds."""
        return self._horizon_s

    def __len__(self) -> int:
        return self._size

    def push(self, t_s: float, value: float) -> None:
        """Append a timestamped sample; timestamps must not decrease."""
        t = float(t_s)
        if self._size and t < self._newest_time() - 1e-12:
            raise ValueError(
                f"timestamps must be non-decreasing, got {t} after "
                f"{self._newest_time()}"
            )
        self._times[self._head] = t
        self._values[self._head] = float(value)
        self._head = (self._head + 1) % self._times.size
        if self._size < self._times.size:
            self._size += 1
        self._evict(t)

    def _newest_time(self) -> float:
        return float(self._times[(self._head - 1) % self._times.size])

    def _oldest_index(self) -> int:
        return (self._head - self._size) % self._times.size

    def _evict(self, now_s: float) -> None:
        cutoff = now_s - self._horizon_s
        while self._size > 1:
            idx = self._oldest_index()
            if self._times[idx] >= cutoff - 1e-12:
                break
            self._size -= 1

    def times(self) -> np.ndarray:
        """In-horizon timestamps, oldest first."""
        return self._ordered(self._times)

    def values(self) -> np.ndarray:
        """In-horizon samples, oldest first."""
        return self._ordered(self._values)

    def _ordered(self, data: np.ndarray) -> np.ndarray:
        if self._size == 0:
            return np.empty(0, dtype=float)
        start = self._oldest_index()
        idx = (start + np.arange(self._size)) % data.size
        return data[idx]

    def mean(self) -> float:
        """Mean of the in-horizon samples."""
        if self._size == 0:
            raise ValueError("empty buffer")
        return float(self.values().mean())

    def span_s(self) -> float:
        """Time covered by the retained samples."""
        if self._size == 0:
            return 0.0
        t = self.times()
        return float(t[-1] - t[0])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimeRing(horizon_s={self._horizon_s}, size={self._size})"
        )
