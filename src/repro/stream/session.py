"""End-to-end streaming sessions: replay → estimate → monitor → stop.

:class:`LiveStreamState` is the incremental core: one object holding
every streaming estimator, the compliance monitor and the sequential
stopping boundary, advanced one :class:`~repro.stream.ingest.SampleBatch`
at a time.  Two drivers share it:

* :func:`stream_session` — the batch driver the ``repro stream`` CLI
  subcommand runs: replay a :class:`~repro.traces.synth.SimulatedRun`
  through the bounded-queue ingestion loop into one state.
* :mod:`repro.serve` — the multi-tenant telemetry service, which hosts
  one state per tenant session and feeds it batches POSTed over HTTP.

Because both paths push identical batches through the *same* update
code, a verdict served over the wire is bit-identical to the verdict a
direct :func:`stream_session` call computes — the property the
``tests/serve`` load suite locks.

The session is deterministic: the simulated tick clock is the only
time source, and all estimator state is a pure function of the replayed
samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.stream.estimators import P2Quantile, RunningCovariance, RunningMoments
from repro.stream.ingest import IngestLoop, SampleBatch, replay_run
from repro.stream.monitor import ComplianceMonitor, MonitorReport
from repro.stream.stopping import SequentialStopper, StoppingDecision
from repro.traces.synth import SimulatedRun

__all__ = [
    "StreamSnapshot",
    "StreamSessionResult",
    "LiveStreamState",
    "stream_session",
]


@dataclass(frozen=True)
class StreamSnapshot:
    """One periodic observation of the live stream state."""

    t_s: float
    samples_seen: int
    fleet_mean_w: float
    fleet_std_w: float
    node_cv: float
    quantiles_w: dict[float, float]
    rolling_mean_w: float
    coverage: float
    interval_ok: bool
    legal_level1_window: bool
    n_outliers: int
    achieved_lambda: float
    should_stop: bool

    def to_dict(self) -> dict:
        """JSON-friendly rendering."""
        return {
            "t_s": self.t_s,
            "samples_seen": self.samples_seen,
            "fleet_mean_w": self.fleet_mean_w,
            "fleet_std_w": self.fleet_std_w,
            "node_cv": self.node_cv,
            "quantiles_w": {f"{q:g}": v for q, v in self.quantiles_w.items()},
            "rolling_mean_w": self.rolling_mean_w,
            "coverage": self.coverage,
            "interval_ok": self.interval_ok,
            "legal_level1_window": self.legal_level1_window,
            "n_outliers": self.n_outliers,
            "achieved_lambda": self.achieved_lambda,
            "should_stop": self.should_stop,
        }

    def line(self) -> str:
        """One live status line."""
        qtext = " ".join(
            f"p{int(round(q * 100))}={v:.1f}" for q, v in self.quantiles_w.items()
        )
        lam = (
            "inf"
            if not np.isfinite(self.achieved_lambda)
            else f"{self.achieved_lambda:.2%}"
        )
        flags = []
        if not self.interval_ok:
            flags.append("INTERVAL!")
        if self.n_outliers:
            flags.append(f"outliers={self.n_outliers}")
        if self.should_stop:
            flags.append("STOP")
        return (
            f"t={self.t_s:8.0f}s n={self.samples_seen:9d} "
            f"mean={self.fleet_mean_w:8.1f}W sd={self.fleet_std_w:6.1f}W "
            f"{qtext} cov={self.coverage:6.1%} lambda={lam}"
            + (" [" + " ".join(flags) + "]" if flags else "")
        )


@dataclass
class StreamSessionResult:
    """Everything a finished streaming session produced."""

    snapshots: list[StreamSnapshot]
    monitor_report: MonitorReport
    stopping: StoppingDecision
    fleet_moments: RunningMoments
    node_moments: RunningMoments
    node_fleet_correlation: float
    quantiles_w: dict[float, float]
    queue_stalls: int
    queue_high_watermark: int
    samples_ingested: int
    stopped_at_nodes: int | None = field(default=None)

    def to_dict(self) -> dict:
        """JSON-friendly rendering of the final state."""
        pooled = self.fleet_moments
        return {
            "samples_ingested": self.samples_ingested,
            "fleet_mean_w": float(np.asarray(pooled.mean)),
            "fleet_std_w": float(np.asarray(pooled.std())),
            "fleet_min_w": float(np.asarray(pooled.minimum)),
            "fleet_max_w": float(np.asarray(pooled.maximum)),
            "quantiles_w": {f"{q:g}": v for q, v in self.quantiles_w.items()},
            "node_fleet_correlation": self.node_fleet_correlation,
            "queue_stalls": self.queue_stalls,
            "queue_high_watermark": self.queue_high_watermark,
            "stopped_at_nodes": self.stopped_at_nodes,
            "stopping": self.stopping.to_dict(),
            "monitor": self.monitor_report.to_dict(),
            "snapshots": [s.to_dict() for s in self.snapshots],
        }

    def render_text(self) -> str:
        """Full plain-text session report."""
        lines = [s.line() for s in self.snapshots]
        lines.append("")
        lines.append("== final stream state ==")
        lines.append(
            f"samples ingested: {self.samples_ingested} "
            f"(queue stalls {self.queue_stalls}, "
            f"high-water {self.queue_high_watermark})"
        )
        lines.append(
            f"fleet per-node power: mean "
            f"{float(np.asarray(self.fleet_moments.mean)):.1f} W, "
            f"sd {float(np.asarray(self.fleet_moments.std())):.1f} W, "
            f"range [{float(np.asarray(self.fleet_moments.minimum)):.1f}, "
            f"{float(np.asarray(self.fleet_moments.maximum)):.1f}] W"
        )
        for q, v in self.quantiles_w.items():
            lines.append(f"  p{int(round(q * 100))}: {v:.1f} W")
        lines.append(
            f"node-vs-fleet correlation: {self.node_fleet_correlation:.3f}"
        )
        lines.extend(self.monitor_report.lines())
        d = self.stopping
        verdict = "met" if d.should_stop else "NOT met"
        lines.append(
            f"sequential stopping: target {verdict} at n={d.n_observed} "
            f"nodes (achieved lambda "
            + (
                f"{d.achieved_lambda:.2%}"
                if np.isfinite(d.achieved_lambda)
                else "inf"
            )
            + f", Eq. 5 projection {d.projected_n} nodes)"
        )
        if self.stopped_at_nodes is not None:
            lines.append(
                f"stop signal first fired with {self.stopped_at_nodes} nodes"
            )
        return "\n".join(lines)


class LiveStreamState:
    """Incremental estimator/monitor/stopper state, one batch at a time.

    The single source of truth for "what does the stream look like so
    far": every driver — the batch replay in :func:`stream_session`,
    the per-tenant sessions in :mod:`repro.serve` — pushes its batches
    through :meth:`push` and reads verdicts with :meth:`live_snapshot`
    / :meth:`result`, so identical batch streams always produce
    identical verdicts regardless of how the bytes arrived.

    Parameters
    ----------
    population:
        Fleet size ``N`` for the finite-population correction.
    core_window:
        ``(t0_s, t1_s)`` of the core phase the compliance monitor
        judges coverage against.
    required_interval_s:
        Maximum legal sample spacing (the Level 1/2 cadence rule).
    quantiles:
        Fleet power quantiles tracked by P² estimators.
    accuracy / confidence:
        Sequential stopping target (λ, 1 − α).
    report_every_s:
        Snapshot cadence in simulated seconds.
    """

    def __init__(
        self,
        *,
        population: int,
        core_window: tuple[float, float],
        required_interval_s: float,
        quantiles: tuple[float, ...] = (0.5, 0.95),
        accuracy: float = 0.01,
        confidence: float = 0.95,
        report_every_s: float = 600.0,
    ) -> None:
        if report_every_s <= 0:
            raise ValueError("report_every_s must be positive")
        for q in quantiles:
            if not (0.0 < q < 1.0):
                raise ValueError(f"quantiles must be in (0, 1), got {q}")
        self.monitor = ComplianceMonitor(
            core_window, required_interval_s=required_interval_s
        )
        self.fleet = RunningMoments()
        self.p2 = {q: P2Quantile(q) for q in quantiles}
        self.covar = RunningCovariance()
        self.stopper = SequentialStopper(
            accuracy=accuracy,
            population=population,
            confidence=confidence,
            method="t",
        )
        self.snapshots: list[StreamSnapshot] = []
        self.report_every_s = float(report_every_s)
        self.samples_ingested = 0
        self.batches_ingested = 0
        self._next_report_s: float | None = None
        self._decision = self.stopper.evaluate()
        self._nodes_fed = 0
        self._finalized = False

    # ------------------------------------------------------------------
    @property
    def decision(self) -> StoppingDecision:
        """The latest sequential stopping decision."""
        return self._decision

    @property
    def finalized(self) -> bool:
        """Whether :meth:`finalize` has run (no more pushes allowed)."""
        return self._finalized

    def push(self, batch: SampleBatch) -> None:
        """Ingest one batch: estimators, compliance, stopping."""
        if self._finalized:
            raise ValueError("cannot push into a finalized stream state")
        self.monitor.observe(batch)
        self.fleet.push_batch(batch.watts.ravel())
        for est in self.p2.values():
            est.push_batch(batch.watts)
        self.covar.push_batch(
            batch.watts, np.broadcast_to(
                batch.fleet_means()[:, None], batch.watts.shape
            ),
        )
        self.samples_ingested += batch.n_samples
        self.batches_ingested += 1

        # Sequential stopping: nodes "report in" one at a time as the
        # stream progresses — node k's running mean is admitted once
        # the stream has warmed up past k batches, modelling staggered
        # instrumentation roll-out across the fleet.
        node_means = np.asarray(self.monitor.node_moments.mean)
        admitted = min(
            self._nodes_fed + max(1, batch.n_nodes // 8),
            node_means.size,
        )
        if admitted > self._nodes_fed:
            fresh = node_means[self._nodes_fed:admitted]
            self._decision = self._stopper_feed(fresh)
            self._nodes_fed = admitted

        t_now = batch.t1_s
        if self._next_report_s is None:
            self._next_report_s = batch.t0_s + self.report_every_s
        while t_now >= self._next_report_s - 1e-9:
            self.snapshots.append(self.snapshot_at(t_now))
            self._next_report_s += self.report_every_s

    def _stopper_feed(self, means: np.ndarray) -> StoppingDecision:
        decision = self._decision
        for w in means:
            decision = self.stopper.update(float(w))
        return decision

    def snapshot_at(self, t_s: float) -> StreamSnapshot:
        """Build a snapshot of the current state, stamped ``t_s``."""
        report = self.monitor.report()
        decision = self._decision
        have_sd = self.fleet.count >= 2
        node_means = np.asarray(self.monitor.node_moments.mean)
        mu = float(node_means.mean())
        sd_nodes = (
            float(node_means.std(ddof=1)) if node_means.size > 1 else 0.0
        )
        return StreamSnapshot(
            t_s=float(t_s),
            samples_seen=self.fleet.count,
            fleet_mean_w=float(np.asarray(self.fleet.mean)),
            fleet_std_w=(
                float(np.asarray(self.fleet.std())) if have_sd else 0.0
            ),
            node_cv=(sd_nodes / mu if mu > 0 else 0.0),
            quantiles_w={q: est.value for q, est in self.p2.items()},
            rolling_mean_w=report.rolling_mean_w,
            coverage=report.window_fraction_covered,
            interval_ok=report.interval_ok,
            legal_level1_window=report.legal_level1_window,
            n_outliers=len(report.outlier_nodes),
            achieved_lambda=decision.achieved_lambda,
            should_stop=decision.should_stop,
        )

    def live_snapshot(self) -> StreamSnapshot:
        """A snapshot stamped with the monitor's current stream time.

        Requires at least one ingested batch (an empty stream has no
        moments to snapshot — callers serving live queries should check
        :attr:`samples_ingested` first).
        """
        if self.samples_ingested == 0:
            raise ValueError("cannot snapshot an empty stream")
        return self.snapshot_at(self.monitor.report().t_now_s)

    def finalize(self) -> StoppingDecision:
        """Close the stream: admit any not-yet-reported node means.

        Idempotent; after this :meth:`push` refuses further batches.
        """
        if self._finalized:
            return self._decision
        self._finalized = True
        if self.monitor.samples_seen > 0:
            node_means = np.asarray(self.monitor.node_moments.mean)
            if self._nodes_fed < node_means.size:
                self._decision = self._stopper_feed(
                    node_means[self._nodes_fed:]
                )
                self._nodes_fed = node_means.size
        return self._decision

    def result(
        self,
        *,
        queue_stalls: int = 0,
        queue_high_watermark: int = 0,
        samples_ingested: int | None = None,
    ) -> StreamSessionResult:
        """Assemble the final :class:`StreamSessionResult`.

        Must run after :meth:`finalize`; queue statistics are the
        driver's to report (the replay loop's stalls, or a service
        session's high-water mark).
        """
        if not self._finalized:
            raise ValueError("finalize() the state before result()")
        if self.samples_ingested == 0:
            raise ValueError("cannot summarise an empty stream")
        final_monitor = self.monitor.report()
        snapshots = list(self.snapshots)
        if not snapshots:
            snapshots.append(self.snapshot_at(final_monitor.t_now_s))
        try:
            correlation = float(np.mean(np.asarray(self.covar.correlation())))
        except ValueError:
            # Degenerate stream (a single tick, or constant readings):
            # the correlation is undefined, not zero — surface as NaN.
            correlation = float("nan")
        return StreamSessionResult(
            snapshots=snapshots,
            monitor_report=final_monitor,
            stopping=self._decision,
            fleet_moments=self.fleet,
            node_moments=self.monitor.node_moments,
            node_fleet_correlation=correlation,
            quantiles_w={q: est.value for q, est in self.p2.items()},
            queue_stalls=queue_stalls,
            queue_high_watermark=queue_high_watermark,
            samples_ingested=(
                self.samples_ingested
                if samples_ingested is None
                else samples_ingested
            ),
            stopped_at_nodes=self.stopper.stopped_at,
        )


def stream_session(
    run: SimulatedRun,
    *,
    node_indices: np.ndarray | None = None,
    ticks_per_batch: int = 60,
    quantiles: tuple[float, ...] = (0.5, 0.95),
    accuracy: float = 0.01,
    confidence: float = 0.95,
    report_every_s: float = 600.0,
    queue_capacity: int = 8,
    core_only: bool = True,
) -> StreamSessionResult:
    """Replay a run through the full streaming pipeline.

    Parameters
    ----------
    run:
        The simulated run to stream.
    node_indices:
        Optional measured subset (default: the whole fleet).
    ticks_per_batch:
        Collector flush interval in ticks.
    quantiles:
        Fleet power quantiles tracked by P² estimators.
    accuracy / confidence:
        Sequential stopping target (λ, 1 − α).
    report_every_s:
        Snapshot cadence in simulated seconds.
    queue_capacity:
        Bounded ingest-queue depth (backpressure threshold).
    core_only:
        Stream only the core phase (the methodology's view).
    """
    state = LiveStreamState(
        population=run.system.n_nodes,
        core_window=run.core_window,
        required_interval_s=max(run.dt, 1.0),
        quantiles=quantiles,
        accuracy=accuracy,
        confidence=confidence,
        report_every_s=report_every_s,
    )
    source = replay_run(
        run,
        node_indices=node_indices,
        ticks_per_batch=ticks_per_batch,
        core_only=core_only,
    )
    loop = IngestLoop(
        source, state.push, queue_capacity=queue_capacity
    ).run()
    state.finalize()
    return state.result(
        queue_stalls=loop.stalls,
        queue_high_watermark=loop.queue.high_watermark,
        samples_ingested=loop.samples_ingested,
    )
