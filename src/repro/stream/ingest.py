"""Deterministic tick-driven telemetry ingestion.

Real sites see power as a stream: per-node samples arriving at 1 Hz+
from thousands of nodes, with collectors that buffer, batch and apply
backpressure.  This module reproduces that shape *deterministically*:

* :class:`SimClock` — the only notion of time.  It advances by fixed
  ticks; nothing reads the wall clock, so a replay is a pure function
  of its inputs (the RPX004 invariant).
* :class:`SampleBatch` — a contiguous block of per-node samples, the
  unit the pipeline moves around.
* :func:`replay_run` / :func:`replay_traces` — sources: batched
  per-node samples from a :class:`~repro.traces.synth.SimulatedRun` or
  from aligned per-node :class:`~repro.traces.powertrace.PowerTrace`
  objects.
* :class:`BoundedQueue` + :class:`IngestLoop` — a single-threaded,
  deterministic producer/consumer loop with bounded-queue backpressure:
  when the queue is full the producer stalls (counted) until the
  consumer drains, exactly as a real collector would.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.traces.powertrace import PowerTrace
from repro.traces.synth import SimulatedRun

__all__ = [
    "SimClock",
    "SampleBatch",
    "BoundedQueue",
    "IngestLoop",
    "replay_run",
    "replay_traces",
]


class SimClock:
    """A simulated clock advancing in fixed ticks.

    The streaming subsystem's *only* time source: ``now_s`` is
    ``start_s + tick · dt_s``, so two replays with the same inputs see
    identical timestamps regardless of when or where they run.
    """

    __slots__ = ("_start_s", "_dt_s", "_tick")

    def __init__(self, dt_s: float, start_s: float = 0.0) -> None:
        if dt_s <= 0:
            raise ValueError(f"dt_s must be positive, got {dt_s}")
        self._start_s = float(start_s)
        self._dt_s = float(dt_s)
        self._tick = 0

    @property
    def dt_s(self) -> float:
        """Tick length in simulated seconds."""
        return self._dt_s

    @property
    def tick(self) -> int:
        """Ticks elapsed since the clock started."""
        return self._tick

    @property
    def now_s(self) -> float:
        """Current simulated time."""
        return self._start_s + self._tick * self._dt_s

    def advance(self, ticks: int = 1) -> float:
        """Advance the clock and return the new ``now_s``."""
        if ticks < 0:
            raise ValueError("clock cannot run backwards")
        self._tick += int(ticks)
        return self.now_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now_s={self.now_s}, dt_s={self._dt_s})"


@dataclass(frozen=True)
class SampleBatch:
    """A block of per-node power samples.

    The constructor *normalises*: inputs are coerced to C-contiguous
    float64 (``times``/``watts``) and integer (``node_ids``) arrays,
    copying when the caller hands over a strided or mistyped array, so
    every downstream kernel sees the one layout it is vectorised for
    and never silently falls onto a strided slow path.  The hot path —
    the shard layer's preallocated slabs — uses :meth:`from_columns`,
    which refuses to copy instead.

    Attributes
    ----------
    times:
        Tick timestamps in simulated seconds, shape ``(n_ticks,)``,
        float64.
    watts:
        Per-node readings, shape ``(n_ticks, n_nodes)``, C-contiguous
        float64.
    node_ids:
        Fleet node indices for the columns, shape ``(n_nodes,)``,
        integer.
    """

    times: np.ndarray
    watts: np.ndarray
    node_ids: np.ndarray

    def __post_init__(self) -> None:
        times = np.ascontiguousarray(self.times, dtype=np.float64)
        watts = np.ascontiguousarray(self.watts, dtype=np.float64)
        node_ids = np.asarray(self.node_ids)
        if node_ids.dtype.kind not in "iu":
            raise ValueError(
                f"node_ids must be integers, got dtype {node_ids.dtype}"
            )
        if watts.ndim != 2:
            raise ValueError("watts must be 2-D (n_ticks, n_nodes)")
        if times.shape != (watts.shape[0],):
            raise ValueError("times length must match watts rows")
        if node_ids.shape != (watts.shape[1],):
            raise ValueError("node_ids length must match watts columns")
        # Store the normalised arrays (no-ops when already conforming).
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "watts", watts)
        object.__setattr__(self, "node_ids", node_ids)

    @classmethod
    def from_columns(
        cls,
        times: np.ndarray,
        watts: np.ndarray,
        node_ids: np.ndarray,
    ) -> "SampleBatch":
        """Zero-copy constructor over already-conforming column arrays.

        The shard layer's entry point: the arrays are used as given —
        typically views into a preallocated
        :class:`~repro.shard.slab.Slab` — so a layout violation raises
        instead of silently copying, keeping the hot path allocation-
        free by contract.
        """
        times = np.asarray(times)
        watts = np.asarray(watts)
        if times.dtype != np.float64 or watts.dtype != np.float64:
            raise ValueError(
                "from_columns requires float64 times/watts, got "
                f"{times.dtype}/{watts.dtype}"
            )
        if watts.ndim != 2 or not watts.flags["C_CONTIGUOUS"]:
            raise ValueError(
                "from_columns requires a C-contiguous 2-D watts matrix"
            )
        if not times.flags["C_CONTIGUOUS"]:
            raise ValueError("from_columns requires C-contiguous times")
        return cls(times=times, watts=watts, node_ids=node_ids)

    @property
    def n_ticks(self) -> int:
        """Number of time steps in the batch."""
        return int(self.times.size)

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the batch."""
        return int(self.node_ids.size)

    @property
    def n_samples(self) -> int:
        """Total scalar samples carried."""
        return self.n_ticks * self.n_nodes

    @property
    def t0_s(self) -> float:
        """First tick timestamp."""
        return float(self.times[0])

    @property
    def t1_s(self) -> float:
        """Last tick timestamp."""
        return float(self.times[-1])

    def fleet_means(self) -> np.ndarray:
        """Across-node mean power per tick, shape ``(n_ticks,)``."""
        return self.watts.mean(axis=1)


class BoundedQueue:
    """A FIFO with a hard capacity — the backpressure primitive.

    ``put`` refuses when full (returns ``False``) rather than growing;
    the ingestion loop turns that refusal into a counted producer
    stall.  Single-threaded by design: determinism comes from the loop
    schedule, not from locks.
    """

    __slots__ = ("_items", "_capacity", "_total_accepted", "_high_watermark")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._items: deque = deque()
        self._capacity = int(capacity)
        self._total_accepted = 0
        self._high_watermark = 0

    @property
    def capacity(self) -> int:
        """Maximum queued items."""
        return self._capacity

    @property
    def total_accepted(self) -> int:
        """Items ever accepted by :meth:`put`."""
        return self._total_accepted

    @property
    def high_watermark(self) -> int:
        """Deepest the queue has ever been."""
        return self._high_watermark

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        """Whether :meth:`put` would currently refuse."""
        return len(self._items) >= self._capacity

    def put(self, item) -> bool:
        """Enqueue; returns ``False`` (refusing the item) when full."""
        if self.full:
            return False
        self._items.append(item)
        self._total_accepted += 1
        self._high_watermark = max(self._high_watermark, len(self._items))
        return True

    def get(self):
        """Dequeue the oldest item."""
        if not self._items:
            raise IndexError("queue is empty")
        return self._items.popleft()


class IngestLoop:
    """Deterministic producer/consumer schedule with backpressure.

    Each iteration the producer offers the next batch to the bounded
    queue; on refusal (queue full) the consumer drains one batch and
    the offer is retried — a cooperative, single-threaded rendering of
    collector backpressure.  After the source is exhausted the queue is
    drained to empty.  The schedule is a pure function of the source,
    so replays are reproducible.
    """

    def __init__(
        self,
        source: Iterable[SampleBatch],
        consumer: Callable[[SampleBatch], None],
        *,
        queue_capacity: int = 8,
        drain_per_step: int = 1,
    ) -> None:
        if drain_per_step < 1:
            raise ValueError("drain_per_step must be >= 1")
        self._source = iter(source)
        self._consumer = consumer
        self.queue = BoundedQueue(queue_capacity)
        self._drain_per_step = int(drain_per_step)
        self.stalls = 0
        self.batches_ingested = 0
        self.samples_ingested = 0

    def _drain(self, max_items: int) -> None:
        for _ in range(max_items):
            if not len(self.queue):
                return
            batch = self.queue.get()
            self._consumer(batch)
            self.batches_ingested += 1
            self.samples_ingested += batch.n_samples

    def run(self) -> "IngestLoop":
        """Drive the loop until the source and queue are empty."""
        for batch in self._source:
            while not self.queue.put(batch):
                self.stalls += 1
                self._drain(1)
            self._drain(self._drain_per_step)
        self._drain(len(self.queue))
        return self


def replay_run(
    run: SimulatedRun,
    *,
    node_indices: np.ndarray | None = None,
    ticks_per_batch: int = 60,
    core_only: bool = True,
) -> Iterator[SampleBatch]:
    """Replay a simulated run as batched per-node samples.

    Parameters
    ----------
    run:
        The batch simulation to stream.
    node_indices:
        Fleet subset to stream (default: every node) — the measured
        subset of a Level 1/2 campaign.
    ticks_per_batch:
        Ticks per emitted :class:`SampleBatch` (the collector's flush
        interval, in samples).
    core_only:
        Restrict the replay to the core phase — what a methodology
        measurement would ingest.  ``False`` streams the full run.
    """
    if ticks_per_batch < 1:
        raise ValueError("ticks_per_batch must be >= 1")
    if core_only:
        t0_s, t1_s = run.core_window
        times, watts = run.node_power_matrix(t0_s, t1_s, node_indices)
    else:
        times, watts = run.node_power_matrix(node_indices=node_indices)
    if node_indices is None:
        ids = np.arange(run.system.n_nodes, dtype=np.int64)
    else:
        ids = np.asarray(node_indices, dtype=np.int64).ravel()
    for lo in range(0, times.size, ticks_per_batch):
        hi = min(lo + ticks_per_batch, times.size)
        yield SampleBatch(
            times=times[lo:hi], watts=watts[lo:hi], node_ids=ids
        )


def replay_traces(
    traces: list[PowerTrace],
    *,
    node_ids: np.ndarray | None = None,
    ticks_per_batch: int = 60,
) -> Iterator[SampleBatch]:
    """Replay per-node traces (one per node) as batched samples.

    All traces must share identical timestamps — run
    :func:`repro.traces.ops.align` first if they do not.  This is the
    live-meter entry point: anything that can be expressed as per-node
    :class:`~repro.traces.powertrace.PowerTrace` objects can be
    streamed through the same pipeline as a simulation.
    """
    if not traces:
        raise ValueError("need at least one trace")
    if ticks_per_batch < 1:
        raise ValueError("ticks_per_batch must be >= 1")
    base = traces[0]
    for i, tr in enumerate(traces):
        if not np.array_equal(tr.times, base.times):
            raise ValueError(
                f"trace {i} timestamps differ from trace 0; align first"
            )
    if node_ids is None:
        ids = np.arange(len(traces), dtype=np.int64)
    else:
        ids = np.asarray(node_ids, dtype=np.int64).ravel()
        if ids.size != len(traces):
            raise ValueError("node_ids length must match trace count")
    watts = np.stack([tr.watts for tr in traces], axis=1)
    times = base.times
    for lo in range(0, times.size, ticks_per_batch):
        hi = min(lo + ticks_per_batch, times.size)
        yield SampleBatch(
            times=times[lo:hi], watts=watts[lo:hi], node_ids=ids
        )
