"""Live EE HPC WG rule compliance and per-node anomaly flags.

The batch pipeline judges a measurement after the fact; the monitor
answers the same questions per batch, while measuring:

* **sampling-interval adequacy** — Table 1 aspect 1a requires at least
  one reading per second at Levels 1/2; the monitor tracks the worst
  observed tick spacing.
* **window tracking** — the span covered so far, its fraction of the
  core phase (the post-2015 full-core rule wants 1.0), and whether the
  covered span would already constitute a *legal* pre-2015 Level 1
  window (:mod:`repro.core.windows` rules evaluated live).
* **per-node anomalies** — nodes whose running mean sits far from the
  fleet's node-to-node distribution (z-score), and nodes with transient
  excursions — the Fig. 4 L-CSC failure mode, where a fan-speed policy
  change moved one node's power by >100 W and skewed the fleet.
  Excursions are judged on the node's *power ratio to the
  contemporaneous fleet mean* — a scale-free statistic that is constant
  under machine-wide ramps (HPL tail-off, DVFS steps) but jumps when
  one node privately steps, so only genuinely private deviations flag.

All state is streaming: per-node Welford moments (vectorised across
the fleet), a rolling time-ring of fleet power, and scalar extremes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.windows import (
    LEVEL1_MIN_SECONDS,
    MIDDLE_80,
    MeasurementWindow,
    is_legal_level1_window,
)
from repro.stream.estimators import RunningMoments
from repro.stream.ingest import SampleBatch
from repro.stream.ring import TimeRing

__all__ = ["NodeFlags", "MonitorReport", "ComplianceMonitor"]


@dataclass(frozen=True)
class NodeFlags:
    """Anomaly state of one node at report time."""

    node_id: int
    z_score: float
    flagged_outlier: bool
    excursion_count: int


@dataclass(frozen=True)
class MonitorReport:
    """Snapshot of the monitor's verdicts.

    ``window_fraction_covered`` is measured-span ∩ core-phase over the
    core duration; ``full_core_compliant`` is the post-2015 rule,
    ``legal_level1_window`` the pre-2015 one evaluated on the span
    covered so far.

    ``insufficient_data`` is the degenerate-window flag: when no
    samples have been observed (an empty stream, or total dropout)
    there is nothing to judge, so every compliance field is pinned
    conservative (not-compliant) and this flag tells the reader the
    report is a *non-verdict*, not a failure.

    ``notes`` carries provenance caveats that are not verdicts — e.g.
    :data:`~repro.stream.estimators.P2Quantile.MERGE_CAVEAT` when
    quantile summaries were merged approximately, or when the samples
    crossed a lossy wire codec.

    ``correlated`` is the rendered verdict of an attached
    correlated-excursion detector bundle (see
    :class:`repro.faults.detectors.CorrelatedDetectors`); ``None`` —
    and absent from :meth:`to_dict` — when no detectors are attached,
    so reports from detector-less monitors are byte-identical to
    pre-pathology ones.
    """

    t_now_s: float
    samples_seen: int
    nodes_seen: int
    interval_ok: bool
    worst_interval_s: float
    required_interval_s: float
    window_fraction_covered: float
    full_core_compliant: bool
    legal_level1_window: bool
    rolling_mean_w: float
    rolling_span_s: float
    outlier_nodes: tuple[NodeFlags, ...] = field(default_factory=tuple)
    excursion_nodes: tuple[NodeFlags, ...] = field(default_factory=tuple)
    insufficient_data: bool = False
    notes: tuple[str, ...] = ()
    correlated: dict | None = None

    def to_dict(self) -> dict:
        """JSON-friendly rendering."""
        out = {
            "t_now_s": self.t_now_s,
            "insufficient_data": self.insufficient_data,
            "notes": list(self.notes),
            "samples_seen": self.samples_seen,
            "nodes_seen": self.nodes_seen,
            "interval_ok": self.interval_ok,
            "worst_interval_s": self.worst_interval_s,
            "required_interval_s": self.required_interval_s,
            "window_fraction_covered": self.window_fraction_covered,
            "full_core_compliant": self.full_core_compliant,
            "legal_level1_window": self.legal_level1_window,
            "rolling_mean_w": self.rolling_mean_w,
            "rolling_span_s": self.rolling_span_s,
            "outlier_nodes": [
                {"node_id": f.node_id, "z_score": f.z_score,
                 "excursion_count": f.excursion_count}
                for f in self.outlier_nodes
            ],
            "excursion_nodes": [
                {"node_id": f.node_id, "z_score": f.z_score,
                 "excursion_count": f.excursion_count}
                for f in self.excursion_nodes
            ],
        }
        if self.correlated is not None:
            out["correlated"] = self.correlated
        return out

    def lines(self) -> list[str]:
        """Human-readable verdict lines."""
        if self.insufficient_data:
            return [
                "insufficient data: no samples observed — "
                "no compliance verdict"
            ]
        ok = "ok" if self.interval_ok else "VIOLATION"
        out = [
            f"sampling interval: worst {self.worst_interval_s:.2f} s vs "
            f"required {self.required_interval_s:.2f} s [{ok}]",
            f"core-phase coverage: {self.window_fraction_covered:.1%} "
            f"({'full-core compliant' if self.full_core_compliant else 'partial'})",
            f"pre-2015 L1 window legal now: "
            f"{'yes' if self.legal_level1_window else 'no'}",
            f"rolling fleet mean ({self.rolling_span_s:.0f} s): "
            f"{self.rolling_mean_w:.1f} W/node",
        ]
        if self.outlier_nodes:
            worst = max(self.outlier_nodes, key=lambda f: abs(f.z_score))
            out.append(
                f"outlier nodes: {len(self.outlier_nodes)} "
                f"(worst node {worst.node_id} at z={worst.z_score:+.1f})"
            )
        if self.excursion_nodes:
            out.append(
                "excursion nodes: "
                + ", ".join(str(f.node_id) for f in self.excursion_nodes)
            )
        out.extend(f"note: {note}" for note in self.notes)
        if self.correlated is not None:
            sus = self.correlated.get("any_suspected", False)
            out.append(
                "correlated pathology: "
                + ("SUSPECTED" if sus else "none detected")
            )
        return out


class ComplianceMonitor:
    """Streaming methodology compliance plus fleet anomaly detection.

    Parameters
    ----------
    core_window_s:
        Absolute ``(start, end)`` bounds of the core phase the stream
        measures against.
    required_interval_s:
        Maximum legal sample spacing (1 s for Levels 1/2).
    outlier_z:
        |z| threshold on a node's running mean vs the fleet's
        node-to-node distribution.
    excursion_z:
        Threshold, in units of the node's running σ of its power ratio
        to the fleet, for a transient excursion (Fig. 4-style step
        changes).  The σ is floored at ``excursion_ratio_floor`` so
        near-identical nodes do not flag on harmless shape noise.
    excursion_ratio_floor:
        Minimum σ (in ratio units) used in the excursion test; 0.005
        means a private step must move the node by at least
        ``excursion_z × 0.5%`` of fleet power to flag.
    min_samples_for_flags:
        Warm-up sample count before anomaly flags are emitted — early
        means are too noisy to accuse nodes with.
    rolling_horizon_s:
        Length of the rolling fleet-power window reported live.
    correlated_detectors:
        Optional correlated-excursion detector bundle — any object with
        ``observe(batch)`` and ``verdict()`` (duck-typed so the stream
        layer stays import-decoupled from :mod:`repro.faults`;
        :class:`repro.faults.detectors.CorrelatedDetectors` is the
        intended plug-in).  When attached, every observed batch is also
        fed to the detectors and :meth:`report` carries their rendered
        verdict in ``correlated``.
    """

    def __init__(
        self,
        core_window_s: tuple[float, float],
        *,
        required_interval_s: float = 1.0,
        outlier_z: float = 4.0,
        excursion_z: float = 6.0,
        excursion_ratio_floor: float = 0.005,
        min_samples_for_flags: int = 30,
        rolling_horizon_s: float = 60.0,
        correlated_detectors=None,
    ) -> None:
        c0, c1 = float(core_window_s[0]), float(core_window_s[1])
        if c1 <= c0:
            raise ValueError("core window must have positive duration")
        if required_interval_s <= 0:
            raise ValueError("required_interval_s must be positive")
        if outlier_z <= 0 or excursion_z <= 0:
            raise ValueError("z thresholds must be positive")
        if excursion_ratio_floor < 0:
            raise ValueError("excursion_ratio_floor must be >= 0")
        self._core = (c0, c1)
        self._required_interval_s = float(required_interval_s)
        self._outlier_z = float(outlier_z)
        self._excursion_z = float(excursion_z)
        self._ratio_floor = float(excursion_ratio_floor)
        self._min_flag_samples = int(min_samples_for_flags)
        if correlated_detectors is not None and not (
            callable(getattr(correlated_detectors, "observe", None))
            and callable(getattr(correlated_detectors, "verdict", None))
        ):
            raise TypeError(
                "correlated_detectors must provide observe(batch) and "
                "verdict()"
            )
        self._correlated = correlated_detectors
        self.node_moments = RunningMoments()
        self._ratio_moments = RunningMoments()
        self._rolling = TimeRing(rolling_horizon_s)
        self._node_ids: np.ndarray | None = None
        self._excursions: np.ndarray | None = None
        self._span: tuple[float, float] | None = None
        self._worst_interval_s = 0.0
        self._last_t_s: float | None = None
        self._samples = 0

    # ------------------------------------------------------------------
    @property
    def samples_seen(self) -> int:
        """Scalar samples observed so far."""
        return self._samples

    def observe(
        self, batch: SampleBatch, fleet_w: np.ndarray | None = None
    ) -> None:
        """Fold one batch into the monitor's state.

        ``fleet_w`` optionally supplies the per-tick fleet mean power
        to judge ratios (and feed the rolling window) against; the
        default is the batch's own across-node mean.  A shard-local
        monitor — one observing only a node slice of the fleet — must
        pass the *global* reference series here, so its excursion and
        rolling state is exactly the column slice of what a full-fleet
        monitor would hold (the :meth:`merge_shards` contract).
        """
        if batch.n_ticks == 0:
            return  # an empty flush carries nothing to judge
        if self._node_ids is None:
            self._node_ids = batch.node_ids.copy()
            self._excursions = np.zeros(batch.n_nodes, dtype=np.int64)
        elif not np.array_equal(self._node_ids, batch.node_ids):
            raise ValueError("batch node set changed mid-stream")

        # Sampling cadence: spacing within the batch and across the gap
        # from the previous batch.
        times = batch.times
        if self._last_t_s is not None:
            gap = float(times[0] - self._last_t_s)
            self._worst_interval_s = max(self._worst_interval_s, gap)
        if times.size >= 2:
            self._worst_interval_s = max(
                self._worst_interval_s, float(np.diff(times).max())
            )
        self._last_t_s = float(times[-1])

        # Span tracking.
        if self._span is None:
            self._span = (float(times[0]), float(times[-1]))
        else:
            self._span = (self._span[0], float(times[-1]))

        # Excursions are judged on each node's power *ratio* to the
        # fleet at the same tick (scale-free, so common-mode ramps
        # cancel), against the node's ratio history *before* this batch
        # folds in — a step change must not mask itself.
        if fleet_w is None:
            fleet_w = batch.fleet_means()
        else:
            fleet_w = np.asarray(fleet_w, dtype=np.float64)
            if fleet_w.shape != (batch.n_ticks,):
                raise ValueError(
                    "fleet_w must carry one reference mean per tick"
                )
        with np.errstate(invalid="ignore", divide="ignore"):
            ratios = np.where(
                fleet_w[:, None] > 0,
                batch.watts / fleet_w[:, None],
                1.0,
            )
        if self._ratio_moments.count >= max(self._min_flag_samples, 2):
            mean = np.asarray(self._ratio_moments.mean)
            sd = np.maximum(
                np.asarray(self._ratio_moments.std()), self._ratio_floor
            )
            dev = np.abs(ratios - mean) / sd
            self._excursions += (dev > self._excursion_z).sum(axis=0)

        self.node_moments.push_batch(batch.watts)
        self._ratio_moments.push_batch(ratios)
        for t_s, ref_w in zip(times, fleet_w):
            self._rolling.push(float(t_s), float(ref_w))
        self._samples += batch.n_samples
        if self._correlated is not None:
            self._correlated.observe(batch)

    @classmethod
    def merge_shards(
        cls, monitors: list["ComplianceMonitor"]
    ) -> "ComplianceMonitor":
        """Reassemble node-partitioned shard monitors (exact).

        Each input observed a disjoint, contiguous node slice of the
        same tick stream, with :meth:`observe` given the global fleet
        reference.  All per-node state (moments, ratio moments,
        excursion counts) is then column-independent, so the fleet
        monitor is the node-ordered concatenation of the shard arrays —
        bit-identical to a single monitor over the whole fleet, for
        any shard count.  Scalar stream state (span, worst interval,
        rolling window) is identical in every shard by construction
        and is validated before being adopted from the first.
        """
        if not monitors:
            raise ValueError("merge_shards needs at least one monitor")
        for i, m in enumerate(monitors):
            if m._correlated is not None:
                raise ValueError(
                    f"shard monitor {i} carries correlated detectors; "
                    "their fleet-series state is not column-separable, "
                    "so sharded monitors cannot be merged exactly — "
                    "attach the detectors to the merged fleet stream "
                    "instead"
                )
        first = monitors[0]
        for i, m in enumerate(monitors):
            if m._node_ids is None:
                raise ValueError(f"shard monitor {i} saw no samples")
            if m._core != first._core:
                raise ValueError("shard monitors disagree on core window")
            if m._span != first._span or m._last_t_s != first._last_t_s:
                raise ValueError(
                    f"shard monitor {i} covered a different tick span; "
                    "shards must replay the same stream"
                )
        out = cls(
            first._core,
            required_interval_s=first._required_interval_s,
            outlier_z=first._outlier_z,
            excursion_z=first._excursion_z,
            excursion_ratio_floor=first._ratio_floor,
            min_samples_for_flags=first._min_flag_samples,
        )
        out.node_moments = RunningMoments.concat(
            [m.node_moments for m in monitors]
        )
        out._ratio_moments = RunningMoments.concat(
            [m._ratio_moments for m in monitors]
        )
        out._node_ids = np.concatenate([m._node_ids for m in monitors])
        out._excursions = np.concatenate([m._excursions for m in monitors])
        out._span = first._span
        out._worst_interval_s = max(m._worst_interval_s for m in monitors)
        out._last_t_s = first._last_t_s
        out._samples = sum(m._samples for m in monitors)
        out._rolling = first._rolling
        return out

    # ------------------------------------------------------------------
    def _coverage(self) -> float:
        if self._span is None:
            return 0.0
        c0, c1 = self._core
        lo = max(self._span[0], c0)
        hi = min(self._span[1], c1)
        return max(hi - lo, 0.0) / (c1 - c0)

    def _legal_level1_now(self) -> bool:
        if self._span is None:
            return False
        c0, c1 = self._core
        core_s = c1 - c0
        f0 = (self._span[0] - c0) / core_s
        f1 = (self._span[1] - c0) / core_s
        lo, hi = MIDDLE_80
        f0c, f1c = max(f0, lo), min(f1, hi)
        if f1c - f0c < LEVEL1_MIN_SECONDS / core_s:
            return False
        return is_legal_level1_window(MeasurementWindow(f0c, f1c), core_s)

    def node_flags(self) -> list[NodeFlags]:
        """Current per-node anomaly state (post warm-up; else empty)."""
        if (
            self._node_ids is None
            or self.node_moments.count < max(self._min_flag_samples, 2)
        ):
            return []
        means = np.asarray(self.node_moments.mean)
        fleet_mu = float(means.mean())
        fleet_sd = float(means.std(ddof=1)) if means.size > 1 else 0.0
        if fleet_sd > 0:
            z = (means - fleet_mu) / fleet_sd
        else:
            z = np.zeros_like(means)
        return [
            NodeFlags(
                node_id=int(nid),
                z_score=float(zi),
                flagged_outlier=bool(abs(zi) > self._outlier_z),
                excursion_count=int(exc),
            )
            for nid, zi, exc in zip(self._node_ids, z, self._excursions)
        ]

    def report(self) -> MonitorReport:
        """Render the current verdicts.

        With zero observed samples there is no basis for a verdict:
        the report comes back with ``insufficient_data=True`` and every
        compliance field conservative instead of vacuously passing
        (an all-dropout window must not read as "interval ok").
        """
        if self._samples == 0:
            return MonitorReport(
                t_now_s=0.0,
                samples_seen=0,
                nodes_seen=0,
                interval_ok=False,
                worst_interval_s=float("inf"),
                required_interval_s=self._required_interval_s,
                window_fraction_covered=0.0,
                full_core_compliant=False,
                legal_level1_window=False,
                rolling_mean_w=0.0,
                rolling_span_s=0.0,
                insufficient_data=True,
            )
        flags = self.node_flags()
        coverage = self._coverage()
        rolling_ok = len(self._rolling) > 0
        worst = (
            self._worst_interval_s
            if self._worst_interval_s > 0
            else self._required_interval_s
        )
        return MonitorReport(
            t_now_s=(self._last_t_s if self._last_t_s is not None else 0.0),
            samples_seen=self._samples,
            nodes_seen=(0 if self._node_ids is None else self._node_ids.size),
            interval_ok=bool(worst <= self._required_interval_s + 1e-9),
            worst_interval_s=float(worst),
            required_interval_s=self._required_interval_s,
            window_fraction_covered=float(coverage),
            full_core_compliant=bool(coverage >= 1.0 - 1e-9),
            legal_level1_window=bool(self._legal_level1_now()),
            rolling_mean_w=(self._rolling.mean() if rolling_ok else 0.0),
            rolling_span_s=self._rolling.span_s(),
            outlier_nodes=tuple(f for f in flags if f.flagged_outlier),
            excursion_nodes=tuple(
                f for f in flags if f.excursion_count > 0
            ),
            correlated=(
                None
                if self._correlated is None
                else self._correlated.verdict().to_dict()
            ),
        )
