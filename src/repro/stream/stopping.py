"""Sequential sample-size decisions (paper Eqs. 1–5, evaluated online).

The batch rule sizes a subset up front from an assumed σ/μ
(:mod:`repro.core.sampling`).  Streaming inverts the workflow: nodes
come online one by one, their time-averaged powers accumulate, and the
site wants a *stop signal* — "your subset now supports the requested
accuracy at the requested confidence" — the moment it becomes true.

:class:`SequentialStopper` evaluates the Eq. 1 t-based confidence
interval with the finite-population correction after every update and
stops once the relative half-width reaches the target λ.  With a known
coefficient of variation and the z-quantile (``method="z"``,
``cv_override=...``) the stopping boundary reduces *exactly* to the
Eq. 5 rule, so the sequential procedure reproduces Table 5's node
counts cell for cell — the cross-check
:mod:`repro.experiments.ext_streaming` runs.

A sequential caveat the docstring must carry: repeatedly testing a 95%
interval and stopping at the first success is an optional-stopping
procedure, so realised coverage at the stopping time is slightly below
nominal.  The paper's two-step pilot plan has the same character; for
site practice the t-quantile's conservatism at small ``n`` is the
compensating margin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.confidence import (
    ConfidenceInterval,
    finite_population_correction,
    t_quantile,
    z_quantile,
)
from repro.core.sampling import recommend_sample_size
from repro.stream.estimators import RunningMoments

__all__ = ["StoppingDecision", "SequentialStopper"]


@dataclass(frozen=True)
class StoppingDecision:
    """Outcome of one sequential evaluation.

    Attributes
    ----------
    should_stop:
        Whether the accuracy target is met at this update.
    n_observed:
        Nodes contributing measurements so far.
    achieved_lambda:
        Relative CI half-width at this update (``inf`` before the
        minimum node count).
    projected_n:
        Eq. 5 projection of the total nodes needed, using the current
        σ/μ estimate (the live re-plan a site acts on).
    interval:
        The Eq. 1 interval itself (``None`` before two nodes).
    """

    should_stop: bool
    n_observed: int
    achieved_lambda: float
    projected_n: int
    interval: ConfidenceInterval | None

    def to_dict(self) -> dict:
        """JSON-friendly rendering."""
        return {
            "should_stop": self.should_stop,
            "n_observed": self.n_observed,
            "achieved_lambda": self.achieved_lambda,
            "projected_n": self.projected_n,
            "mean_w": None if self.interval is None else self.interval.mean,
            "half_width_w": (
                None if self.interval is None else self.interval.half_width
            ),
        }


class SequentialStopper:
    """Stop a node-sampling campaign once Eq. 1–5 accuracy is reached.

    Parameters
    ----------
    accuracy:
        Target relative half-width λ (the paper's ±1% is 0.01).
    population:
        Fleet size ``N`` for the finite-population correction.
    confidence:
        Nominal CI coverage (default 95%).
    method:
        ``"t"`` (Eq. 1 — the honest small-sample choice) or ``"z"``
        (Eq. 2 — the large-``n`` approximation Table 5 is built from).
    cv_override:
        Evaluate the boundary at this fixed σ/μ instead of the sample
        estimate.  With ``method="z"`` this makes the stopping time a
        deterministic function of ``n`` — exactly Eq. 5.
    min_nodes:
        Never stop before this many nodes (2 is the algebraic floor; 4
        keeps the t-quantile out of its wildest regime).
    """

    def __init__(
        self,
        *,
        accuracy: float,
        population: int,
        confidence: float = 0.95,
        method: str = "t",
        cv_override: float | None = None,
        min_nodes: int = 4,
    ) -> None:
        if accuracy <= 0:
            raise ValueError(f"accuracy must be positive, got {accuracy}")
        if population < 2:
            raise ValueError("population must be >= 2")
        if method not in ("t", "z"):
            raise ValueError(f"method must be 't' or 'z', got {method!r}")
        if cv_override is not None and cv_override <= 0:
            raise ValueError("cv_override must be positive")
        if min_nodes < 2:
            raise ValueError("min_nodes must be >= 2")
        self.accuracy = float(accuracy)
        self.population = int(population)
        self.confidence = float(confidence)
        self.method = method
        self.cv_override = cv_override
        self.min_nodes = int(min_nodes)
        self.node_means = RunningMoments()
        self._stopped_at: int | None = None

    # ------------------------------------------------------------------
    @property
    def n_observed(self) -> int:
        """Nodes contributing so far."""
        return self.node_means.count

    @property
    def stopped_at(self) -> int | None:
        """Node count at the first stop signal (``None`` if not yet)."""
        return self._stopped_at

    def update(self, node_mean_watts: float) -> StoppingDecision:
        """Add one node's time-averaged power and re-evaluate."""
        w = float(node_mean_watts)
        if not np.isfinite(w) or w < 0:
            raise ValueError(
                f"node mean power must be finite and >= 0, got {w}"
            )
        if self.n_observed >= self.population:
            raise ValueError("more node measurements than the population")
        self.node_means.push(w)
        return self.evaluate()

    def update_many(self, node_mean_watts) -> StoppingDecision:
        """Add several nodes' means; returns the final decision."""
        arr = np.asarray(node_mean_watts, dtype=float).ravel()
        decision = None
        for w in arr:
            decision = self.update(float(w))
        if decision is None:
            decision = self.evaluate()
        return decision

    def evaluate(self) -> StoppingDecision:
        """Evaluate the boundary at the current state (no new data)."""
        n = self.n_observed
        if n < 2:
            return StoppingDecision(
                should_stop=False,
                n_observed=n,
                achieved_lambda=float("inf"),
                projected_n=self.population,
                interval=None,
            )
        mu = float(np.asarray(self.node_means.mean))
        sd = float(np.asarray(self.node_means.std()))
        if mu <= 0:
            raise ValueError("mean power must be positive to assess accuracy")
        cv = self.cv_override if self.cv_override is not None else sd / mu
        if self.method == "t":
            q = t_quantile(self.confidence, n - 1)
        else:
            q = z_quantile(self.confidence)
        fpc = finite_population_correction(n, self.population)
        achieved = q * cv / np.sqrt(n) * fpc
        interval = ConfidenceInterval(
            mean=mu,
            half_width=float(achieved * mu),
            confidence=self.confidence,
            method=self.method,
        )
        if cv > 0:
            projected = recommend_sample_size(
                self.population, cv, self.accuracy, self.confidence
            ).n
        else:
            projected = self.min_nodes
        stop = bool(
            n >= self.min_nodes and achieved <= self.accuracy + 1e-12
        )
        if stop and self._stopped_at is None:
            self._stopped_at = n
        return StoppingDecision(
            should_stop=stop,
            n_observed=n,
            achieved_lambda=float(achieved),
            projected_n=int(projected),
            interval=interval,
        )

    def scan(self, node_mean_watts) -> int:
        """Feed node means in order; return the stopping node count.

        Raises if the target is never reached — the caller's fleet was
        too small for the requested accuracy at this σ/μ.
        """
        arr = np.asarray(node_mean_watts, dtype=float).ravel()
        for w in arr:
            decision = self.update(float(w))
            if decision.should_stop:
                return decision.n_observed
        raise ValueError(
            f"accuracy {self.accuracy:.3%} not reached after "
            f"{self.n_observed} of {self.population} nodes"
        )
