"""Single-pass streaming estimators.

The batch layer computes fleet statistics from fully materialised
arrays (:mod:`repro.analysis.descriptive`); these estimators produce
the same numbers from a stream of samples in O(1) memory per tracked
quantity:

* :class:`RunningMoments` — Welford/Chan mean, variance, min and max.
  State may be scalar or a fixed-shape vector (one component per node),
  so a whole fleet's per-node moments are updated in one vectorised
  call.  ``merge`` (two partial streams) and ``pooled`` (per-node →
  fleet roll-up) are *exact*: they give bit-for-bit the same class of
  result as a single pass over the concatenated stream, up to float
  rounding.
* :class:`RunningCovariance` — single-pass co-moment with the same
  exact ``merge``.
* :class:`P2Quantile` — the Jain–Chlamtac P² marker estimator: a fixed
  five-marker summary of one quantile.  Its ``merge`` is a documented
  *approximation* (count-weighted marker interpolation); the exact
  roll-ups above are the ones campaign arithmetic relies on.

No estimator here ever reads a clock or an RNG — push order and values
fully determine the state.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["RunningMoments", "RunningCovariance", "P2Quantile"]


def _as_observation(x) -> np.ndarray:
    arr = np.asarray(x, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError("observation contains non-finite values")
    return arr


def _axis0_sum(xs: np.ndarray) -> np.ndarray:
    """Row-sequential sum over the observation axis of a matrix.

    ``ndarray.sum(axis=0)`` takes numpy's pairwise-summation path when
    the reduction stride happens to be contiguous (a single-column
    matrix) and a row-sequential path otherwise — so the *same column
    of samples* would accumulate with different roundings depending on
    how many columns ride along in the batch.  Summing rows explicitly
    pins the sequential order for every width, which is what makes a
    one-node shard's estimator state bit-identical to that node's
    column inside any wider batch (the shard layer's contract).
    """
    total = np.array(xs[0], dtype=np.float64, copy=True)
    for k in range(1, xs.shape[0]):
        total += xs[k]
    return total


class RunningMoments:
    """Welford mean/variance with streaming min/max.

    Each :meth:`push` adds one observation — a scalar, or a vector whose
    shape is fixed at the first push (component ``i`` tracks node ``i``).
    :meth:`push_batch` adds many observations at once using the exact
    batch (Chan) update.
    """

    __slots__ = ("_count", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._count = 0
        self._mean: np.ndarray | None = None
        self._m2: np.ndarray | None = None
        self._min: np.ndarray | None = None
        self._max: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of observations pushed (per component)."""
        return self._count

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of one observation (``()`` for a scalar stream)."""
        if self._mean is None:
            raise ValueError("no observations yet")
        return self._mean.shape

    @property
    def mean(self) -> np.ndarray | float:
        """Running arithmetic mean."""
        self._require_data()
        return self._unwrap(self._mean)

    @property
    def minimum(self) -> np.ndarray | float:
        """Smallest observation seen."""
        self._require_data()
        return self._unwrap(self._min)

    @property
    def maximum(self) -> np.ndarray | float:
        """Largest observation seen."""
        self._require_data()
        return self._unwrap(self._max)

    def variance(self, ddof: int = 1) -> np.ndarray | float:
        """Running variance (sample variance by default)."""
        self._require_data()
        if self._count <= ddof:
            raise ValueError(
                f"need more than {ddof} observations for ddof={ddof}"
            )
        return self._unwrap(self._m2 / (self._count - ddof))

    def std(self, ddof: int = 1) -> np.ndarray | float:
        """Running standard deviation."""
        return np.sqrt(self.variance(ddof))

    def cv(self, ddof: int = 1) -> np.ndarray | float:
        """Coefficient of variation σ̂/μ̂ — the paper's variability knob."""
        mean = np.asarray(self.mean)
        if np.any(mean <= 0):
            raise ValueError("cv undefined for non-positive mean")
        return self._unwrap(np.asarray(self.std(ddof)) / mean)

    # ------------------------------------------------------------------
    def push(self, x) -> None:
        """Add one observation (Welford update)."""
        arr = _as_observation(x)
        if self._mean is None:
            self._init_state(arr)
            return
        self._check_shape(arr)
        self._count += 1
        delta = arr - self._mean
        self._mean = self._mean + delta / self._count
        self._m2 = self._m2 + delta * (arr - self._mean)
        self._min = np.minimum(self._min, arr)
        self._max = np.maximum(self._max, arr)

    def push_batch(self, xs) -> None:
        """Add many observations at once.

        ``xs`` has one more leading axis than a single observation:
        shape ``(n,)`` for a scalar stream, ``(n, n_nodes)`` for a
        per-node vector stream.  Equivalent to ``n`` pushes, via the
        exact two-stream merge against the batch's own moments.
        """
        xs = _as_observation(xs)
        if xs.ndim == 0:
            raise ValueError("push_batch needs a leading observation axis")
        n = xs.shape[0]
        if n == 0:
            return
        batch = RunningMoments()
        batch._count = n
        if xs.ndim >= 2:
            # Width-independent accumulation (see _axis0_sum); for
            # multi-column batches the bits match numpy's own path.
            batch._mean = _axis0_sum(xs) / n
            batch._m2 = _axis0_sum((xs - batch._mean) ** 2)
        else:
            batch._mean = xs.mean(axis=0)
            batch._m2 = ((xs - batch._mean) ** 2).sum(axis=0)
        batch._min = xs.min(axis=0)
        batch._max = xs.max(axis=0)
        if self._mean is None:
            self._adopt(batch)
        else:
            self._check_shape(batch._mean)
            self.merge(batch)

    def merge(self, other: "RunningMoments") -> "RunningMoments":
        """Fold another estimator's stream into this one (exact).

        Chan's parallel update: the merged state equals (to rounding)
        the state a single estimator would reach over the concatenated
        streams.  Returns ``self`` for chaining.
        """
        if other._mean is None:
            return self
        if self._mean is None:
            self._adopt(other)
            return self
        self._check_shape(other._mean)
        na, nb = self._count, other._count
        n = na + nb
        delta = other._mean - self._mean
        self._mean = self._mean + delta * (nb / n)
        self._m2 = self._m2 + other._m2 + delta * delta * (na * nb / n)
        self._min = np.minimum(self._min, other._min)
        self._max = np.maximum(self._max, other._max)
        self._count = n
        return self

    @classmethod
    def concat(cls, parts: list["RunningMoments"]) -> "RunningMoments":
        """Join node-partitioned vector estimators along the component axis.

        The shard reduction: when a fleet's nodes are partitioned into
        contiguous ranges and each shard tracks a vector estimator over
        *its* nodes only, the full-fleet estimator is the ordered
        concatenation of the per-shard component arrays.  Because every
        component's Welford state depends only on its own stream, this
        roll-up is *exact to the bit* — unlike :meth:`merge`, no
        floating-point combination happens at all, so the result is
        independent of how many shards the fleet was split into.

        All parts must be non-empty vector estimators (``ndim >= 1``)
        with identical observation counts (every shard saw the same
        ticks).
        """
        if not parts:
            raise ValueError("concat needs at least one part")
        for i, part in enumerate(parts):
            if part._mean is None:
                raise ValueError(f"part {i} has no observations")
            if part._mean.ndim == 0:
                raise ValueError(
                    f"part {i} is scalar; concat joins vector estimators"
                )
            if part._count != parts[0]._count:
                raise ValueError(
                    f"part {i} saw {part._count} observations, part 0 saw "
                    f"{parts[0]._count}; shards must cover the same ticks"
                )
        out = cls()
        out._count = parts[0]._count
        out._mean = np.concatenate([p._mean for p in parts])
        out._m2 = np.concatenate([p._m2 for p in parts])
        out._min = np.concatenate([p._min for p in parts])
        out._max = np.concatenate([p._max for p in parts])
        return out

    def pooled(self) -> "RunningMoments":
        """Collapse a vector estimator into one scalar estimator.

        The per-node → fleet roll-up: treats every component's stream as
        part of one pooled sample.  Exact — the law-of-total-variance
        identity, which is Chan's merge applied across components.
        """
        self._require_data()
        if self._mean.ndim == 0:
            out = RunningMoments()
            out._adopt(self)
            return out
        size = self._mean.size
        grand = float(self._mean.mean())
        out = RunningMoments()
        out._count = self._count * size
        out._mean = np.asarray(grand)
        out._m2 = np.asarray(
            float(self._m2.sum())
            + self._count * float(((self._mean - grand) ** 2).sum())
        )
        out._min = np.asarray(float(self._min.min()))
        out._max = np.asarray(float(self._max.max()))
        return out

    # ------------------------------------------------------------------
    def _init_state(self, arr: np.ndarray) -> None:
        self._count = 1
        self._mean = arr.copy()
        self._m2 = np.zeros_like(arr)
        self._min = arr.copy()
        self._max = arr.copy()

    def _adopt(self, other: "RunningMoments") -> None:
        self._count = other._count
        self._mean = np.array(other._mean, copy=True)
        self._m2 = np.array(other._m2, copy=True)
        self._min = np.array(other._min, copy=True)
        self._max = np.array(other._max, copy=True)

    def _check_shape(self, arr: np.ndarray) -> None:
        if arr.shape != self._mean.shape:
            raise ValueError(
                f"observation shape {arr.shape} does not match "
                f"estimator shape {self._mean.shape}"
            )

    def _require_data(self) -> None:
        if self._mean is None:
            raise ValueError("no observations yet")

    @staticmethod
    def _unwrap(arr: np.ndarray):
        return float(arr) if arr.ndim == 0 else arr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._mean is None:
            return "RunningMoments(empty)"
        return f"RunningMoments(count={self._count}, shape={self.shape})"


class RunningCovariance:
    """Single-pass covariance of paired observations ``(x, y)``.

    Scalar or componentwise-vector pairs, with the same exact ``merge``
    as :class:`RunningMoments`.  Used e.g. to track how strongly a
    node's draw co-moves with the fleet average (a fully common-mode
    fleet has correlation ≈ 1; a node with private excursions decoheres).
    """

    __slots__ = ("_count", "_mean_x", "_mean_y", "_c", "_m2x", "_m2y")

    def __init__(self) -> None:
        self._count = 0
        self._mean_x: np.ndarray | None = None
        self._mean_y: np.ndarray | None = None
        self._c: np.ndarray | None = None
        self._m2x: np.ndarray | None = None
        self._m2y: np.ndarray | None = None

    @property
    def count(self) -> int:
        """Number of pairs pushed."""
        return self._count

    def push(self, x, y) -> None:
        """Add one ``(x, y)`` pair."""
        ax, ay = _as_observation(x), _as_observation(y)
        if ax.shape != ay.shape:
            raise ValueError("x and y must have the same shape")
        if self._mean_x is None:
            self._count = 1
            self._mean_x = ax.copy()
            self._mean_y = ay.copy()
            self._c = np.zeros_like(ax)
            self._m2x = np.zeros_like(ax)
            self._m2y = np.zeros_like(ax)
            return
        self._count += 1
        dx = ax - self._mean_x
        self._mean_x = self._mean_x + dx / self._count
        dy_pre = ay - self._mean_y
        self._mean_y = self._mean_y + dy_pre / self._count
        self._c = self._c + dx * (ay - self._mean_y)
        self._m2x = self._m2x + dx * (ax - self._mean_x)
        self._m2y = self._m2y + dy_pre * (ay - self._mean_y)

    def push_batch(self, xs, ys) -> None:
        """Add many pairs at once (exact batch merge)."""
        xs, ys = _as_observation(xs), _as_observation(ys)
        if xs.shape != ys.shape:
            raise ValueError("xs and ys must have the same shape")
        if xs.ndim == 0:
            raise ValueError("push_batch needs a leading observation axis")
        n = xs.shape[0]
        if n == 0:
            return
        batch = RunningCovariance()
        batch._count = n
        if xs.ndim >= 2:
            # Width-independent accumulation (see _axis0_sum).
            batch._mean_x = _axis0_sum(xs) / n
            batch._mean_y = _axis0_sum(ys) / n
            batch._c = _axis0_sum(
                (xs - batch._mean_x) * (ys - batch._mean_y)
            )
            batch._m2x = _axis0_sum((xs - batch._mean_x) ** 2)
            batch._m2y = _axis0_sum((ys - batch._mean_y) ** 2)
        else:
            batch._mean_x = xs.mean(axis=0)
            batch._mean_y = ys.mean(axis=0)
            batch._c = (
                (xs - batch._mean_x) * (ys - batch._mean_y)
            ).sum(axis=0)
            batch._m2x = ((xs - batch._mean_x) ** 2).sum(axis=0)
            batch._m2y = ((ys - batch._mean_y) ** 2).sum(axis=0)
        self.merge(batch)

    def merge(self, other: "RunningCovariance") -> "RunningCovariance":
        """Fold another covariance stream into this one (exact)."""
        if other._mean_x is None:
            return self
        if self._mean_x is None:
            self._count = other._count
            self._mean_x = np.array(other._mean_x, copy=True)
            self._mean_y = np.array(other._mean_y, copy=True)
            self._c = np.array(other._c, copy=True)
            self._m2x = np.array(other._m2x, copy=True)
            self._m2y = np.array(other._m2y, copy=True)
            return self
        na, nb = self._count, other._count
        n = na + nb
        dx = other._mean_x - self._mean_x
        dy = other._mean_y - self._mean_y
        w = na * nb / n
        self._c = self._c + other._c + dx * dy * w
        self._m2x = self._m2x + other._m2x + dx * dx * w
        self._m2y = self._m2y + other._m2y + dy * dy * w
        self._mean_x = self._mean_x + dx * (nb / n)
        self._mean_y = self._mean_y + dy * (nb / n)
        self._count = n
        return self

    @classmethod
    def concat(cls, parts: list["RunningCovariance"]) -> "RunningCovariance":
        """Join node-partitioned vector covariances along the component axis.

        The covariance analogue of :meth:`RunningMoments.concat`: exact
        to the bit, because componentwise co-moment state never crosses
        components.  All parts must be non-empty vector estimators with
        identical pair counts.
        """
        if not parts:
            raise ValueError("concat needs at least one part")
        for i, part in enumerate(parts):
            if part._mean_x is None:
                raise ValueError(f"part {i} has no observations")
            if part._mean_x.ndim == 0:
                raise ValueError(
                    f"part {i} is scalar; concat joins vector estimators"
                )
            if part._count != parts[0]._count:
                raise ValueError(
                    f"part {i} saw {part._count} pairs, part 0 saw "
                    f"{parts[0]._count}; shards must cover the same ticks"
                )
        out = cls()
        out._count = parts[0]._count
        out._mean_x = np.concatenate([p._mean_x for p in parts])
        out._mean_y = np.concatenate([p._mean_y for p in parts])
        out._c = np.concatenate([p._c for p in parts])
        out._m2x = np.concatenate([p._m2x for p in parts])
        out._m2y = np.concatenate([p._m2y for p in parts])
        return out

    def covariance(self, ddof: int = 1) -> np.ndarray | float:
        """Running covariance (sample covariance by default)."""
        if self._c is None or self._count <= ddof:
            raise ValueError(f"need more than {ddof} pairs for ddof={ddof}")
        return RunningMoments._unwrap(self._c / (self._count - ddof))

    def correlation(self) -> np.ndarray | float:
        """Pearson correlation of the two streams."""
        if self._c is None or self._count < 2:
            raise ValueError("need at least two pairs for a correlation")
        denom = np.sqrt(self._m2x * self._m2y)
        if np.any(denom <= 0):
            raise ValueError("correlation undefined for a constant stream")
        return RunningMoments._unwrap(self._c / denom)


class P2Quantile:
    """The P² (piecewise-parabolic) streaming quantile estimator.

    Jain & Chlamtac's five-marker summary: O(1) state, no stored
    samples once warmed up.  Accuracy is excellent for the smooth,
    near-normal per-node power distributions the paper studies
    (typically well under 1% relative error by a few hundred samples).

    ``merge`` approximates the combined stream by count-weighted
    interpolation between the two marker sets; unlike
    :meth:`RunningMoments.merge` it is not exact — quantiles, unlike
    moments, cannot be merged exactly from constant-size summaries.
    Any pipeline that reports a merged quantile must surface
    :data:`MERGE_CAVEAT` in its provenance (``QualityReport.notes`` /
    ``MonitorReport.notes``), not just rely on this docstring.
    """

    #: Provenance caveat for reports built on merged P² summaries.
    #: The wire chaos harness stamps this into ``QualityReport.notes``
    #: whenever quantile-bearing statistics cross a lossy codec or a
    #: merged summary.
    MERGE_CAVEAT = (
        "P2 quantile merge is approximate (count-weighted marker "
        "interpolation), not an exact roll-up"
    )

    __slots__ = ("q", "_heights", "_positions", "_desired", "_rate", "_buffer")

    def __init__(self, q: float) -> None:
        if not (0.0 < q < 1.0):
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = float(q)
        self._heights: list[float] | None = None
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._rate = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self._buffer: list[float] = []

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of observations pushed."""
        if self._heights is None:
            return len(self._buffer)
        return int(self._positions[4])

    @property
    def value(self) -> float:
        """Current quantile estimate."""
        if self._heights is not None:
            return self._heights[2]
        if not self._buffer:
            raise ValueError("no observations yet")
        return float(np.quantile(self._buffer, self.q))

    # ------------------------------------------------------------------
    def push(self, x: float) -> None:
        """Add one observation."""
        v = float(x)
        if not math.isfinite(v):
            raise ValueError("observation must be finite")
        if self._heights is None:
            self._buffer.append(v)
            if len(self._buffer) == 5:
                self._buffer.sort()
                self._heights = list(self._buffer)
                self._buffer = []
            return
        self._push_marker(v)

    def push_batch(self, xs) -> None:
        """Add many observations (sequential marker updates)."""
        arr = _as_observation(xs).ravel()
        for v in arr:
            self.push(float(v))

    def merge(self, other: "P2Quantile") -> "P2Quantile":
        """Approximate roll-up of another P² summary (count-weighted)."""
        if abs(self.q - other.q) > 1e-12:
            raise ValueError("cannot merge estimators of different quantiles")
        if other.count == 0:
            return self
        if self.count == 0:
            self._heights = None if other._heights is None else list(other._heights)
            self._positions = list(other._positions)
            self._buffer = list(other._buffer)
            return self
        if self._heights is None or other._heights is None:
            # At least one side is still buffering: replay raw samples.
            small, big = (self, other) if self._heights is None else (other, self)
            samples = list(small._buffer)
            if big._heights is None:
                samples += big._buffer
                self._heights = None
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._buffer = []
            else:
                self._heights = list(big._heights)
                self._positions = list(big._positions)
                self._buffer = []
            for v in samples:
                self.push(v)
            return self
        na, nb = self.count, other.count
        wa, wb = na / (na + nb), nb / (na + nb)
        merged = [
            wa * ha + wb * hb for ha, hb in zip(self._heights, other._heights)
        ]
        # The outer markers are true extremes and merge exactly; inner
        # heights interpolate.  Positions re-anchor to the ideal marker
        # positions for the combined count.
        merged[0] = min(self._heights[0], other._heights[0])
        merged[4] = max(self._heights[4], other._heights[4])
        self._heights = sorted(merged)
        n = float(na + nb)
        self._positions = [1.0 + r * (n - 1.0) for r in self._rate]
        return self

    # ------------------------------------------------------------------
    def _push_marker(self, v: float) -> None:
        h, pos = self._heights, self._positions
        if v < h[0]:
            h[0] = v
            k = 0
        elif v >= h[4]:
            h[4] = v
            k = 3
        else:
            k = 0
            while k < 3 and v >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            pos[i] += 1.0
        n = pos[4]
        for i in range(5):
            self._desired[i] = 1.0 + self._rate[i] * (n - 1.0)
        for i in (1, 2, 3):
            d = self._desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step)
            * (h[i + 1] - h[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step)
            * (h[i] - h[i - 1])
            / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (pos[j] - pos[i])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"P2Quantile(q={self.q}, count={self.count})"
