"""Stratified sampling: the repair for imbalanced fleets.

The paper's machinery assumes near-normal per-node power, which
balanced workloads deliver and imbalanced ones do not (experiment X1
shows 95% intervals covering ~75% under straggler-heavy schedules).
The classical fix is stratification: when the site *knows* the source
of imbalance — job placement, node generations, straggler shards — it
can sample within strata and combine, recovering calibrated intervals
without any distributional assumption across strata.

Estimator (standard survey sampling): with strata ``h`` of size
``N_h`` (weights ``W_h = N_h / N``), per-stratum sample means ``x̄_h``
and variances ``s_h²`` from ``n_h`` draws,

.. math::

    \\hat\\mu = \\sum_h W_h \\bar x_h, \\qquad
    \\widehat{SE}^2 = \\sum_h W_h^2 \\frac{s_h^2}{n_h}
                      \\Big(1 - \\frac{n_h}{N_h}\\Big)

with a Satterthwaite effective-dof t interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.confidence import ConfidenceInterval, t_quantile

__all__ = [
    "allocate_stratified",
    "quantile_strata",
    "StratifiedEstimate",
    "stratified_estimate",
    "stratified_sample",
]


def quantile_strata(values, n_strata: int) -> np.ndarray:
    """Assign stratum labels ``0..n_strata-1`` by value quantile.

    A pragmatic stratifier when no structural knowledge exists but a
    cheap proxy (a pilot scan, nameplate class) does.
    """
    x = np.asarray(values, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("empty values")
    if not (1 <= n_strata <= x.size):
        raise ValueError(f"need 1 <= n_strata <= {x.size}")
    edges = np.quantile(x, np.linspace(0, 1, n_strata + 1)[1:-1])
    return np.searchsorted(edges, x, side="right")


def allocate_stratified(
    strata_sizes,
    n_total: int,
    *,
    method: str = "proportional",
    strata_sds=None,
) -> np.ndarray:
    """Allocate a total sample across strata.

    ``"proportional"`` allocates by stratum size; ``"neyman"`` by
    size × standard deviation (optimal for a fixed total), requiring
    ``strata_sds``.  Every stratum gets at least 2 nodes (a variance
    needs two points), and no allocation exceeds its stratum.
    """
    sizes = np.asarray(strata_sizes, dtype=np.int64).ravel()
    if np.any(sizes < 2):
        raise ValueError("every stratum needs at least two nodes")
    k = sizes.size
    if n_total < 2 * k:
        raise ValueError(
            f"need n_total >= {2 * k} for {k} strata (2 per stratum)"
        )
    if n_total > sizes.sum():
        raise ValueError("n_total exceeds the population")
    if method == "proportional":
        weights = sizes.astype(float)
    elif method == "neyman":
        if strata_sds is None:
            raise ValueError("neyman allocation requires strata_sds")
        sds = np.asarray(strata_sds, dtype=float).ravel()
        if sds.shape != sizes.shape or np.any(sds < 0):
            raise ValueError("strata_sds must be non-negative, one per stratum")
        weights = sizes * np.maximum(sds, 1e-12)
    else:
        raise ValueError(f"unknown allocation method {method!r}")

    raw = n_total * weights / weights.sum()
    alloc = np.maximum(np.floor(raw).astype(np.int64), 2)
    alloc = np.minimum(alloc, sizes)
    # Distribute the remainder by largest fractional part, respecting
    # stratum capacities.
    while alloc.sum() < n_total:
        frac = raw - alloc
        frac[alloc >= sizes] = -np.inf
        i = int(np.argmax(frac))
        if not np.isfinite(frac[i]):
            break
        alloc[i] += 1
    while alloc.sum() > n_total:
        # Trim from the stratum most over its fair share, never below
        # the two-node floor.
        candidates = np.flatnonzero(alloc > 2)
        if candidates.size == 0:
            break
        i = candidates[int(np.argmin((raw - alloc)[candidates]))]
        alloc[i] -= 1
    return alloc


@dataclass(frozen=True)
class StratifiedEstimate:
    """A stratified mean estimate with its interval."""

    mean: float
    standard_error: float
    effective_dof: float
    n_strata: int
    n_sampled: int

    def interval(self, confidence: float = 0.95) -> ConfidenceInterval:
        """Satterthwaite t interval for the population mean."""
        dof = max(int(round(self.effective_dof)), 1)
        q = t_quantile(confidence, dof)
        return ConfidenceInterval(
            self.mean, q * self.standard_error, confidence, "t"
        )


def stratified_estimate(
    samples: list, strata_sizes
) -> StratifiedEstimate:
    """Combine per-stratum samples into the population-mean estimate.

    Parameters
    ----------
    samples:
        One array of measured node powers per stratum (each length >= 2).
    strata_sizes:
        Population size of each stratum.
    """
    sizes = np.asarray(strata_sizes, dtype=float).ravel()
    if len(samples) != sizes.size:
        raise ValueError("one sample array per stratum required")
    if np.any(sizes < 2):
        raise ValueError("every stratum needs at least two nodes")
    n_total_pop = sizes.sum()
    mean = 0.0
    var = 0.0
    dof_num = 0.0
    dof_den = 0.0
    n_sampled = 0
    for x, n_h in zip(samples, sizes):
        arr = np.asarray(x, dtype=float).ravel()
        if arr.size < 2:
            raise ValueError("each stratum sample needs >= 2 measurements")
        if arr.size > n_h:
            raise ValueError("stratum sample larger than the stratum")
        w = n_h / n_total_pop
        s2 = float(arr.var(ddof=1))
        fpc = 1.0 - arr.size / n_h
        term = w**2 * s2 / arr.size * fpc
        mean += w * float(arr.mean())
        var += term
        dof_num += term
        if term > 0:
            dof_den += term**2 / (arr.size - 1)
        n_sampled += int(arr.size)
    eff_dof = (dof_num**2 / dof_den) if dof_den > 0 else float(n_sampled - 1)
    return StratifiedEstimate(
        mean=float(mean),
        standard_error=float(math.sqrt(max(var, 0.0))),
        effective_dof=float(eff_dof),
        n_strata=len(samples),
        n_sampled=n_sampled,
    )


def stratified_sample(
    watts,
    labels,
    n_total: int,
    rng: np.random.Generator,
    *,
    method: str = "proportional",
) -> StratifiedEstimate:
    """One-call stratified measurement of a labelled fleet.

    ``labels`` assigns each node a stratum; ``n_total`` nodes are
    allocated across strata (``method``), sampled without replacement
    within each, and combined.
    """
    x = np.asarray(watts, dtype=float).ravel()
    lab = np.asarray(labels).ravel()
    if lab.shape != x.shape:
        raise ValueError("labels must match watts length")
    uniq = np.unique(lab)
    idx_by = [np.flatnonzero(lab == u) for u in uniq]
    sizes = np.array([i.size for i in idx_by])
    sds = np.array(
        [x[i].std(ddof=1) if i.size > 1 else 0.0 for i in idx_by]
    )
    alloc = allocate_stratified(
        sizes, n_total, method=method,
        strata_sds=sds if method == "neyman" else None,
    )
    samples = []
    for idx, n_h in zip(idx_by, alloc):
        chosen = rng.choice(idx, size=int(n_h), replace=False)
        samples.append(x[chosen])
    return stratified_estimate(samples, sizes)
