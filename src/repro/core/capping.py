"""Power-capping support — a Section 1 use case of the characterisation.

"Other use cases of system-level power characterizations include ...
operational improvements and power capping."  A facility that knows its
per-node power distribution can answer two operational questions:

* given an electrical limit (breaker, contract, cooling), what is the
  probability an aggregate of ``n`` nodes exceeds it? —
  :func:`exceedance_probability`;
* to keep that probability below a target, where must the cap be set
  (or equivalently, how much headroom must be procured)? —
  :func:`required_cap`.

Aggregate power over ``n`` independent nodes is treated by the CLT with
the sample's mean/σ (the paper's near-normality finding makes this
accurate for balanced fleets at rack scale and above), with an optional
empirical-quantile path for small groups or non-normal fleets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.units import watts_to_kilowatts
from scipy import stats

__all__ = ["exceedance_probability", "required_cap", "CapAssessment",
           "assess_cap"]


def _check_sample(watts) -> np.ndarray:
    x = np.asarray(watts, dtype=float).ravel()
    if x.size < 2:
        raise ValueError("need at least two node measurements")
    if not np.all(np.isfinite(x)) or np.any(x < 0):
        raise ValueError("node powers must be finite and non-negative")
    return x


def exceedance_probability(
    node_watts, cap_watts: float, n_nodes: int, *, method: str = "normal",
    rng: np.random.Generator | None = None, n_boot: int = 20_000,
) -> float:
    """Probability that ``n_nodes`` nodes together exceed ``cap_watts``.

    ``method="normal"`` uses the CLT with the sample's moments;
    ``method="bootstrap"`` resamples node groups from the empirical
    distribution (for small groups or flagged-non-normal fleets).
    """
    x = _check_sample(node_watts)
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if cap_watts <= 0:
        raise ValueError("cap_watts must be positive")
    mu, sd = x.mean(), x.std(ddof=1)
    if method == "normal":
        agg_mu = n_nodes * mu
        agg_sd = math.sqrt(n_nodes) * sd
        if agg_sd == 0:
            return float(agg_mu > cap_watts)
        return float(stats.norm.sf(cap_watts, loc=agg_mu, scale=agg_sd))
    if method == "bootstrap":
        rng = rng or np.random.default_rng(0)
        idx = rng.integers(0, x.size, size=(n_boot, n_nodes))
        totals = x[idx].sum(axis=1)
        return float(np.mean(totals > cap_watts))
    raise ValueError(f"method must be 'normal' or 'bootstrap', got {method!r}")


def required_cap(
    node_watts, n_nodes: int, *, exceedance_target: float = 0.01,
    method: str = "normal", rng: np.random.Generator | None = None,
    n_boot: int = 20_000,
) -> float:
    """Smallest cap keeping exceedance at or below the target."""
    x = _check_sample(node_watts)
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if not (0.0 < exceedance_target < 1.0):
        raise ValueError("exceedance_target must be in (0, 1)")
    if method == "normal":
        mu, sd = x.mean(), x.std(ddof=1)
        z = stats.norm.isf(exceedance_target)
        return float(n_nodes * mu + z * math.sqrt(n_nodes) * sd)
    if method == "bootstrap":
        rng = rng or np.random.default_rng(0)
        idx = rng.integers(0, x.size, size=(n_boot, n_nodes))
        totals = x[idx].sum(axis=1)
        return float(np.quantile(totals, 1.0 - exceedance_target))
    raise ValueError(f"method must be 'normal' or 'bootstrap', got {method!r}")


@dataclass(frozen=True)
class CapAssessment:
    """A cap's operational assessment for one node group size."""

    cap_watts: float
    n_nodes: int
    exceedance: float
    headroom_fraction: float  # (cap − expected)/expected

    def summary(self) -> str:
        """One-line operational statement."""
        return (
            f"cap {watts_to_kilowatts(self.cap_watts):.1f} kW over {self.n_nodes} nodes: "
            f"exceedance {self.exceedance:.2%}, headroom "
            f"{self.headroom_fraction:+.1%} over the expected draw"
        )


def assess_cap(
    node_watts, cap_watts: float, n_nodes: int, **kwargs
) -> CapAssessment:
    """Bundle exceedance and headroom for a proposed cap."""
    x = _check_sample(node_watts)
    p = exceedance_probability(x, cap_watts, n_nodes, **kwargs)
    expected = float(x.mean()) * n_nodes
    return CapAssessment(
        cap_watts=float(cap_watts),
        n_nodes=int(n_nodes),
        exceedance=p,
        headroom_fraction=(cap_watts - expected) / expected,
    )
