"""The paper's new submission requirements (Section 6).

Two rules, adopted by the EE HPC WG methodology and in force for the
Green500 and Top500 from late 2015:

* **Timing** — the power measurement must cover the *entire core phase*
  of the run (replacing "any 20% of the middle 80%", which Section 3
  shows admits >20% variation on modern GPU systems).

* **Machine fraction** — measure at least **16 nodes, or 10% of the
  nodes, whichever is larger** (replacing 1/64).  Sixteen nodes reaches
  the desired 95% confidence interval even at one level greater overall
  variability (σ/μ ≈ 5%) than the 1.5–3% observed in practice; the 10%
  arm keeps small systems from landing on tiny, low-accuracy subsets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.windows import MeasurementWindow

__all__ = [
    "NewRules",
    "NEW_RULES",
    "recommended_measurement_nodes",
    "meets_new_node_rule",
    "meets_new_window_rule",
]


@dataclass(frozen=True)
class NewRules:
    """Constants of the paper's recommended requirements."""

    min_nodes: int = 16
    node_fraction: float = 0.10
    full_core_phase: bool = True
    #: The σ/μ planning band the recommendation was derived from.
    cv_band: tuple = (0.015, 0.025)
    #: One-level-worse variability the 16-node rule still covers.
    cv_headroom: float = 0.05


NEW_RULES = NewRules()


def recommended_measurement_nodes(n_nodes: int, rules: NewRules = NEW_RULES) -> int:
    """Nodes to measure under the paper's recommendation:
    ``max(16, ceil(0.10 · N))``, capped at the fleet size."""
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    by_fraction = math.ceil(rules.node_fraction * n_nodes - 1e-9)
    return min(max(rules.min_nodes, by_fraction), n_nodes)


def meets_new_node_rule(
    n_measured: int, n_nodes: int, rules: NewRules = NEW_RULES
) -> bool:
    """Whether a subset satisfies the new machine-fraction rule."""
    if n_measured < 0:
        raise ValueError("n_measured must be >= 0")
    return n_measured >= recommended_measurement_nodes(n_nodes, rules)


def meets_new_window_rule(
    window: MeasurementWindow, tolerance: float = 1e-9
) -> bool:
    """Whether a window satisfies the new timing rule (full core phase)."""
    return window.start <= tolerance and window.end >= 1.0 - tolerance
