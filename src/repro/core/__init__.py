"""The paper's core contribution: statistically grounded power
measurement requirements for supercomputers.

* :mod:`~repro.core.confidence` — t/z confidence-interval machinery
  with finite-population correction (Eqs. 1–2).
* :mod:`~repro.core.sampling` — the sample-size rule (Eqs. 3–5) and the
  Table 5 grid.
* :mod:`~repro.core.estimators` — subset → full-system extrapolation.
* :mod:`~repro.core.methodology` — the EE HPC WG Level 1/2/3
  requirements (Table 1) as executable checks.
* :mod:`~repro.core.windows` — measurement-window rules (Section 3).
* :mod:`~repro.core.coverage` — the bootstrap calibration study
  (Figure 3).
* :mod:`~repro.core.accuracy` — measurement accuracy assessment.
* :mod:`~repro.core.recommendations` — the paper's new submission
  rules (Section 6), as adopted by the Green500/Top500.
"""

from repro.core.confidence import (
    ConfidenceInterval,
    mean_confidence_interval,
    t_quantile,
    z_quantile,
)
from repro.core.sampling import (
    SampleSizeResult,
    achieved_accuracy,
    chernoff_hoeffding_sample_size,
    recommend_sample_size,
    required_sample_size_infinite,
    sample_size_table,
    two_step_pilot_plan,
)
from repro.core.estimators import (
    FullSystemEstimate,
    extrapolate_full_system,
    extrapolation_error,
)
from repro.core.methodology import (
    Aspect,
    Level,
    LevelSpec,
    LEVEL_SPECS,
    machine_fraction_nodes,
    check_submission,
)
from repro.core.windows import (
    MeasurementWindow,
    full_core_window,
    is_legal_level1_window,
    legal_level1_windows,
    level2_window_starts,
)
from repro.core.coverage import CoverageResult, coverage_study
from repro.core.accuracy import AccuracyAssessment, assess_accuracy
from repro.core.planning import (
    ErrorBudget,
    InstrumentationConstraints,
    MeasurementPlan,
    plan_measurement,
)
from repro.core.stratified import (
    StratifiedEstimate,
    allocate_stratified,
    quantile_strata,
    stratified_estimate,
    stratified_sample,
)
from repro.core.capping import (
    CapAssessment,
    assess_cap,
    exceedance_probability,
    required_cap,
)
from repro.core.recommendations import (
    NEW_RULES,
    recommended_measurement_nodes,
    meets_new_node_rule,
    meets_new_window_rule,
)

__all__ = [
    "ConfidenceInterval",
    "mean_confidence_interval",
    "t_quantile",
    "z_quantile",
    "SampleSizeResult",
    "achieved_accuracy",
    "chernoff_hoeffding_sample_size",
    "recommend_sample_size",
    "required_sample_size_infinite",
    "sample_size_table",
    "two_step_pilot_plan",
    "FullSystemEstimate",
    "extrapolate_full_system",
    "extrapolation_error",
    "Aspect",
    "Level",
    "LevelSpec",
    "LEVEL_SPECS",
    "machine_fraction_nodes",
    "check_submission",
    "MeasurementWindow",
    "full_core_window",
    "is_legal_level1_window",
    "legal_level1_windows",
    "level2_window_starts",
    "CoverageResult",
    "coverage_study",
    "AccuracyAssessment",
    "assess_accuracy",
    "ErrorBudget",
    "InstrumentationConstraints",
    "MeasurementPlan",
    "plan_measurement",
    "StratifiedEstimate",
    "allocate_stratified",
    "quantile_strata",
    "stratified_estimate",
    "stratified_sample",
    "CapAssessment",
    "assess_cap",
    "exceedance_probability",
    "required_cap",
    "NEW_RULES",
    "recommended_measurement_nodes",
    "meets_new_node_rule",
    "meets_new_window_rule",
]
