"""Measurement accuracy assessment.

The paper's final recommendation list includes: *"We also recommend
that all submissions include an assessment of their measurement
accuracy."*  :func:`assess_accuracy` produces that assessment for a
node-subset measurement: the achieved relative accuracy (λ), the
confidence interval for the full-system power, and whether a stated
accuracy target is met.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.confidence import ConfidenceInterval
from repro.core.estimators import FullSystemEstimate, extrapolate_full_system
from repro.units import watts_to_kilowatts

__all__ = ["AccuracyAssessment", "assess_accuracy"]


@dataclass(frozen=True)
class AccuracyAssessment:
    """The accuracy statement attached to a measurement.

    Attributes
    ----------
    estimate:
        The full-system extrapolation the assessment describes.
    achieved_lambda:
        Relative half-width of the estimate (the achieved λ).
    target_lambda:
        The accuracy the submitter aimed for (``None`` if unstated).
    cv:
        Observed σ̂/μ̂ of the subset.
    """

    estimate: FullSystemEstimate
    achieved_lambda: float
    target_lambda: float | None
    cv: float

    @property
    def meets_target(self) -> bool | None:
        """Whether the achieved accuracy meets the target (None if no
        target was stated)."""
        if self.target_lambda is None:
            return None
        return self.achieved_lambda <= self.target_lambda + 1e-12

    @property
    def interval(self) -> ConfidenceInterval:
        """Full-system power interval."""
        return self.estimate.interval

    def summary(self) -> str:
        """One-line statement suitable for a submission form."""
        base = (
            f"{watts_to_kilowatts(self.estimate.total_watts):.1f} kW "
            f"±{self.achieved_lambda:.2%} at "
            f"{self.estimate.per_node.confidence:.0%} confidence "
            f"({self.estimate.n_measured}/{self.estimate.n_nodes} nodes, "
            f"σ/μ={self.cv:.2%})"
        )
        if self.target_lambda is not None:
            verdict = "meets" if self.meets_target else "MISSES"
            base += f"; {verdict} ±{self.target_lambda:.2%} target"
        return base


def assess_accuracy(
    subset_watts,
    n_nodes: int,
    *,
    confidence: float = 0.95,
    target_lambda: float | None = None,
    method: str = "t",
) -> AccuracyAssessment:
    """Assess the accuracy of a node-subset power measurement.

    Parameters
    ----------
    subset_watts:
        Time-averaged per-node powers of the measured subset.
    n_nodes:
        Fleet size ``N``.
    confidence:
        CI level for the statement (default 95%).
    target_lambda:
        Optional accuracy target to verify against (e.g. 0.01).
    method:
        ``"t"`` (recommended) or ``"z"``.
    """
    x = np.asarray(subset_watts, dtype=float).ravel()
    est = extrapolate_full_system(
        x, n_nodes, confidence=confidence, method=method
    )
    mu = float(x.mean())
    if mu <= 0:
        raise ValueError("subset mean power must be positive")
    cv = float(x.std(ddof=1)) / mu
    return AccuracyAssessment(
        estimate=est,
        achieved_lambda=est.relative_half_width,
        target_lambda=target_lambda,
        cv=cv,
    )
