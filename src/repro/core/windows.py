"""Measurement-window rules (paper Section 3).

A :class:`MeasurementWindow` is a fractional slice of the core phase.
The pre-2015 Level 1 rule allowed any window of at least 20% of the
middle 80%; this module enumerates those legal placements (the search
space the gaming analysis sweeps) and provides the paper's replacement
— the full-core window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "MeasurementWindow",
    "full_core_window",
    "is_legal_level1_window",
    "legal_level1_windows",
    "level2_window_starts",
]

#: The middle-80% placement bounds for pre-2015 Level 1.
MIDDLE_80 = (0.1, 0.9)

#: Minimum window as a fraction of the core phase ("20% of the middle 80%").
LEVEL1_MIN_FRACTION = 0.16

#: Absolute Level 1 floor, in seconds ("the longer of one minute or ...").
LEVEL1_MIN_SECONDS = 60.0


@dataclass(frozen=True)
class MeasurementWindow:
    """A window expressed in fractions of the core phase."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.start < self.end <= 1.0):
            raise ValueError(
                f"need 0 <= start < end <= 1, got [{self.start}, {self.end}]"
            )

    @property
    def length(self) -> float:
        """Window length as a fraction of the core phase."""
        return self.end - self.start

    def seconds(self, core_runtime_s: float) -> float:
        """Window length in seconds for a given core-phase runtime."""
        if core_runtime_s <= 0:
            raise ValueError("core runtime must be positive")
        return self.length * core_runtime_s

    def to_absolute(self, core_start_s: float, core_runtime_s: float) -> tuple[float, float]:
        """Map to absolute wall-clock bounds given the core phase."""
        if core_runtime_s <= 0:
            raise ValueError("core runtime must be positive")
        return (
            core_start_s + self.start * core_runtime_s,
            core_start_s + self.end * core_runtime_s,
        )

    def __str__(self) -> str:
        return f"[{self.start:.3f}, {self.end:.3f}] of core phase"


def full_core_window() -> MeasurementWindow:
    """The paper's recommended window: the entire core phase."""
    return MeasurementWindow(0.0, 1.0)


def is_legal_level1_window(
    window: MeasurementWindow, core_runtime_s: float
) -> bool:
    """Whether a window satisfies the pre-2015 Level 1 timing rule.

    Requirements: the window lies within the middle 80% of the core
    phase, and lasts at least the longer of one minute or 20% of the
    middle 80% (16% of the core phase).
    """
    if core_runtime_s <= 0:
        raise ValueError("core runtime must be positive")
    lo, hi = MIDDLE_80
    if window.start < lo - 1e-12 or window.end > hi + 1e-12:
        return False
    min_len = max(LEVEL1_MIN_FRACTION, LEVEL1_MIN_SECONDS / core_runtime_s)
    return window.length >= min_len - 1e-12


def legal_level1_windows(
    core_runtime_s: float,
    *,
    length: float | None = None,
    n_placements: int = 201,
) -> list[MeasurementWindow]:
    """Enumerate legal Level 1 windows of a fixed length.

    Parameters
    ----------
    core_runtime_s:
        Core-phase runtime in seconds (sets the one-minute floor).
    length:
        Window length as a core-phase fraction; defaults to the legal
        minimum.
    n_placements:
        Number of equally spaced start positions across the legal range.

    This is the search space an adversarial submitter can choose from —
    and hence the domain of the gaming analysis in
    :mod:`repro.analysis.gaming`.
    """
    if core_runtime_s <= 0:
        raise ValueError("core runtime must be positive")
    if n_placements < 1:
        raise ValueError("n_placements must be >= 1")
    lo, hi = MIDDLE_80
    min_len = max(LEVEL1_MIN_FRACTION, LEVEL1_MIN_SECONDS / core_runtime_s)
    if length is None:
        length = min_len
    if length < min_len - 1e-12:
        raise ValueError(
            f"length {length} below the legal minimum {min_len:.4f}"
        )
    if length > hi - lo + 1e-12:
        raise ValueError(f"length {length} does not fit in the middle 80%")
    length = min(length, hi - lo)
    starts = np.linspace(lo, hi - length, n_placements)
    return [MeasurementWindow(float(s), float(s + length)) for s in starts]


def level2_window_starts(n_windows: int = 10) -> np.ndarray:
    """Start fractions of Level 2's equally spaced averaged measurements
    spanning the full run.

    Returns the ``n_windows`` window start fractions; each window has
    length ``1/n_windows`` so together they tile the core phase.
    """
    if n_windows < 1:
        raise ValueError("n_windows must be >= 1")
    return np.arange(n_windows) / n_windows
