"""Confidence-interval machinery (paper Eqs. 1–2).

Given time-averaged power measurements :math:`X_1, \\ldots, X_n` on a
random node subset, the paper's Equation 1 interval for the true
per-node mean is

.. math::

    \\mathrm{CI} = \\hat\\mu \\pm
        \\frac{t_{n-1,\\,1-\\alpha/2}\\,\\hat\\sigma}{\\sqrt{n}}

with the normal-quantile approximation (Eq. 2) for large ``n``, and an
optional finite-population correction
:math:`\\sqrt{(N - n)/(N - 1)}` when the subset is not small relative
to the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = [
    "z_quantile",
    "t_quantile",
    "finite_population_correction",
    "ConfidenceInterval",
    "mean_confidence_interval",
]


def _check_confidence(confidence: float) -> None:
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")


def z_quantile(confidence: float) -> float:
    """Two-sided standard-normal quantile :math:`z_{1-\\alpha/2}`.

    ``z_quantile(0.95)`` ≈ 1.96.
    """
    _check_confidence(confidence)
    alpha = 1.0 - confidence
    return float(stats.norm.ppf(1.0 - alpha / 2.0))


def t_quantile(confidence: float, dof: int) -> float:
    """Two-sided Student-t quantile :math:`t_{\\nu,\\,1-\\alpha/2}`."""
    _check_confidence(confidence)
    if dof < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {dof}")
    alpha = 1.0 - confidence
    return float(stats.t.ppf(1.0 - alpha / 2.0, dof))


def finite_population_correction(n: int, population: int) -> float:
    """FPC factor :math:`\\sqrt{(N-n)/(N-1)}` for sampling without
    replacement from a population of ``population`` units."""
    if population < 2:
        raise ValueError("population must be >= 2")
    if not (1 <= n <= population):
        raise ValueError(f"need 1 <= n <= {population}, got n={n}")
    return float(np.sqrt((population - n) / (population - 1.0)))


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval for a mean.

    Attributes
    ----------
    mean:
        Point estimate :math:`\\hat\\mu`.
    half_width:
        Interval half-width in the same units as ``mean``.
    confidence:
        Nominal coverage level, e.g. 0.95.
    method:
        ``"t"`` or ``"z"`` — which quantile built the interval.
    """

    mean: float
    half_width: float
    confidence: float
    method: str = "t"

    def __post_init__(self) -> None:
        _check_confidence(self.confidence)
        if self.half_width < 0:
            raise ValueError("half_width must be >= 0")
        if self.method not in ("t", "z"):
            raise ValueError(f"method must be 't' or 'z', got {self.method!r}")

    @property
    def lower(self) -> float:
        """Lower interval bound."""
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        """Upper interval bound."""
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean — the paper's λ."""
        if self.mean == 0:
            raise ValueError("relative half-width undefined for zero mean")
        return self.half_width / abs(self.mean)

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval (inclusive)."""
        return self.lower <= value <= self.upper

    def scaled(self, factor: float) -> "ConfidenceInterval":
        """Interval for a linear rescaling of the mean (e.g. ×N nodes)."""
        if factor < 0:
            raise ValueError("factor must be >= 0")
        return ConfidenceInterval(
            self.mean * factor, self.half_width * factor, self.confidence,
            self.method,
        )

    def __str__(self) -> str:
        return (
            f"{self.mean:.2f} ± {self.half_width:.2f} "
            f"({self.confidence * 100:.0f}% {self.method}-CI)"
        )


def mean_confidence_interval(
    measurements,
    *,
    confidence: float = 0.95,
    method: str = "t",
    population: int | None = None,
) -> ConfidenceInterval:
    """Confidence interval for the mean of node power measurements.

    Parameters
    ----------
    measurements:
        The subset's time-averaged per-node powers (length >= 2).
    confidence:
        Nominal coverage, default the paper's conventional 95%.
    method:
        ``"t"`` (Eq. 1, exact under normality) or ``"z"`` (Eq. 2, the
        large-``n`` approximation whose under-coverage at small ``n``
        Section 4.2 quantifies).
    population:
        Fleet size ``N``; when given, the half-width is shrunk by the
        finite-population correction (the sampled fraction carries no
        sampling error).
    """
    x = np.asarray(measurements, dtype=float).ravel()
    if x.size < 2:
        raise ValueError("need at least two measurements for an interval")
    if not np.all(np.isfinite(x)):
        raise ValueError("measurements contain non-finite values")
    n = x.size
    mu = float(x.mean())
    sd = float(x.std(ddof=1))
    if method == "t":
        q = t_quantile(confidence, n - 1)
    elif method == "z":
        q = z_quantile(confidence)
    else:
        raise ValueError(f"method must be 't' or 'z', got {method!r}")
    hw = q * sd / np.sqrt(n)
    if population is not None:
        hw *= finite_population_correction(n, population)
    return ConfidenceInterval(mu, float(hw), confidence, method)
