"""Subset → full-system power extrapolation.

The methodology's estimator is deliberately simple: measure a subset,
take the per-node mean, multiply by the node count (linear scaling —
Table 1, aspect 2).  This module wraps that estimator together with its
uncertainty, and provides the error metric the experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.confidence import ConfidenceInterval, mean_confidence_interval
from repro.units import watts_to_kilowatts

__all__ = ["FullSystemEstimate", "extrapolate_full_system", "extrapolation_error"]


@dataclass(frozen=True)
class FullSystemEstimate:
    """A full-system power estimate extrapolated from a node subset.

    Attributes
    ----------
    total_watts:
        Estimated full-system compute power, ``N · μ̂``.
    per_node:
        The per-node mean interval the estimate scales up.
    n_measured / n_nodes:
        Subset and fleet sizes.
    """

    total_watts: float
    per_node: ConfidenceInterval
    n_measured: int
    n_nodes: int

    @property
    def interval(self) -> ConfidenceInterval:
        """Confidence interval for the full-system total."""
        return self.per_node.scaled(self.n_nodes)

    @property
    def relative_half_width(self) -> float:
        """Relative accuracy of the estimate (λ achieved)."""
        return self.per_node.relative_half_width

    def __str__(self) -> str:
        return (
            f"{watts_to_kilowatts(self.total_watts):.1f} kW from {self.n_measured}/"
            f"{self.n_nodes} nodes (±{self.relative_half_width:.2%} at "
            f"{self.per_node.confidence:.0%})"
        )


def extrapolate_full_system(
    subset_watts,
    n_nodes: int,
    *,
    confidence: float = 0.95,
    method: str = "t",
    apply_fpc: bool = True,
) -> FullSystemEstimate:
    """Extrapolate full-system power from per-node subset measurements.

    Parameters
    ----------
    subset_watts:
        Time-averaged power of each measured node (length >= 2).
    n_nodes:
        Fleet size ``N``.
    confidence / method:
        CI parameters (see
        :func:`repro.core.confidence.mean_confidence_interval`).
    apply_fpc:
        Apply the finite-population correction; disable to reproduce
        the uncorrected Eq. 1/2 behaviour.
    """
    x = np.asarray(subset_watts, dtype=float).ravel()
    if n_nodes < x.size:
        raise ValueError(
            f"fleet size {n_nodes} smaller than subset size {x.size}"
        )
    ci = mean_confidence_interval(
        x,
        confidence=confidence,
        method=method,
        population=n_nodes if apply_fpc else None,
    )
    return FullSystemEstimate(
        total_watts=ci.mean * n_nodes,
        per_node=ci,
        n_measured=int(x.size),
        n_nodes=int(n_nodes),
    )


def extrapolation_error(estimate_watts: float, true_watts: float) -> float:
    """Signed relative error of an extrapolated total vs. ground truth."""
    if true_watts <= 0:
        raise ValueError("true power must be positive")
    return (estimate_watts - true_watts) / true_watts
