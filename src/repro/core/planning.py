"""Measurement planning under instrumentation constraints.

The paper's use cases (Section 1) are planning problems: "sites can
determine how many components or nodes must be measured in order to
characterize system-level power with reasonable accuracy" — but a real
site also has a fixed meter pool, meters with finite channel counts and
calibration grades, and a choice of measurement window.  This module
composes the library's error models into a single **error budget** and
a feasibility verdict:

* sampling error — Eq. 5 machinery (:mod:`repro.core.sampling`);
* instrument error — per-meter calibration spread, averaged over the
  bank (``g/√k``, see :mod:`repro.metering.aggregate`);
* window bias — zero under the post-2015 full-core rule, a
  machine-class-dependent bound under the old partial-window rule;
* conversion-modeling error — datasheet vs measured chain efficiency
  (Table 1 aspect 4).

The total is reported both as a root-sum-of-squares (independent error
sources) and a worst-case sum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.sampling import achieved_accuracy, recommend_sample_size
from repro.metering.meter import MeterSpec

__all__ = [
    "InstrumentationConstraints",
    "ErrorBudget",
    "MeasurementPlan",
    "plan_measurement",
    "WINDOW_BIAS_BOUNDS",
]

#: Worst-case relative window bias by machine class under the pre-2015
#: partial-window rule (the Section 3 findings); the full-core window
#: has none.
WINDOW_BIAS_BOUNDS: dict[str, float] = {
    "cpu": 0.02,   # Colosse/Sequoia-class flatness
    "gpu": 0.12,   # in-core GPU runs (one-sided best-window bias)
}


@dataclass(frozen=True)
class InstrumentationConstraints:
    """What the site actually has.

    Attributes
    ----------
    n_meters:
        Instruments available for the subset measurement.
    channels_per_meter:
        Nodes one instrument can meter (PDU outlets / CT clamps).
    meter_spec:
        Instrument class (calibration spread, sampling, integration).
    full_core_window:
        Whether the site will measure the whole core phase (the
        post-2015 rule) or a partial window.
    machine_class:
        ``"cpu"`` or ``"gpu"`` — sets the partial-window bias bound.
    conversion_modeling_error:
        Relative uncertainty of the delivery-chain reconstruction
        (0 when metering upstream of conversion).
    """

    n_meters: int = 2
    channels_per_meter: int = 24
    meter_spec: MeterSpec = field(default_factory=MeterSpec)
    full_core_window: bool = True
    machine_class: str = "cpu"
    conversion_modeling_error: float = 0.0

    def __post_init__(self) -> None:
        if self.n_meters < 1:
            raise ValueError("n_meters must be >= 1")
        if self.channels_per_meter < 1:
            raise ValueError("channels_per_meter must be >= 1")
        if self.machine_class not in WINDOW_BIAS_BOUNDS:
            raise ValueError(
                f"machine_class must be one of {sorted(WINDOW_BIAS_BOUNDS)}"
            )
        if self.conversion_modeling_error < 0:
            raise ValueError("conversion_modeling_error must be >= 0")

    @property
    def max_nodes(self) -> int:
        """Most nodes the meter pool can cover."""
        return self.n_meters * self.channels_per_meter


@dataclass(frozen=True)
class ErrorBudget:
    """Relative error contributions of one measurement plan."""

    sampling: float
    instrument: float
    window_bias: float
    conversion: float

    @property
    def rss(self) -> float:
        """Root-sum-of-squares total (independent sources)."""
        return math.sqrt(
            self.sampling**2
            + self.instrument**2
            + self.window_bias**2
            + self.conversion**2
        )

    @property
    def worst_case(self) -> float:
        """Straight sum (fully correlated worst case)."""
        return self.sampling + self.instrument + self.window_bias + self.conversion

    def dominant_term(self) -> str:
        """Name of the largest contribution."""
        terms = {
            "sampling": self.sampling,
            "instrument": self.instrument,
            "window_bias": self.window_bias,
            "conversion": self.conversion,
        }
        return max(terms, key=terms.get)

    def lines(self) -> list[str]:
        """Budget table rows for reports."""
        return [
            f"  sampling (Eq. 5):        ±{self.sampling:.2%}",
            f"  instrument calibration:  ±{self.instrument:.2%}",
            f"  window bias bound:       ±{self.window_bias:.2%}",
            f"  conversion modeling:     ±{self.conversion:.2%}",
            f"  total (RSS):             ±{self.rss:.2%}",
            f"  total (worst case):      ±{self.worst_case:.2%}",
        ]


@dataclass(frozen=True)
class MeasurementPlan:
    """A concrete plan: how many nodes, on which instruments, with what
    expected accuracy."""

    n_nodes_to_measure: int
    n_meters_used: int
    budget: ErrorBudget
    target_lambda: float
    population: int
    cv_assumed: float

    @property
    def feasible(self) -> bool:
        """Whether the RSS budget meets the target."""
        return self.budget.rss <= self.target_lambda + 1e-12

    def summary(self) -> str:
        """Multi-line human-readable plan."""
        lines = [
            f"measure {self.n_nodes_to_measure} of {self.population} nodes "
            f"across {self.n_meters_used} instrument(s)",
            f"assumed sigma/mu {self.cv_assumed:.2%}, target "
            f"±{self.target_lambda:.2%} at 95% confidence",
            "error budget:",
            *self.budget.lines(),
            f"verdict: {'FEASIBLE' if self.feasible else 'NOT FEASIBLE'} "
            f"(dominant term: {self.budget.dominant_term()})",
        ]
        return "\n".join(lines)


def plan_measurement(
    n_nodes: int,
    cv: float,
    target_lambda: float,
    constraints: InstrumentationConstraints | None = None,
    *,
    confidence: float = 0.95,
) -> MeasurementPlan:
    """Produce a measurement plan and its error budget.

    The node count starts from Eq. 5 at the target accuracy, is raised
    to the post-2015 floor if below it, capped by the meter pool, and
    the final budget is evaluated at the capped count — so an
    infeasible pool is reported as such rather than silently planned
    around.
    """
    if target_lambda <= 0:
        raise ValueError("target_lambda must be positive")
    constraints = constraints or InstrumentationConstraints()

    wanted = recommend_sample_size(n_nodes, cv, target_lambda, confidence).n
    from repro.core.recommendations import recommended_measurement_nodes

    floor = recommended_measurement_nodes(n_nodes)
    n_measure = min(max(wanted, min(floor, n_nodes)), constraints.max_nodes,
                    n_nodes)

    sampling = achieved_accuracy(
        max(n_measure, 2), n_nodes, cv, confidence, method="z"
    )
    n_meters_used = min(
        constraints.n_meters,
        max(1, math.ceil(n_measure / constraints.channels_per_meter)),
    )
    from repro.core.confidence import z_quantile

    instrument = (
        z_quantile(confidence)
        * constraints.meter_spec.gain_error_cv
        / np.sqrt(n_meters_used)
    )
    window_bias = (
        0.0
        if constraints.full_core_window
        else WINDOW_BIAS_BOUNDS[constraints.machine_class]
    )
    budget = ErrorBudget(
        sampling=float(sampling),
        instrument=float(instrument),
        window_bias=float(window_bias),
        conversion=float(constraints.conversion_modeling_error),
    )
    return MeasurementPlan(
        n_nodes_to_measure=int(n_measure),
        n_meters_used=int(n_meters_used),
        budget=budget,
        target_lambda=float(target_lambda),
        population=int(n_nodes),
        cv_assumed=float(cv),
    )
