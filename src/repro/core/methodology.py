"""The EE HPC WG measurement methodology (paper Table 1) as an
executable specification.

Each quality level constrains four aspects of a measurement:

1. duration and granularity,
2. how much of the machine is measured,
3. which subsystems must be included,
4. where in the power hierarchy the meters sit.

:func:`check_submission` validates a described measurement against a
level and returns the list of violated rules — the machinery a list
operator (or :mod:`repro.lists.validation`) runs over incoming
submissions.
"""

from __future__ import annotations

import enum
import math

from repro.units import watts_to_kilowatts
from dataclasses import dataclass, field

__all__ = [
    "Level",
    "Aspect",
    "Subsystem",
    "MeasurementPoint",
    "LevelSpec",
    "LEVEL_SPECS",
    "machine_fraction_nodes",
    "MeasurementDescription",
    "Violation",
    "check_submission",
]


class Level(enum.IntEnum):
    """EE HPC WG measurement quality level."""

    L1 = 1
    L2 = 2
    L3 = 3


class Aspect(enum.Enum):
    """The four regulated aspects of a measurement (Table 1 rows)."""

    GRANULARITY = "1a: granularity"
    TIMING = "1b: timing"
    MACHINE_FRACTION = "2: machine fraction"
    SUBSYSTEMS = "3: subsystems"
    MEASUREMENT_POINT = "4: point of measurement"


class Subsystem(enum.Enum):
    """Machine subsystems a measurement may cover."""

    COMPUTE_NODES = "compute nodes"
    INTERCONNECT = "interconnect"
    STORAGE = "storage"
    INFRASTRUCTURE_NODES = "infrastructure nodes"


class MeasurementPoint(enum.Enum):
    """Where in the power-delivery hierarchy the meter sits."""

    UPSTREAM_OF_CONVERSION = "upstream of power conversion"
    DOWNSTREAM_MODELED_MANUFACTURER = "downstream, conversion modeled (manufacturer data)"
    DOWNSTREAM_MODELED_OFFLINE = "downstream, conversion modeled (off-line measurement)"
    DOWNSTREAM_MEASURED_SIMULTANEOUS = "downstream, conversion loss measured simultaneously"


@dataclass(frozen=True)
class LevelSpec:
    """The requirements one level imposes (Table 1 column).

    Attributes
    ----------
    max_sample_interval_s:
        Coarsest legal meter sampling; ``None`` means continuously
        integrated energy is required (Level 3).
    min_window_core_fraction:
        Minimum measured fraction of the core phase.
    min_window_seconds:
        Absolute floor on the measurement window (Level 1's "longer of
        one minute or ...").
    window_within_middle80:
        Whether the window must avoid the first and last 10% of the
        core phase.
    machine_fraction / min_measured_watts:
        Node-subset rule: at least ``machine_fraction`` of the compute
        nodes *and* at least ``min_measured_watts`` of measured power.
    required_subsystems / allow_estimated_subsystems:
        Subsystem coverage rule.
    allowed_points:
        Acceptable metering points.
    """

    level: Level
    max_sample_interval_s: float | None
    min_window_core_fraction: float
    min_window_seconds: float
    window_within_middle80: bool
    machine_fraction: float
    min_measured_watts: float
    required_subsystems: frozenset = frozenset({Subsystem.COMPUTE_NODES})
    allow_estimated_subsystems: bool = False
    allowed_points: frozenset = field(
        default_factory=lambda: frozenset(MeasurementPoint)
    )


_ALL_SUBSYSTEMS = frozenset(Subsystem)

LEVEL_SPECS: dict[Level, LevelSpec] = {
    Level.L1: LevelSpec(
        level=Level.L1,
        max_sample_interval_s=1.0,
        # "The longer of one minute or 20% of the middle 80% of the
        # core phase" — 20% of 80% = 16% of the core phase.
        min_window_core_fraction=0.16,
        min_window_seconds=60.0,
        window_within_middle80=True,
        machine_fraction=1.0 / 64.0,
        min_measured_watts=2_000.0,
        required_subsystems=frozenset({Subsystem.COMPUTE_NODES}),
        allow_estimated_subsystems=False,
        allowed_points=frozenset(
            {
                MeasurementPoint.UPSTREAM_OF_CONVERSION,
                MeasurementPoint.DOWNSTREAM_MODELED_MANUFACTURER,
            }
        ),
    ),
    Level.L2: LevelSpec(
        level=Level.L2,
        max_sample_interval_s=1.0,
        min_window_core_fraction=1.0,  # ten averages *spanning the full run*
        min_window_seconds=0.0,
        window_within_middle80=False,
        machine_fraction=1.0 / 8.0,
        min_measured_watts=10_000.0,
        required_subsystems=_ALL_SUBSYSTEMS,
        allow_estimated_subsystems=True,
        allowed_points=frozenset(
            {
                MeasurementPoint.UPSTREAM_OF_CONVERSION,
                MeasurementPoint.DOWNSTREAM_MODELED_OFFLINE,
            }
        ),
    ),
    Level.L3: LevelSpec(
        level=Level.L3,
        max_sample_interval_s=None,  # continuously integrated energy
        min_window_core_fraction=1.0,
        min_window_seconds=0.0,
        window_within_middle80=False,
        machine_fraction=1.0,
        min_measured_watts=0.0,
        required_subsystems=_ALL_SUBSYSTEMS,
        allow_estimated_subsystems=False,
        allowed_points=frozenset(
            {
                MeasurementPoint.UPSTREAM_OF_CONVERSION,
                MeasurementPoint.DOWNSTREAM_MEASURED_SIMULTANEOUS,
            }
        ),
    ),
}


def machine_fraction_nodes(
    level: Level, n_nodes: int, node_power_watts: float
) -> int:
    """Minimum node count the level's machine-fraction rule requires.

    The greater of the fractional rule and the minimum-power rule
    (e.g. Level 1: the greater of N/64 or 2 kW worth of nodes), capped
    at the fleet size.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if node_power_watts <= 0:
        raise ValueError("node_power_watts must be positive")
    spec = LEVEL_SPECS[Level(level)]
    by_fraction = math.ceil(spec.machine_fraction * n_nodes - 1e-9)
    by_power = math.ceil(spec.min_measured_watts / node_power_watts - 1e-9)
    return min(max(by_fraction, by_power, 1), n_nodes)


@dataclass(frozen=True)
class MeasurementDescription:
    """A submission's description of how its power was measured."""

    level: Level
    n_nodes_total: int
    n_nodes_measured: int
    avg_node_power_watts: float
    window_start_fraction: float  # of the core phase
    window_end_fraction: float
    core_phase_seconds: float
    sample_interval_s: float | None  # None = continuously integrated
    subsystems_measured: frozenset = frozenset({Subsystem.COMPUTE_NODES})
    subsystems_estimated: frozenset = frozenset()
    measurement_point: MeasurementPoint = MeasurementPoint.UPSTREAM_OF_CONVERSION

    def __post_init__(self) -> None:
        if not (0 < self.n_nodes_measured <= self.n_nodes_total):
            raise ValueError("need 0 < measured <= total nodes")
        if not (0.0 <= self.window_start_fraction < self.window_end_fraction <= 1.0):
            raise ValueError("invalid window fractions")
        if self.core_phase_seconds <= 0:
            raise ValueError("core phase must be positive")
        if self.avg_node_power_watts <= 0:
            raise ValueError("node power must be positive")
        if self.sample_interval_s is not None and self.sample_interval_s <= 0:
            raise ValueError("sample interval must be positive")

    @property
    def window_fraction(self) -> float:
        """Measured fraction of the core phase."""
        return self.window_end_fraction - self.window_start_fraction

    @property
    def window_seconds(self) -> float:
        """Measured window length in seconds."""
        return self.window_fraction * self.core_phase_seconds

    @property
    def measured_watts(self) -> float:
        """Total power captured by the measured subset."""
        return self.n_nodes_measured * self.avg_node_power_watts


@dataclass(frozen=True)
class Violation:
    """One rule the measurement fails."""

    aspect: Aspect
    message: str

    def __str__(self) -> str:
        return f"[{self.aspect.value}] {self.message}"


def check_submission(desc: MeasurementDescription) -> list[Violation]:
    """Validate a measurement description against its claimed level.

    Returns the (possibly empty) list of violations; an empty list means
    the measurement complies with Table 1 for that level.
    """
    spec = LEVEL_SPECS[Level(desc.level)]
    violations: list[Violation] = []

    # 1a: granularity
    if spec.max_sample_interval_s is None:
        if desc.sample_interval_s is not None:
            violations.append(
                Violation(
                    Aspect.GRANULARITY,
                    "Level 3 requires continuously integrated energy, "
                    f"got discrete sampling at {desc.sample_interval_s:g} s",
                )
            )
    elif desc.sample_interval_s is not None and (
        desc.sample_interval_s > spec.max_sample_interval_s + 1e-9
    ):
        violations.append(
            Violation(
                Aspect.GRANULARITY,
                f"sample interval {desc.sample_interval_s:g} s coarser than "
                f"required {spec.max_sample_interval_s:g} s",
            )
        )

    # 1b: timing
    min_fraction = spec.min_window_core_fraction
    min_seconds = max(
        spec.min_window_seconds, min_fraction * desc.core_phase_seconds
    )
    if desc.window_seconds + 1e-9 < min_seconds:
        violations.append(
            Violation(
                Aspect.TIMING,
                f"window of {desc.window_seconds:.0f} s shorter than the "
                f"required {min_seconds:.0f} s",
            )
        )
    if spec.window_within_middle80 and (
        desc.window_start_fraction < 0.1 - 1e-9
        or desc.window_end_fraction > 0.9 + 1e-9
    ):
        violations.append(
            Violation(
                Aspect.TIMING,
                "window must lie within the middle 80% of the core phase",
            )
        )

    # 2: machine fraction
    required_nodes = machine_fraction_nodes(
        desc.level, desc.n_nodes_total, desc.avg_node_power_watts
    )
    if desc.n_nodes_measured < required_nodes:
        violations.append(
            Violation(
                Aspect.MACHINE_FRACTION,
                f"measured {desc.n_nodes_measured} nodes, rule requires "
                f"{required_nodes} (greater of {spec.machine_fraction:.4g} of "
                f"{desc.n_nodes_total} nodes or "
                f"{watts_to_kilowatts(spec.min_measured_watts):g} kW)",
            )
        )

    # 3: subsystems
    covered = desc.subsystems_measured | (
        desc.subsystems_estimated if spec.allow_estimated_subsystems else frozenset()
    )
    missing = spec.required_subsystems - covered
    if missing:
        names = ", ".join(sorted(s.value for s in missing))
        violations.append(
            Violation(Aspect.SUBSYSTEMS, f"subsystems not covered: {names}")
        )
    if not spec.allow_estimated_subsystems and desc.subsystems_estimated:
        names = ", ".join(sorted(s.value for s in desc.subsystems_estimated))
        violations.append(
            Violation(
                Aspect.SUBSYSTEMS,
                f"estimation not allowed at this level for: {names}",
            )
        )

    # 4: point of measurement
    if desc.measurement_point not in spec.allowed_points:
        violations.append(
            Violation(
                Aspect.MEASUREMENT_POINT,
                f"{desc.measurement_point.value!r} not acceptable at "
                f"Level {int(desc.level)}",
            )
        )
    return violations
