"""The sample-size rule (paper Eqs. 3–5) and Table 5.

The chain of reasoning:

1. Require the CI half-width to be at most ``λ·μ``  (Eq. 3):
   :math:`z_{1-\\alpha/2}\\,\\hat\\sigma/\\sqrt{n} \\le \\lambda\\mu`.
2. Solve for ``n``  (Eq. 4):
   :math:`n \\ge (z_{1-\\alpha/2}\\,/\\lambda \\cdot \\hat\\sigma/\\hat\\mu)^2`.
3. Apply the finite-population correction  (Eq. 5):
   :math:`n_0 = (z/\\lambda \\cdot \\hat\\sigma/\\hat\\mu)^2`,
   :math:`n = n_0 N / (n_0 + N - 1)`.

The only system knowledge required is the coefficient of variation
σ/μ, which the paper's survey pins to the 1.5–3% band for balanced
floating-point workloads (Table 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.confidence import t_quantile, z_quantile

__all__ = [
    "required_sample_size_infinite",
    "recommend_sample_size",
    "SampleSizeResult",
    "sample_size_table",
    "two_step_pilot_plan",
    "achieved_accuracy",
    "chernoff_hoeffding_sample_size",
]


def _check_params(cv: float, accuracy: float) -> None:
    if cv <= 0:
        raise ValueError(f"cv (σ/μ) must be positive, got {cv}")
    if accuracy <= 0:
        raise ValueError(f"accuracy (λ) must be positive, got {accuracy}")


def required_sample_size_infinite(
    cv: float, accuracy: float, confidence: float = 0.95
) -> float:
    """Equation 4's :math:`n_0` — the real-valued sample-size bound for
    an infinite fleet.  Callers round up.

    Parameters
    ----------
    cv:
        Coefficient of variation σ/μ of per-node power.
    accuracy:
        The paper's λ: maximum relative error, e.g. 0.01 for ±1%.
    confidence:
        Nominal CI coverage (1 − α), default 95%.
    """
    _check_params(cv, accuracy)
    z = z_quantile(confidence)
    return float((z / accuracy * cv) ** 2)


@dataclass(frozen=True)
class SampleSizeResult:
    """Outcome of the Eq. 5 two-step sample-size computation."""

    n: int
    n0: float
    n_exact: float
    cv: float
    accuracy: float
    confidence: float
    population: int

    def __str__(self) -> str:
        return (
            f"measure {self.n} of {self.population} nodes "
            f"(σ/μ={self.cv:.3f}, λ={self.accuracy:.3%}, "
            f"{self.confidence:.0%} confidence)"
        )


def recommend_sample_size(
    n_nodes: int,
    cv: float,
    accuracy: float = 0.01,
    confidence: float = 0.95,
) -> SampleSizeResult:
    """Equation 5: required node-subset size with finite-population
    correction.

    Parameters
    ----------
    n_nodes:
        Fleet size ``N``.
    cv:
        Coefficient of variation σ/μ; use 0.02–0.03 for balanced HPC
        workloads per the paper's survey, or a pilot estimate.
    accuracy:
        Maximum relative error λ (default ±1%).
    confidence:
        Nominal CI coverage (default 95%).
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    n0 = required_sample_size_infinite(cv, accuracy, confidence)
    n_exact = n0 * n_nodes / (n0 + n_nodes - 1.0)
    n = min(int(math.ceil(n_exact - 1e-9)), n_nodes)
    n = max(n, 2)  # an interval needs at least two measurements
    return SampleSizeResult(
        n=n, n0=n0, n_exact=float(n_exact), cv=cv, accuracy=accuracy,
        confidence=confidence, population=n_nodes,
    )


def sample_size_table(
    accuracies=(0.005, 0.01, 0.015, 0.02),
    cvs=(0.02, 0.03, 0.05),
    *,
    n_nodes: int = 10_000,
    confidence: float = 0.95,
) -> np.ndarray:
    """The paper's Table 5: recommended sample sizes over a (λ, σ/μ)
    grid for a conservative ``N = 10 000`` fleet.

    Returns an integer array of shape ``(len(accuracies), len(cvs))``.
    """
    out = np.empty((len(accuracies), len(cvs)), dtype=np.int64)
    for i, lam in enumerate(accuracies):
        for j, cv in enumerate(cvs):
            out[i, j] = recommend_sample_size(
                n_nodes, cv, lam, confidence
            ).n
    return out


def achieved_accuracy(
    n: int, n_nodes: int, cv: float, confidence: float = 0.95,
    *, method: str = "t",
) -> float:
    """Invert Eq. 5: the relative accuracy λ achieved by measuring ``n``
    of ``N`` nodes at the given σ/μ.

    This is the calculation behind the paper's Section 4 example: with
    σ/μ = 2%, measuring 4 of 210 nodes gives ±3.2% at 95% confidence
    (the t-quantile at 3 degrees of freedom — small samples must not
    borrow the normal quantile), while 292 of 18 688 nodes gives ±0.2%.
    """
    if not (2 <= n <= n_nodes):
        raise ValueError(f"need 2 <= n <= {n_nodes}, got n={n}")
    _check_params(cv, 1.0)
    if method == "t":
        q = t_quantile(confidence, n - 1)
    elif method == "z":
        q = z_quantile(confidence)
    else:
        raise ValueError(f"method must be 't' or 'z', got {method!r}")
    fpc = np.sqrt((n_nodes - n) / (n_nodes - 1.0)) if n_nodes > 1 else 0.0
    return float(q * cv / np.sqrt(n) * fpc)


def chernoff_hoeffding_sample_size(
    power_range: tuple[float, float],
    mean_power: float,
    accuracy: float = 0.01,
    confidence: float = 0.95,
) -> int:
    """The baseline rule the paper compares against: Davis et al.'s
    "very conservative Chernoff-Hoeffding bound".

    For per-node powers bounded in ``[a, b]``, Hoeffding's inequality
    gives ``P(|X̄ − μ| ≥ ε) ≤ 2·exp(−2nε²/(b−a)²)``; solving for ``n``
    at ``ε = λ·μ``::

        n ≥ (b − a)² · ln(2/α) / (2 (λ μ)²)

    Because it uses only the *range* — no distributional assumption —
    it demands far more nodes than Eq. 5 for the near-normal, balanced
    workloads the paper studies (Section 2.1: "for regular workloads
    ... a much less conservative bound is sufficient").
    """
    a, b = power_range
    if not (0.0 <= a < b):
        raise ValueError(f"need 0 <= a < b, got [{a}, {b}]")
    if not (a <= mean_power <= b):
        raise ValueError("mean_power must lie inside the power range")
    _check_params(1.0, accuracy)
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must be in (0, 1)")
    alpha = 1.0 - confidence
    eps = accuracy * mean_power
    n = (b - a) ** 2 * math.log(2.0 / alpha) / (2.0 * eps**2)
    return int(math.ceil(n - 1e-9))


def two_step_pilot_plan(
    n_nodes: int,
    pilot_measurements,
    accuracy: float = 0.01,
    confidence: float = 0.95,
    *,
    use_t: bool = True,
) -> SampleSizeResult:
    """The paper's two-step procedure: size the final sample from a
    small pilot (Section 4.2, "take a small initial sample (e.g. of
    n = 10 nodes) to obtain estimates of μ and σ").

    With ``use_t`` (default), the pilot's own uncertainty is respected
    by using the t-quantile at the pilot's degrees of freedom instead of
    the normal quantile — the conservative choice for pilots of ten.
    """
    pilot = np.asarray(pilot_measurements, dtype=float).ravel()
    if pilot.size < 2:
        raise ValueError("pilot needs at least two measurements")
    if np.any(~np.isfinite(pilot)) or np.any(pilot < 0):
        raise ValueError("pilot measurements must be finite and non-negative")
    mu = float(pilot.mean())
    if mu <= 0:
        raise ValueError("pilot mean power must be positive")
    cv = float(pilot.std(ddof=1)) / mu
    if cv == 0:
        # A perfectly uniform pilot: any subset of 2 suffices.
        return SampleSizeResult(
            n=2, n0=0.0, n_exact=0.0, cv=0.0, accuracy=accuracy,
            confidence=confidence, population=n_nodes,
        )
    q = (
        t_quantile(confidence, pilot.size - 1)
        if use_t
        else z_quantile(confidence)
    )
    n0 = float((q / accuracy * cv) ** 2)
    n_exact = n0 * n_nodes / (n0 + n_nodes - 1.0)
    n = max(min(int(math.ceil(n_exact - 1e-9)), n_nodes), 2)
    return SampleSizeResult(
        n=n, n0=n0, n_exact=float(n_exact), cv=cv, accuracy=accuracy,
        confidence=confidence, population=n_nodes,
    )
