"""The bootstrap calibration study (paper Section 4.2, Figure 3).

Procedure, repeated ``n_sims`` times for each candidate sample size
``n`` (quoting the paper):

1. Simulate a complete supercomputer of ``N`` nodes by resampling with
   replacement from the collection of nodes observed in the real data.
2. Generate a sample of ``n`` nodes by sampling without replacement
   from the full simulated supercomputer.
3. Using Equation 1, obtain a mean estimate along with 80%, 95% and
   99% confidence intervals from the sample.
4. Check whether the intervals contain the true mean power usage of the
   full ``N`` nodes.

Vectorisation note: the naive implementation materialises an
``n_sims × N`` population per replicate (10⁹ draws for LRZ); instead we
use the exchangeability of the resampled population — the ``n`` nodes
sampled *without* replacement from an iid-resampled population are
themselves iid draws from the pilot's empirical distribution, and the
remaining ``N − n`` nodes' total is a multinomial functional of the
pilot values.  Each replicate is then exact without ever building the
population, and all replicates for one ``n`` evaluate as one
``(n_sims, n)`` array operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.confidence import t_quantile, z_quantile

__all__ = ["CoverageResult", "coverage_study"]

_CHUNK = 20_000  # replicates per multinomial chunk (memory control)
_EXACT_REST_MAX = 2_000  # largest remainder drawn by exact multinomial


@dataclass(frozen=True)
class CoverageResult:
    """Coverage of nominal CIs across sample sizes (one Figure 3 panel).

    Attributes
    ----------
    sample_sizes:
        The ``n`` values simulated.
    confidences:
        Nominal levels, e.g. ``(0.80, 0.95, 0.99)``.
    coverage:
        Array of shape ``(len(confidences), len(sample_sizes))`` —
        fraction of replicates whose interval contained the simulated
        population mean.
    n_sims / population:
        Replicates per point and simulated fleet size ``N``.
    method:
        ``"t"`` (Eq. 1) or ``"z"`` (Eq. 2).
    system:
        Label of the pilot dataset.
    """

    sample_sizes: tuple
    confidences: tuple
    coverage: np.ndarray
    n_sims: int
    population: int
    method: str
    system: str = ""
    standard_error: np.ndarray = field(default=None, repr=False)

    def coverage_for(self, confidence: float) -> np.ndarray:
        """Coverage curve for one nominal level."""
        for i, c in enumerate(self.confidences):
            if abs(c - confidence) < 1e-12:
                return self.coverage[i]
        raise KeyError(f"confidence {confidence} not simulated")

    def max_miscalibration(self) -> float:
        """Largest |empirical − nominal| across all points."""
        nominal = np.asarray(self.confidences)[:, None]
        return float(np.abs(self.coverage - nominal).max())

    def is_calibrated(self, tolerance: float = 0.01) -> bool:
        """Whether all points sit within ``tolerance`` of nominal."""
        return self.max_miscalibration() <= tolerance


def coverage_study(
    pilot_watts,
    *,
    population: int,
    sample_sizes: Sequence[int] = (3, 5, 10, 15, 20, 30),
    confidences: Sequence[float] = (0.80, 0.95, 0.99),
    n_sims: int = 100_000,
    method: str = "t",
    rng: np.random.Generator | None = None,
    system: str = "",
) -> CoverageResult:
    """Run the Figure 3 calibration simulation.

    Parameters
    ----------
    pilot_watts:
        The observed per-node powers (the paper's "pilot sample", e.g.
        516 LRZ nodes).
    population:
        Size ``N`` of the simulated complete supercomputer.
    sample_sizes:
        Candidate subset sizes ``n`` (each must satisfy
        ``2 <= n <= population``).
    confidences:
        Nominal CI levels to check.
    n_sims:
        Replicates per (n, level) point; the paper uses 100 000.
    method:
        ``"t"`` for Equation 1 (the paper's procedure) or ``"z"`` for
        the Equation 2 approximation — comparing the two reproduces the
        Section 4.2 under-coverage discussion.
    """
    values = np.asarray(pilot_watts, dtype=float).ravel()
    if values.size < 2:
        raise ValueError("pilot needs at least two nodes")
    if not np.all(np.isfinite(values)):
        raise ValueError("pilot contains non-finite values")
    if population < max(sample_sizes):
        raise ValueError("population smaller than the largest sample size")
    if any(n < 2 for n in sample_sizes):
        raise ValueError("every sample size must be >= 2")
    if n_sims < 1:
        raise ValueError("n_sims must be >= 1")
    if method not in ("t", "z"):
        raise ValueError(f"method must be 't' or 'z', got {method!r}")
    if rng is None:
        rng = np.random.default_rng(0)

    k = values.size
    conf = tuple(float(c) for c in confidences)
    sizes = tuple(int(n) for n in sample_sizes)
    cov = np.empty((len(conf), len(sizes)))
    se = np.empty_like(cov)

    for j, n in enumerate(sizes):
        # Step 2 (via exchangeability): the sample is n iid draws from
        # the pilot's empirical distribution.
        idx = rng.integers(0, k, size=(n_sims, n))
        x = values[idx]
        mean_hat = x.mean(axis=1)
        sd_hat = x.std(axis=1, ddof=1)
        sem = sd_hat / np.sqrt(n)

        # Step 1's remaining N − n nodes: their sum is a multinomial
        # functional of the pilot values.  For small remainders it is
        # drawn exactly; for large ones (the usual case — thousands of
        # unmeasured nodes) its CLT limit with the empirical
        # distribution's exact first two moments is indistinguishable
        # (relative skew error O(m^{-1/2}) ≲ 1e-2 at m = 2000) and two
        # orders of magnitude faster than ``Generator.multinomial``.
        m = population - n
        rest_sum = np.empty(n_sims)
        if m == 0:
            rest_sum[:] = 0.0
        elif m <= _EXACT_REST_MAX:
            p = np.full(k, 1.0 / k)
            for lo in range(0, n_sims, _CHUNK):
                hi = min(lo + _CHUNK, n_sims)
                counts = rng.multinomial(m, p, size=hi - lo)
                rest_sum[lo:hi] = counts @ values
        else:
            mu_pop = values.mean()
            sd_pop = values.std(ddof=0)
            rest_sum = m * mu_pop + np.sqrt(m) * sd_pop * rng.standard_normal(
                n_sims
            )
        true_mean = (x.sum(axis=1) + rest_sum) / population

        err = np.abs(mean_hat - true_mean)
        for i, c in enumerate(conf):
            q = t_quantile(c, n - 1) if method == "t" else z_quantile(c)
            hits = err <= q * sem
            phat = float(hits.mean())
            cov[i, j] = phat
            se[i, j] = float(np.sqrt(max(phat * (1 - phat), 1e-12) / n_sims))

    return CoverageResult(
        sample_sizes=sizes,
        confidences=conf,
        coverage=cov,
        n_sims=int(n_sims),
        population=int(population),
        method=method,
        system=system,
        standard_error=se,
    )
