"""The bootstrap calibration study (paper Section 4.2, Figure 3).

Procedure, repeated ``n_sims`` times for each candidate sample size
``n`` (quoting the paper):

1. Simulate a complete supercomputer of ``N`` nodes by resampling with
   replacement from the collection of nodes observed in the real data.
2. Generate a sample of ``n`` nodes by sampling without replacement
   from the full simulated supercomputer.
3. Using Equation 1, obtain a mean estimate along with 80%, 95% and
   99% confidence intervals from the sample.
4. Check whether the intervals contain the true mean power usage of the
   full ``N`` nodes.

Vectorisation note: the naive implementation materialises an
``n_sims × N`` population per replicate (10⁹ draws for LRZ); instead we
use the exchangeability of the resampled population — the ``n`` nodes
sampled *without* replacement from an iid-resampled population are
themselves iid draws from the pilot's empirical distribution, and the
remaining ``N − n`` nodes' total is a multinomial functional of the
pilot values.  Each replicate is then exact without ever building the
population, and all replicates for one ``n`` evaluate as one
``(block, n)`` array operation.

Determinism and parallelism: the ``n_sims`` replicates for each
``(n, level)`` point are partitioned into fixed-size *blocks* of
:data:`RNG_BLOCK` replicates, and every block draws from its own
:class:`numpy.random.SeedSequence` child (spawned point-by-point,
block-by-block, in a fixed order from the caller's generator).  The
block — not the worker — is the unit of randomness, so executing the
blocks serially, on 2 workers, or on 7 workers produces bit-identical
coverage counts: per-block hit counts are integers and integer addition
is exact and order-independent.  ``jobs > 1`` farms block groups out to
a process pool.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.confidence import t_quantile, z_quantile

__all__ = ["CoverageResult", "coverage_study", "RNG_BLOCK"]

#: Replicates per RNG block — the unit of the draw stream.  Fixed so the
#: draws (and therefore the coverage counts) do not depend on how blocks
#: are grouped into worker chunks.
RNG_BLOCK = 5_000

_EXACT_REST_MAX = 2_000  # largest remainder drawn by exact multinomial


@dataclass(frozen=True)
class CoverageResult:
    """Coverage of nominal CIs across sample sizes (one Figure 3 panel).

    Attributes
    ----------
    sample_sizes:
        The ``n`` values simulated.
    confidences:
        Nominal levels, e.g. ``(0.80, 0.95, 0.99)``.
    coverage:
        Array of shape ``(len(confidences), len(sample_sizes))`` —
        fraction of replicates whose interval contained the simulated
        population mean.
    n_sims / population:
        Replicates per point and simulated fleet size ``N``.
    method:
        ``"t"`` (Eq. 1) or ``"z"`` (Eq. 2).
    system:
        Label of the pilot dataset.
    """

    sample_sizes: tuple
    confidences: tuple
    coverage: np.ndarray
    n_sims: int
    population: int
    method: str
    system: str = ""
    standard_error: np.ndarray = field(default=None, repr=False)

    def coverage_for(self, confidence: float) -> np.ndarray:
        """Coverage curve for one nominal level."""
        for i, c in enumerate(self.confidences):
            if abs(c - confidence) < 1e-12:
                return self.coverage[i]
        raise KeyError(f"confidence {confidence} not simulated")

    def max_miscalibration(self) -> float:
        """Largest |empirical − nominal| across all points."""
        nominal = np.asarray(self.confidences)[:, None]
        return float(np.abs(self.coverage - nominal).max())

    def is_calibrated(self, tolerance: float = 0.01) -> bool:
        """Whether all points sit within ``tolerance`` of nominal."""
        return self.max_miscalibration() <= tolerance


def _block_sizes(n_sims: int) -> list[int]:
    """Partition ``n_sims`` replicates into fixed-size RNG blocks."""
    full, rem = divmod(n_sims, RNG_BLOCK)
    return [RNG_BLOCK] * full + ([rem] if rem else [])


def _block_hits(
    values: np.ndarray,
    population: int,
    n: int,
    conf: tuple,
    method: str,
    n_block: int,
    seed_seq: np.random.SeedSequence,
) -> np.ndarray:
    """Hit counts (per confidence level) for one block of replicates.

    The block's draws come only from ``seed_seq``, so the result is a
    pure function of the arguments — independent of which worker runs
    it and of every other block.
    """
    rng = np.random.default_rng(seed_seq)
    k = values.size
    # Step 2 (via exchangeability): the sample is n iid draws from the
    # pilot's empirical distribution.
    idx = rng.integers(0, k, size=(n_block, n))
    x = values[idx]
    mean_hat = x.mean(axis=1)
    sd_hat = x.std(axis=1, ddof=1)
    sem = sd_hat / np.sqrt(n)

    # Step 1's remaining N − n nodes: their sum is a multinomial
    # functional of the pilot values.  For small remainders it is drawn
    # exactly; for large ones (the usual case — thousands of unmeasured
    # nodes) its CLT limit with the empirical distribution's exact
    # first two moments is indistinguishable (relative skew error
    # O(m^{-1/2}) ≲ 1e-2 at m = 2000) and two orders of magnitude
    # faster than ``Generator.multinomial``.
    m = population - n
    if m == 0:
        rest_sum = np.zeros(n_block)
    elif m <= _EXACT_REST_MAX:
        counts = rng.multinomial(m, np.full(k, 1.0 / k), size=n_block)
        rest_sum = counts @ values
    else:
        mu_pop = values.mean()
        sd_pop = values.std(ddof=0)
        rest_sum = m * mu_pop + np.sqrt(m) * sd_pop * rng.standard_normal(
            n_block
        )
    true_mean = (x.sum(axis=1) + rest_sum) / population

    err = np.abs(mean_hat - true_mean)
    hits = np.empty(len(conf), dtype=np.int64)
    for i, c in enumerate(conf):
        q = t_quantile(c, n - 1) if method == "t" else z_quantile(c)
        hits[i] = int(np.count_nonzero(err <= q * sem))
    return hits


def _chunk_hits(
    values: np.ndarray,
    population: int,
    conf: tuple,
    method: str,
    tasks: list[tuple[int, int, int, np.random.SeedSequence]],
) -> dict[int, np.ndarray]:
    """Sum block hit counts for one worker's share of the blocks.

    ``tasks`` is a list of ``(point_index, n, n_block, seed_seq)``
    entries; the return maps point index → summed hit counts.
    """
    out: dict[int, np.ndarray] = {}
    for j, n, n_block, seq in tasks:
        hits = _block_hits(values, population, n, conf, method, n_block, seq)
        if j in out:
            out[j] = out[j] + hits
        else:
            out[j] = hits
    return out


def coverage_study(
    pilot_watts,
    *,
    population: int,
    sample_sizes: Sequence[int] = (3, 5, 10, 15, 20, 30),
    confidences: Sequence[float] = (0.80, 0.95, 0.99),
    n_sims: int = 100_000,
    method: str = "t",
    rng: np.random.Generator | None = None,
    system: str = "",
    jobs: int | None = None,
) -> CoverageResult:
    """Run the Figure 3 calibration simulation.

    Parameters
    ----------
    pilot_watts:
        The observed per-node powers (the paper's "pilot sample", e.g.
        516 LRZ nodes).
    population:
        Size ``N`` of the simulated complete supercomputer.
    sample_sizes:
        Candidate subset sizes ``n`` (each must satisfy
        ``2 <= n <= population``).
    confidences:
        Nominal CI levels to check.
    n_sims:
        Replicates per (n, level) point; the paper uses 100 000.
    method:
        ``"t"`` for Equation 1 (the paper's procedure) or ``"z"`` for
        the Equation 2 approximation — comparing the two reproduces the
        Section 4.2 under-coverage discussion.
    jobs:
        Worker processes for the replicate blocks.  ``None`` or ``1``
        runs serially; any value produces bit-identical coverage (the
        RNG block, not the worker, is the unit of randomness).
    """
    values = np.asarray(pilot_watts, dtype=float).ravel()
    if values.size < 2:
        raise ValueError("pilot needs at least two nodes")
    if not np.all(np.isfinite(values)):
        raise ValueError("pilot contains non-finite values")
    if population < max(sample_sizes):
        raise ValueError("population smaller than the largest sample size")
    if any(n < 2 for n in sample_sizes):
        raise ValueError("every sample size must be >= 2")
    if n_sims < 1:
        raise ValueError("n_sims must be >= 1")
    if method not in ("t", "z"):
        raise ValueError(f"method must be 't' or 'z', got {method!r}")
    if rng is None:
        rng = np.random.default_rng(0)
    n_jobs = 1 if jobs is None else int(jobs)
    if n_jobs < 1:
        raise ValueError("jobs must be >= 1")

    conf = tuple(float(c) for c in confidences)
    sizes = tuple(int(n) for n in sample_sizes)

    # One SeedSequence child per (point, block), spawned in a fixed
    # order so every execution layout sees the same streams.
    point_seqs = rng.bit_generator.seed_seq.spawn(len(sizes))
    blocks = _block_sizes(int(n_sims))
    tasks: list[tuple[int, int, int, np.random.SeedSequence]] = []
    for j, n in enumerate(sizes):
        for n_block, seq in zip(blocks, point_seqs[j].spawn(len(blocks))):
            tasks.append((j, n, n_block, seq))

    hits = {j: np.zeros(len(conf), dtype=np.int64) for j in range(len(sizes))}
    if n_jobs == 1 or len(tasks) == 1:
        for j, partial in _chunk_hits(
            values, population, conf, method, tasks
        ).items():
            hits[j] += partial
    else:
        n_chunks = min(n_jobs * 2, len(tasks))
        chunks = [tasks[c::n_chunks] for c in range(n_chunks)]
        ctx = (
            multiprocessing.get_context("fork")
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        with ProcessPoolExecutor(
            max_workers=min(n_jobs, len(chunks)), mp_context=ctx
        ) as pool:
            futures = [
                pool.submit(
                    _chunk_hits, values, population, conf, method, chunk
                )
                for chunk in chunks
            ]
            for fut in futures:
                for j, partial in fut.result().items():
                    hits[j] += partial

    cov = np.empty((len(conf), len(sizes)))
    se = np.empty_like(cov)
    for j in range(len(sizes)):
        phat = hits[j] / float(n_sims)
        cov[:, j] = phat
        se[:, j] = np.sqrt(np.maximum(phat * (1 - phat), 1e-12) / n_sims)

    return CoverageResult(
        sample_sizes=sizes,
        confidences=conf,
        coverage=cov,
        n_sims=int(n_sims),
        population=int(population),
        method=method,
        system=system,
        standard_error=se,
    )
