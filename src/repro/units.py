"""Unit conversion helpers used throughout :mod:`repro`.

All internal computation is carried out in SI base-ish units:

* power in **watts** (``float``),
* energy in **joules**,
* time in **seconds**.

Paper tables report kilowatts and hours; these helpers keep the
conversions explicit at API boundaries so that no module ever guesses a
unit.  The functions are trivially vectorised: each accepts either a
scalar or a :class:`numpy.ndarray` and returns the same shape.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "watts_to_kilowatts",
    "kilowatts_to_watts",
    "watts_to_milliwatts",
    "milliwatts_to_watts",
    "watts_to_megawatts",
    "megawatts_to_watts",
    "joules_to_kilowatt_hours",
    "kilowatt_hours_to_joules",
    "seconds_to_hours",
    "hours_to_seconds",
    "seconds_to_minutes",
    "minutes_to_seconds",
    "flops_per_watt",
    "gflops_per_watt",
    "SECONDS_PER_MINUTE",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_DAY",
    "JOULES_PER_KWH",
    "MILLIWATTS_PER_WATT",
]

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 24.0 * SECONDS_PER_HOUR
JOULES_PER_KWH = 3.6e6
MILLIWATTS_PER_WATT = 1e3


def watts_to_kilowatts(watts):
    """Convert watts to kilowatts."""
    return np.asarray(watts, dtype=float) / 1e3 if np.ndim(watts) else float(watts) / 1e3


def kilowatts_to_watts(kilowatts):
    """Convert kilowatts to watts."""
    return np.asarray(kilowatts, dtype=float) * 1e3 if np.ndim(kilowatts) else float(kilowatts) * 1e3


def watts_to_milliwatts(watts):
    """Convert watts to milliwatts (the wire codecs' integer grid)."""
    if np.ndim(watts):
        return np.asarray(watts, dtype=float) * MILLIWATTS_PER_WATT
    return float(watts) * MILLIWATTS_PER_WATT


def milliwatts_to_watts(milliwatts):
    """Convert milliwatts to watts."""
    if np.ndim(milliwatts):
        return np.asarray(milliwatts, dtype=float) / MILLIWATTS_PER_WATT
    return float(milliwatts) / MILLIWATTS_PER_WATT


def watts_to_megawatts(watts):
    """Convert watts to megawatts."""
    return np.asarray(watts, dtype=float) / 1e6 if np.ndim(watts) else float(watts) / 1e6


def megawatts_to_watts(megawatts):
    """Convert megawatts to watts."""
    return np.asarray(megawatts, dtype=float) * 1e6 if np.ndim(megawatts) else float(megawatts) * 1e6


def joules_to_kilowatt_hours(joules):
    """Convert joules to kilowatt-hours."""
    return np.asarray(joules, dtype=float) / JOULES_PER_KWH if np.ndim(joules) else float(joules) / JOULES_PER_KWH


def kilowatt_hours_to_joules(kwh):
    """Convert kilowatt-hours to joules."""
    return np.asarray(kwh, dtype=float) * JOULES_PER_KWH if np.ndim(kwh) else float(kwh) * JOULES_PER_KWH


def seconds_to_hours(seconds):
    """Convert seconds to hours."""
    return np.asarray(seconds, dtype=float) / SECONDS_PER_HOUR if np.ndim(seconds) else float(seconds) / SECONDS_PER_HOUR


def hours_to_seconds(hours):
    """Convert hours to seconds."""
    return np.asarray(hours, dtype=float) * SECONDS_PER_HOUR if np.ndim(hours) else float(hours) * SECONDS_PER_HOUR


def seconds_to_minutes(seconds):
    """Convert seconds to minutes."""
    return np.asarray(seconds, dtype=float) / SECONDS_PER_MINUTE if np.ndim(seconds) else float(seconds) / SECONDS_PER_MINUTE


def minutes_to_seconds(minutes):
    """Convert minutes to seconds."""
    return np.asarray(minutes, dtype=float) * SECONDS_PER_MINUTE if np.ndim(minutes) else float(minutes) * SECONDS_PER_MINUTE


def flops_per_watt(flops: float, watts: float) -> float:
    """Energy efficiency in FLOPS/W — the Green500's ranking metric.

    Parameters
    ----------
    flops:
        Sustained floating-point rate (FLOP/s), e.g. the HPL Rmax.
    watts:
        Average power over the measured interval, in watts.
    """
    if watts <= 0.0:
        raise ValueError(f"power must be positive, got {watts!r} W")
    return float(flops) / float(watts)


def gflops_per_watt(gflops: float, watts: float) -> float:
    """Energy efficiency in GFLOPS/W, the unit the Green500 list prints."""
    return flops_per_watt(gflops * 1e9, watts) / 1e9
