"""Power meter models.

A meter turns the (conceptually continuous) power signal into the
numbers a site can actually submit.  Three imperfections matter for the
methodology:

* **Sampling granularity** — Level 1/2 require at least one sample per
  second; a coarser meter aliases the signal.
* **Calibration (gain) error** — a per-instrument multiplicative offset,
  fixed for the life of the measurement; the paper cites "the standard
  variance of power measurement equipment of 1–1.5%".
* **Per-sample noise** — white reading noise, mostly averaged away over
  long windows.

An *integrating* meter (Level 3's "continuously integrated energy")
accumulates true energy rather than sampling instantaneous power, so it
has no granularity error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.ops import resample
from repro.traces.powertrace import PowerTrace

__all__ = ["MeterSpec", "MeterReading", "PowerMeter"]


@dataclass(frozen=True)
class MeterSpec:
    """Instrument characteristics.

    Attributes
    ----------
    sample_interval_s:
        Spacing of instantaneous samples; ignored by integrating meters.
    gain_error_cv:
        Standard deviation of the instrument's multiplicative
        calibration error (drawn once per meter).
    sample_noise_cv:
        Per-sample multiplicative white-noise level.
    integrating:
        ``True`` for an energy-integrating (Level 3 class) instrument.
    """

    sample_interval_s: float = 1.0
    gain_error_cv: float = 0.01
    sample_noise_cv: float = 0.002
    integrating: bool = False

    def __post_init__(self) -> None:
        if self.sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        if self.gain_error_cv < 0 or self.sample_noise_cv < 0:
            raise ValueError("noise levels must be non-negative")

    @staticmethod
    def ideal() -> "MeterSpec":
        """A perfect meter — isolates methodology error from instrument
        error in experiments."""
        return MeterSpec(
            sample_interval_s=1.0,
            gain_error_cv=0.0,
            sample_noise_cv=0.0,
            integrating=True,
        )

    @staticmethod
    def level3_grade() -> "MeterSpec":
        """A vetted, SPEC-class integrating meter."""
        return MeterSpec(
            sample_interval_s=1.0,
            gain_error_cv=0.002,
            sample_noise_cv=0.0005,
            integrating=True,
        )


@dataclass(frozen=True)
class MeterReading:
    """What a meter reports for one measurement window."""

    average_watts: float
    energy_joules: float
    window_s: float
    n_samples: int

    def __post_init__(self) -> None:
        if self.average_watts < 0 or self.energy_joules < 0:
            raise ValueError("readings must be non-negative")
        if self.window_s <= 0:
            raise ValueError("window must be positive")


class PowerMeter:
    """One physical instrument with a fixed calibration draw.

    Parameters
    ----------
    spec:
        Instrument characteristics.
    rng:
        Source for the calibration draw and per-sample noise.  The gain
        error is drawn once at construction — re-measuring with the same
        meter repeats the same bias, as in reality.
    """

    def __init__(self, spec: MeterSpec, rng: np.random.Generator) -> None:
        self.spec = spec
        self._rng = rng
        self.gain = float(1.0 + spec.gain_error_cv * rng.standard_normal())
        if self.gain <= 0:
            # A >100σ draw would be needed; guard anyway.
            self.gain = 1e-3

    def __repr__(self) -> str:
        return (
            f"PowerMeter(interval={self.spec.sample_interval_s:g} s, "
            f"gain={self.gain:.4f}, integrating={self.spec.integrating})"
        )

    def measure(self, trace: PowerTrace, t0: float, t1: float) -> MeterReading:
        """Measure the signal over ``[t0, t1]``.

        An integrating meter reports the exact window energy (times its
        gain); a sampling meter averages instantaneous readings on its
        own grid, with per-sample noise.
        """
        if not (t0 < t1):
            raise ValueError(f"need t0 < t1, got [{t0}, {t1}]")
        window = trace.window(t0, t1)
        span = t1 - t0
        if self.spec.integrating:
            energy = window.energy() * self.gain
            return MeterReading(
                average_watts=energy / span,
                energy_joules=energy,
                window_s=span,
                n_samples=len(window),
            )
        sampled = resample(window, self.spec.sample_interval_s)
        readings = sampled.watts * self.gain
        if self.spec.sample_noise_cv > 0:
            readings = readings * (
                1.0 + self.spec.sample_noise_cv
                * self._rng.standard_normal(readings.size)
            )
        readings = np.maximum(readings, 0.0)
        avg = float(readings.mean())
        return MeterReading(
            average_watts=avg,
            energy_joules=avg * span,
            window_s=span,
            n_samples=int(readings.size),
        )
