"""Multi-meter measurement aggregation.

Section 2.1 notes that at supercomputer scale "several distributed
meters are often required to measure even a significant subset of a
system" — a Level 1 subset typically spans multiple rack PDUs, each
with its own calibration error.  A :class:`MeterBank` models that: the
measured nodes are partitioned across ``k`` instruments, each instrument
measures its group's summed power, and the reported subset power is the
sum of readings.

The statistics matter: with independent per-instrument gain errors of
spread ``g`` and roughly equal group powers, the aggregate gain error
shrinks like ``g/√k`` — distributing a measurement across more
independent meters *improves* calibration-limited accuracy, the
opposite intuition from sampling error.
"""

from __future__ import annotations

import numpy as np

from repro.metering.meter import MeterReading, MeterSpec, PowerMeter
from repro.rng import spawn
from repro.traces.synth import SimulatedRun

__all__ = ["allocate_nodes_to_meters", "MeterBank"]


def allocate_nodes_to_meters(
    node_indices: np.ndarray, n_meters: int, *, policy: str = "contiguous"
) -> list[np.ndarray]:
    """Partition measured nodes across instruments.

    Policies:

    * ``"contiguous"`` — consecutive node IDs share a meter (rack PDUs
      meter physical neighbours);
    * ``"striped"`` — round-robin (nodes cabled across PDUs for
      redundancy).
    """
    idx = np.asarray(node_indices, dtype=np.int64).ravel()
    if idx.size == 0:
        raise ValueError("no nodes to allocate")
    if not (1 <= n_meters <= idx.size):
        raise ValueError(
            f"need 1 <= n_meters <= {idx.size}, got {n_meters}"
        )
    if policy == "contiguous":
        groups = np.array_split(np.sort(idx), n_meters)
    elif policy == "striped":
        order = np.sort(idx)
        groups = [order[i::n_meters] for i in range(n_meters)]
    else:
        raise ValueError(f"unknown policy {policy!r}")
    return [np.asarray(g, dtype=np.int64) for g in groups if g.size]


class MeterBank:
    """``k`` independent instruments measuring disjoint node groups.

    Parameters
    ----------
    spec:
        Instrument class shared by the bank; each instrument draws its
        own calibration error.
    n_meters:
        Number of instruments.
    rng:
        Source for the per-instrument calibration draws.
    """

    def __init__(
        self, spec: MeterSpec, n_meters: int, rng: np.random.Generator
    ) -> None:
        if n_meters < 1:
            raise ValueError("n_meters must be >= 1")
        self.spec = spec
        self.meters = [
            PowerMeter(spec, child) for child in spawn(rng, n_meters)
        ]

    def __len__(self) -> int:
        return len(self.meters)

    @property
    def gains(self) -> np.ndarray:
        """Per-instrument calibration factors."""
        return np.array([m.gain for m in self.meters])

    def measure_subset(
        self,
        run: SimulatedRun,
        node_indices: np.ndarray,
        t0: float,
        t1: float,
        *,
        policy: str = "contiguous",
    ) -> MeterReading:
        """Measure a node subset over ``[t0, t1]`` with the bank.

        Nodes are partitioned per ``policy``; each instrument measures
        its group's summed trace; readings are summed.
        """
        groups = allocate_nodes_to_meters(
            node_indices, len(self.meters), policy=policy
        )
        total_avg = 0.0
        total_energy = 0.0
        n_samples = 0
        for meter, group in zip(self.meters, groups):
            trace = run.subset_trace(group)
            reading = meter.measure(trace, t0, t1)
            total_avg += reading.average_watts
            total_energy += reading.energy_joules
            n_samples += reading.n_samples
        return MeterReading(
            average_watts=total_avg,
            energy_joules=total_energy,
            window_s=t1 - t0,
            n_samples=n_samples,
        )

    def effective_gain(self, group_watts: np.ndarray | None = None) -> float:
        """The bank's aggregate calibration factor.

        With ``group_watts`` (per-instrument measured power) given, the
        power-weighted gain; otherwise the unweighted mean — the ``g/√k``
        averaging the module docstring describes.
        """
        gains = self.gains
        if group_watts is None:
            return float(gains.mean())
        w = np.asarray(group_watts, dtype=float)
        if w.shape != gains.shape:
            raise ValueError("group_watts length must equal n_meters")
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("group_watts must be non-negative, not all zero")
        return float((gains * w).sum() / w.sum())
