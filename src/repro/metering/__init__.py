"""Power metering substrate.

Models the measurement apparatus between the machine and the submitted
number: meters with finite sampling rate and calibration error
(:mod:`~repro.metering.meter`), the power-delivery hierarchy with
conversion losses (:mod:`~repro.metering.hierarchy`), node-subset
selection strategies including the adversarial ones the paper warns
about (:mod:`~repro.metering.subset`), and executable EE HPC WG
Level 1/2/3 measurement campaigns over simulated runs
(:mod:`~repro.metering.campaign`).
"""

from repro.metering.meter import MeterReading, MeterSpec, PowerMeter
from repro.metering.hierarchy import (
    ConversionStage,
    PowerDeliveryPath,
    TYPICAL_DELIVERY,
)
from repro.metering.subset import (
    SubsetStrategy,
    contiguous_subset,
    power_screened_subset,
    random_subset,
    vid_screened_subset,
)
from repro.metering.aggregate import MeterBank, allocate_nodes_to_meters
from repro.metering.campaign import CampaignResult, MeasurementCampaign

__all__ = [
    "MeterBank",
    "allocate_nodes_to_meters",
    "MeterReading",
    "MeterSpec",
    "PowerMeter",
    "ConversionStage",
    "PowerDeliveryPath",
    "TYPICAL_DELIVERY",
    "SubsetStrategy",
    "random_subset",
    "contiguous_subset",
    "power_screened_subset",
    "vid_screened_subset",
    "CampaignResult",
    "MeasurementCampaign",
]
