"""The power-delivery hierarchy and conversion losses.

Table 1's aspect 4 regulates *where* a measurement may be taken:
upstream of power conversion (so losses are included), or downstream
with the conversion loss modeled (L1: manufacturer data; L2: off-line
measurement) or measured simultaneously (L3).

We model the delivery path as a chain of conversion stages, each with
an efficiency; a meter at depth ``d`` sees the power after the first
``d`` stages.  Reconstructing the upstream value from a downstream
reading divides by the *assumed* efficiencies — and the gap between
assumed and actual efficiency is exactly the error the higher levels'
stricter rules bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ConversionStage", "PowerDeliveryPath", "TYPICAL_DELIVERY"]


@dataclass(frozen=True)
class ConversionStage:
    """One conversion step in the delivery path.

    Attributes
    ----------
    name:
        Stage label (``"PSU"``, ``"rack PDU"``, ``"busbar"``).
    efficiency:
        True fraction of input power delivered downstream, in (0, 1].
    datasheet_efficiency:
        What the manufacturer claims; used by modeled reconstruction at
        Level 1.  Defaults to the true value (an honest datasheet).
    """

    name: str
    efficiency: float
    datasheet_efficiency: float | None = None

    def __post_init__(self) -> None:
        if not (0.0 < self.efficiency <= 1.0):
            raise ValueError(f"{self.name}: efficiency must be in (0, 1]")
        ds = self.datasheet_efficiency
        if ds is not None and not (0.0 < ds <= 1.0):
            raise ValueError(f"{self.name}: datasheet efficiency out of range")

    @property
    def claimed(self) -> float:
        """Efficiency used for modeled reconstruction."""
        return (
            self.efficiency
            if self.datasheet_efficiency is None
            else self.datasheet_efficiency
        )


@dataclass(frozen=True)
class PowerDeliveryPath:
    """An ordered chain of conversion stages, upstream → downstream.

    ``stages[0]`` is the furthest upstream (e.g. the building
    transformer side); the IT load hangs below ``stages[-1]``.
    """

    stages: tuple

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("path needs at least one stage")
        if not all(isinstance(s, ConversionStage) for s in self.stages):
            raise TypeError("stages must be ConversionStage instances")

    # ------------------------------------------------------------------
    def efficiency_through(self, depth: int | None = None, *, claimed: bool = False) -> float:
        """Product of stage efficiencies through ``depth`` stages
        (default: the whole path)."""
        stages = self.stages if depth is None else self.stages[:depth]
        if depth is not None and not (0 <= depth <= len(self.stages)):
            raise ValueError(f"depth must be in [0, {len(self.stages)}]")
        effs = [s.claimed if claimed else s.efficiency for s in stages]
        return float(np.prod(effs)) if effs else 1.0

    def upstream_power(self, it_watts):
        """True power drawn upstream for a given IT load."""
        w = np.asarray(it_watts, dtype=float)
        if np.any(w < 0):
            raise ValueError("IT power must be non-negative")
        out = w / self.efficiency_through()
        return float(out) if np.ndim(it_watts) == 0 else out

    def power_at_depth(self, it_watts, depth: int):
        """True power flowing at measurement depth ``depth``.

        Depth 0 is fully upstream; depth ``len(stages)`` is at the IT
        load itself.
        """
        if not (0 <= depth <= len(self.stages)):
            raise ValueError(f"depth must be in [0, {len(self.stages)}]")
        w = np.asarray(it_watts, dtype=float)
        if np.any(w < 0):
            raise ValueError("IT power must be non-negative")
        # Power at depth d = upstream power × efficiency of first d stages.
        out = w / self.efficiency_through() * self.efficiency_through(depth)
        return float(out) if np.ndim(it_watts) == 0 else out

    def reconstruct_upstream(self, measured_watts, depth: int,
                             *, use_datasheet: bool = True):
        """Model a downstream reading back up to the upstream value.

        ``use_datasheet=True`` divides by the *claimed* stage
        efficiencies — what a Level 1 site with only manufacturer data
        can do; the gap to truth is the aspect-4 modeling error.
        ``use_datasheet=False`` uses the true efficiencies, modeling a
        Level 2 site that has measured its conversion chain off-line.
        """
        if not (0 <= depth <= len(self.stages)):
            raise ValueError(f"depth must be in [0, {len(self.stages)}]")
        w = np.asarray(measured_watts, dtype=float)
        if np.any(w < 0):
            raise ValueError("measured power must be non-negative")
        out = w / self.efficiency_through(depth, claimed=use_datasheet)
        return float(out) if np.ndim(measured_watts) == 0 else out


#: A typical data-centre delivery chain: transformer/UPS → rack PDU →
#: node PSU, with slightly optimistic PSU datasheets (the usual case —
#: 80 PLUS numbers are measured at favourable load points).
TYPICAL_DELIVERY = PowerDeliveryPath(
    stages=(
        ConversionStage("ups", efficiency=0.965),
        ConversionStage("rack-pdu", efficiency=0.985),
        ConversionStage("node-psu", efficiency=0.91, datasheet_efficiency=0.94),
    )
)
