"""Node-subset selection strategies.

The methodology assumes the measured subset is *representative*; the
paper shows two ways that assumption fails in practice and one way it
can be defeated deliberately:

* contiguous (rack-based) selection correlates with the thermal
  environment — racks share inlet temperature, so a cold aisle's rack
  under-represents fan power;
* screening nodes by power (or by GPU VID, Section 5: "by measuring
  only nodes with low VID, it is possible to obtain a favorably biased
  efficiency result") biases the extrapolation low.

All strategies return positional node indices into a
:class:`~repro.cluster.system.SystemModel` fleet.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.cluster.system import SystemModel

__all__ = [
    "SubsetStrategy",
    "random_subset",
    "contiguous_subset",
    "power_screened_subset",
    "vid_screened_subset",
]


class SubsetStrategy(enum.Enum):
    """Named selection strategies for experiments."""

    RANDOM = "random"
    CONTIGUOUS = "contiguous"
    POWER_SCREENED = "power-screened"
    VID_SCREENED = "vid-screened"


def _check_n(n: int, n_nodes: int) -> None:
    if not (1 <= n <= n_nodes):
        raise ValueError(f"need 1 <= n <= {n_nodes}, got {n}")


def random_subset(
    n_nodes: int, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform sampling without replacement — the methodology's intent."""
    _check_n(n, n_nodes)
    return np.sort(rng.choice(n_nodes, size=n, replace=False))


def contiguous_subset(
    n_nodes: int, n: int, rng: np.random.Generator
) -> np.ndarray:
    """A contiguous block of node IDs (one PDU / one rack) — what a site
    with a single instrumented rack actually measures."""
    _check_n(n, n_nodes)
    start = int(rng.integers(0, n_nodes - n + 1))
    return np.arange(start, start + n, dtype=np.int64)


def power_screened_subset(
    system: SystemModel, n: int, *, utilisation: float = 0.95,
    prefer: str = "low",
) -> np.ndarray:
    """Cherry-pick the ``n`` lowest- (or highest-) power nodes.

    The adversarial strategy: screening requires measuring (or
    profiling) candidates first, then reporting only the favourable
    ones.
    """
    _check_n(n, system.n_nodes)
    if prefer not in ("low", "high"):
        raise ValueError(f"prefer must be 'low' or 'high', got {prefer!r}")
    watts = system.node_total_powers(utilisation)
    order = np.argsort(watts, kind="stable")
    picked = order[:n] if prefer == "low" else order[-n:]
    return np.sort(picked)


def vid_screened_subset(
    system: SystemModel, n: int, *, prefer: str = "low",
) -> np.ndarray:
    """Screen GPU nodes by VID — the paper's Section 5 observation that
    VIDs are software-readable, so "if the voltage is not fixed, by
    measuring only nodes with low VID, it is possible to obtain a
    favorably biased efficiency result".

    Nodes are ranked by their mean GPU VID; ties broken by node id.
    ``prefer='mid'`` implements the paper's *mitigation* suggestion of
    measuring middle-VID nodes.
    """
    _check_n(n, system.n_nodes)
    if system.config.n_gpus == 0:
        raise ValueError(f"system {system.name!r} has no GPUs to screen")
    if prefer not in ("low", "high", "mid"):
        raise ValueError(f"prefer must be 'low', 'high' or 'mid', got {prefer!r}")
    fleet_vids = system._fleet().gpu_vids.mean(axis=1)
    order = np.argsort(fleet_vids, kind="stable")
    if prefer == "low":
        picked = order[:n]
    elif prefer == "high":
        picked = order[-n:]
    else:
        mid = system.n_nodes // 2
        lo = max(0, mid - n // 2)
        picked = order[lo : lo + n]
    return np.sort(picked)
