"""Executable EE HPC WG measurement campaigns.

A :class:`MeasurementCampaign` runs the Level 1/2/3 procedures of
Table 1 against a :class:`~repro.traces.synth.SimulatedRun` and returns
what the site would submit, alongside the ground truth the simulation
knows.  The spread of Level 1 results across window placements and
subset draws is the paper's headline finding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.methodology import (
    Level,
    MeasurementDescription,
    MeasurementPoint,
    Subsystem,
    machine_fraction_nodes,
)
from repro.core.windows import (
    MeasurementWindow,
    full_core_window,
    legal_level1_windows,
)
from repro.metering.hierarchy import PowerDeliveryPath
from repro.metering.meter import MeterReading, MeterSpec, PowerMeter
from repro.metering.subset import random_subset
from repro.rng import SeededStreams
from repro.traces.synth import SimulatedRun
from repro.units import watts_to_kilowatts

__all__ = ["CampaignResult", "MeasurementCampaign"]


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one measurement campaign.

    Attributes
    ----------
    level:
        The methodology level executed.
    reported_watts:
        The full-system average power the site would submit.
    true_watts:
        Ground truth: the run's full-core full-system average.
    window:
        The measurement window used (core-phase fractions).
    node_indices:
        The measured subset (positional fleet indices).
    reading:
        The raw meter reading (subset-level, before extrapolation).
    description:
        The formal :class:`MeasurementDescription` for rule checking.
    """

    level: Level
    reported_watts: float
    true_watts: float
    window: MeasurementWindow
    node_indices: np.ndarray
    reading: MeterReading
    description: MeasurementDescription

    @property
    def relative_error(self) -> float:
        """Signed error of the submission vs. ground truth."""
        return (self.reported_watts - self.true_watts) / self.true_watts

    def __str__(self) -> str:
        return (
            f"L{int(self.level)}: {watts_to_kilowatts(self.reported_watts):.1f} kW "
            f"(truth {watts_to_kilowatts(self.true_watts):.1f} kW, "
            f"{self.relative_error:+.2%}) window={self.window} "
            f"nodes={len(self.node_indices)}"
        )


class MeasurementCampaign:
    """Runs methodology-compliant measurements on a simulated run.

    Parameters
    ----------
    run:
        The simulated benchmark run to measure.
    meter_spec:
        Instrument model; defaults to a typical 1 Hz meter with 1%
        calibration spread.  Pass :meth:`MeterSpec.ideal` to isolate
        methodological error.
    delivery:
        Optional power-delivery path.  When given, the run's trace is
        treated as IT-side power: meters read at ``meter_depth`` and the
        site reconstructs the upstream value with the efficiencies its
        level permits (datasheet values at Level 1, off-line-measured
        true values at Level 2; Level 3 must meter upstream directly).
    meter_depth:
        Where in the path the instrument sits (0 = fully upstream).
    seed:
        Campaign-level seed for subset draws, window placement and
        meter calibration.
    """

    def __init__(
        self,
        run: SimulatedRun,
        *,
        meter_spec: MeterSpec | None = None,
        delivery: PowerDeliveryPath | None = None,
        meter_depth: int = 0,
        seed: int | None = None,
    ) -> None:
        self.run = run
        self.meter_spec = meter_spec or MeterSpec()
        self.delivery = delivery
        if delivery is not None and not (
            0 <= meter_depth <= len(delivery.stages)
        ):
            raise ValueError("meter_depth outside the delivery path")
        self.meter_depth = meter_depth
        self.streams = SeededStreams(run.seed if seed is None else seed)

    # ------------------------------------------------------------------
    def _node_power_estimate(self) -> float:
        """The rough per-node power a site uses to size its subset.

        Deliberately conservative (15% below the near-peak estimate):
        the minimum-power arm of the machine-fraction rule is checked
        against the *measured* average, which on a tail-heavy run is
        lower than any pre-run estimate — a subset sized without margin
        can come up one node short of compliance.
        """
        near_peak = self.run.system.system_power(0.9) / self.run.system.n_nodes
        return 0.85 * near_peak

    def _window_bounds(self, window: MeasurementWindow) -> tuple[float, float]:
        t0, t1 = self.run.core_window
        core_s = t1 - t0
        return window.to_absolute(t0, core_s)

    def _measure_window(
        self,
        meter: PowerMeter,
        indices: np.ndarray,
        window: MeasurementWindow,
        level: Level,
    ) -> MeterReading:
        trace = self.run.subset_trace(indices)
        if self.delivery is not None:
            watts = self.delivery.power_at_depth(trace.watts, self.meter_depth)
            trace = type(trace)(trace.times, watts)
        a, b = self._window_bounds(window)
        reading = meter.measure(trace, a, b)
        if self.delivery is not None:
            # Level 1 sites only have datasheet efficiencies; Levels 2/3
            # have off-line-measured (true) conversion losses.
            avg = self.delivery.reconstruct_upstream(
                reading.average_watts,
                self.meter_depth,
                use_datasheet=(level is Level.L1),
            )
            reading = MeterReading(
                average_watts=avg,
                energy_joules=avg * reading.window_s,
                window_s=reading.window_s,
                n_samples=reading.n_samples,
            )
        return reading

    def _describe(
        self, level: Level, indices: np.ndarray, window: MeasurementWindow,
        avg_node_watts: float, *, integrating: bool | None = None,
    ) -> MeasurementDescription:
        phases = self.run.workload.phases
        point = MeasurementPoint.UPSTREAM_OF_CONVERSION
        if self.delivery is not None and self.meter_depth > 0:
            point = (
                MeasurementPoint.DOWNSTREAM_MODELED_MANUFACTURER
                if level is Level.L1
                else MeasurementPoint.DOWNSTREAM_MODELED_OFFLINE
                if level is Level.L2
                else MeasurementPoint.DOWNSTREAM_MEASURED_SIMULTANEOUS
            )
        subsystems = frozenset({Subsystem.COMPUTE_NODES})
        estimated = (
            frozenset()
            if level is Level.L1
            else frozenset(
                {Subsystem.INTERCONNECT, Subsystem.STORAGE,
                 Subsystem.INFRASTRUCTURE_NODES}
            )
        )
        if level is Level.L3:
            subsystems = subsystems | estimated
            estimated = frozenset()
        return MeasurementDescription(
            level=level,
            n_nodes_total=self.run.system.n_nodes,
            n_nodes_measured=int(indices.size),
            avg_node_power_watts=avg_node_watts,
            window_start_fraction=window.start,
            window_end_fraction=window.end,
            core_phase_seconds=phases.core_s,
            sample_interval_s=(
                None
                if (self.meter_spec.integrating
                    if integrating is None else integrating)
                else self.meter_spec.sample_interval_s
            ),
            subsystems_measured=subsystems,
            subsystems_estimated=estimated,
            measurement_point=point,
        )

    def _finish(
        self, level: Level, indices: np.ndarray, window: MeasurementWindow,
        reading: MeterReading, *, integrating: bool | None = None,
    ) -> CampaignResult:
        scale = self.run.system.n_nodes / indices.size
        reported = reading.average_watts * scale
        avg_node = reading.average_watts / indices.size
        return CampaignResult(
            level=level,
            reported_watts=reported,
            true_watts=self.run.true_core_average(),
            window=window,
            node_indices=indices,
            reading=reading,
            description=self._describe(
                level, indices, window, avg_node, integrating=integrating
            ),
        )

    # ------------------------------------------------------------------
    def level1(
        self,
        *,
        window: MeasurementWindow | None = None,
        node_indices: np.ndarray | None = None,
        n_meters: int = 1,
        rng: np.random.Generator | None = None,
    ) -> CampaignResult:
        """Execute the (pre-2015) Level 1 procedure.

        Defaults draw a random legal window placement and a random
        subset of the minimum legal size — i.e. an honest but minimal
        submission.  Pass ``window``/``node_indices`` to model a
        specific (or adversarial) choice.  ``n_meters > 1`` splits the
        subset across a bank of independently calibrated instruments
        (the realistic multi-PDU configuration; gain errors then
        partially average out).
        """
        rng = rng or self.streams["level1"]
        system = self.run.system
        if node_indices is None:
            n = machine_fraction_nodes(
                Level.L1, system.n_nodes, self._node_power_estimate()
            )
            node_indices = random_subset(system.n_nodes, n, rng)
        else:
            node_indices = np.asarray(node_indices, dtype=np.int64)
        if window is None:
            core_s = self.run.workload.phases.core_s
            windows = legal_level1_windows(core_s, n_placements=512)
            window = windows[int(rng.integers(0, len(windows)))]
        if n_meters <= 1:
            meter = PowerMeter(self.meter_spec, self.streams["meter-l1"])
            reading = self._measure_window(
                meter, node_indices, window, Level.L1
            )
        else:
            if self.delivery is not None:
                raise ValueError(
                    "meter banks and delivery-chain modeling cannot "
                    "currently be combined"
                )
            from repro.metering.aggregate import MeterBank

            bank = MeterBank(
                self.meter_spec, n_meters, self.streams["meter-bank-l1"]
            )
            a, b = self._window_bounds(window)
            reading = bank.measure_subset(self.run, node_indices, a, b)
        return self._finish(Level.L1, node_indices, window, reading)

    def level2(
        self,
        *,
        node_indices: np.ndarray | None = None,
        n_windows: int = 10,
        rng: np.random.Generator | None = None,
    ) -> CampaignResult:
        """Execute the Level 2 procedure: ten equally spaced averaged
        measurements spanning the full core phase, on at least 1/8 of
        the nodes (or 10 kW)."""
        if n_windows < 1:
            raise ValueError("n_windows must be >= 1")
        rng = rng or self.streams["level2"]
        system = self.run.system
        if node_indices is None:
            n = machine_fraction_nodes(
                Level.L2, system.n_nodes, self._node_power_estimate()
            )
            node_indices = random_subset(system.n_nodes, n, rng)
        else:
            node_indices = np.asarray(node_indices, dtype=np.int64)
        meter = PowerMeter(self.meter_spec, self.streams["meter-l2"])
        edges = np.linspace(0.0, 1.0, n_windows + 1)
        averages = []
        for a, b in zip(edges[:-1], edges[1:]):
            sub = MeasurementWindow(float(a), float(b))
            averages.append(
                self._measure_window(meter, node_indices, sub, Level.L2)
                .average_watts
            )
        core_s = self.run.workload.phases.core_s
        avg = float(np.mean(averages))
        reading = MeterReading(
            average_watts=avg,
            energy_joules=avg * core_s,
            window_s=core_s,
            n_samples=n_windows,
        )
        result = self._finish(
            Level.L2, node_indices, full_core_window(), reading
        )
        # Level 2 must cover all participating subsystems; shared
        # infrastructure may be *estimated* (Table 1 aspect 3), and the
        # estimate carries the site's systematic error.
        shared = self.run.system.shared
        if shared is not None and not shared.is_zero:
            estimate = shared.estimate(self.run.workload.mean_utilisation())
            result = CampaignResult(
                level=result.level,
                reported_watts=result.reported_watts + estimate,
                true_watts=result.true_watts,
                window=result.window,
                node_indices=result.node_indices,
                reading=result.reading,
                description=result.description,
            )
        return result

    def level3(self) -> CampaignResult:
        """Execute the Level 3 procedure: continuously integrated energy
        of the whole machine — compute nodes *and* shared subsystems —
        across the full core phase."""
        system = self.run.system
        indices = np.arange(system.n_nodes, dtype=np.int64)
        spec = self.meter_spec
        if not spec.integrating:
            spec = MeterSpec(
                sample_interval_s=spec.sample_interval_s,
                gain_error_cv=spec.gain_error_cv,
                sample_noise_cv=spec.sample_noise_cv,
                integrating=True,
            )
        meter = PowerMeter(spec, self.streams["meter-l3"])
        window = full_core_window()
        a, b = self._window_bounds(window)
        # The whole-machine meter sits upstream of everything, so it
        # reads the full-system trace (which includes any shared
        # infrastructure), not the per-node sum.
        reading = meter.measure(self.run.trace, a, b)
        return self._finish(
            Level.L3, indices, window, reading, integrating=True
        )
