"""Process-pool scheduler for the experiment sweep.

Scheduling policy: longest-first.  With ``J`` workers and one dominant
experiment (V1's timing-variance study is ~70% of the serial sweep),
makespan is minimised by starting the long jobs first so short ones
pack around them; ordering comes from the durations recorded in the
cache on previous runs, falling back to :data:`FALLBACK_DURATIONS_S`
(one measured paper-scale sweep) and treating unknown experiments as
potentially long.

Isolation: each experiment runs in its own pool task and a raising
experiment is returned as a :class:`~repro.experiments.base.FailedResult`
carrying the worker traceback — the rest of the sweep completes, and
the runner's exit status goes nonzero.

Determinism: experiments are pure functions of their seeds and share no
state, so neither the pool layout nor completion order can change any
result; the scheduler reassembles results in the caller's id order so
rendered records are byte-identical to a serial run.

This module is ``nondeterminism-exempt`` in the lint config: it reads
the wall clock, but only to report and record durations — never to
influence a result.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable

from repro.experiments.base import ExperimentResult, FailedResult
from repro.parallel.cache import ResultCache
from repro.parallel.hashing import experiment_fingerprint

__all__ = ["FALLBACK_DURATIONS_S", "RunRecord", "longest_first", "run_experiments"]

#: Wall-clock seconds per experiment from one paper-scale serial sweep
#: (single core) — the scheduling prior before any recorded durations
#: exist.  Only the ordering matters, not the absolute values.
FALLBACK_DURATIONS_S: dict[str, float] = {
    "V1": 22.2,
    "T2": 4.3,
    "X-STR": 1.8,
    "F3": 0.6,
    "R1": 0.5,
    "F1": 0.4,
    "X6": 0.3,
    "G1": 0.2,
    "X4": 0.09,
    "X1": 0.07,
    "F2": 0.06,
    "Z1": 0.06,
    "X2": 0.04,
    "X5": 0.01,
    "T4": 0.005,
    "T5": 0.005,
    "F4": 0.005,
    "S1": 0.005,
    "X3": 0.005,
}


@dataclass
class RunRecord:
    """How one experiment's result was obtained."""

    experiment_id: str
    result: ExperimentResult
    duration_s: float
    from_cache: bool = False
    error: str | None = None

    @property
    def failed(self) -> bool:
        """Whether the experiment raised instead of returning."""
        return self.error is not None


def longest_first(
    ids: list[str], durations_s: dict[str, float]
) -> list[str]:
    """Order ids longest-first; unknown durations run first.

    Unknown experiments are scheduled ahead of known ones (they might be
    long, and starting a long job late is the one unrecoverable
    scheduling mistake); ties keep the caller's order (stable sort).
    """
    return sorted(
        ids,
        key=lambda i: -durations_s.get(i, float("inf")),
    )


def _execute(
    experiment_id: str, fn: Callable[[], ExperimentResult]
) -> tuple[str, ExperimentResult | None, str | None, float]:
    """Run one experiment, trapping any exception into a traceback."""
    t0 = time.perf_counter()
    try:
        result = fn()
        return experiment_id, result, None, time.perf_counter() - t0
    except Exception:
        return (
            experiment_id,
            None,
            traceback.format_exc(),
            time.perf_counter() - t0,
        )


def _fingerprints(
    registry: dict[str, Callable[[], ExperimentResult]], ids: list[str]
) -> dict[str, str]:
    """Cache keys per id; ids whose module cannot be hashed are skipped
    (they run uncached — e.g. an experiment injected by a test)."""
    keys: dict[str, str] = {}
    for exp_id in ids:
        module = getattr(registry[exp_id], "__module__", None)
        if not module:
            continue
        try:
            keys[exp_id] = experiment_fingerprint(exp_id, module)
        except (ValueError, OSError):
            continue
    return keys


def _pool_context():
    """Prefer fork (fast start, inherits warmed caches) where available."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None  # pragma: no cover - non-POSIX fallback


def run_experiments(
    registry: dict[str, Callable[[], ExperimentResult]],
    ids: list[str],
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    refresh: bool = False,
) -> dict[str, RunRecord]:
    """Execute ``ids`` from ``registry``, in parallel and/or from cache.

    Parameters
    ----------
    registry:
        Experiment id → zero-argument runner.
    jobs:
        Worker processes; ``None``/``1`` executes in-process (still with
        failure isolation and caching).
    cache:
        Result cache to replay hits from and store misses into.
    refresh:
        Re-run every experiment even on a cache hit (hits are
        overwritten with the fresh result).

    Returns records keyed in the order of ``ids`` regardless of
    completion order, so rendered output is byte-stable.
    """
    n_jobs = 1 if jobs is None else int(jobs)
    if n_jobs < 1:
        raise ValueError("jobs must be >= 1")

    records: dict[str, RunRecord] = {}
    keys = _fingerprints(registry, ids) if cache is not None else {}

    pending: list[str] = []
    for exp_id in ids:
        key = keys.get(exp_id)
        cached = (
            cache.lookup(key)
            if cache is not None and key is not None and not refresh
            else None
        )
        if cached is not None:
            records[exp_id] = RunRecord(
                experiment_id=exp_id,
                result=cached,
                duration_s=0.0,
                from_cache=True,
            )
        else:
            pending.append(exp_id)

    durations_prior = dict(FALLBACK_DURATIONS_S)
    if cache is not None:
        durations_prior.update(cache.durations())
    ordered = longest_first(pending, durations_prior)

    outcomes: list[tuple[str, ExperimentResult | None, str | None, float]] = []
    if n_jobs == 1 or len(ordered) <= 1:
        for exp_id in ordered:
            outcomes.append(_execute(exp_id, registry[exp_id]))
    else:
        with ProcessPoolExecutor(
            max_workers=min(n_jobs, len(ordered)),
            mp_context=_pool_context(),
        ) as pool:
            futures = {
                pool.submit(_execute, exp_id, registry[exp_id]): exp_id
                for exp_id in ordered
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(
                    remaining, return_when=FIRST_COMPLETED
                )
                for fut in done:
                    try:
                        outcomes.append(fut.result())
                    except Exception:
                        # The worker died or its result would not
                        # pickle; record the failure, keep the sweep.
                        outcomes.append(
                            (
                                futures[fut],
                                None,
                                traceback.format_exc(),
                                0.0,
                            )
                        )

    observed_durations_s: dict[str, float] = {}
    for exp_id, result, error, duration_s in outcomes:
        if error is not None:
            result = FailedResult(exp_id, error)
        else:
            observed_durations_s[exp_id] = duration_s
            key = keys.get(exp_id)
            if cache is not None and key is not None:
                cache.store(key, result)
        records[exp_id] = RunRecord(
            experiment_id=exp_id,
            result=result,
            duration_s=duration_s,
            from_cache=False,
            error=error,
        )
    if cache is not None:
        cache.record_durations(observed_durations_s)

    return {exp_id: records[exp_id] for exp_id in ids}
