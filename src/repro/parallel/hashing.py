"""Content hashing for the experiment result cache.

A cached result may be replayed only while re-running the experiment
would produce the same bytes.  Since every experiment is a pure function
of ``(code, parameters, seed)`` — the invariant the :mod:`repro.checks`
rules enforce — the cache key is a digest of:

* the experiment's module source and the source of every ``repro.*``
  module it (transitively) imports — the *import closure*, so an edit
  to a shared helper such as :mod:`repro.core.coverage` invalidates the
  experiments that use it and no others;
* the parameters the runner will call it with;
* the interpreter and NumPy versions (different float paths can change
  low-order bits).

Sources are hashed by their AST dump, not their bytes: comments, blank
lines and reformatting do not invalidate; any change the parser can see
(including docstrings and constants) does.  Files that fail to parse
fall back to a raw byte hash, so a mid-edit syntax error still misses.
"""

from __future__ import annotations

import ast
import hashlib
import importlib.util
import json
import sys
from pathlib import Path

import numpy as np

__all__ = [
    "closure_digest",
    "experiment_fingerprint",
    "import_closure",
    "normalized_source_digest",
]


def normalized_source_digest(source: str) -> str:
    """SHA-256 of the source's AST dump (whitespace/comment-insensitive).

    Falls back to hashing the raw text when the source does not parse.
    """
    try:
        payload = ast.dump(ast.parse(source))
    except SyntaxError:
        payload = source
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _package_root(package: str) -> Path:
    spec = importlib.util.find_spec(package)
    if spec is None or not spec.submodule_search_locations:
        raise ValueError(f"cannot locate package {package!r}")
    return Path(next(iter(spec.submodule_search_locations)))


def _module_path(name: str, package: str, root: Path) -> Path | None:
    """Resolve a dotted module name to a file under ``root`` (or None)."""
    if name != package and not name.startswith(package + "."):
        return None
    parts = name.split(".")[1:]
    base = root.joinpath(*parts) if parts else root
    for candidate in (base.with_suffix(".py"), base / "__init__.py"):
        if candidate.is_file():
            return candidate
    return None


def _imported_names(tree: ast.AST, module: str, package: str) -> set[str]:
    """Dotted names a module's import statements could bind.

    ``from pkg.a import b`` contributes both ``pkg.a`` and ``pkg.a.b``
    (the latter matters when ``b`` is itself a submodule); relative
    imports resolve against the importing module's package.
    """
    parent = module.rsplit(".", 1)[0] if "." in module else module
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                hops = parent.split(".")
                if node.level > 1:
                    hops = hops[: -(node.level - 1)]
                base = ".".join(hops)
                target = f"{base}.{node.module}" if node.module else base
            else:
                target = node.module or ""
            if not target:
                continue
            names.add(target)
            for alias in node.names:
                names.add(f"{target}.{alias.name}")
    return {
        n for n in names if n == package or n.startswith(package + ".")
    }


def import_closure(
    module: str, *, package: str = "repro", root: Path | None = None
) -> dict[str, Path]:
    """The module plus every in-package module it transitively imports.

    Parameters
    ----------
    module:
        Dotted module name, e.g. ``"repro.experiments.figure3"``.
    package:
        Root package whose internals participate in the closure; imports
        outside it (numpy, stdlib) are environment, not content, and are
        covered by the version fields of the fingerprint.
    root:
        Directory of the package's source (defaults to the installed
        location of ``package``) — injectable so tests can hash a
        synthetic package tree.
    """
    if root is None:
        root = _package_root(package)
    start = _module_path(module, package, root)
    if start is None:
        raise ValueError(
            f"cannot resolve module {module!r} under {root}"
        )
    closure: dict[str, Path] = {module: start}
    queue = [module]
    while queue:
        name = queue.pop()
        path = closure[name]
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError:
            continue  # still hashed (raw bytes); just not walkable
        for dep in _imported_names(tree, name, package):
            if dep in closure:
                continue
            dep_path = _module_path(dep, package, root)
            if dep_path is None:
                continue  # an attribute, not a submodule
            closure[dep] = dep_path
            queue.append(dep)
    return closure


def closure_digest(
    module: str, *, package: str = "repro", root: Path | None = None
) -> str:
    """One digest over the normalised sources of the import closure."""
    closure = import_closure(module, package=package, root=root)
    h = hashlib.sha256()
    for name in sorted(closure):
        h.update(name.encode("utf-8"))
        h.update(b"\x00")
        source = closure[name].read_text(encoding="utf-8")
        h.update(normalized_source_digest(source).encode("ascii"))
        h.update(b"\x00")
    return h.hexdigest()


def experiment_fingerprint(
    experiment_id: str,
    module: str,
    params: dict | None = None,
    *,
    package: str = "repro",
    root: Path | None = None,
) -> str:
    """Content-addressed cache key for one experiment invocation."""
    payload = {
        "id": experiment_id,
        "module": module,
        "params": params or {},
        "code": closure_digest(module, package=package, root=root),
        "python": f"{sys.version_info.major}.{sys.version_info.minor}",
        "numpy": np.__version__,
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
