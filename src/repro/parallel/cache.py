"""Content-addressed on-disk result cache.

Layout (under ``.repro-cache/`` by default)::

    .repro-cache/
    ├── results/<k0k1>/<key>.pkl   one entry per fingerprint: a 64-char
    │                              SHA-256 of the pickled payload, a
    │                              newline, then the payload itself
    ├── durations.json             experiment id → last observed wall
    │                              seconds (drives longest-first
    │                              scheduling)
    └── CACHEDIR.TAG               marks the tree as disposable

Entries are immutable: a key is a digest of the experiment's code
closure and parameters (:mod:`repro.parallel.hashing`), so a hit can
simply be unpickled and returned.  Anything wrong with an entry — short
file, checksum mismatch, unpicklable payload — is treated as a miss: the
entry is deleted and a :class:`RuntimeWarning` is emitted, because a
corrupted cache must degrade to recomputation, never to a crash or (far
worse) a silently wrong result.

Writes go through a temporary file and :func:`os.replace` so a reader
never observes a half-written entry, and concurrent writers of the same
key are idempotent (same key ⇒ same bytes).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import warnings
from pathlib import Path

__all__ = ["ResultCache", "DEFAULT_CACHE_DIR"]

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

_TAG_CONTENT = (
    "Signature: 8a477f597d28d172789f06886806bc55\n"
    "# Result cache for repro experiments (safe to delete).\n"
)


class ResultCache:
    """Content-addressed store of pickled experiment results."""

    def __init__(self, root: str | os.PathLike = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    # -- entries -------------------------------------------------------
    def entry_path(self, key: str) -> Path:
        """Where a fingerprint's entry lives (existing or not)."""
        return self.root / "results" / key[:2] / f"{key}.pkl"

    def lookup(self, key: str):
        """Return the cached object for ``key``, or ``None`` on a miss.

        A corrupted entry counts as a miss: it is deleted and a
        :class:`RuntimeWarning` is emitted.
        """
        path = self.entry_path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        reason = None
        if len(blob) < 65 or blob[64:65] != b"\n":
            reason = "malformed header"
        else:
            digest, payload = blob[:64], blob[65:]
            if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
                reason = "checksum mismatch"
            else:
                try:
                    return pickle.loads(payload)
                except Exception as exc:  # any unpickle error is a miss
                    reason = f"unpicklable payload ({exc.__class__.__name__})"
        warnings.warn(
            f"discarding corrupted cache entry {path.name}: {reason}",
            RuntimeWarning,
            stacklevel=2,
        )
        self._discard(path)
        return None

    def store(self, key: str, result) -> Path:
        """Write ``result`` under ``key`` (atomic); returns the path."""
        path = self.entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._write_tag()
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        tmp.write_bytes(digest + b"\n" + payload)
        os.replace(tmp, path)
        return path

    # -- durations -----------------------------------------------------
    @property
    def _durations_path(self) -> Path:
        return self.root / "durations.json"

    def durations(self) -> dict[str, float]:
        """Last observed wall-clock seconds per experiment id."""
        try:
            raw = json.loads(self._durations_path.read_text("utf-8"))
        except (OSError, ValueError):
            return {}
        if not isinstance(raw, dict):
            return {}
        out: dict[str, float] = {}
        for exp_id, duration_s in raw.items():
            try:
                out[str(exp_id)] = float(duration_s)
            except (TypeError, ValueError):
                continue
        return out

    def record_durations(self, durations_s: dict[str, float]) -> None:
        """Merge observed ``{experiment id: seconds}`` into the record."""
        if not durations_s:
            return
        merged = self.durations()
        merged.update({k: float(v) for k, v in durations_s.items()})
        self.root.mkdir(parents=True, exist_ok=True)
        self._write_tag()
        tmp = self._durations_path.with_suffix(f".tmp-{os.getpid()}")
        tmp.write_text(
            json.dumps(merged, sort_keys=True, indent=1), encoding="utf-8"
        )
        os.replace(tmp, self._durations_path)

    # -- internals -----------------------------------------------------
    def _write_tag(self) -> None:
        tag = self.root / "CACHEDIR.TAG"
        if not tag.exists():
            try:
                tag.write_text(_TAG_CONTENT, encoding="utf-8")
            except OSError:  # pragma: no cover - best effort only
                pass

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - already gone / read-only
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({str(self.root)!r})"
