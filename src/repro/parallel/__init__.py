"""Parallel experiment execution with content-addressed result caching.

Three layers, each usable on its own:

* :mod:`repro.parallel.hashing` — AST-normalised source hashing over an
  experiment module and its in-package import closure, so a cache key
  changes exactly when code that could change the result changes (and
  *not* for comments, blank lines or reformatting).
* :mod:`repro.parallel.cache` — the content-addressed on-disk result
  cache under ``.repro-cache/`` (checksummed pickles; corrupted entries
  are discarded with a warning, never raised), plus the recorded
  per-experiment durations that drive scheduling.
* :mod:`repro.parallel.scheduler` — the process-pool scheduler used by
  :func:`repro.experiments.runner.run_all`: longest-first ordering from
  recorded durations, per-experiment isolation (a crash becomes a
  recorded :class:`~repro.experiments.base.FailedResult`, not a dead
  sweep), and cache replay.

Determinism contract: every experiment is a pure function of its seed,
so executing them in any order, in any number of processes, or from the
cache produces byte-identical EXPERIMENTS.md records — enforced by the
golden regression test (``tests/experiments/test_runner_golden.py``).
"""

from repro.parallel.cache import ResultCache
from repro.parallel.hashing import (
    closure_digest,
    experiment_fingerprint,
    import_closure,
    normalized_source_digest,
)
from repro.parallel.scheduler import RunRecord, run_experiments

__all__ = [
    "ResultCache",
    "RunRecord",
    "closure_digest",
    "experiment_fingerprint",
    "import_closure",
    "normalized_source_digest",
    "run_experiments",
]
