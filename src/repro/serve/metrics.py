"""Structured per-request service metrics.

Everything the operator needs to see at ``/metrics``: request counts
by route and status, latency moments per route (on the service clock —
simulated seconds under a :class:`~repro.stream.ingest.SimClock`, so
the numbers are deterministic in tests), reject counts by reason, and
ingest volume.  Gauges that live elsewhere (session counts, queue
depths) are passed in at render time by the app, which owns them.

The latency estimator reuses :class:`~repro.stream.estimators.RunningMoments`
— the same single-pass Welford core the telemetry path trusts — rather
than growing a parallel stats implementation.
"""

from __future__ import annotations

from repro.stream.estimators import RunningMoments

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """Counters and latency moments for the service."""

    def __init__(self) -> None:
        self._requests: dict[tuple[str, int], int] = {}
        self._latency: dict[str, RunningMoments] = {}
        self._rejects: dict[str, int] = {}
        self.batches_ingested = 0
        self.samples_ingested = 0
        self.bytes_ingested = 0

    # ------------------------------------------------------------------
    def observe_request(
        self, route: str, status: int, latency_s: float
    ) -> None:
        """Record one finished request."""
        key = (route, int(status))
        self._requests[key] = self._requests.get(key, 0) + 1
        moments = self._latency.get(route)
        if moments is None:
            moments = self._latency[route] = RunningMoments()
        moments.push(max(0.0, float(latency_s)))

    def observe_reject(self, reason: str) -> None:
        """Record one refused request (rate limit, quota, backpressure)."""
        self._rejects[reason] = self._rejects.get(reason, 0) + 1

    def observe_ingest(self, *, n_batches: int, n_samples: int,
                       n_bytes: int) -> None:
        """Record accepted ingest volume."""
        self.batches_ingested += n_batches
        self.samples_ingested += n_samples
        self.bytes_ingested += n_bytes

    # ------------------------------------------------------------------
    @property
    def requests_total(self) -> int:
        """All requests observed, any route or status."""
        return sum(self._requests.values())

    def requests_by_status(self) -> dict[int, int]:
        """Request counts keyed by HTTP status."""
        out: dict[int, int] = {}
        for (_, status), count in self._requests.items():
            out[status] = out.get(status, 0) + count
        return out

    def to_dict(self, **gauges: object) -> dict:
        """The ``/metrics`` document; extra gauges merge in verbatim."""
        routes: dict[str, dict] = {}
        for (route, status), count in sorted(self._requests.items()):
            entry = routes.setdefault(route, {"by_status": {}, "total": 0})
            entry["by_status"][str(status)] = count
            entry["total"] += count
        for route, moments in self._latency.items():
            entry = routes.setdefault(route, {"by_status": {}, "total": 0})
            entry["latency"] = {
                "count": moments.count,
                "mean_s": (
                    float(moments.mean) if moments.count else 0.0
                ),
                "max_s": (
                    float(moments.maximum) if moments.count else 0.0
                ),
            }
        return {
            "requests_total": self.requests_total,
            "by_status": {
                str(k): v
                for k, v in sorted(self.requests_by_status().items())
            },
            "routes": routes,
            "rejects": dict(sorted(self._rejects.items())),
            "ingest": {
                "batches": self.batches_ingested,
                "samples": self.samples_ingested,
                "bytes": self.bytes_ingested,
            },
            **gauges,
        }
