"""Minimal HTTP/1.1 layer for the telemetry service.

The service speaks plain HTTP/JSON with zero dependencies beyond the
stdlib: a hand-rolled request reader over :mod:`asyncio` streams and a
response serialiser.  Only the subset the API needs is implemented —
``GET``/``POST``/``DELETE``, ``Content-Length`` bodies, keep-alive —
and everything outside that subset is rejected with a *structured*
JSON error, never an exception escaping to the transport.

The reader is a trust boundary in the same sense as
:class:`~repro.wire.framing.FrameParser`: arbitrary bytes in, either a
well-formed :class:`Request` or a :class:`ProtocolError` naming what
was wrong out.  Size limits (request line, header block, body) are
enforced *while reading*, so a hostile client cannot make the server
buffer unbounded garbage.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "MAX_REQUEST_LINE_BYTES",
    "MAX_HEADER_BYTES",
    "DEFAULT_MAX_BODY_BYTES",
    "ProtocolError",
    "Request",
    "Response",
    "json_response",
    "error_response",
    "read_request",
    "render_response",
]

#: Longest accepted request line (method + target + version).
MAX_REQUEST_LINE_BYTES = 8192

#: Longest accepted header block.
MAX_HEADER_BYTES = 32768

#: Default body cap; the service config can lower or raise it.
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

_SUPPORTED_METHODS = frozenset({"GET", "POST", "DELETE", "HEAD"})

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
}


class ProtocolError(Exception):
    """A malformed request, carrying the HTTP status to answer with."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes

    @property
    def tenant(self) -> str:
        """The requesting tenant (``X-Tenant`` header, may be empty)."""
        return self.headers.get("x-tenant", "")

    @property
    def content_type(self) -> str:
        """Media type, lowercased, parameters stripped."""
        raw = self.headers.get("content-type", "")
        return raw.split(";", 1)[0].strip().lower()

    def json(self) -> object:
        """Decode the body as JSON; :class:`ProtocolError` on failure."""
        if not self.body:
            raise ProtocolError(400, "empty-body", "request body required")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(
                400, "bad-json", f"request body is not valid JSON: {exc}"
            ) from exc


@dataclass(frozen=True)
class Response:
    """One HTTP response, body already serialised."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)


def json_response(
    payload: object,
    status: int = 200,
    *,
    headers: dict[str, str] | None = None,
) -> Response:
    """Serialise ``payload`` as a JSON response."""
    body = json.dumps(payload, default=float).encode("utf-8")
    return Response(status=status, body=body, headers=headers or {})


def error_response(
    status: int,
    code: str,
    message: str,
    *,
    headers: dict[str, str] | None = None,
    **extra: object,
) -> Response:
    """The service's uniform error shape: ``{"error": {...}}``."""
    payload: dict[str, object] = {
        "error": {"status": status, "code": code, "message": message}
    }
    if extra:
        payload["error"].update(extra)  # type: ignore[union-attr]
    return json_response(payload, status=status, headers=headers)


async def _read_line(
    reader: asyncio.StreamReader, limit: int, what: str
) -> bytes:
    """Read one CRLF-terminated line, enforcing ``limit`` bytes."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(
            431, "line-too-long", f"{what} exceeds {limit} bytes"
        ) from exc
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise EOFError("connection closed") from exc
        raise ProtocolError(
            400, "truncated", f"connection closed mid-{what}"
        ) from exc
    if len(line) > limit:
        raise ProtocolError(
            431, "line-too-long", f"{what} exceeds {limit} bytes"
        )
    return line[:-2]


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> Request | None:
    """Read one request off the stream.

    Returns ``None`` on a clean EOF before any bytes (keep-alive close);
    raises :class:`ProtocolError` for anything malformed or oversized.
    """
    try:
        raw_line = await _read_line(
            reader, MAX_REQUEST_LINE_BYTES, "request line"
        )
    except EOFError:
        return None
    parts = raw_line.decode("latin-1").split()
    if len(parts) != 3:
        raise ProtocolError(
            400, "bad-request-line", f"malformed request line: {raw_line!r}"
        )
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise ProtocolError(
            400, "bad-version", f"unsupported protocol {version}"
        )
    if method not in _SUPPORTED_METHODS:
        raise ProtocolError(
            405, "bad-method", f"method {method} not supported"
        )

    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await _read_line(reader, MAX_HEADER_BYTES, "header")
        except EOFError as exc:
            raise ProtocolError(
                400, "truncated", "connection closed mid-headers"
            ) from exc
        if not line:
            break
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise ProtocolError(
                431, "headers-too-large",
                f"header block exceeds {MAX_HEADER_BYTES} bytes",
            )
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(
                400, "bad-header", f"malformed header line: {line!r}"
            )
        headers[name.strip().lower()] = value.strip()

    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError as exc:
            raise ProtocolError(
                400, "bad-content-length",
                f"unparseable Content-Length {raw_length!r}",
            ) from exc
        if length < 0:
            raise ProtocolError(
                400, "bad-content-length", "negative Content-Length"
            )
        if length > max_body_bytes:
            raise ProtocolError(
                413, "body-too-large",
                f"body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit",
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(
                400, "truncated", "connection closed mid-body"
            ) from exc
    elif headers.get("transfer-encoding"):
        raise ProtocolError(
            501, "chunked-unsupported",
            "chunked transfer encoding is not supported",
        )

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(
        method=method,
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )


def render_response(
    response: Response, *, keep_alive: bool = True
) -> bytes:
    """Serialise a :class:`Response` to wire bytes."""
    reason = _REASONS.get(response.status, "Unknown")
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + response.body
