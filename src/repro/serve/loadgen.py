"""Deterministic wave-based load generator for the telemetry service.

The harness drives a :class:`~repro.serve.app.TelemetryApp` *in
process* through :meth:`~repro.serve.app.TelemetryApp.dispatch` — no
sockets, no wall clock, no OS scheduler in the loop.  Time is a shared
:class:`~repro.stream.ingest.SimClock` that only the harness advances,
in *waves*:

1. every still-active client issues at most one request, all launched
   concurrently with :func:`asyncio.gather` (so middleware contention —
   token buckets, quotas, queue slots — is genuinely concurrent);
2. the harness lets every session's drain worker catch up;
3. the clock advances one wave tick and the next wave begins.

A client answered ``429`` simply retries the same step next wave —
after the clock (and therefore every token bucket) has moved — so
rate-limit recovery is part of the deterministic schedule rather than
a sleep-and-hope affair.  Within a wave clients fire in a seeded
shuffled order (:func:`repro.rng.stream`), which perturbs bucket
contention across waves without sacrificing replayability: the same
seed always yields the same request trace, byte for byte.

This is what lets ``tests/serve/test_load.py`` run hundreds of
concurrent clients across many tenants and assert *exact* outcomes —
bit-identical verdicts against a direct
:func:`~repro.stream.session.stream_session` run, precise 429 counts —
with zero flakiness.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

from repro import rng
from repro.serve.app import RPWR_CONTENT_TYPE, TelemetryApp
from repro.serve.http import Request

__all__ = [
    "make_request",
    "BatchPayload",
    "ClientScript",
    "ClientResult",
    "LoadHarness",
]


def make_request(
    method: str,
    path: str,
    *,
    tenant: str = "",
    query: dict[str, str] | None = None,
    body: bytes = b"",
    content_type: str = "application/json",
    headers: dict[str, str] | None = None,
) -> Request:
    """Build an in-process :class:`Request` (test/harness helper)."""
    all_headers = {k.lower(): v for k, v in (headers or {}).items()}
    if tenant:
        all_headers["x-tenant"] = tenant
    if body:
        all_headers.setdefault("content-type", content_type)
    return Request(
        method=method,
        path=path,
        query=dict(query or {}),
        headers=all_headers,
        body=body,
    )


@dataclass(frozen=True)
class BatchPayload:
    """One ingest request body a client will send."""

    body: bytes
    content_type: str = "application/json"

    @classmethod
    def from_json_batch(cls, obj: dict) -> "BatchPayload":
        """Serialise a ``{times, watts, node_ids}`` dict to a payload."""
        return cls(body=json.dumps(obj).encode("utf-8"))

    @classmethod
    def from_frames(cls, chunk: bytes) -> "BatchPayload":
        """Wrap pre-encoded RPWR frame bytes."""
        return cls(body=chunk, content_type=RPWR_CONTENT_TYPE)


@dataclass
class ClientScript:
    """One client's scripted life: open, ingest everything, close."""

    name: str
    tenant: str
    config: dict
    payloads: list[BatchPayload]
    close_at_end: bool = True


@dataclass
class ClientResult:
    """Everything observed about one client's run."""

    name: str
    tenant: str
    session_id: str = ""
    done: bool = False
    summary: dict | None = None
    statuses: list[int] = field(default_factory=list)
    rate_limited: int = 0
    backpressured: int = 0
    quota_refused: int = 0
    errors: list[dict] = field(default_factory=list)

    @property
    def requests_sent(self) -> int:
        """Total requests this client issued, including retries."""
        return len(self.statuses)


class _ClientState:
    """Progress cursor for one scripted client."""

    __slots__ = ("script", "result", "stage", "payload_index")

    def __init__(self, script: ClientScript) -> None:
        self.script = script
        self.result = ClientResult(name=script.name, tenant=script.tenant)
        self.stage = "create"  # create -> ingest -> close -> done
        self.payload_index = 0

    def _classify_reject(self, payload: dict) -> None:
        code = payload.get("error", {}).get("code", "")
        if code == "rate-limited":
            self.result.rate_limited += 1
        elif code == "backpressure":
            self.result.backpressured += 1
        elif code.endswith("quota-exhausted"):
            self.result.quota_refused += 1

    async def step(self, app: TelemetryApp) -> None:
        """Issue this client's next request and fold in the response."""
        script, result = self.script, self.result
        if self.stage == "create":
            request = make_request(
                "POST", "/v1/sessions", tenant=script.tenant,
                body=json.dumps(script.config).encode("utf-8"),
            )
        elif self.stage == "ingest":
            payload = script.payloads[self.payload_index]
            request = make_request(
                "POST",
                f"/v1/sessions/{result.session_id}/batches",
                tenant=script.tenant,
                body=payload.body,
                content_type=payload.content_type,
            )
        elif self.stage == "close":
            request = make_request(
                "DELETE",
                f"/v1/sessions/{result.session_id}",
                tenant=script.tenant,
            )
        else:
            return

        response = await app.dispatch(request)
        result.statuses.append(response.status)
        payload_out = json.loads(response.body) if response.body else {}

        if response.status == 429:
            self._classify_reject(payload_out)
            return  # same stage retries next wave
        if response.status >= 400:
            result.errors.append(
                {"stage": self.stage, "status": response.status,
                 "body": payload_out}
            )
            self.stage = "done"
            result.done = True
            return

        if self.stage == "create":
            result.session_id = payload_out["session"]["session_id"]
            self.stage = self._next_after_create()
        elif self.stage == "ingest":
            self.payload_index += 1
            if self.payload_index >= len(script.payloads):
                self.stage = "close" if script.close_at_end else "done"
        elif self.stage == "close":
            result.summary = payload_out.get("summary")
            self.stage = "done"
        if self.stage == "done":
            result.done = True

    def _next_after_create(self) -> str:
        if self.script.payloads:
            return "ingest"
        return "close" if self.script.close_at_end else "done"


class LoadHarness:
    """Drives many scripted clients against one app, wave by wave."""

    def __init__(
        self,
        app: TelemetryApp,
        clock,
        scripts: list[ClientScript],
        *,
        wave_ticks: int = 1,
        max_waves: int = 100_000,
        seed: int = 0,
    ) -> None:
        if wave_ticks < 1:
            raise ValueError("wave_ticks must be >= 1")
        if max_waves < 1:
            raise ValueError("max_waves must be >= 1")
        self.app = app
        self.clock = clock
        self.states = [_ClientState(s) for s in scripts]
        self.wave_ticks = int(wave_ticks)
        self.max_waves = int(max_waves)
        self.waves_run = 0
        self._order_rng = rng.stream(seed, "serve.loadgen.wave-order")

    async def run(self) -> list[ClientResult]:
        """Run every client to completion; results in script order.

        Raises ``RuntimeError`` if clients are still unfinished after
        ``max_waves`` — a stuck harness should fail loudly, not hang.
        """
        while True:
            active = [s for s in self.states if not s.result.done]
            if not active:
                return [s.result for s in self.states]
            if self.waves_run >= self.max_waves:
                raise RuntimeError(
                    f"{len(active)} client(s) unfinished after "
                    f"{self.max_waves} waves"
                )
            order = list(self._order_rng.permutation(len(active)))
            await asyncio.gather(
                *(active[i].step(self.app) for i in order)
            )
            # Let every drain worker fold queued batches into state
            # before the clock moves — wave boundaries are quiescent.
            for session in self.app.registry.all_sessions():
                await session.drain()
            self.clock.advance(self.wave_ticks)
            self.waves_run += 1
