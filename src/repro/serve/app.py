"""The multi-tenant telemetry service: routing, limits, transport.

:class:`TelemetryApp` is a self-contained asyncio HTTP application.
Its :meth:`~TelemetryApp.dispatch` coroutine maps one
:class:`~repro.serve.http.Request` to a
:class:`~repro.serve.http.Response` through the full middleware stack
— tenant auth, per-tenant token-bucket rate limiting, byte/sample
quotas, routing, structured error mapping and metrics — without
touching a socket, which is what lets the load-test suite drive
thousands of concurrent in-process clients deterministically.
:meth:`~TelemetryApp.serve_tcp` bolts the same dispatcher onto
``asyncio.start_server`` for real deployments (the ``repro serve``
CLI subcommand).

API surface (all JSON unless noted)::

    GET    /healthz                      liveness probe
    GET    /metrics                      structured service metrics
    GET    /v1/plan                      Eq. 5 required-n for (N, cv, λ, 1-α)
    GET    /v1/plan/table                Table 5 grid over (λ, cv)
    POST   /v1/sessions                  open a session        (X-Tenant)
    GET    /v1/sessions                  list own sessions     (X-Tenant)
    GET    /v1/sessions/{id}             session bookkeeping   (X-Tenant)
    POST   /v1/sessions/{id}/batches     ingest JSON or RPWR   (X-Tenant)
    GET    /v1/sessions/{id}/verdict     live compliance/stopping verdict
    GET    /v1/sessions/{id}/quality     QualityReport provenance
    DELETE /v1/sessions/{id}             close; returns the final summary

Time comes exclusively from the injected clock (anything with a
``now_s`` property — a :class:`~repro.stream.ingest.SimClock` in tests,
a monotonic wall clock in the CLI), so every limiter decision, idle
eviction and latency metric is reproducible under test.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable

from repro.core.recommendations import recommended_measurement_nodes
from repro.units import SECONDS_PER_HOUR
from repro.core.sampling import recommend_sample_size
from repro.serve.http import (
    DEFAULT_MAX_BODY_BYTES,
    ProtocolError,
    Request,
    Response,
    error_response,
    json_response,
    read_request,
    render_response,
)
from repro.serve.limits import QuotaLedger, TenantQuota, TokenBucket
from repro.serve.metrics import ServiceMetrics
from repro.serve.sessions import (
    SessionConfig,
    SessionRegistry,
    batch_from_json,
)

__all__ = ["ServiceConfig", "TelemetryApp"]

#: Content type for RPWR binary frame ingest.
RPWR_CONTENT_TYPE = "application/x-rpwr"


@dataclass(frozen=True)
class ServiceConfig:
    """Operator-facing service knobs."""

    rate_capacity: float = 100.0
    rate_refill_per_request_s: float = 50.0
    quota: TenantQuota = field(default_factory=TenantQuota)
    idle_timeout_s: float = SECONDS_PER_HOUR
    max_sessions_per_tenant: int = 64
    max_sessions_total: int = 4096
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    sweep_every_s: float = 60.0

    def __post_init__(self) -> None:
        if self.rate_capacity <= 0 or self.rate_refill_per_request_s <= 0:
            raise ValueError("rate limiter parameters must be positive")
        if self.max_body_bytes < 1:
            raise ValueError("max_body_bytes must be >= 1")
        if self.sweep_every_s <= 0:
            raise ValueError("sweep_every_s must be positive")


class TelemetryApp:
    """Route table plus cross-cutting layers, one instance per service."""

    def __init__(self, clock, config: ServiceConfig | None = None) -> None:
        self.clock = clock
        self.config = config or ServiceConfig()
        self.registry = SessionRegistry(
            idle_timeout_s=self.config.idle_timeout_s,
            max_sessions_per_tenant=self.config.max_sessions_per_tenant,
            max_sessions_total=self.config.max_sessions_total,
        )
        self.metrics = ServiceMetrics()
        self.quotas = QuotaLedger(self.config.quota)
        self._buckets: dict[str, TokenBucket] = {}
        self._routes: list[
            tuple[str, tuple[str, ...],
                  Callable[..., Awaitable[Response]], bool]
        ] = [
            ("GET", ("healthz",), self._route_healthz, False),
            ("GET", ("metrics",), self._route_metrics, False),
            ("GET", ("v1", "plan"), self._route_plan, False),
            ("GET", ("v1", "plan", "table"), self._route_plan_table, False),
            ("POST", ("v1", "sessions"), self._route_create, True),
            ("GET", ("v1", "sessions"), self._route_list, True),
            ("GET", ("v1", "sessions", "*"), self._route_info, True),
            ("POST", ("v1", "sessions", "*", "batches"),
             self._route_ingest, True),
            ("GET", ("v1", "sessions", "*", "verdict"),
             self._route_verdict, True),
            ("GET", ("v1", "sessions", "*", "quality"),
             self._route_quality, True),
            ("DELETE", ("v1", "sessions", "*"), self._route_close, True),
        ]

    # -- middleware ----------------------------------------------------
    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.config.rate_capacity,
                self.config.rate_refill_per_request_s,
                now_s=self.clock.now_s,
            )
        return bucket

    def _match(
        self, request: Request
    ) -> tuple[Callable[..., Awaitable[Response]] | None, list[str],
               bool, str]:
        """Resolve a route; returns (handler, params, needs_tenant, name)."""
        parts = tuple(p for p in request.path.split("/") if p)
        for method, pattern, handler, needs_tenant in self._routes:
            if method != request.method or len(pattern) != len(parts):
                continue
            params = []
            for want, got in zip(pattern, parts):
                if want == "*":
                    params.append(got)
                elif want != got:
                    break
            else:
                name = f"{method} /" + "/".join(pattern)
                return handler, params, needs_tenant, name
        return None, [], False, f"{request.method} {request.path}"

    async def dispatch(self, request: Request) -> Response:
        """One request through the full middleware stack."""
        t_start_s = self.clock.now_s
        handler, params, needs_tenant, route = self._match(request)
        try:
            if handler is None:
                response = error_response(
                    404, "no-route",
                    f"no route for {request.method} {request.path}",
                )
            else:
                response = await self._guarded(
                    handler, request, params, needs_tenant
                )
        except ProtocolError as exc:
            response = error_response(exc.status, exc.code, exc.message)
        except Exception as exc:  # the service must never drop a request
            response = error_response(
                500, "internal-error", f"{type(exc).__name__}: {exc}"
            )
        self.metrics.observe_request(
            route, response.status, self.clock.now_s - t_start_s
        )
        return response

    async def _guarded(
        self,
        handler: Callable[..., Awaitable[Response]],
        request: Request,
        params: list[str],
        needs_tenant: bool,
    ) -> Response:
        """Auth + rate limit, then the route handler."""
        if not needs_tenant:
            return await handler(request, *params)
        tenant = request.tenant
        if not tenant:
            self.metrics.observe_reject("missing-tenant")
            return error_response(
                401, "missing-tenant",
                "tenanted endpoints require the X-Tenant header",
            )
        decision = self._bucket(tenant).acquire(self.clock.now_s)
        if not decision.granted:
            self.metrics.observe_reject("rate-limited")
            retry_s = max(decision.retry_after_s, 1e-3)
            return error_response(
                429, "rate-limited",
                f"tenant {tenant!r} is over its request rate",
                retry_after_s=retry_s,
                headers={"Retry-After": f"{retry_s:.3f}"},
            )
        return await handler(request, *params)

    # -- untenanted routes ---------------------------------------------
    async def _route_healthz(self, request: Request) -> Response:
        return json_response({"ok": True, "t_now_s": self.clock.now_s})

    async def _route_metrics(self, request: Request) -> Response:
        return json_response(
            self.metrics.to_dict(
                registry=self.registry.gauges(),
                quota_usage=self.quotas.to_dict(),
            )
        )

    @staticmethod
    def _float_param(request: Request, name: str, default: float | None,
                     ) -> float:
        raw = request.query.get(name)
        if raw is None:
            if default is None:
                raise ProtocolError(
                    400, "missing-param", f"query parameter {name} required"
                )
            return default
        try:
            return float(raw)
        except ValueError as exc:
            raise ProtocolError(
                400, "bad-param", f"unparseable {name}={raw!r}"
            ) from exc

    async def _route_plan(self, request: Request) -> Response:
        """Eq. 5 sampling plan: required subset size for an accuracy."""
        population = int(self._float_param(request, "population", None))
        cv = self._float_param(request, "cv", None)
        accuracy = self._float_param(request, "accuracy", 0.01)
        confidence = self._float_param(request, "confidence", 0.95)
        try:
            plan = recommend_sample_size(
                population, cv, accuracy, confidence
            )
        except ValueError as exc:
            raise ProtocolError(400, "bad-plan", str(exc)) from exc
        return json_response({
            "population": population,
            "cv": cv,
            "accuracy": accuracy,
            "confidence": confidence,
            "required_n": plan.n,
            "required_n_infinite": plan.n0,
            "required_n_exact": plan.n_exact,
            "post2015_rule_n": recommended_measurement_nodes(population),
        })

    async def _route_plan_table(self, request: Request) -> Response:
        """The Table 5 grid for a requested fleet size."""
        population = int(
            self._float_param(request, "population", 10_000.0)
        )
        confidence = self._float_param(request, "confidence", 0.95)

        def _list_param(name: str, default: tuple[float, ...]) -> list[float]:
            raw = request.query.get(name)
            if raw is None:
                return list(default)
            try:
                values = [float(v) for v in raw.split(",") if v.strip()]
            except ValueError as exc:
                raise ProtocolError(
                    400, "bad-param", f"unparseable {name}={raw!r}"
                ) from exc
            if not values:
                raise ProtocolError(400, "bad-param", f"empty {name} list")
            return values

        accuracies = _list_param(
            "accuracies", (0.005, 0.01, 0.015, 0.02)
        )
        cvs = _list_param("cvs", (0.02, 0.03, 0.05))
        try:
            cells = [
                [
                    recommend_sample_size(
                        population, cv, accuracy, confidence
                    ).n
                    for cv in cvs
                ]
                for accuracy in accuracies
            ]
        except ValueError as exc:
            raise ProtocolError(400, "bad-plan", str(exc)) from exc
        return json_response({
            "population": population,
            "confidence": confidence,
            "accuracies": accuracies,
            "cvs": cvs,
            "required_n": cells,
        })

    # -- session routes ------------------------------------------------
    def _lookup(self, request: Request, session_id: str):
        try:
            return self.registry.get(request.tenant, session_id)
        except KeyError as exc:
            raise ProtocolError(
                404, "no-session", f"no session {session_id}"
            ) from exc
        except PermissionError as exc:
            raise ProtocolError(403, "not-owner", str(exc)) from exc

    async def _route_create(self, request: Request) -> Response:
        try:
            config = SessionConfig.from_json(request.json())
        except ValueError as exc:
            raise ProtocolError(400, "bad-config", str(exc)) from exc
        try:
            session = self.registry.create(
                request.tenant, config, now_s=self.clock.now_s
            )
        except ValueError as exc:
            self.metrics.observe_reject("session-cap")
            return error_response(
                429, "session-cap", str(exc),
                headers={"Retry-After": f"{self.config.sweep_every_s:.3f}"},
            )
        return json_response({"session": session.info()}, status=201)

    async def _route_list(self, request: Request) -> Response:
        sessions = self.registry.tenant_sessions(request.tenant)
        return json_response(
            {"sessions": [s.info() for s in sessions]}
        )

    async def _route_info(
        self, request: Request, session_id: str
    ) -> Response:
        return json_response({"session": self._lookup(request, session_id).info()})

    async def _route_ingest(
        self, request: Request, session_id: str
    ) -> Response:
        session = self._lookup(request, session_id)
        if session.closed:
            raise ProtocolError(
                409, "session-closed", f"session {session_id} is closed"
            )
        now_s = self.clock.now_s
        if request.content_type == RPWR_CONTENT_TYPE:
            response = self._ingest_frames(request, session, now_s)
        elif request.content_type in ("application/json", ""):
            response = self._ingest_json(request, session, now_s)
        else:
            raise ProtocolError(
                415, "bad-content-type",
                f"unsupported Content-Type {request.content_type!r}",
            )
        # One scheduling yield so the session's drain worker gets a
        # turn — over TCP the socket writes yield anyway; the
        # in-process dispatch path (tests, load harness) must behave
        # the same or queues would only ever drain at wave barriers.
        await asyncio.sleep(0)
        return response

    def _ingest_json(self, request: Request, session, now_s: float
                     ) -> Response:
        try:
            batch = batch_from_json(request.json())
        except ValueError as exc:
            raise ProtocolError(400, "bad-batch", str(exc)) from exc
        charge = self.quotas.charge(
            session.tenant,
            n_bytes=len(request.body),
            n_samples=batch.n_samples,
        )
        if not charge.granted:
            self.metrics.observe_reject(charge.reason)
            return error_response(
                429, charge.reason,
                f"tenant {session.tenant!r} exhausted its quota",
                usage=charge.to_dict(),
            )
        if not session.try_submit(
            batch, n_bytes=len(request.body), now_s=now_s
        ):
            self.metrics.observe_reject("backpressure")
            retry_s = session.config.interval_s
            return error_response(
                429, "backpressure",
                f"session {session.session_id} ingest queue is full",
                retry_after_s=retry_s,
                queue_depth=session.queue_depth,
                headers={"Retry-After": f"{retry_s:.3f}"},
            )
        self.metrics.observe_ingest(
            n_batches=1, n_samples=batch.n_samples,
            n_bytes=len(request.body),
        )
        return json_response({
            "accepted": True,
            "queue_depth": session.queue_depth,
            "batches_accepted": session.batches_accepted,
        }, status=202)

    def _ingest_frames(self, request: Request, session, now_s: float
                       ) -> Response:
        if not request.body:
            raise ProtocolError(400, "empty-body", "frame body required")
        charge = self.quotas.charge(
            session.tenant, n_bytes=len(request.body), n_samples=0
        )
        if not charge.granted:
            self.metrics.observe_reject(charge.reason)
            return error_response(
                429, charge.reason,
                f"tenant {session.tenant!r} exhausted its quota",
                usage=charge.to_dict(),
            )
        outcome = session.ingest_frames(request.body, now_s=now_s)
        if outcome.refused:
            self.metrics.observe_reject("backpressure")
            retry_s = session.config.interval_s
            return error_response(
                429, "backpressure",
                f"session {session.session_id} ingest queue is full",
                retry_after_s=retry_s,
                ingest=outcome.to_dict(),
                headers={"Retry-After": f"{retry_s:.3f}"},
            )
        if outcome.batches_accepted:
            # Bill the sample quota now that the frame count is known.
            self.quotas.charge(
                session.tenant, n_bytes=0,
                n_samples=outcome.samples_accepted,
            )
            self.metrics.observe_ingest(
                n_batches=outcome.batches_accepted,
                n_samples=outcome.samples_accepted,
                n_bytes=len(request.body),
            )
        if (
            outcome.frames_corrupt
            and not outcome.batches_accepted
        ):
            return error_response(
                400, "corrupt-frames",
                "request body contained no decodable frames",
                ingest=outcome.to_dict(),
            )
        return json_response(
            {"accepted": True, "ingest": outcome.to_dict(),
             "queue_depth": session.queue_depth},
            status=202,
        )

    async def _route_verdict(
        self, request: Request, session_id: str
    ) -> Response:
        session = self._lookup(request, session_id)
        state = session.state
        snapshot = (
            state.live_snapshot().to_dict()
            if state.samples_ingested else None
        )
        return json_response({
            "session_id": session.session_id,
            "samples_ingested": state.samples_ingested,
            "queue_depth": session.queue_depth,
            "snapshot": snapshot,
            "monitor": state.monitor.report().to_dict(),
            "stopping": state.decision.to_dict(),
        })

    async def _route_quality(
        self, request: Request, session_id: str
    ) -> Response:
        session = self._lookup(request, session_id)
        quality = session.quality_report()
        return json_response({
            "session_id": session.session_id,
            "quality": quality.to_dict() if quality else None,
        })

    async def _route_close(
        self, request: Request, session_id: str
    ) -> Response:
        self._lookup(request, session_id)  # ownership check first
        summary = await self.registry.close(request.tenant, session_id)
        return json_response({"summary": summary})

    # -- maintenance -----------------------------------------------------
    async def sweep_idle(self) -> list[str]:
        """One idle-eviction pass at the current clock reading."""
        return await self.registry.evict_idle(self.clock.now_s)

    async def shutdown(self) -> None:
        """Close every live session."""
        await self.registry.close_all()

    # -- transport glue ---------------------------------------------------
    async def handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve one TCP connection: parse, dispatch, respond, repeat."""
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.config.max_body_bytes
                    )
                except ProtocolError as exc:
                    response = error_response(
                        exc.status, exc.code, exc.message
                    )
                    writer.write(
                        render_response(response, keep_alive=False)
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                response = await self.dispatch(request)
                keep_alive = (
                    request.headers.get("connection", "").lower()
                    != "close"
                )
                writer.write(
                    render_response(response, keep_alive=keep_alive)
                )
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):
            return  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def serve_tcp(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.base_events.Server:
        """Bind the dispatcher to a real TCP listener."""
        return await asyncio.start_server(
            self.handle_connection, host=host, port=port
        )

    async def sweep_forever(self) -> None:
        """Background idle-eviction loop for real deployments.

        Cadence uses ``asyncio.sleep`` (event-loop time); eviction
        decisions themselves read the injected service clock.
        """
        while True:
            await asyncio.sleep(self.config.sweep_every_s)
            await self.sweep_idle()
