"""Per-tenant telemetry sessions and the session registry.

One :class:`TelemetrySession` wraps one
:class:`~repro.stream.session.LiveStreamState` — the same incremental
core :func:`~repro.stream.session.stream_session` drives — behind a
bounded :class:`asyncio.Queue` drained by a single worker task.  The
queue is the backpressure boundary: when it is full,
:meth:`TelemetrySession.try_submit` refuses and the route layer turns
the refusal into ``429 + Retry-After``.  Because exactly one worker
drains each session's queue in FIFO order, the estimator state is a
pure function of the accepted batch sequence — which is what makes an
HTTP-fed verdict bit-identical to a direct :func:`stream_session` run
over the same batches.

The :class:`SessionRegistry` owns the id space, per-tenant session
caps, and idle eviction on the injected clock.  Eviction never drops
queued work: a session with batches still in its queue is skipped no
matter how stale its last-touch time is (locked by a hypothesis
property in ``tests/serve/test_registry.py``).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import numpy as np

from repro.faults.quality import QualityReport
from repro.faults.recovery import breaker_level
from repro.stream.ingest import SampleBatch
from repro.stream.session import LiveStreamState
from repro.units import SECONDS_PER_HOUR
from repro.wire.session import WireReader

__all__ = [
    "SessionConfig",
    "batch_from_json",
    "FrameIngest",
    "TelemetrySession",
    "SessionRegistry",
]

#: Hard ceiling on ticks × nodes accepted in one JSON batch.
MAX_BATCH_CELLS = 4_000_000


@dataclass(frozen=True)
class SessionConfig:
    """Everything a tenant declares when opening a session."""

    population: int
    core_t0_s: float
    core_t1_s: float
    interval_s: float
    quantiles: tuple[float, ...] = (0.5, 0.95)
    accuracy: float = 0.01
    confidence: float = 0.95
    report_every_s: float = 600.0
    queue_capacity: int = 8
    compliance_level: int = 2

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if not self.core_t1_s > self.core_t0_s:
            raise ValueError("core window must have positive duration")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.compliance_level not in (0, 1, 2, 3):
            raise ValueError(
                f"unknown compliance level {self.compliance_level}"
            )

    @classmethod
    def from_json(cls, obj: object) -> "SessionConfig":
        """Build from a decoded JSON body; ``ValueError`` on bad input."""
        if not isinstance(obj, dict):
            raise ValueError("session config must be a JSON object")
        known = {
            "population", "core_t0_s", "core_t1_s", "interval_s",
            "quantiles", "accuracy", "confidence", "report_every_s",
            "queue_capacity", "compliance_level",
        }
        unknown = sorted(set(obj) - known)
        if unknown:
            raise ValueError(f"unknown config key(s): {', '.join(unknown)}")
        required = {"population", "core_t0_s", "core_t1_s", "interval_s"}
        missing = sorted(required - set(obj))
        if missing:
            raise ValueError(
                f"missing config key(s): {', '.join(missing)}"
            )
        kwargs = dict(obj)
        if "quantiles" in kwargs:
            raw = kwargs["quantiles"]
            if not isinstance(raw, (list, tuple)) or not raw:
                raise ValueError("quantiles must be a non-empty list")
            kwargs["quantiles"] = tuple(float(q) for q in raw)
        try:
            return cls(
                population=int(kwargs["population"]),
                core_t0_s=float(kwargs["core_t0_s"]),
                core_t1_s=float(kwargs["core_t1_s"]),
                interval_s=float(kwargs["interval_s"]),
                **{
                    k: v for k, v in kwargs.items()
                    if k not in ("population", "core_t0_s", "core_t1_s",
                                 "interval_s")
                },
            )
        except TypeError as exc:
            raise ValueError(f"bad session config: {exc}") from exc

    def to_dict(self) -> dict:
        """JSON-friendly rendering."""
        return {
            "population": self.population,
            "core_t0_s": self.core_t0_s,
            "core_t1_s": self.core_t1_s,
            "interval_s": self.interval_s,
            "quantiles": list(self.quantiles),
            "accuracy": self.accuracy,
            "confidence": self.confidence,
            "report_every_s": self.report_every_s,
            "queue_capacity": self.queue_capacity,
            "compliance_level": self.compliance_level,
        }


def batch_from_json(obj: object) -> SampleBatch:
    """Decode a JSON ingest body into a validated :class:`SampleBatch`.

    Raises ``ValueError`` on any malformed input — wrong shapes,
    non-finite readings, oversized matrices — *before* anything touches
    session state, so a bad request can never corrupt a session.
    """
    if not isinstance(obj, dict):
        raise ValueError("batch must be a JSON object")
    missing = sorted(
        {"times", "watts", "node_ids"} - set(obj)
    )
    if missing:
        raise ValueError(f"missing batch key(s): {', '.join(missing)}")
    try:
        times = np.asarray(obj["times"], dtype=np.float64)
        watts = np.asarray(obj["watts"], dtype=np.float64)
        node_ids = np.asarray(obj["node_ids"], dtype=np.int64)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"unparseable batch arrays: {exc}") from exc
    if times.ndim != 1 or times.size == 0:
        raise ValueError("times must be a non-empty 1-D array")
    if watts.ndim != 2:
        raise ValueError("watts must be a 2-D [ticks x nodes] matrix")
    if watts.size > MAX_BATCH_CELLS:
        raise ValueError(
            f"batch of {watts.size} cells exceeds the "
            f"{MAX_BATCH_CELLS}-cell limit"
        )
    if not np.all(np.isfinite(times)):
        raise ValueError("times must be finite")
    if not np.all(np.isfinite(watts)):
        raise ValueError("watts must be finite")
    if np.any(watts < 0):
        raise ValueError("watts must be non-negative")
    if np.any(np.diff(times) <= 0):
        raise ValueError("times must be strictly increasing")
    try:
        return SampleBatch(times=times, watts=watts, node_ids=node_ids)
    except ValueError as exc:
        raise ValueError(f"inconsistent batch shapes: {exc}") from exc


@dataclass(frozen=True)
class FrameIngest:
    """Outcome of feeding one RPWR request body into a session."""

    batches_accepted: int
    samples_accepted: int
    frames_corrupt: int
    gap_cells: int
    refused: bool

    def to_dict(self) -> dict:
        """JSON-friendly rendering."""
        return {
            "batches_accepted": self.batches_accepted,
            "samples_accepted": self.samples_accepted,
            "frames_corrupt": self.frames_corrupt,
            "gap_cells": self.gap_cells,
            "refused": self.refused,
        }


class TelemetrySession:
    """One tenant's live compliance session behind a bounded queue."""

    def __init__(
        self,
        session_id: str,
        tenant: str,
        config: SessionConfig,
        *,
        now_s: float,
    ) -> None:
        self.session_id = session_id
        self.tenant = tenant
        self.config = config
        self.state = LiveStreamState(
            population=config.population,
            core_window=(config.core_t0_s, config.core_t1_s),
            required_interval_s=config.interval_s,
            quantiles=config.quantiles,
            accuracy=config.accuracy,
            confidence=config.confidence,
            report_every_s=config.report_every_s,
        )
        self.queue: asyncio.Queue[SampleBatch] = asyncio.Queue(
            maxsize=config.queue_capacity
        )
        #: Test hook: clearing the gate stalls the consumer, modelling a
        #: slow estimator backend so backpressure can be exercised
        #: deterministically.
        self.gate = asyncio.Event()
        self.gate.set()
        self.created_s = float(now_s)
        self.last_active_s = float(now_s)
        self.closed = False
        self.batches_accepted = 0
        self.batches_folded = 0
        self.batches_rejected = 0
        self.bytes_ingested = 0
        self.queue_high_watermark = 0
        self.worker_errors: list[str] = []
        self._reader: WireReader | None = None
        self._gap_cells = 0
        self._frames_corrupt_seen = 0
        self._worker: asyncio.Task | None = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the drain worker (requires a running event loop)."""
        if self._worker is None:
            self._worker = asyncio.create_task(
                self._drain_forever(), name=f"drain-{self.session_id}"
            )

    async def _drain_forever(self) -> None:
        while True:
            batch = await self.queue.get()
            try:
                await self.gate.wait()
                self.state.push(batch)
            except Exception as exc:  # record, never lose silently
                self.worker_errors.append(f"{type(exc).__name__}: {exc}")
            finally:
                self.batches_folded += 1
                self.queue.task_done()

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Batches sitting in the queue right now."""
        return self.queue.qsize()

    @property
    def pending_batches(self) -> int:
        """Accepted batches not yet folded into the stream state.

        Unlike :attr:`queue_depth` this also counts a batch the drain
        worker has popped but not yet pushed (e.g. while stalled on the
        gate) — the count eviction safety must be judged against.
        """
        return self.batches_accepted - self.batches_folded

    def touch(self, now_s: float) -> None:
        """Refresh the idle-eviction deadline."""
        self.last_active_s = float(now_s)

    def try_submit(self, batch: SampleBatch, *, n_bytes: int,
                   now_s: float) -> bool:
        """Offer one batch to the ingest queue; ``False`` when full."""
        if self.closed:
            raise ValueError("session is closed")
        try:
            self.queue.put_nowait(batch)
        except asyncio.QueueFull:
            self.batches_rejected += 1
            return False
        self.batches_accepted += 1
        self.bytes_ingested += n_bytes
        self.queue_high_watermark = max(
            self.queue_high_watermark, self.queue.qsize()
        )
        self.touch(now_s)
        return True

    def ingest_frames(self, body: bytes, *, now_s: float) -> FrameIngest:
        """Feed an RPWR byte chunk through the session's wire reader.

        Decoded in-order batches go through the same
        :meth:`try_submit` path as JSON batches; all-NaN gap batches
        (sequence holes the reader declares missing) are *counted* into
        the quality provenance but never pushed into the estimators.
        Refusal semantics are all-or-nothing per decoded batch: once a
        batch is refused for backpressure the rest of the body's
        batches are refused too, keeping the accepted prefix in order.
        """
        if self.closed:
            raise ValueError("session is closed")
        if self._reader is None:
            self._reader = WireReader(dt_s=self.config.interval_s)
        corrupt_before = (
            self._reader.crc_failures + self._reader.frames_undecodable
        )
        batches = self._reader.feed(body)
        accepted = 0
        samples = 0
        refused = False
        for batch in batches:
            if np.isnan(batch.watts).any():
                # Gap batches (sequence holes the reader reconstructs)
                # are all-NaN by construction; their cells go into the
                # provenance ledger, never into the estimators.  A
                # hypothetical mixed frame is written off whole, which
                # errs conservative.
                self._gap_cells += int(batch.watts.size)
                continue
            if refused or not self.try_submit(
                batch, n_bytes=0, now_s=now_s
            ):
                refused = True
                continue
            accepted += 1
            samples += batch.n_samples
        if accepted:
            self.bytes_ingested += len(body)
        corrupt_now = (
            self._reader.crc_failures + self._reader.frames_undecodable
        )
        self._frames_corrupt_seen = corrupt_now
        return FrameIngest(
            batches_accepted=accepted,
            samples_accepted=samples,
            frames_corrupt=corrupt_now - corrupt_before,
            gap_cells=self._gap_cells,
            refused=refused,
        )

    async def drain(self) -> None:
        """Wait until every queued batch has been folded into state."""
        await self.queue.join()

    async def close(self) -> None:
        """Stop ingest, drain the queue, finalize the stream state."""
        if self.closed:
            return
        self.closed = True
        self.gate.set()
        await self.queue.join()
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                self._worker = None
        self.state.finalize()

    # ------------------------------------------------------------------
    def info(self) -> dict:
        """Liveness/bookkeeping view for ``GET /v1/sessions/{id}``."""
        return {
            "session_id": self.session_id,
            "tenant": self.tenant,
            "closed": self.closed,
            "created_s": self.created_s,
            "last_active_s": self.last_active_s,
            "queue_depth": self.queue_depth,
            "pending_batches": self.pending_batches,
            "queue_capacity": self.config.queue_capacity,
            "queue_high_watermark": self.queue_high_watermark,
            "batches_accepted": self.batches_accepted,
            "batches_rejected": self.batches_rejected,
            "samples_ingested": self.state.samples_ingested,
            "bytes_ingested": self.bytes_ingested,
            "worker_errors": list(self.worker_errors),
            "config": self.config.to_dict(),
        }

    def quality_report(self) -> QualityReport | None:
        """Provenance label for everything this session has served.

        ``None`` until the first sample lands (there is nothing to
        label).  Counts are matrix cells; wire provenance comes from
        the session's reader when frames were used.
        """
        state = self.state
        if state.samples_ingested == 0:
            return None
        arrived = state.samples_ingested + self._gap_cells
        coverage = state.samples_ingested / arrived if arrived else 0.0
        node_means = np.asarray(state.monitor.node_moments.mean)
        fleet_mean_w = float(node_means.mean())
        sigma_node_w = (
            float(node_means.std(ddof=1)) if node_means.size > 1 else 0.0
        )
        reader = self._reader
        return QualityReport(
            samples_expected=arrived,
            samples_arrived=arrived,
            samples_missing=self._gap_cells,
            samples_never_arrived=0,
            samples_stuck=0,
            samples_spiked=0,
            samples_held=0,
            samples_interpolated=0,
            samples_excluded=self._gap_cells,
            nodes_quarantined=(),
            batches_retried=0,
            batches_abandoned=0,
            effective_coverage=coverage,
            original_level=self.config.compliance_level,
            effective_level=breaker_level(
                self.config.compliance_level, coverage, False
            ),
            fleet_mean_w=fleet_mean_w,
            node_cv=(
                sigma_node_w / fleet_mean_w if fleet_mean_w > 0 else 0.0
            ),
            sigma_node_w=sigma_node_w,
            sigma_tick_w=float(np.asarray(state.fleet.std()))
            if state.fleet.count >= 2 else 0.0,
            n_nodes_used=int(node_means.size),
            codec=", ".join(reader.codec_names) if reader else "",
            codec_error_bound_w=reader.error_bound_w if reader else 0.0,
            frames_dropped=reader.frames_missing if reader else 0,
            frames_corrupt=self._frames_corrupt_seen,
        )

    def final_summary(self) -> dict:
        """The close/eviction response body."""
        state = self.state
        if state.samples_ingested == 0:
            return {
                "session_id": self.session_id,
                "samples_ingested": 0,
                "insufficient_data": True,
                "stopping": state.decision.to_dict(),
                "monitor": state.monitor.report().to_dict(),
            }
        result = state.result(
            queue_high_watermark=self.queue_high_watermark
        )
        out = result.to_dict()
        out["session_id"] = self.session_id
        quality = self.quality_report()
        out["quality"] = quality.to_dict() if quality else None
        return out


class SessionRegistry:
    """All live sessions, with ownership checks and idle eviction."""

    def __init__(
        self,
        *,
        idle_timeout_s: float = SECONDS_PER_HOUR,
        max_sessions_per_tenant: int = 64,
        max_sessions_total: int = 4096,
    ) -> None:
        if idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive")
        if max_sessions_per_tenant < 1 or max_sessions_total < 1:
            raise ValueError("session caps must be >= 1")
        self.idle_timeout_s = float(idle_timeout_s)
        self.max_sessions_per_tenant = int(max_sessions_per_tenant)
        self.max_sessions_total = int(max_sessions_total)
        self._sessions: dict[str, TelemetrySession] = {}
        self._next_id = 0
        self.sessions_created = 0
        self.sessions_closed = 0
        self.sessions_evicted = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    def tenant_count(self, tenant: str) -> int:
        """Live sessions owned by ``tenant``."""
        return sum(
            1 for s in self._sessions.values() if s.tenant == tenant
        )

    def tenant_sessions(self, tenant: str) -> list[TelemetrySession]:
        """All live sessions owned by ``tenant``, in id order."""
        return [
            s for _, s in sorted(self._sessions.items())
            if s.tenant == tenant
        ]

    def all_sessions(self) -> list[TelemetrySession]:
        """Every live session, in id order."""
        return [s for _, s in sorted(self._sessions.items())]

    def create(
        self, tenant: str, config: SessionConfig, *, now_s: float
    ) -> TelemetrySession:
        """Open (and start) a new session for ``tenant``.

        Raises ``ValueError`` when a cap is hit — the route layer maps
        that to a 429.
        """
        if len(self._sessions) >= self.max_sessions_total:
            raise ValueError(
                f"service at capacity ({self.max_sessions_total} sessions)"
            )
        if self.tenant_count(tenant) >= self.max_sessions_per_tenant:
            raise ValueError(
                f"tenant {tenant!r} at capacity "
                f"({self.max_sessions_per_tenant} sessions)"
            )
        session_id = f"s-{self._next_id:08d}"
        self._next_id += 1
        session = TelemetrySession(
            session_id, tenant, config, now_s=now_s
        )
        session.start()
        self._sessions[session_id] = session
        self.sessions_created += 1
        return session

    def get(self, tenant: str, session_id: str) -> TelemetrySession:
        """Look up a session, enforcing tenant ownership.

        Raises ``KeyError`` when absent and ``PermissionError`` when
        owned by a different tenant (the routes map these to 404/403).
        """
        session = self._sessions.get(session_id)
        if session is None:
            raise KeyError(session_id)
        if session.tenant != tenant:
            raise PermissionError(
                f"session {session_id} belongs to another tenant"
            )
        return session

    async def close(self, tenant: str, session_id: str) -> dict:
        """Close a session, remove it, and return its final summary."""
        session = self.get(tenant, session_id)
        await session.close()
        del self._sessions[session_id]
        self.sessions_closed += 1
        return session.final_summary()

    def evictable(self, now_s: float) -> list[TelemetrySession]:
        """Sessions past the idle deadline with *no* pending work.

        ``pending_batches`` (not ``queue_depth``) is the safety test:
        a batch the worker has popped but not yet folded still counts.
        """
        deadline_s = now_s - self.idle_timeout_s
        return [
            s for _, s in sorted(self._sessions.items())
            if s.last_active_s <= deadline_s and s.pending_batches == 0
        ]

    async def evict_idle(self, now_s: float) -> list[str]:
        """Close and drop every evictable session; returns their ids.

        A session with batches still queued is never evicted, however
        stale its last-touch time — queued work always lands in the
        estimators first (the registry hypothesis property).
        """
        evicted: list[str] = []
        for session in self.evictable(now_s):
            await session.close()
            del self._sessions[session.session_id]
            self.sessions_evicted += 1
            evicted.append(session.session_id)
        return evicted

    async def close_all(self) -> None:
        """Shut every session down (service shutdown path)."""
        for session_id in sorted(self._sessions):
            session = self._sessions.pop(session_id)
            await session.close()
            self.sessions_closed += 1

    def gauges(self) -> dict:
        """Registry gauges for ``/metrics``."""
        depths = [s.queue_depth for s in self._sessions.values()]
        return {
            "sessions_live": len(self._sessions),
            "sessions_created": self.sessions_created,
            "sessions_closed": self.sessions_closed,
            "sessions_evicted": self.sessions_evicted,
            "queue_depth_total": sum(depths),
            "queue_depth_max": max(depths, default=0),
        }
