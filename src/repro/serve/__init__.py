"""repro.serve — multi-tenant async telemetry service.

An asyncio HTTP/JSON front end over the streaming compliance engine:
each tenant opens sessions, POSTs sample batches (JSON or RPWR binary
frames), and reads live compliance verdicts, sampling plans (Eq. 1–5 /
Table 5) and :class:`~repro.faults.quality.QualityReport` provenance
back out.  Cross-cutting layers — per-tenant token-bucket rate limits,
byte/sample quotas, bounded per-session ingest queues with
``429 + Retry-After`` backpressure, idle eviction, ``/metrics`` — are
all pure functions of an injected clock, so the whole service is
load-testable deterministically on a
:class:`~repro.stream.ingest.SimClock` (see
:mod:`repro.serve.loadgen`).

Layering::

    http.py      wire parsing: bytes -> Request, Response -> bytes
    limits.py    token buckets + quota ledger
    sessions.py  TelemetrySession (LiveStreamState + queue), registry
    metrics.py   per-route counters and latency moments
    app.py       routing, middleware, TCP glue
    loadgen.py   deterministic wave-based load harness
"""

from repro.serve.app import ServiceConfig, TelemetryApp
from repro.serve.http import (
    ProtocolError,
    Request,
    Response,
    error_response,
    json_response,
)
from repro.serve.limits import (
    QuotaCharge,
    QuotaLedger,
    RateDecision,
    TenantQuota,
    TokenBucket,
)
from repro.serve.loadgen import (
    BatchPayload,
    ClientResult,
    ClientScript,
    LoadHarness,
    make_request,
)
from repro.serve.metrics import ServiceMetrics
from repro.serve.sessions import (
    FrameIngest,
    SessionConfig,
    SessionRegistry,
    TelemetrySession,
    batch_from_json,
)

__all__ = [
    "ServiceConfig",
    "TelemetryApp",
    "ProtocolError",
    "Request",
    "Response",
    "error_response",
    "json_response",
    "QuotaCharge",
    "QuotaLedger",
    "RateDecision",
    "TenantQuota",
    "TokenBucket",
    "BatchPayload",
    "ClientResult",
    "ClientScript",
    "LoadHarness",
    "make_request",
    "ServiceMetrics",
    "FrameIngest",
    "SessionConfig",
    "SessionRegistry",
    "TelemetrySession",
    "batch_from_json",
]
