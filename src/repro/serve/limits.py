"""Per-tenant admission control: token buckets and hard quotas.

Two complementary mechanisms guard the service:

* :class:`TokenBucket` — *rate* limiting.  Each tenant owns a bucket
  that refills continuously on the service clock; a request costs one
  token (ingest requests may cost more).  When the bucket is empty the
  request is answered ``429`` with a ``Retry-After`` computed from the
  refill rate, so a well-behaved client knows exactly when to return.
* :class:`QuotaLedger` — *volume* limiting.  Cumulative per-tenant
  byte and sample budgets; once exhausted, ingest is refused until an
  operator raises the quota.  Unlike the bucket this never refills.

Both are pure functions of ``(state, clock.now_s)`` — no wall clock —
so the load-test suite can drive them deterministically on a
:class:`~repro.stream.ingest.SimClock` and assert exact refusal
patterns, and the hypothesis suite can prove the invariants (tokens
never negative, refill monotone, quota charges exact).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "RateDecision",
    "TokenBucket",
    "TenantQuota",
    "QuotaCharge",
    "QuotaLedger",
]


@dataclass(frozen=True)
class RateDecision:
    """Outcome of one admission attempt against a bucket."""

    granted: bool
    tokens_left: float
    retry_after_s: float

    def to_dict(self) -> dict:
        """JSON-friendly rendering."""
        return {
            "granted": self.granted,
            "tokens_left": self.tokens_left,
            "retry_after_s": self.retry_after_s,
        }


class TokenBucket:
    """A continuously refilling token bucket on an injected clock.

    Invariants (locked by ``tests/serve/test_limits.py``):

    * the token level is always in ``[0, capacity]``;
    * refill is monotone in time — observing the bucket never removes
      tokens, and a clock that stands still refills nothing;
    * a grant removes exactly ``cost`` tokens; a refusal removes none.

    Parameters
    ----------
    capacity:
        Maximum (and initial) token level — the burst budget.
    refill_rate:
        Tokens added per simulated second, > 0.
    now_s:
        Clock reading at construction.
    """

    __slots__ = ("capacity", "refill_rate", "_tokens", "_updated_s")

    def __init__(
        self, capacity: float, refill_rate: float, *, now_s: float = 0.0
    ) -> None:
        if capacity <= 0 or not math.isfinite(capacity):
            raise ValueError(f"capacity must be positive, got {capacity}")
        if refill_rate <= 0 or not math.isfinite(refill_rate):
            raise ValueError(
                f"refill_rate must be positive, got {refill_rate}"
            )
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self._tokens = float(capacity)
        self._updated_s = float(now_s)

    def _refill(self, now_s: float) -> None:
        # A clock reading from the past refills nothing (monotonicity);
        # it can happen when callers mix cached and fresh readings.
        elapsed_s = now_s - self._updated_s
        if elapsed_s > 0:
            self._tokens = min(
                self.capacity, self._tokens + elapsed_s * self.refill_rate
            )
            self._updated_s = float(now_s)

    def available(self, now_s: float) -> float:
        """Token level after refilling up to ``now_s``."""
        self._refill(now_s)
        return self._tokens

    def acquire(self, now_s: float, cost: float = 1.0) -> RateDecision:
        """Try to take ``cost`` tokens at time ``now_s``."""
        if cost <= 0 or not math.isfinite(cost):
            raise ValueError(f"cost must be positive, got {cost}")
        self._refill(now_s)
        if self._tokens >= cost:
            self._tokens -= cost
            # Guard against float dust going negative.
            if self._tokens < 0.0:
                self._tokens = 0.0
            return RateDecision(
                granted=True, tokens_left=self._tokens, retry_after_s=0.0
            )
        deficit = cost - self._tokens
        retry_after_s = deficit / self.refill_rate
        return RateDecision(
            granted=False,
            tokens_left=self._tokens,
            retry_after_s=retry_after_s,
        )


@dataclass(frozen=True)
class TenantQuota:
    """Hard cumulative budgets for one tenant (``None`` = unlimited)."""

    max_bytes: int | None = None
    max_samples: int | None = None

    def __post_init__(self) -> None:
        for name in ("max_bytes", "max_samples"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")


@dataclass(frozen=True)
class QuotaCharge:
    """Outcome of one quota charge attempt."""

    granted: bool
    reason: str
    bytes_used: int
    samples_used: int

    def to_dict(self) -> dict:
        """JSON-friendly rendering."""
        return {
            "granted": self.granted,
            "reason": self.reason,
            "bytes_used": self.bytes_used,
            "samples_used": self.samples_used,
        }


class QuotaLedger:
    """Cumulative per-tenant byte/sample accounting against a quota.

    Charges are all-or-nothing: a request that would cross either
    budget is refused whole and the ledger is unchanged, so retrying a
    refused request never double-bills.
    """

    def __init__(self, quota: TenantQuota) -> None:
        self.quota = quota
        self._bytes: dict[str, int] = {}
        self._samples: dict[str, int] = {}

    def usage(self, tenant: str) -> tuple[int, int]:
        """``(bytes_used, samples_used)`` for ``tenant``."""
        return self._bytes.get(tenant, 0), self._samples.get(tenant, 0)

    def charge(
        self, tenant: str, *, n_bytes: int, n_samples: int
    ) -> QuotaCharge:
        """Attempt to bill ``tenant`` for one ingest request."""
        if n_bytes < 0 or n_samples < 0:
            raise ValueError("charges must be non-negative")
        used_bytes, used_samples = self.usage(tenant)
        if (
            self.quota.max_bytes is not None
            and used_bytes + n_bytes > self.quota.max_bytes
        ):
            return QuotaCharge(
                granted=False,
                reason="byte-quota-exhausted",
                bytes_used=used_bytes,
                samples_used=used_samples,
            )
        if (
            self.quota.max_samples is not None
            and used_samples + n_samples > self.quota.max_samples
        ):
            return QuotaCharge(
                granted=False,
                reason="sample-quota-exhausted",
                bytes_used=used_bytes,
                samples_used=used_samples,
            )
        self._bytes[tenant] = used_bytes + n_bytes
        self._samples[tenant] = used_samples + n_samples
        return QuotaCharge(
            granted=True,
            reason="",
            bytes_used=self._bytes[tenant],
            samples_used=self._samples[tenant],
        )

    def to_dict(self) -> dict:
        """Per-tenant usage map for ``/metrics``."""
        tenants = sorted(set(self._bytes) | set(self._samples))
        return {
            tenant: {
                "bytes_used": self._bytes.get(tenant, 0),
                "samples_used": self._samples.get(tenant, 0),
            }
            for tenant in tenants
        }
