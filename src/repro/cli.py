"""Command-line interface.

The subcommands mirror the workflows the paper prescribes for sites::

    python -m repro.cli plan --nodes 9216 --cv 0.025 --accuracy 0.01
    python -m repro.cli assess --nodes 9216 --watts 207.1,210.4,...
    python -m repro.cli systems
    python -m repro.cli stream --system l-csc --accuracy 0.02
    python -m repro.cli serve --port 8350
    python -m repro.cli run --jobs 4
    python -m repro.cli experiments T5 F3 --markdown out.md
    python -m repro.cli lint src/repro --format json

``plan`` sizes a measurement subset (Eq. 5, or the two-step pilot
procedure when per-node pilot watts are given); ``assess`` produces the
accuracy statement the paper wants attached to every submission;
``systems`` prints the calibrated registry; ``stream`` replays a
registry system through the :mod:`repro.stream` online pipeline (live
statistics, rule compliance and the sequential stopping verdict);
``run`` executes the experiment sweep on a process pool with the
content-addressed result cache on by default (``--no-cache`` disables,
``--refresh`` re-runs; results are byte-identical to a serial run);
``serve`` boots the :mod:`repro.serve` multi-tenant telemetry service
on a monotonic wall clock (``--self-test`` runs one TCP session
lifecycle and requires the verdict to match a direct replay);
``experiments`` is the classic serial shortcut to
:mod:`repro.experiments.runner`; ``lint`` runs the :mod:`repro.checks`
reproducibility/units/RNG static analysis and exits non-zero on
findings (the pre-merge gate, see ``scripts/check.sh``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.report import Table
from repro.cluster.registry import (
    NODE_VARIABILITY_SYSTEMS,
    PAPER_TABLE4,
    TRACE_SYSTEMS,
    get_system,
    workload_utilisation,
)
from repro.core.accuracy import assess_accuracy
from repro.core.recommendations import recommended_measurement_nodes
from repro.core.sampling import recommend_sample_size, two_step_pilot_plan
from repro.units import SECONDS_PER_HOUR

__all__ = ["build_parser", "main"]


def _parse_watts(text: str) -> np.ndarray:
    try:
        values = np.array([float(x) for x in text.split(",") if x.strip()])
    except ValueError as exc:
        raise SystemExit(
            f"error: could not parse watts list: {exc}"
        ) from exc
    if values.size == 0:
        raise SystemExit("error: empty watts list")
    if not np.all(np.isfinite(values)):
        raise SystemExit(
            "error: watts values must be finite (got nan or inf)"
        )
    if np.any(values < 0):
        raise SystemExit("error: watts values must be non-negative")
    return values


def _cmd_plan(args: argparse.Namespace) -> int:
    if args.pilot is not None:
        pilot = _parse_watts(args.pilot)
        plan = two_step_pilot_plan(
            args.nodes, pilot, accuracy=args.accuracy,
            confidence=args.confidence,
        )
        print(f"pilot of {pilot.size} nodes: mean {pilot.mean():.1f} W, "
              f"sigma/mu {plan.cv:.2%}")
    else:
        plan = recommend_sample_size(
            args.nodes, args.cv, args.accuracy, args.confidence
        )
    print(f"Eq. 5 plan: {plan}")
    new_rule = recommended_measurement_nodes(args.nodes)
    print(f"post-2015 submission rule: measure at least {new_rule} nodes "
          f"(max of 16 or 10% of {args.nodes})")
    if plan.n > new_rule:
        print("note: your accuracy target needs more nodes than the "
              "submission rule minimum.")
    return 0


def _cmd_assess(args: argparse.Namespace) -> int:
    watts = _parse_watts(args.watts)
    if watts.size < 2:
        raise SystemExit("error: need at least two node measurements")
    assessment = assess_accuracy(
        watts, args.nodes,
        confidence=args.confidence,
        target_lambda=args.target,
    )
    print(assessment.summary())
    return 0 if assessment.meets_target in (True, None) else 1


def _cmd_budget(args: argparse.Namespace) -> int:
    from repro.core.planning import (
        InstrumentationConstraints,
        plan_measurement,
    )
    from repro.metering.meter import MeterSpec

    constraints = InstrumentationConstraints(
        n_meters=args.meters,
        channels_per_meter=args.channels,
        meter_spec=MeterSpec(gain_error_cv=args.meter_gain_cv),
        full_core_window=not args.partial_window,
        machine_class=args.machine_class,
        conversion_modeling_error=args.conversion_error,
    )
    plan = plan_measurement(
        args.nodes, args.cv, args.accuracy, constraints
    )
    print(plan.summary())
    return 0 if plan.feasible else 1


def _cmd_systems(_: argparse.Namespace) -> int:
    table = Table(
        ["system", "kind", "N", "mean node W (paper)", "sigma/mu (paper)"],
        title="calibrated paper systems",
    )
    for name in NODE_VARIABILITY_SYSTEMS:
        row = PAPER_TABLE4[name]
        system = get_system(name)
        sample = system.node_sample(workload_utilisation(name))
        table.add_row(
            [name, "node-variability", system.n_nodes,
             f"{sample.mean():.1f} ({row.mean_w:.1f})",
             f"{sample.coefficient_of_variation():.2%} ({row.cv:.2%})"]
        )
    for name in TRACE_SYSTEMS:
        table.add_row([name, "trace (Table 2)", "-", "-", "-"])
    print(table.render())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core.recommendations import NEW_RULES
    from repro.lists.jsonio import submission_from_json
    from repro.lists.validation import validate_submission

    try:
        text = Path(args.path).read_text(encoding="utf-8")
    except OSError as exc:
        raise SystemExit(f"error: cannot read {args.path}: {exc}")
    try:
        submission = submission_from_json(text)
    except (ValueError, KeyError, TypeError) as exc:
        raise SystemExit(f"error: invalid submission: {exc}")
    report = validate_submission(
        submission,
        new_rules=None if args.old_rules_only else NEW_RULES,
    )
    print(report.summary())
    for v in report.violations:
        print(f"  violation: {v}")
    for f in report.new_rule_failures:
        print(f"  new-rule failure: {f}")
    for n in report.notes:
        print(f"  note: {n}")
    ok = report.complies_with_level and report.complies_with_new_rules
    return 0 if ok else 1


def _known_lint_rule_ids() -> frozenset[str]:
    """Every rule id ``--select``/``--ignore`` may legally name."""
    from repro.checks import PARSE_ERROR_ID, rule_index
    from repro.checks.semantic import semantic_rule_index

    return frozenset({PARSE_ERROR_ID, *rule_index(), *semantic_rule_index()})


def _lint_rule_catalogue(config, semantic: bool) -> list[tuple[str, str]]:
    """``(rule_id, title)`` for every rule active in this run."""
    from repro.checks import rule_index
    from repro.checks.semantic import SEMANTIC_RULES

    catalogue = [
        (rule_id, rule.title)
        for rule_id, rule in rule_index().items()
        if config.rule_enabled(rule_id)
    ]
    if semantic:
        catalogue += [
            (rule.rule_id, rule.title)
            for rule in SEMANTIC_RULES
            if config.rule_enabled(rule.rule_id)
        ]
    return catalogue


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.checks import LintCache, LintConfig, LintReport, load_config, run_lint

    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    config = load_config(paths[0])
    overrides = {}
    known_ids = _known_lint_rule_ids()
    for option in ("select", "ignore"):
        raw = getattr(args, option)
        if raw is None:
            continue
        ids = tuple(s.strip() for s in raw.split(",") if s.strip())
        unknown = sorted(set(ids) - known_ids)
        if unknown:
            raise SystemExit(
                f"error: unknown rule id(s) for --{option}: "
                f"{', '.join(unknown)} (known: {', '.join(sorted(known_ids))})"
            )
        overrides[option] = ids
    if overrides:
        config = LintConfig(
            **{
                **{f: getattr(config, f) for f in config.__dataclass_fields__},
                **overrides,
            }
        )
    if args.write_baseline and not args.semantic:
        raise SystemExit("error: --write-baseline requires --semantic")
    cache = None
    if not args.no_cache:
        cache = LintCache(Path(args.cache_file))
    report = run_lint(paths, config=config, jobs=args.jobs, cache=cache)
    findings = list(report.findings)
    summary_hits = 0
    if args.semantic:
        from repro.checks.semantic import run_semantic_lint

        sem = run_semantic_lint(paths, config=config, cache=cache, jobs=args.jobs)
        findings = sorted(findings + sem.findings)
        summary_hits = sem.summary_cache_hits
    accepted = None
    if args.semantic and args.write_baseline:
        from repro.checks.semantic import Baseline

        Baseline.from_findings(
            findings, "accepted when the baseline was (re)generated"
        ).save(args.baseline)
        print(f"wrote {len(findings)} accepted finding(s) to {args.baseline}")
        return 0
    if args.semantic and not args.no_baseline:
        from repro.checks.semantic import Baseline

        try:
            baseline = Baseline.load(args.baseline)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
        match = baseline.apply(findings)
        findings, accepted = match.new, match.accepted
        for entry in match.stale:
            print(
                "warning: stale baseline entry: "
                f"{entry.get('rule')} {entry.get('path')}: "
                f"{entry.get('message')}",
                file=sys.stderr,
            )
    if args.sarif:
        from repro.checks.semantic import render_sarif

        catalogue = _lint_rule_catalogue(config, args.semantic)
        Path(args.sarif).write_text(
            render_sarif(findings, catalogue, accepted) + "\n", encoding="utf-8"
        )
    out = LintReport(
        findings=findings,
        files_scanned=report.files_scanned,
        cache_hits=report.cache_hits,
    )
    if args.format == "json":
        print(out.render_json())
    else:
        print(out.render_text())
        if accepted:
            print(f"{len(accepted)} baseline-accepted finding(s) not shown")
        if summary_hits:
            print(f"(semantic summaries: {summary_hits} cached)")
    return 0 if not findings else 1


def _cmd_stream(args: argparse.Namespace) -> int:
    import json

    from repro.cluster.registry import TRACE_SYSTEMS as _TRACE
    from repro.cluster.registry import get_trace_setup
    from repro.stream.session import stream_session
    from repro.traces.synth import simulate_run
    from repro.workloads.base import ConstantWorkload

    name = args.system
    if name in _TRACE:
        system, workload = get_trace_setup(name)
    elif name in NODE_VARIABILITY_SYSTEMS:
        system = get_system(name)
        workload = ConstantWorkload(
            utilisation=workload_utilisation(name),
            core_s=args.core_seconds,
        )
    else:
        known = ", ".join((*_TRACE, *NODE_VARIABILITY_SYSTEMS))
        raise SystemExit(f"error: unknown system {name!r} (known: {known})")

    quantiles = tuple(
        float(q) for q in args.quantiles.split(",") if q.strip()
    )
    if not quantiles or not all(0.0 < q < 1.0 for q in quantiles):
        raise SystemExit("error: quantiles must be in (0, 1)")

    node_indices = None
    if args.max_nodes is not None:
        if args.max_nodes < 1:
            raise SystemExit("error: --max-nodes must be >= 1")
        n = min(args.max_nodes, system.n_nodes)
        node_indices = np.arange(n)

    run = simulate_run(system, workload, dt=args.dt, seed=args.seed)
    result = stream_session(
        run,
        node_indices=node_indices,
        ticks_per_batch=args.ticks_per_batch,
        quantiles=quantiles,
        accuracy=args.accuracy,
        confidence=args.confidence,
        report_every_s=args.report_every,
    )
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, default=float))
    else:
        print(result.render_text())
    ok = (
        result.monitor_report.interval_ok
        and result.stopping.should_stop
    )
    return 0 if ok else 1


def _cmd_shard(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.cluster.registry import TRACE_SYSTEMS as _TRACE
    from repro.cluster.registry import get_trace_setup
    from repro.shard import sharded_session
    from repro.traces.synth import simulate_run
    from repro.workloads.base import ConstantWorkload

    name = args.system
    if name in _TRACE:
        system, workload = get_trace_setup(name)
    elif name in NODE_VARIABILITY_SYSTEMS:
        system = get_system(name)
        workload = ConstantWorkload(
            utilisation=workload_utilisation(name),
            core_s=args.core_seconds,
        )
    else:
        known = ", ".join((*_TRACE, *NODE_VARIABILITY_SYSTEMS))
        raise SystemExit(f"error: unknown system {name!r} (known: {known})")

    if args.shards < 1:
        raise SystemExit("error: --shards must be >= 1")
    processes = args.processes
    if processes is None:
        processes = min(args.shards, os.cpu_count() or 1)
    if processes < 0:
        raise SystemExit("error: --processes must be >= 0")

    run = simulate_run(system, workload, dt=args.dt, seed=args.seed)
    result = sharded_session(
        run,
        n_shards=min(args.shards, system.n_nodes),
        ticks_per_batch=args.ticks_per_batch,
        accuracy=args.accuracy,
        confidence=args.confidence,
        processes=processes,
    )
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, default=float))
    else:
        print(result.render_text())
    ok = (
        result.monitor_report.interval_ok
        and result.stopping.should_stop
    )
    return 0 if ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.cluster.registry import TRACE_SYSTEMS as _TRACE
    from repro.cluster.registry import get_trace_setup
    from repro.faults.chaos import ChaosScenario, run_chaos
    from repro.traces.synth import simulate_run
    from repro.workloads.base import ConstantWorkload

    name = args.system
    if name in _TRACE:
        system, _ = get_trace_setup(name)
    elif name in NODE_VARIABILITY_SYSTEMS:
        system = get_system(name)
    else:
        known = ", ".join((*_TRACE, *NODE_VARIABILITY_SYSTEMS))
        raise SystemExit(f"error: unknown system {name!r} (known: {known})")

    node_indices = None
    if args.max_nodes is not None:
        if args.max_nodes < 1:
            raise SystemExit("error: --max-nodes must be >= 1")
        n = min(args.max_nodes, system.n_nodes)
        node_indices = np.arange(n)

    if args.pathology:
        from repro.faults.pathology import run_pathology, standard_scenarios
        from repro.workloads.hpl import HplWorkload

        kinds = tuple(
            k.strip() for k in args.pathology.split(",") if k.strip()
        )
        if kinds == ("all",):
            kinds = ("aliasing", "entropy", "spread")
        try:
            scenarios = standard_scenarios(
                kinds, intensity=args.intensity
            )
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from exc
        # A trending (tail-off) trace, so the duty-cycled meter's hold
        # bias is real signal rather than zero-mean noise.
        workload = HplWorkload.gpu_in_core(core_s=args.core_seconds)
        run = simulate_run(system, workload, dt=args.dt, seed=args.seed)
        outcomes = [
            run_pathology(
                run,
                scenario,
                gap_policy=args.policy,
                seed=args.seed,
                node_indices=node_indices,
            )
            for scenario in scenarios
        ]
        if args.format == "json":
            print(json.dumps(
                [o.to_dict() for o in outcomes], indent=2, default=float
            ))
        else:
            for outcome in outcomes:
                print("\n".join(outcome.lines()))
                print()
        return 0 if all(o.ok() for o in outcomes) else 1

    workload = ConstantWorkload(
        utilisation=0.95, core_s=args.core_seconds
    )

    try:
        rates = [
            float(r) for r in args.dropout.split(",") if r.strip()
        ]
    except ValueError as exc:
        raise SystemExit(f"error: bad --dropout list: {exc}") from exc
    if not rates or not all(0.0 <= r < 1.0 for r in rates):
        raise SystemExit("error: dropout rates must be in [0, 1)")

    run = simulate_run(system, workload, dt=args.dt, seed=args.seed)
    outcomes = []
    for rate in rates:
        scenario = ChaosScenario(
            name=f"dropout-{rate:g}",
            dropout_rate=rate,
            node_loss=args.node_loss,
            stuck_rate=args.stuck,
            spike_rate=args.spike,
            truncate_frac=args.truncate,
            delivery_failure_rate=args.delivery_failure_rate,
        )
        outcomes.append(
            run_chaos(
                run,
                scenario,
                gap_policy=args.policy,
                seed=args.seed,
                node_indices=node_indices,
            )
        )
    if args.format == "json":
        print(json.dumps(
            [o.to_dict() for o in outcomes], indent=2, default=float
        ))
    else:
        for outcome in outcomes:
            print("\n".join(outcome.lines()))
            print()
    return 0 if all(o.ok() for o in outcomes) else 1


def _cmd_wire(args: argparse.Namespace) -> int:
    import json

    from repro.cluster.registry import TRACE_SYSTEMS as _TRACE
    from repro.cluster.registry import get_trace_setup
    from repro.traces.synth import simulate_run
    from repro.wire.codecs import available_codecs
    from repro.wire.frontier import wire_frontier
    from repro.workloads.base import ConstantWorkload

    if args.fuzz is not None:
        return _wire_fuzz(args.fuzz, seed=args.seed)

    name = args.system
    if name in _TRACE:
        system, _ = get_trace_setup(name)
    elif name in NODE_VARIABILITY_SYSTEMS:
        system = get_system(name)
    else:
        known = ", ".join((*_TRACE, *NODE_VARIABILITY_SYSTEMS))
        raise SystemExit(f"error: unknown system {name!r} (known: {known})")

    codecs = tuple(c.strip() for c in args.codecs.split(",") if c.strip())
    unknown = [c for c in codecs if c not in available_codecs()]
    if unknown:
        raise SystemExit(
            f"error: unknown codec(s) {', '.join(unknown)} "
            f"(known: {', '.join(available_codecs())})"
        )
    for rate_list in (args.drop, args.corrupt):
        if not all(0.0 <= r < 1.0 for r in rate_list):
            raise SystemExit("error: rates must be in [0, 1)")
    rates = tuple(
        (drop, corrupt) for drop in args.drop for corrupt in args.corrupt
    )

    node_indices = None
    if args.max_nodes is not None:
        if args.max_nodes < 1:
            raise SystemExit("error: --max-nodes must be >= 1")
        node_indices = np.arange(min(args.max_nodes, system.n_nodes))

    workload = ConstantWorkload(utilisation=0.95, core_s=args.core_seconds)
    run = simulate_run(system, workload, dt=args.dt, seed=args.seed)
    cells = wire_frontier(
        run,
        codecs=codecs,
        rates=rates,
        seed=args.seed,
        node_indices=node_indices,
        ticks_per_batch=args.ticks_per_frame,
    )
    if args.format == "json":
        print(json.dumps([c.to_dict() for c in cells], indent=2,
                         default=float))
    else:
        header = (
            f"{'codec':>20s} {'drop':>5s} {'corr':>5s} {'lost':>7s} "
            f"{'B/node/s':>9s} {'ratio':>6s} {'mean err':>9s} "
            f"{'cv err':>9s} {'flip':>5s} {'ok':>3s}"
        )
        print(header)
        for c in cells:
            ok = c.reconciled and c.within_bounds
            print(
                f"{c.codec:>20s} {c.drop_rate:>5.0%} {c.corrupt_rate:>5.0%} "
                f"{c.frames_lost:>3d}/{c.frames_sent:<3d} "
                f"{c.node_bps:>9.2f} x{c.compression_ratio:<5.2f} "
                f"{c.rel_err_fleet_mean:>9.2e} {c.rel_err_node_cv:>9.2e} "
                f"{'yes' if c.verdict_flipped else 'no':>5s} "
                f"{'yes' if ok else 'NO':>3s}"
            )
    return 0 if all(c.reconciled and c.within_bounds for c in cells) else 1


def _wire_fuzz(iterations: int, *, seed: int) -> int:
    """Bounded-iteration frame-parser fuzz (the CI smoke stage).

    Builds a valid frame stream, then mutates, truncates and splices it
    with seeded randomness; the parser must never raise and never
    accept a frame whose CRC does not check out.
    """
    from repro.rng import stream as _stream
    from repro.wire.framing import FrameParser, encode_frame

    if iterations < 1:
        raise SystemExit("error: --fuzz iterations must be >= 1")
    rng = _stream(seed, "wire:fuzz")
    base = b"".join(
        encode_frame(
            codec_id=1,
            flags=0,
            seq=i,
            node_lo=0,
            n_nodes=4,
            n_ticks=2,
            tick=2 * i,
            payload=rng.bytes(80),
        )
        for i in range(4)
    )
    for i in range(iterations):
        blob = bytearray(base)
        for _ in range(int(rng.integers(1, 12))):
            blob[int(rng.integers(len(blob)))] = int(rng.integers(256))
        lo = int(rng.integers(len(blob)))
        hi = int(rng.integers(lo, len(blob) + 1))
        mangled = bytes(blob[lo:hi]) + rng.bytes(int(rng.integers(40)))
        parser = FrameParser()
        step = int(rng.integers(1, 97))
        for off in range(0, len(mangled), step):
            parser.feed(mangled[off: off + step])
        parser.close()
    print(f"wire fuzz: {iterations} mutated streams parsed, no crash")
    return 0


class _WallClock:
    """Monotonic wall clock behind the injected-clock interface.

    The service reads ``now_s`` for every limiter decision and idle
    sweep; tests inject a :class:`~repro.stream.ingest.SimClock`, real
    deployments get this (monotonic, so NTP steps can't starve or
    flood the token buckets).
    """

    def __init__(self) -> None:
        import time

        self._monotonic = time.monotonic
        self._t0_s = self._monotonic()

    @property
    def now_s(self) -> float:
        return self._monotonic() - self._t0_s


async def _http_exchange(reader, writer, payload: bytes) -> tuple[int, dict]:
    """One request/response over an open connection; JSON body."""
    import json

    writer.write(payload)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    n_body = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            n_body = int(value)
    body = await reader.readexactly(n_body)
    return status, json.loads(body)


def _http_request(method: str, target: str, *, tenant: str = "",
                  body: bytes = b"", close: bool = False) -> bytes:
    lines = [f"{method} {target} HTTP/1.1", "Host: localhost"]
    if tenant:
        lines.append(f"X-Tenant: {tenant}")
    if body:
        lines.append("Content-Type: application/json")
        lines.append(f"Content-Length: {len(body)}")
    if close:
        lines.append("Connection: close")
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


def _serve_self_test(seed: int) -> int:
    """Full TCP lifecycle against the service; verdict must match a
    direct :func:`~repro.stream.session.stream_session` replay."""
    import asyncio
    import json

    from repro.cluster.components import CpuModel, DramModel, FanModel
    from repro.cluster.node import NodeConfig
    from repro.cluster.system import SystemModel
    from repro.cluster.thermal import FanController
    from repro.cluster.variability import ManufacturingVariation
    from repro.serve import ServiceConfig, TelemetryApp
    from repro.stream.ingest import SimClock, replay_run
    from repro.stream.session import stream_session
    from repro.traces.synth import simulate_run
    from repro.workloads.hpl import HplWorkload

    accuracy, report_every_s, ticks_per_batch = 0.05, 60.0, 15
    node = NodeConfig(
        cpu=CpuModel(idle_watts=20.0, peak_watts=120.0),
        n_cpus=2,
        dram=DramModel.for_capacity(32.0),
        fan=FanModel(max_watts=40.0),
        other_watts=20.0,
    )
    system = SystemModel(
        "serve-selftest", 8, node,
        variation=ManufacturingVariation(sigma=0.02),
        fan_controller=FanController(
            fan_model=node.fan, reference_watts=300.0
        ),
        seed=21,
    )
    workload = HplWorkload.cpu_out_of_core(
        240.0, setup_s=20.0, teardown_s=20.0
    )
    run = simulate_run(system, workload, dt=2.0, seed=seed)
    batches = list(replay_run(run, ticks_per_batch=ticks_per_batch))
    direct = stream_session(
        run, ticks_per_batch=ticks_per_batch, accuracy=accuracy,
        report_every_s=report_every_s,
    )
    want = json.loads(json.dumps(direct.to_dict(), default=float))
    t0_s, t1_s = run.core_window
    config = {
        "population": run.system.n_nodes,
        "core_t0_s": t0_s,
        "core_t1_s": t1_s,
        "interval_s": max(run.dt, 1.0),
        "accuracy": accuracy,
        "report_every_s": report_every_s,
    }

    async def scenario() -> dict:
        app = TelemetryApp(SimClock(dt_s=1.0), ServiceConfig())
        server = await app.serve_tcp("127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            status, payload = await _http_exchange(
                reader, writer,
                _http_request(
                    "POST", "/v1/sessions", tenant="selftest",
                    body=json.dumps(config).encode(),
                ),
            )
            assert status == 201, f"create -> {status}"
            sid = payload["session"]["session_id"]
            for batch in batches:
                body = json.dumps({
                    "times": batch.times.tolist(),
                    "watts": batch.watts.tolist(),
                    "node_ids": batch.node_ids.tolist(),
                }).encode()
                status, payload = await _http_exchange(
                    reader, writer,
                    _http_request(
                        "POST", f"/v1/sessions/{sid}/batches",
                        tenant="selftest", body=body,
                    ),
                )
                assert status == 202, f"ingest -> {status}: {payload}"
            status, payload = await _http_exchange(
                reader, writer,
                _http_request(
                    "DELETE", f"/v1/sessions/{sid}",
                    tenant="selftest", close=True,
                ),
            )
            assert status == 200, f"close -> {status}"
            return payload["summary"]
        finally:
            writer.close()
            server.close()
            await server.wait_closed()
            await app.shutdown()

    got = asyncio.run(scenario())
    # Queue bookkeeping belongs to the driver, not the verdict.
    for key in ("queue_stalls", "queue_high_watermark", "session_id",
                "quality"):
        want.pop(key, None)
        got.pop(key, None)
    if got != want:
        diff = sorted(
            k for k in set(want) | set(got)
            if want.get(k) != got.get(k)
        )
        print("serve self-test: MISMATCH in " + ", ".join(diff))
        return 1
    print(
        "serve self-test: TCP lifecycle ok — "
        f"{len(batches)} batches, "
        f"{got['samples_ingested']} samples, verdict bit-identical "
        "to the direct stream_session replay"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServiceConfig, TelemetryApp

    if args.self_test:
        return _serve_self_test(seed=args.seed)

    config = ServiceConfig(
        rate_capacity=args.rate_capacity,
        rate_refill_per_request_s=args.rate_refill,
        idle_timeout_s=args.idle_timeout,
    )

    async def run_forever() -> None:
        app = TelemetryApp(_WallClock(), config)
        server = await app.serve_tcp(args.host, args.port)
        host, port = server.sockets[0].getsockname()[:2]
        print(f"repro serve: listening on http://{host}:{port}")
        sweeper = asyncio.ensure_future(app.sweep_forever())
        try:
            await server.serve_forever()
        finally:
            sweeper.cancel()
            server.close()
            await server.wait_closed()
            await app.shutdown()

    try:
        asyncio.run(run_forever())
    except KeyboardInterrupt:
        print("repro serve: shut down")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import main as runner_main

    argv = list(args.ids)
    if args.markdown:
        argv += ["--markdown", args.markdown]
    if args.quiet:
        argv += ["--quiet"]
    return runner_main(argv)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.runner import experiments_markdown, run_all
    from repro.parallel.cache import ResultCache

    cache = ResultCache(args.cache_dir) if args.cache else None
    try:
        results = run_all(
            ids=args.ids or None,
            verbose=not args.quiet,
            jobs=args.jobs if args.jobs is not None else 1,
            cache=cache,
            refresh=args.refresh,
        )
    except (KeyError, ValueError) as exc:
        # Bad experiment ids are a usage error: exit 2, like argparse.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as fh:
            fh.write(experiments_markdown(results))
        print(f"wrote {args.markdown}")
    failed = [i for i, r in results.items() if not r.all_ok()]
    if failed:
        print(f"FAILED experiments: {failed}", file=sys.stderr)
        return 1
    print(f"all {len(results)} experiments within tolerance")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EE HPC WG power-measurement methodology tools "
                    "(SC '15 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser(
        "plan", help="size a node-subset measurement (Eq. 5)"
    )
    plan.add_argument("--nodes", type=int, required=True,
                      help="fleet size N")
    plan.add_argument("--cv", type=float, default=0.03,
                      help="assumed sigma/mu (default 0.03, the paper's "
                           "conservative band edge)")
    plan.add_argument("--accuracy", type=float, default=0.01,
                      help="target relative accuracy lambda (default 1%%)")
    plan.add_argument("--confidence", type=float, default=0.95)
    plan.add_argument("--pilot", type=str, default=None,
                      help="comma-separated pilot node watts; switches to "
                           "the two-step procedure")
    plan.set_defaults(func=_cmd_plan)

    assess = sub.add_parser(
        "assess", help="assess a subset measurement's accuracy"
    )
    assess.add_argument("--nodes", type=int, required=True)
    assess.add_argument("--watts", type=str, required=True,
                        help="comma-separated measured node watts")
    assess.add_argument("--target", type=float, default=None,
                        help="accuracy target lambda to verify")
    assess.add_argument("--confidence", type=float, default=0.95)
    assess.set_defaults(func=_cmd_assess)

    budget = sub.add_parser(
        "budget",
        help="full error budget for a measurement plan under "
             "instrumentation constraints",
    )
    budget.add_argument("--nodes", type=int, required=True)
    budget.add_argument("--cv", type=float, default=0.03)
    budget.add_argument("--accuracy", type=float, default=0.02)
    budget.add_argument("--meters", type=int, default=2)
    budget.add_argument("--channels", type=int, default=24,
                        help="nodes per instrument")
    budget.add_argument("--meter-gain-cv", type=float, default=0.01)
    budget.add_argument("--partial-window", action="store_true",
                        help="use the pre-2015 partial window instead of "
                             "the full core phase")
    budget.add_argument("--machine-class", choices=("cpu", "gpu"),
                        default="cpu")
    budget.add_argument("--conversion-error", type=float, default=0.0)
    budget.set_defaults(func=_cmd_budget)

    systems = sub.add_parser("systems", help="list the calibrated registry")
    systems.set_defaults(func=_cmd_systems)

    validate = sub.add_parser(
        "validate",
        help="validate a submission JSON against the methodology",
    )
    validate.add_argument("path", help="submission JSON file")
    validate.add_argument(
        "--old-rules-only", action="store_true",
        help="check only the claimed level's Table 1 rules, not the "
             "post-2015 requirements",
    )
    validate.set_defaults(func=_cmd_validate)

    stream = sub.add_parser(
        "stream",
        help="replay a registry system through the online telemetry "
             "pipeline (live stats, compliance, sequential stopping)",
    )
    stream.add_argument("--system", default="l-csc",
                        help="registry system to replay (default: l-csc)")
    stream.add_argument("--dt", type=float, default=1.0,
                        help="sample spacing in seconds (default 1, the "
                             "Level 1/2 granularity)")
    stream.add_argument("--seed", type=int, default=2015,
                        help="replay seed (default 2015)")
    stream.add_argument("--accuracy", type=float, default=0.01,
                        help="sequential stopping target lambda")
    stream.add_argument("--confidence", type=float, default=0.95)
    stream.add_argument("--quantiles", default="0.5,0.95",
                        help="comma-separated fleet power quantiles to "
                             "track (default 0.5,0.95)")
    stream.add_argument("--ticks-per-batch", type=int, default=60,
                        help="collector flush interval in ticks")
    stream.add_argument("--report-every", type=float, default=600.0,
                        help="snapshot cadence in simulated seconds")
    stream.add_argument("--max-nodes", type=int, default=None,
                        help="stream only the first K nodes (a measured "
                             "subset; default: the whole fleet)")
    stream.add_argument("--core-seconds", type=float,
                        default=SECONDS_PER_HOUR,
                        help="core duration for node-variability systems "
                             "(which have no HPL trace; default 1 hour)")
    stream.add_argument("--format", choices=("text", "json"),
                        default="text")
    stream.set_defaults(func=_cmd_stream)

    shard = sub.add_parser(
        "shard",
        help="replay a registry system through the sharded multiprocess "
             "pipeline — bit-identical to serial for any shard count",
        description="Partition the fleet into contiguous node ranges, "
                    "run the full per-node kernel per shard (in a fork "
                    "worker pool, or inline with --processes 0), and "
                    "reduce through the exact merge tree.",
    )
    shard.add_argument("--system", default="l-csc",
                       help="registry system to replay")
    shard.add_argument("--shards", type=int, default=4,
                       help="contiguous node-range shards "
                            "(default: %(default)s)")
    shard.add_argument("--processes", type=int, default=None, metavar="N",
                       help="worker processes (default: min(shards, "
                            "cpu count); 0 runs every shard inline)")
    shard.add_argument("--dt", type=float, default=1.0,
                       help="sample spacing in seconds")
    shard.add_argument("--seed", type=int, default=2015,
                       help="simulation seed")
    shard.add_argument("--accuracy", type=float, default=0.01,
                       help="sequential stopping target lambda")
    shard.add_argument("--confidence", type=float, default=0.95)
    shard.add_argument("--ticks-per-batch", type=int, default=60,
                       help="slab capacity / collector flush interval")
    shard.add_argument("--core-seconds", type=float,
                       default=SECONDS_PER_HOUR,
                       help="core-phase length for non-trace systems")
    shard.add_argument("--format", choices=("text", "json"),
                       default="text")
    shard.set_defaults(func=_cmd_shard)

    chaos = sub.add_parser(
        "chaos",
        help="inject deterministic meter faults into a replayed system, "
             "run the self-healing recovery and audit the quality label "
             "(exit 1 on any bound breach or ledger mismatch)",
    )
    chaos.add_argument("--system", default="l-csc",
                       help="registry system to degrade (default: l-csc)")
    chaos.add_argument("--dropout", default="0.05",
                       help="comma-separated sample-dropout rates to "
                            "sweep (default 0.05)")
    chaos.add_argument("--node-loss", type=int, default=1,
                       help="nodes lost mid-run per scenario (default 1)")
    chaos.add_argument("--stuck", type=float, default=0.0,
                       help="stuck-at-last-value start rate (default 0)")
    chaos.add_argument("--spike", type=float, default=0.0,
                       help="spike-glitch rate (default 0)")
    chaos.add_argument("--truncate", type=float, default=0.0,
                       help="fraction of the trace tail that never "
                            "arrives (default 0)")
    chaos.add_argument("--delivery-failure-rate", type=float, default=0.0,
                       help="per-attempt transient delivery failure "
                            "probability (default 0)")
    chaos.add_argument("--pathology", default="",
                       help="run correlated meter pathologies instead of "
                            "independent faults: comma-separated subset "
                            "of aliasing,entropy,spread, or 'all'")
    chaos.add_argument("--intensity", choices=("low", "high"),
                       default="high",
                       help="pathology intensity grid row "
                            "(with --pathology; default high)")
    chaos.add_argument("--policy", choices=("hold", "interpolate",
                                            "exclude"),
                       default="hold", help="gap-repair policy")
    chaos.add_argument("--dt", type=float, default=2.0,
                       help="sample spacing in seconds (default 2)")
    chaos.add_argument("--seed", type=int, default=2015,
                       help="fault-plan and replay seed (default 2015)")
    chaos.add_argument("--core-seconds", type=float, default=1800.0,
                       help="core duration of the degraded run "
                            "(default 1800)")
    chaos.add_argument("--max-nodes", type=int, default=None,
                       help="degrade only the first K nodes "
                            "(default: the whole fleet)")
    chaos.add_argument("--format", choices=("text", "json"),
                       default="text")
    chaos.set_defaults(func=_cmd_chaos)

    wire = sub.add_parser(
        "wire",
        help="sweep the wire codecs' bandwidth-vs-accuracy frontier, "
             "or fuzz the frame parser (--fuzz N)",
        description="Replay a simulated fleet through the framed wire "
                    "protocol at each codec x loss-rate cell, audit "
                    "the recovery exactly, and print the "
                    "bandwidth-vs-accuracy frontier.  With --fuzz N, "
                    "instead mutate N seeded byte streams through the "
                    "frame parser (the CI smoke stage).",
    )
    wire.add_argument("--system", default="l-csc",
                      help="trace system to stream (default: %(default)s)")
    wire.add_argument("--codecs",
                      default="raw64,delta-varint,zlib(delta-varint),"
                              "quant12,quant8",
                      help="comma-separated codec specs")
    wire.add_argument("--drop", type=float, nargs="*",
                      default=[0.0, 0.1],
                      help="frame drop rates to sweep (default: 0 0.1)")
    wire.add_argument("--corrupt", type=float, nargs="*",
                      default=[0.0, 0.1],
                      help="frame corruption rates to sweep "
                           "(default: 0 0.1)")
    wire.add_argument("--dt", type=float, default=2.0,
                      help="sample spacing in seconds")
    wire.add_argument("--core-seconds", type=float, default=1200.0,
                      help="core-phase length of the simulated run")
    wire.add_argument("--ticks-per-frame", type=int, default=10,
                      help="ticks carried per wire frame")
    wire.add_argument("--seed", type=int, default=2015,
                      help="root seed for the run and the fault plans")
    wire.add_argument("--max-nodes", type=int, default=12,
                      help="leading node subset to frame "
                           "(default: %(default)s)")
    wire.add_argument("--fuzz", type=int, default=None, metavar="N",
                      help="skip the sweep; fuzz the frame parser with "
                           "N mutated streams and exit")
    wire.add_argument("--format", choices=("text", "json"),
                      default="text")
    wire.set_defaults(func=_cmd_wire)

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant telemetry service (HTTP/JSON + RPWR)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve.add_argument(
        "--port", type=int, default=8350, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--rate-capacity", type=float, default=100.0,
        help="token-bucket burst capacity per tenant",
    )
    serve.add_argument(
        "--rate-refill", type=float, default=50.0,
        help="token-bucket refill rate (requests/s) per tenant",
    )
    serve.add_argument(
        "--idle-timeout", type=float, default=SECONDS_PER_HOUR,
        help="seconds of inactivity before a drained session is evicted",
    )
    serve.add_argument(
        "--self-test", action="store_true",
        help="boot on an ephemeral port, run one TCP session lifecycle "
             "and require the verdict to match a direct replay",
    )
    serve.add_argument(
        "--seed", type=int, default=11, help="self-test run seed"
    )
    serve.set_defaults(func=_cmd_serve)

    run = sub.add_parser(
        "run",
        help="run the experiment sweep — parallel (--jobs N) with the "
             "content-addressed result cache on by default",
        description="Run the paper-reproduction experiment sweep. "
                    "Experiments are scheduled longest-first onto a "
                    "process pool; unchanged experiments replay from "
                    "the content-addressed cache under --cache-dir. "
                    "Every layout (serial, --jobs N, cached) produces "
                    "byte-identical records.",
    )
    run.add_argument("ids", nargs="*",
                     help="experiment ids to run (default: all)")
    run.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                     help="worker processes (default: 1, serial)")
    run.add_argument("--cache", action=argparse.BooleanOptionalAction,
                     default=True,
                     help="replay unchanged experiments from the result "
                          "cache (default: on; --no-cache disables)")
    run.add_argument("--cache-dir", default=".repro-cache", metavar="PATH",
                     help="cache location (default: %(default)s)")
    run.add_argument("--refresh", action="store_true",
                     help="re-run every experiment and overwrite its "
                          "cache entry")
    run.add_argument("--markdown", default=None, metavar="PATH",
                     help="write the EXPERIMENTS.md body to PATH")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-experiment output")
    run.set_defaults(func=_cmd_run)

    experiments = sub.add_parser(
        "experiments",
        help="run the paper-reproduction experiments (serial shortcut; "
             "see `run` for --jobs/--cache)",
    )
    experiments.add_argument("ids", nargs="*")
    experiments.add_argument("--markdown", default=None)
    experiments.add_argument("--quiet", action="store_true")
    experiments.set_defaults(func=_cmd_experiments)

    lint = sub.add_parser(
        "lint",
        help="run the reproducibility/units/RNG static analysis "
             "(per-file rules RPX001-RPX008; --semantic adds the "
             "whole-project rules RPX101-RPX103)",
    )
    lint.add_argument("paths", nargs="*",
                      help="files or directories (default: src if present, "
                           "else .)")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--select", default=None,
                      help="comma-separated rule ids to run (default: all); "
                           "unknown ids are an error")
    lint.add_argument("--ignore", default=None,
                      help="comma-separated rule ids to skip; unknown ids "
                           "are an error")
    lint.add_argument("--jobs", type=int, default=None,
                      help="worker threads for the parallel scan")
    lint.add_argument("--no-cache", action="store_true",
                      help="disable the findings/summary cache")
    lint.add_argument("--cache-file", default=".repro_lint_cache.json",
                      help="cache location (default: %(default)s)")
    lint.add_argument("--semantic", action="store_true",
                      help="also run the cross-module semantic rules "
                           "(purity, seed provenance, unit dimensions)")
    lint.add_argument("--sarif", default=None, metavar="PATH",
                      help="write a SARIF 2.1.0 report to PATH")
    lint.add_argument("--baseline", default=".repro-lint-baseline.json",
                      metavar="PATH",
                      help="accepted-findings baseline consulted by "
                           "--semantic (default: %(default)s)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore the baseline and report every finding")
    lint.add_argument("--write-baseline", action="store_true",
                      help="accept all current findings into the baseline "
                           "file and exit")
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
