"""RPX004 — no hidden nondeterminism in library code.

A variability study is only falsifiable if two runs with the same seed
produce the same bytes.  Wall clocks, OS entropy and the stdlib
``random`` module smuggle ambient state into what should be a pure
function of ``(inputs, seed)`` — the "part-time power measurement"
failure mode, where results depend on *when* the code ran.  Only the
CLI / experiment runner (configured via ``nondeterminism-exempt``) may
read wall time, and then only for reporting.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.engine import FileContext, Finding

__all__ = ["BANNED_CALLS", "BANNED_MODULES", "NondeterminismRule"]

#: Fully-qualified callables whose results depend on ambient state.
BANNED_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: Modules banned wholesale: any attribute access is ambient state.
BANNED_MODULES = ("random", "secrets")


class NondeterminismRule:
    """Flag wall-clock / OS-entropy use outside the exempted CLI layer."""

    rule_id = "RPX004"
    title = "library code must be a pure function of (inputs, seed)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for ambient-state reads in non-exempt files."""
        if ctx.is_nondeterminism_exempt:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                qualname = ctx.imports.qualify(node)
                if qualname is None:
                    continue
                if qualname in BANNED_CALLS:
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        f"{qualname} reads ambient state; library results "
                        "must be a pure function of (inputs, seed)",
                    )
                elif qualname.split(".", 1)[0] in BANNED_MODULES:
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        f"{qualname}: the stdlib {qualname.split('.', 1)[0]!r} "
                        "module is hidden global entropy; thread a "
                        "numpy.random.Generator from repro.rng",
                    )
            elif isinstance(node, ast.ImportFrom) and not node.level:
                module = node.module or ""
                for alias in node.names:
                    qualname = f"{module}.{alias.name}"
                    if qualname in BANNED_CALLS or module in BANNED_MODULES:
                        yield ctx.finding(
                            node,
                            self.rule_id,
                            f"importing {qualname} pulls ambient state into "
                            "library code; keep wall-clock/entropy reads in "
                            "the CLI layer",
                        )
