"""RPX001 — no global NumPy random state.

Every stochastic component must draw from a
:class:`numpy.random.Generator` threaded in explicitly (created via
:mod:`repro.rng`).  The legacy ``numpy.random.*`` module-level functions
(``seed``, ``rand``, ``choice``, ...) and ``numpy.random.RandomState``
share hidden global state, so one extra draw anywhere silently shifts
every downstream sample — exactly the kind of invisible methodological
drift the paper's calibration study exists to rule out.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.engine import FileContext, Finding

__all__ = ["GLOBAL_STATE_NAMES", "GlobalNumpyRandomRule"]

#: ``numpy.random`` module-level functions backed by the hidden global
#: ``RandomState`` (the new ``Generator`` API has none of these at
#: module level except via ``default_rng``).
GLOBAL_STATE_NAMES = frozenset(
    {
        "seed",
        "get_state",
        "set_state",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "random_integers",
        "ranf",
        "sample",
        "bytes",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "standard_normal",
        "uniform",
        "exponential",
        "poisson",
        "binomial",
        "lognormal",
        "gamma",
        "beta",
    }
)

_LEGACY_CLASS = "RandomState"


class GlobalNumpyRandomRule:
    """Flag use of the global NumPy random state."""

    rule_id = "RPX001"
    title = "no global NumPy random state; thread a Generator from repro.rng"

    def _message(self, name: str) -> str:
        return (
            f"numpy.random.{name} uses the hidden global random state; "
            "thread an explicit numpy.random.Generator from repro.rng instead"
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield a finding for each global-state numpy.random access."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                qualname = ctx.imports.qualify(node)
                if qualname is None:
                    continue
                prefix, _, attr = qualname.rpartition(".")
                if prefix != "numpy.random":
                    continue
                if attr in GLOBAL_STATE_NAMES or attr == _LEGACY_CLASS:
                    yield ctx.finding(node, self.rule_id, self._message(attr))
            elif isinstance(node, ast.ImportFrom):
                if node.module != "numpy.random" or node.level:
                    continue
                for alias in node.names:
                    if alias.name in GLOBAL_STATE_NAMES or alias.name == _LEGACY_CLASS:
                        yield ctx.finding(
                            node, self.rule_id, self._message(alias.name)
                        )
