"""RPX008 — no silent fault swallowing in recovery paths.

The fault/recovery layer's whole contract is that degradation is
*labelled*: every dropped sample, retried batch and quarantined node
shows up in a :class:`~repro.faults.quality.QualityReport`.  A bare
``except:`` (or a broad ``except Exception:`` whose body is just
``pass``) breaks that contract at the root — the fault happened, was
caught, and left no trace.  It also eats ``KeyboardInterrupt`` and
``SystemExit``, turning an operator's ctrl-C into undefined behaviour.

The rule flags:

* any bare ``except:`` handler, anywhere;
* ``except Exception:`` / ``except BaseException:`` (alone or in a
  tuple) whose body does nothing but ``pass`` / ``...`` — catching
  everything is occasionally right, but only if the handler *records*
  what it caught.

Catching a *specific* exception type with an empty body is left alone:
``except StopIteration: pass`` states exactly which condition is
expected and harmless.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.engine import FileContext, Finding

__all__ = ["BROAD_TYPES", "BareExceptRule"]

#: Exception names considered catch-everything.
BROAD_TYPES = frozenset({"Exception", "BaseException"})


def _names(expr: ast.expr | None) -> list[str]:
    """Exception type names named by an ``except`` clause."""
    if expr is None:
        return []
    items = expr.elts if isinstance(expr, ast.Tuple) else [expr]
    out = []
    for item in items:
        if isinstance(item, ast.Name):
            out.append(item.id)
        elif isinstance(item, ast.Attribute):
            out.append(item.attr)
    return out


def _body_is_silent(body: list[ast.stmt]) -> bool:
    """Does the handler do nothing but swallow (pass / ``...``)?"""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ) and stmt.value.value is Ellipsis:
            continue
        return False
    return True


class BareExceptRule:
    """Flag bare ``except`` and silent catch-everything handlers."""

    rule_id = "RPX008"
    title = "recovery paths must not swallow faults silently"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for silent exception swallowing."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    node,
                    self.rule_id,
                    "bare 'except:' swallows every fault (including "
                    "KeyboardInterrupt); name the exception type and "
                    "record what was caught",
                )
                continue
            broad = [n for n in _names(node.type) if n in BROAD_TYPES]
            if broad and _body_is_silent(node.body):
                yield ctx.finding(
                    node,
                    self.rule_id,
                    f"'except {broad[0]}: pass' hides the fault it "
                    "caught; a recovery path must count, log or "
                    "re-raise — degraded data may never be silent",
                )
