"""Rule registry for the :mod:`repro.checks` lint engine.

Each rule lives in its own module named after its id; this package
assembles them into the default rule set and applies the config's
``select`` / ``ignore`` filters.  See ``docs/linting.md`` for the
rule-by-rule methodology rationale.
"""

from __future__ import annotations

from repro.checks.config import LintConfig
from repro.checks.engine import Rule
from repro.checks.rules.rpx001_global_rng import GlobalNumpyRandomRule
from repro.checks.rules.rpx002_units import UnitLiteralRule
from repro.checks.rules.rpx003_float_eq import FloatEqualityRule
from repro.checks.rules.rpx004_nondeterminism import NondeterminismRule
from repro.checks.rules.rpx005_experiments import ExperimentContractRule
from repro.checks.rules.rpx006_all_exports import AllExportsRule
from repro.checks.rules.rpx007_entropy_rng import EntropyGeneratorRule
from repro.checks.rules.rpx008_bare_except import BareExceptRule

__all__ = [
    "ALL_RULES",
    "AllExportsRule",
    "BareExceptRule",
    "EntropyGeneratorRule",
    "ExperimentContractRule",
    "FloatEqualityRule",
    "GlobalNumpyRandomRule",
    "NondeterminismRule",
    "UnitLiteralRule",
    "default_rules",
    "rule_index",
]

#: Every registered rule, in id order.
ALL_RULES: tuple[Rule, ...] = (
    GlobalNumpyRandomRule(),
    UnitLiteralRule(),
    FloatEqualityRule(),
    NondeterminismRule(),
    ExperimentContractRule(),
    AllExportsRule(),
    EntropyGeneratorRule(),
    BareExceptRule(),
)


def rule_index() -> dict[str, Rule]:
    """Rule id → rule instance for every registered rule."""
    return {rule.rule_id: rule for rule in ALL_RULES}


def default_rules(config: LintConfig | None = None) -> list[Rule]:
    """The registered rules surviving the config's select/ignore filters."""
    config = config or LintConfig()
    return [rule for rule in ALL_RULES if config.rule_enabled(rule.rule_id)]
