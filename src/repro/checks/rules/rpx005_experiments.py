"""RPX005 — the experiment contract.

Every module in the experiments package is a claim about the paper, and
the runner must be able to execute it headlessly and reproducibly:

* the module exposes a top-level ``run()`` entry point (what
  :mod:`repro.experiments.runner` registers);
* every ``seed`` / ``rng`` parameter of ``run``-family functions has a
  *constant* default (an int or ``None`` — which :mod:`repro.rng` maps
  to the fixed :data:`~repro.rng.DEFAULT_SEED`), never a required
  argument and never a call that could reach OS entropy.

Infrastructure modules (``__init__``, ``base``, ``runner`` by default)
are exempt via the ``experiments-exempt`` config key.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.engine import FileContext, Finding

__all__ = ["ExperimentContractRule"]

_SEED_PARAM_NAMES = frozenset({"seed", "rng"})


def _is_constant_default(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return isinstance(node, ast.Constant)


class ExperimentContractRule:
    """Flag experiment modules that break the runner/seed contract."""

    rule_id = "RPX005"
    title = "experiments expose run() with deterministic seed/rng defaults"

    def _applies(self, ctx: FileContext) -> bool:
        if not any(
            f"/{pkg.strip('/')}/" in f"/{ctx.path}"
            for pkg in ctx.config.experiments_packages
        ):
            return False
        basename = ctx.path.rsplit("/", 1)[-1]
        return basename not in ctx.config.experiments_exempt

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for contract breaches in experiment modules."""
        if not self._applies(ctx):
            return
        body = getattr(ctx.tree, "body", [])
        run_functions = [
            node
            for node in body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and (node.name == "run" or node.name.startswith("run_"))
        ]
        if not any(node.name == "run" for node in run_functions):
            yield Finding(
                path=ctx.path,
                line=1,
                col=0,
                rule_id=self.rule_id,
                message="experiment module must expose a top-level run() "
                "entry point for the runner registry",
            )
        for node in run_functions:
            yield from self._check_seed_defaults(ctx, node)

    def _check_seed_defaults(
        self, ctx: FileContext, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        args = node.args
        positional = [*args.posonlyargs, *args.args]
        # Positional defaults right-align with the parameter list.
        pos_defaults: list[ast.AST | None] = [None] * (
            len(positional) - len(args.defaults)
        ) + list(args.defaults)
        pairs = list(zip(positional, pos_defaults)) + list(
            zip(args.kwonlyargs, args.kw_defaults)
        )
        for arg, default in pairs:
            if arg.arg not in _SEED_PARAM_NAMES:
                continue
            if default is None:
                yield ctx.finding(
                    arg,
                    self.rule_id,
                    f"{node.name}() parameter {arg.arg!r} must default to a "
                    "deterministic constant so the runner reproduces the "
                    "published numbers",
                )
            elif not _is_constant_default(default):
                yield ctx.finding(
                    default,
                    self.rule_id,
                    f"{node.name}() default for {arg.arg!r} must be a "
                    "constant (int or None), not a computed value",
                )
