"""RPX002 — unit-literal discipline.

Internal computation is SI-only (watts, joules, seconds); conversions
happen once, explicitly, through :mod:`repro.units`.  A bare ``3600.0``
or ``x / 1e3`` scattered through the code is how kW/W and hour/second
confusion creeps in — the paper's Table 4 numbers span three orders of
magnitude of node power, so a silent factor of 1000 is not obviously
wrong at a glance.  Three checks:

* unit-conversion constants (``3600``, ``86400``, ``3.6e6``) anywhere
  outside the units module;
* scientific-notation scale factors (``1e3``, ``1e6``, ``1e9`` and
  their inverses) used as a multiplier or divisor outside the units
  module — the textual form distinguishes a deliberate ``1000.0`` node
  count from a ``1e3`` unit shuffle;
* quantity-named parameters (``power``, ``energy``, ``duration``, ...)
  without a unit suffix such as ``_w``/``_kw``/``_j``/``_s``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.engine import FileContext, Finding
from repro.units import JOULES_PER_KWH, SECONDS_PER_DAY, SECONDS_PER_HOUR

__all__ = ["BARE_QUANTITY_NAMES", "SCALE_FACTORS", "UNIT_CONSTANTS", "UnitLiteralRule"]

#: Values that are unit-conversion constants wherever they appear.
UNIT_CONSTANTS = frozenset({SECONDS_PER_HOUR, SECONDS_PER_DAY, JOULES_PER_KWH})

#: Decimal scale factors that, written in scientific notation next to a
#: ``*`` or ``/``, almost always mean a unit prefix shuffle (k/M/G).
SCALE_FACTORS = frozenset({1e3, 1e6, 1e9, 1e-3, 1e-6, 1e-9})

#: Parameter names that state a physical quantity but not its unit.
BARE_QUANTITY_NAMES = frozenset(
    {"power", "energy", "duration", "elapsed", "runtime", "interval", "walltime"}
)

_SUFFIX_HINT = "_w/_kw/_mw, _j/_kwh, _s/_min/_h"


def _is_scientific(text: str) -> bool:
    """Whether the literal was *written* in scientific notation.

    ``1e3`` is flagged; a spelled-out ``1000.0`` is not — the former
    reads as a unit prefix, the latter as a genuine quantity.
    """
    return "e" in text.lower()


class UnitLiteralRule:
    """Flag magic unit factors and unit-less quantity parameters."""

    rule_id = "RPX002"
    title = "unit factors belong in repro.units; quantities carry unit suffixes"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for magic unit literals and unit-less parameters."""
        if not ctx.is_units_module:
            yield from self._check_constants(ctx)
        yield from self._check_parameters(ctx)

    def _check_constants(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Constant) and _is_number(node.value):
                if float(node.value) in UNIT_CONSTANTS:
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        f"magic unit constant {ctx.segment(node) or node.value}; "
                        "use the named constant/helper from repro.units",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Mult, ast.Div)
            ):
                for operand in (node.left, node.right):
                    if (
                        isinstance(operand, ast.Constant)
                        and _is_number(operand.value)
                        and float(operand.value) in SCALE_FACTORS
                        and _is_scientific(ctx.segment(operand))
                    ):
                        yield ctx.finding(
                            operand,
                            self.rule_id,
                            f"scale factor {ctx.segment(operand)} looks like a "
                            "unit conversion; use a repro.units helper "
                            "(e.g. watts_to_kilowatts)",
                        )

    def _check_parameters(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                if arg.arg in BARE_QUANTITY_NAMES:
                    yield ctx.finding(
                        arg,
                        self.rule_id,
                        f"parameter {arg.arg!r} names a physical quantity "
                        f"without a unit suffix ({_SUFFIX_HINT})",
                    )


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
