"""RPX003 — no ``==`` / ``!=`` on computed floating-point values.

The reproduction asserts paper values to explicit tolerances
(:class:`repro.experiments.base.Comparison`); an exact equality against
a float literal or an arithmetic expression is a latent flake that
passes on one platform's FMA contraction and fails on another's.  Use
``math.isclose`` / ``numpy.isclose`` (or an explicit tolerance) instead.

Integer-flavoured comparisons (``arr.size == 0``, ``n % 2 == 0``,
``i == n - 1`` index arithmetic) are deliberately not flagged: an
operand counts as "computed float" only if it is a float literal
(optionally under unary minus), a true division (``/`` always yields a
float), or an arithmetic expression containing a float literal
somewhere in its subtree.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.engine import FileContext, Finding

__all__ = ["FloatEqualityRule"]

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow)


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _contains_float_literal(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Constant) and isinstance(sub.value, float)
        for sub in ast.walk(node)
    )


def _is_computed(node: ast.AST) -> bool:
    if _is_float_literal(node):
        return True
    if not (isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH_OPS)):
        return False
    return isinstance(node.op, ast.Div) or _contains_float_literal(node)


class FloatEqualityRule:
    """Flag exact equality against float literals or arithmetic results."""

    rule_id = "RPX003"
    title = "no float ==/!= on computed values; use math.isclose/np.isclose"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield a finding per comparison with a computed-float operand."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if _is_computed(left) or _is_computed(right):
                    yield ctx.finding(
                        node,
                        self.rule_id,
                        "exact ==/!= on a floating-point value; use "
                        "math.isclose/numpy.isclose or an explicit tolerance",
                    )
                    break
