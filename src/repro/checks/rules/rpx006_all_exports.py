"""RPX006 — ``__all__`` consistency with public definitions.

The repo's import-boundary convention: every module declares ``__all__``
truthfully.  Two failure modes are flagged in modules that define
``__all__``:

* a name listed in ``__all__`` that the module never defines (a doc
  that lies, and a ``from m import *`` that raises AttributeError);
* a public top-level function or class missing from ``__all__`` (API
  that exists but is invisible to the export list).

Module-level *variables* are only checked in the first direction —
constants are often intentionally module-private without an underscore.
Modules without ``__all__`` are not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.engine import FileContext, Finding

__all__ = ["AllExportsRule"]


def _all_assignment(tree: ast.AST) -> tuple[ast.AST, list[str]] | None:
    """Find the module-level ``__all__`` list and its string entries."""
    for node in getattr(tree, "body", []):
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target = node.target
            value = node.value
        else:
            continue
        if isinstance(target, ast.Name) and target.id == "__all__":
            if isinstance(value, (ast.List, ast.Tuple)):
                names = [
                    elt.value
                    for elt in value.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                ]
                return node, names
    return None


def _defined_names(tree: ast.AST) -> set[str]:
    """Names bound at module top level (descending into if/try blocks)."""
    names: set[str] = set()

    def visit(body: list[ast.stmt]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    names.update(_target_names(target))
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                names.update(_target_names(node.target))
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.If):
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.Try):
                visit(node.body)
                for handler in node.handlers:
                    visit(handler.body)
                visit(node.orelse)
                visit(node.finalbody)

    visit(getattr(tree, "body", []))
    return names


def _target_names(target: ast.AST) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        out: set[str] = set()
        for elt in target.elts:
            out.update(_target_names(elt))
        return out
    return set()


class AllExportsRule:
    """Flag ``__all__`` entries that lie and public defs left unexported."""

    rule_id = "RPX006"
    title = "__all__ lists exactly the module's public functions/classes"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for __all__/definition mismatches."""
        found = _all_assignment(ctx.tree)
        if found is None:
            return
        all_node, exported = found
        defined = _defined_names(ctx.tree)
        for name in exported:
            if name not in defined:
                yield ctx.finding(
                    all_node,
                    self.rule_id,
                    f"__all__ exports {name!r} but the module never defines it",
                )
        listed = set(exported)
        for node in getattr(ctx.tree, "body", []):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if node.name.startswith("_") or node.name in listed:
                continue
            yield ctx.finding(
                node,
                self.rule_id,
                f"public {'class' if isinstance(node, ast.ClassDef) else 'function'} "
                f"{node.name!r} is missing from __all__",
            )
