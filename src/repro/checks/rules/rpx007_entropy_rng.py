"""RPX007 — no OS-entropy generator construction.

``numpy.random.default_rng()`` with no argument (or an explicit
``None``) seeds from the operating system — a different stream every
process.  The repo's contract is *reproducible by default*:
:func:`repro.rng.default_rng` maps ``None`` to the fixed paper seed,
and callers wanting true entropy must say so at the CLI boundary.  The
same applies to an entropy-less ``numpy.random.SeedSequence()``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.engine import FileContext, Finding

__all__ = ["EntropyGeneratorRule"]

_FACTORIES = {
    "numpy.random.default_rng": "default_rng",
    "numpy.random.SeedSequence": "SeedSequence",
}


class EntropyGeneratorRule:
    """Flag unseeded ``default_rng()`` / ``SeedSequence()`` construction."""

    rule_id = "RPX007"
    title = "generators are seeded explicitly, never from OS entropy"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield a finding per entropy-seeded generator construction."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualname = ctx.imports.qualify(node.func)
            if qualname not in _FACTORIES:
                continue
            first = node.args[0] if node.args else None
            if first is None:
                for kw in node.keywords:
                    if kw.arg in ("seed", "entropy"):
                        first = kw.value
                        break
            if first is None or (
                isinstance(first, ast.Constant) and first.value is None
            ):
                yield ctx.finding(
                    node,
                    self.rule_id,
                    f"{_FACTORIES[qualname]} without a seed draws OS entropy; "
                    "use repro.rng.default_rng (fixed paper seed) or pass an "
                    "explicit seed",
                )
