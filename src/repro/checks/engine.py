"""AST lint engine enforcing the repo's reproducibility invariants.

The paper's contribution is measurement *methodology*: its numbers are
only trustworthy if every simulation is bit-reproducible, unit-correct
and free of hidden entropy.  The repo encodes those properties as
conventions (generators threaded from :mod:`repro.rng`, SI units
internally per :mod:`repro.units`, seeded-by-default experiments); this
engine makes them machine-checked.

Architecture
------------
* :class:`Rule` — the protocol a check implements: a ``rule_id``
  (``RPXnnn``), a one-line ``title``, and ``check(ctx)`` yielding
  :class:`Finding` objects for one parsed file.
* :class:`FileContext` — everything a rule may inspect: source text,
  split lines, the parsed AST, the file's project-relative path and the
  active :class:`~repro.checks.config.LintConfig`.
* :func:`check_source` / :func:`check_file` — lint one unit.
* :func:`run_lint` — walk paths, fan files out over a
  :class:`concurrent.futures.ThreadPoolExecutor`, consult the optional
  per-file cache (keyed on content hash + rule set + config) and return
  a deterministic, sorted :class:`LintReport`.

Suppression
-----------
A finding on line *n* is suppressed by a trailing comment on that line::

    x = t / 3600.0   # repro: noqa RPX002
    y = t / 3600.0   # repro: noqa           (suppresses every rule)

Multiple ids are comma-separated (``# repro: noqa RPX002,RPX003``).
"""

from __future__ import annotations

import ast
import concurrent.futures
import gc
import hashlib
import json
import os
import re
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Protocol, runtime_checkable

from repro.checks.config import LintConfig, path_matches

__all__ = [
    "CACHE_VERSION",
    "FileContext",
    "Finding",
    "ImportMap",
    "LintCache",
    "LintReport",
    "PARSE_ERROR_ID",
    "Rule",
    "cache_key",
    "check_file",
    "check_source",
    "iter_python_files",
    "noqa_map",
    "run_lint",
]

#: Bumped whenever the engine's output format or semantics change, so a
#: stale on-disk cache can never mask (or invent) findings.
CACHE_VERSION = "1"

#: Pseudo-rule id attached to findings for files that fail to parse.
PARSE_ERROR_ID = "RPX000"


@dataclass(frozen=True, order=True)
class Finding:
    """One lint violation, sortable into deterministic report order."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        """Render in the conventional ``path:line:col: ID message`` shape."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict:
        """JSON-serialisable representation (``repro lint --format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        """Inverse of :meth:`to_dict` (used by the cache)."""
        return cls(
            path=data["path"],
            line=int(data["line"]),
            col=int(data["col"]),
            rule_id=data["rule"],
            message=data["message"],
        )


class ImportMap:
    """Resolve local names to fully-qualified dotted module paths.

    Built once per file from its ``import`` statements so rules can ask
    "what does ``np.random.seed`` actually refer to?" without guessing
    from surface spelling::

        imports = ImportMap(tree)
        imports.qualify(node)   # Attribute/Name node -> "numpy.random.seed"
    """

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # `import a.b` binds `a`; `import a.b as c` binds c->a.b.
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def qualify(self, node: ast.AST) -> str | None:
        """Return the dotted qualified name of a Name/Attribute chain.

        ``None`` when the chain does not start at an imported module
        (e.g. an attribute on a local variable).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


@runtime_checkable
class Rule(Protocol):
    """Protocol implemented by every lint rule."""

    rule_id: str
    title: str

    def check(self, ctx: "FileContext") -> Iterable[Finding]:
        """Yield findings for one parsed file."""
        ...  # pragma: no cover - protocol body


@dataclass
class FileContext:
    """Everything a :class:`Rule` may inspect about one file."""

    path: str
    source: str
    lines: list[str]
    tree: ast.AST
    config: LintConfig
    imports: ImportMap = field(init=False)

    def __post_init__(self) -> None:
        self.imports = ImportMap(self.tree)

    def segment(self, node: ast.AST) -> str:
        """Source text of ``node`` ('' when unavailable)."""
        return ast.get_source_segment(self.source, node) or ""

    def finding(self, node: ast.AST, rule_id: str, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule_id,
            message=message,
        )

    # Path-role helpers so rules share one matching convention.
    def matches_any(self, patterns: tuple[str, ...]) -> bool:
        """Whether this file's path matches any config pattern."""
        return any(path_matches(self.path, p) for p in patterns)

    @property
    def is_units_module(self) -> bool:
        """Whether unit constants are allowed to live here (RPX002)."""
        return self.matches_any(self.config.units_modules)

    @property
    def is_nondeterminism_exempt(self) -> bool:
        """Whether wall-clock/entropy calls are allowed here (RPX004)."""
        return self.matches_any(self.config.nondeterminism_exempt)


_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\b[:\s]*(?P<ids>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)?"
)


def noqa_map(lines: list[str]) -> dict[int, frozenset[str] | None]:
    """Map 1-based line numbers to suppressed rule ids.

    ``None`` means every rule is suppressed on that line (bare
    ``# repro: noqa``); a frozenset suppresses only the listed ids.
    """
    suppressed: dict[int, frozenset[str] | None] = {}
    for lineno, text in enumerate(lines, start=1):
        if "noqa" not in text:
            continue
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        ids = match.group("ids")
        if ids is None:
            suppressed[lineno] = None
        else:
            suppressed[lineno] = frozenset(
                part.strip() for part in ids.split(",") if part.strip()
            )
    return suppressed


def _apply_noqa(
    findings: Iterable[Finding], suppressed: dict[int, frozenset[str] | None]
) -> list[Finding]:
    kept = []
    for finding in findings:
        rule_ids = suppressed.get(finding.line, frozenset())
        if rule_ids is None or finding.rule_id in (rule_ids or ()):
            continue
        kept.append(finding)
    return kept


_PARSE_RETRY_LOCK = threading.Lock()


def _parse(source: str, filename: str) -> ast.Module:
    """``ast.parse`` hardened against a CPython 3.11 thread/GC race.

    On 3.11, a cyclic garbage collection that triggers while ``compile``
    is building the AST in a worker thread can corrupt the constructor's
    recursion-depth bookkeeping and raise ``SystemError: AST constructor
    recursion depth mismatch`` (fixed in 3.12).  The failure is
    transient, not a property of the file, so retry once with the
    collector paused; the lock serialises retries so concurrent workers
    cannot re-enable GC under each other.
    """
    try:
        return ast.parse(source, filename=filename)
    except SystemError:
        with _PARSE_RETRY_LOCK:
            was_enabled = gc.isenabled()
            gc.disable()
            try:
                return ast.parse(source, filename=filename)
            finally:
                if was_enabled:
                    gc.enable()


def check_source(
    source: str,
    path: str,
    rules: Iterable[Rule],
    config: LintConfig | None = None,
) -> list[Finding]:
    """Lint one source string as if it lived at ``path``.

    ``path`` drives the path-scoped rules (units module, CLI exemption,
    experiment contract), so tests can lint snippets "as" any location.
    """
    config = config or LintConfig()
    posix = Path(path).as_posix()
    try:
        tree = _parse(source, posix)
    except SyntaxError as exc:
        return [
            Finding(
                path=posix,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id=PARSE_ERROR_ID,
                message=f"syntax error: {exc.msg}",
            )
        ]
    lines = source.splitlines()
    ctx = FileContext(path=posix, source=source, lines=lines, tree=tree, config=config)
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check(ctx))
    return sorted(_apply_noqa(findings, noqa_map(lines)))


def check_file(
    path: Path, rules: Iterable[Rule], config: LintConfig | None = None
) -> list[Finding]:
    """Lint one file on disk."""
    source = path.read_text(encoding="utf-8")
    return check_source(source, str(path), rules, config)


def cache_key(source: bytes, rules: Iterable[Rule], config: LintConfig) -> str:
    """Content-addressed cache key for one file's findings.

    Any change to the file, the rule set, or the configuration yields a
    different key, so the cache never needs explicit invalidation.
    """
    hasher = hashlib.sha256()
    hasher.update(CACHE_VERSION.encode())
    hasher.update(b"\x00")
    hasher.update(",".join(sorted(r.rule_id for r in rules)).encode())
    hasher.update(b"\x00")
    hasher.update(config.fingerprint().encode())
    hasher.update(b"\x00")
    hasher.update(source)
    return hasher.hexdigest()


class LintCache:
    """Per-file findings cache persisted as one JSON document.

    Keys come from :func:`cache_key`; a corrupt or unreadable cache file
    degrades to an empty cache rather than failing the lint run.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self._entries: dict[str, list[dict]] = {}
        self._dirty = False
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
            if isinstance(data, dict) and data.get("version") == CACHE_VERSION:
                entries = data.get("entries", {})
                if isinstance(entries, dict):
                    self._entries = entries
        except (OSError, ValueError):
            pass

    def get(self, key: str) -> list[Finding] | None:
        """Cached findings for ``key``, or ``None`` on a miss."""
        raw = self._entries.get(key)
        if raw is None:
            return None
        try:
            return [Finding.from_dict(item) for item in raw]
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, key: str, findings: list[Finding]) -> None:
        """Record findings for ``key`` (persisted on :meth:`save`)."""
        self._entries[key] = [f.to_dict() for f in findings]
        self._dirty = True

    def get_raw(self, key: str):
        """Arbitrary cached JSON value for ``key`` (``None`` on a miss).

        Used by the semantic pass to store per-module summaries in the
        same cache document; callers namespace their keys (the summary
        key hashes a distinct prefix) so the two entry kinds never
        collide.
        """
        return self._entries.get(key)

    def put_raw(self, key: str, value) -> None:
        """Record an arbitrary JSON-serialisable value for ``key``."""
        self._entries[key] = value
        self._dirty = True

    def save(self) -> None:
        """Write the cache atomically (best-effort; failures are ignored)."""
        if not self._dirty:
            return
        payload = json.dumps(
            {"version": CACHE_VERSION, "entries": self._entries},
            separators=(",", ":"),
        )
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        try:
            tmp.write_text(payload, encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            pass


def iter_python_files(paths: Iterable[Path], config: LintConfig) -> list[Path]:
    """Expand files/directories into the sorted list of ``.py`` targets."""
    out: list[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            candidates: Iterator[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = iter([path])
        for candidate in candidates:
            posix = candidate.as_posix()
            if any(path_matches(posix, pat) for pat in config.exclude):
                continue
            out.append(candidate)
    return sorted(set(out))


@dataclass
class LintReport:
    """Outcome of a :func:`run_lint` pass."""

    findings: list[Finding]
    files_scanned: int
    cache_hits: int = 0

    @property
    def ok(self) -> bool:
        """Whether the tree is clean."""
        return not self.findings

    def render_text(self) -> str:
        """Human-readable report (one line per finding + a summary)."""
        lines = [f.format() for f in self.findings]
        noun = "finding" if len(self.findings) == 1 else "findings"
        lines.append(
            f"{len(self.findings)} {noun} in {self.files_scanned} files"
            + (f" ({self.cache_hits} cached)" if self.cache_hits else "")
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        """Machine-readable report for ``repro lint --format json``."""
        return json.dumps(
            {
                "version": CACHE_VERSION,
                "files_scanned": self.files_scanned,
                "cache_hits": self.cache_hits,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
        )


def _lint_one(
    path: Path, rules: list[Rule], config: LintConfig, cache: LintCache | None
) -> tuple[list[Finding], bool]:
    """Worker: lint one file, consulting the cache. Returns (findings, hit)."""
    try:
        raw = path.read_bytes()
    except OSError as exc:
        return (
            [
                Finding(
                    path=path.as_posix(),
                    line=1,
                    col=0,
                    rule_id=PARSE_ERROR_ID,
                    message=f"cannot read file: {exc}",
                )
            ],
            False,
        )
    key = cache_key(raw, rules, config) if cache is not None else ""
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit, True
    findings = check_source(
        raw.decode("utf-8", errors="replace"), str(path), rules, config
    )
    if cache is not None:
        cache.put(key, findings)
    return findings, False


def run_lint(
    paths: Iterable[Path | str],
    rules: Iterable[Rule] | None = None,
    config: LintConfig | None = None,
    jobs: int | None = None,
    cache: LintCache | None = None,
) -> LintReport:
    """Lint ``paths`` (files or directories) with the given rule set.

    Files are scanned in parallel; the report is deterministic regardless
    of worker scheduling because findings are sorted at the end.  Pass a
    :class:`LintCache` to skip files whose content (and rule/config
    state) has not changed since the previous run.
    """
    if rules is None:
        from repro.checks.rules import default_rules

        rules = default_rules(config)
    rules = list(rules)
    config = config or LintConfig()
    files = iter_python_files([Path(p) for p in paths], config)
    workers = jobs or config.jobs or min(32, (os.cpu_count() or 1) + 4)
    workers = max(1, min(workers, max(1, len(files))))
    findings: list[Finding] = []
    cache_hits = 0
    if workers == 1 or len(files) <= 1:
        results = [_lint_one(f, rules, config, cache) for f in files]
    else:
        with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(
                pool.map(lambda f: _lint_one(f, rules, config, cache), files)
            )
    for file_findings, hit in results:
        findings.extend(file_findings)
        cache_hits += int(hit)
    if cache is not None:
        cache.save()
    return LintReport(
        findings=sorted(findings),
        files_scanned=len(files),
        cache_hits=cache_hits,
    )
