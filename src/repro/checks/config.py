"""Configuration for the lint engine: the ``[tool.repro.lint]`` table.

Configuration lives in ``pyproject.toml`` next to the rest of the
project metadata.  Every key is optional; the defaults below encode the
repo's own layout.  Keys may be spelled with dashes or underscores::

    [tool.repro.lint]
    select = []                       # empty = all rules
    ignore = ["RPX006"]
    exclude = ["*/fixtures/*"]
    units-modules = ["repro/units.py"]
    nondeterminism-exempt = ["repro/cli.py", "repro/experiments/runner.py"]
    experiments-packages = ["repro/experiments"]
    experiments-exempt = ["__init__.py", "base.py", "runner.py"]
    rng-modules = ["repro/rng.py"]
    jobs = 0                          # 0 = auto
"""

from __future__ import annotations

import fnmatch
import tomllib
from dataclasses import dataclass, fields
from pathlib import Path

__all__ = ["LintConfig", "find_pyproject", "load_config", "path_matches"]


def path_matches(posix_path: str, pattern: str) -> bool:
    """Whether a posix file path matches a config pattern.

    A pattern matches if it globs the full path, globs the path's tail
    (so ``repro/units.py`` matches ``/any/prefix/src/repro/units.py``),
    or equals the file's basename.
    """
    if fnmatch.fnmatch(posix_path, pattern):
        return True
    if fnmatch.fnmatch(posix_path, f"*/{pattern}"):
        return True
    return posix_path.rsplit("/", 1)[-1] == pattern


@dataclass(frozen=True)
class LintConfig:
    """Resolved lint configuration (see module docstring for the keys)."""

    #: Rule ids to run; empty means every registered rule.
    select: tuple[str, ...] = ()
    #: Rule ids to skip (applied after ``select``).
    ignore: tuple[str, ...] = ()
    #: Path patterns never scanned (fixtures, generated code, ...).
    exclude: tuple[str, ...] = ()
    #: Files allowed to define raw unit-conversion constants (RPX002).
    units_modules: tuple[str, ...] = ("repro/units.py",)
    #: Files allowed to touch wall clocks / OS entropy (RPX004): the CLI
    #: and the experiment runner, which report elapsed wall time.
    nondeterminism_exempt: tuple[str, ...] = (
        "repro/cli.py",
        "repro/experiments/runner.py",
    )
    #: Directories whose modules must honour the experiment contract
    #: (RPX005: a ``run`` entry point, deterministic seed defaults).
    experiments_packages: tuple[str, ...] = ("repro/experiments",)
    #: Basenames inside an experiments package that are infrastructure,
    #: not experiments, and therefore exempt from RPX005.
    experiments_exempt: tuple[str, ...] = ("__init__.py", "base.py", "runner.py")
    #: Modules whose generator factories count as explicit-seed entry
    #: points for the RPX102 seed-provenance taint (they map a missing
    #: seed to the fixed paper seed, never to OS entropy).
    rng_modules: tuple[str, ...] = ("repro/rng.py",)
    #: Worker threads for the parallel scan (0 = auto-size).
    jobs: int = 0

    def fingerprint(self) -> str:
        """Stable digest of every field, folded into the cache key."""
        parts = []
        for f in sorted(fields(self), key=lambda f: f.name):
            parts.append(f"{f.name}={getattr(self, f.name)!r}")
        return ";".join(parts)

    def rule_enabled(self, rule_id: str) -> bool:
        """Apply the ``select`` / ``ignore`` filters to one rule id."""
        if self.select and rule_id not in self.select:
            return False
        return rule_id not in self.ignore


def find_pyproject(start: Path) -> Path | None:
    """Walk upward from ``start`` to the nearest ``pyproject.toml``."""
    current = Path(start).resolve()
    if current.is_file():
        current = current.parent
    for directory in (current, *current.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_config(start: Path | str = ".") -> LintConfig:
    """Load ``[tool.repro.lint]`` from the nearest ``pyproject.toml``.

    Unknown keys are ignored so older engines tolerate newer configs;
    a missing file or table yields the defaults.
    """
    pyproject = find_pyproject(Path(start))
    if pyproject is None:
        return LintConfig()
    try:
        with open(pyproject, "rb") as fh:
            data = tomllib.load(fh)
    except (OSError, tomllib.TOMLDecodeError):
        return LintConfig()
    table = data.get("tool", {}).get("repro", {}).get("lint", {})
    if not isinstance(table, dict):
        return LintConfig()
    known = {f.name: f for f in fields(LintConfig)}
    kwargs: dict[str, object] = {}
    for raw_key, value in table.items():
        key = raw_key.replace("-", "_")
        if key not in known:
            continue
        if key == "jobs":
            kwargs[key] = int(value)
        else:
            kwargs[key] = tuple(str(v) for v in value)
    return LintConfig(**kwargs)  # type: ignore[arg-type]
