"""RPX103 — unit-dimension inference across modules.

RPX002 polices the *lexical* conventions (magic conversion constants,
unit-less parameter names).  This rule checks that the conventions are
actually *consistent*: it seeds unit facts from the ``_s``/``_w``/
``_kw`` suffixes and the :mod:`repro.units` converter signatures, then
propagates them through assignments and arithmetic under a small
algebra (power x time = energy, energy / time = power, unit / unit =
scalar) and across function boundaries via the summaries' parameter and
return units.  Flagged — only when *both* sides carry a concrete unit,
so unknown dataflow never fires:

* ``+``/``-``/comparison between different units (``power_w +
  energy_j``, and the subtler scale mix ``power_w + power_kw``);
* an argument whose unit contradicts the callee parameter's declared
  unit, across module boundaries (``fleet_w(total_kw)``);
* an assignment whose target name declares a different unit than the
  value (``power_kw = total_w``);
* a return value contradicting the function name's declared unit.

The configured ``units-modules`` are exempt — converting between units
is their whole job.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.engine import Finding
from repro.checks.semantic.callgraph import CallGraph
from repro.checks.semantic.lattice import (
    SCALAR,
    UNKNOWN,
    UNIT_WORDS,
    describe_unit,
    dimension_of,
    join_units,
    unit_of_name,
    units_divide,
    units_multiply,
)
from repro.checks.semantic.project import ModuleInfo, ProjectContext

__all__ = ["UnitDimensionRule"]

#: NumPy/builtin callables that return their first argument's unit.
_PASSTHROUGH_QUALNAMES = frozenset(
    {
        "numpy.asarray", "numpy.array", "numpy.abs", "numpy.ravel",
        "numpy.sort", "numpy.mean", "numpy.nanmean", "numpy.sum",
        "numpy.nansum", "numpy.median", "numpy.min", "numpy.max",
        "numpy.amin", "numpy.amax", "numpy.percentile", "numpy.quantile",
        "numpy.cumsum", "numpy.clip", "numpy.copy", "numpy.squeeze",
    }
)
_PASSTHROUGH_BUILTINS = frozenset(
    {"float", "abs", "min", "max", "sum", "sorted", "round"}
)


def _unit_from_callable_name(name: str) -> str:
    """Unit promised by a callable's *name* (converter or suffix)."""
    parts = name.split("_to_")
    if len(parts) == 2 and parts[0] in UNIT_WORDS and parts[1] in UNIT_WORDS:
        return UNIT_WORDS[parts[1]]
    return unit_of_name(name)


class UnitDimensionRule:
    """Flag mixed-unit arithmetic and cross-module unit mismatches."""

    rule_id = "RPX103"
    title = "quantities keep their declared unit through dataflow and calls"

    def check_project(
        self, project: ProjectContext, graph: CallGraph
    ) -> Iterator[Finding]:
        """Yield findings for every unit inconsistency in the project."""
        for module_name in sorted(project.modules):
            info = project.modules[module_name]
            if info.matches_any(project.config.units_modules):
                continue  # converting between units is its whole job
            walker = _UnitWalker(self.rule_id, project, info)
            yield from walker.run()


class _UnitWalker:
    """Intraprocedural unit inference for one module's functions."""

    def __init__(
        self, rule_id: str, project: ProjectContext, info: ModuleInfo
    ) -> None:
        self.rule_id = rule_id
        self.project = project
        self.info = info
        self.findings: list[Finding] = []

    def run(self) -> Iterator[Finding]:
        summary = self.project.summaries.get(self.info.name)
        for qualname in sorted(self.info.functions):
            node = self.info.functions[qualname]
            fn = summary.functions.get(qualname) if summary else None
            env: dict[str, str] = dict(fn.param_units) if fn else {}
            declared_return = fn.return_unit if fn else UNKNOWN
            self._walk_block(node.body, env, declared_return)
        yield from sorted(self.findings)

    def _emit(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.info.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule_id=self.rule_id,
                message=message,
            )
        )

    @staticmethod
    def _conflict(a: str, b: str) -> bool:
        """Both units concrete and different (scale or dimension)."""
        return (
            dimension_of(a) is not None
            and dimension_of(b) is not None
            and a != b
        )

    # -- statements ---------------------------------------------------

    def _walk_block(self, body, env, declared_return) -> None:
        for stmt in body:
            self._walk_stmt(stmt, env, declared_return)

    def _walk_stmt(self, stmt, env, declared_return) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign):
            unit = self._unit_of(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, unit, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            unit = self._unit_of(stmt.value, env)
            self._bind(stmt.target, unit, env)
        elif isinstance(stmt, ast.AugAssign):
            value_unit = self._unit_of(stmt.value, env)
            if isinstance(stmt.target, ast.Name) and isinstance(
                stmt.op, (ast.Add, ast.Sub)
            ):
                target_unit = env.get(
                    stmt.target.id, unit_of_name(stmt.target.id)
                )
                if self._conflict(target_unit, value_unit):
                    self._emit(
                        stmt,
                        f"augmented assignment mixes "
                        f"{describe_unit(target_unit)} and "
                        f"{describe_unit(value_unit)}; convert via "
                        "repro.units first",
                    )
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                unit = self._unit_of(stmt.value, env)
                if self._conflict(declared_return, unit):
                    self._emit(
                        stmt,
                        f"returns {describe_unit(unit)} but the function "
                        f"name declares {describe_unit(declared_return)}",
                    )
        elif isinstance(stmt, (ast.If, ast.While)):
            self._unit_of(stmt.test, env)
            self._walk_block(stmt.body, env, declared_return)
            self._walk_block(stmt.orelse, env, declared_return)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_unit = self._unit_of(stmt.iter, env)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = iter_unit
            self._walk_block(stmt.body, env, declared_return)
            self._walk_block(stmt.orelse, env, declared_return)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._unit_of(item.context_expr, env)
            self._walk_block(stmt.body, env, declared_return)
        elif isinstance(stmt, ast.Try):
            self._walk_block(stmt.body, env, declared_return)
            for handler in stmt.handlers:
                self._walk_block(handler.body, env, declared_return)
            self._walk_block(stmt.orelse, env, declared_return)
            self._walk_block(stmt.finalbody, env, declared_return)
        elif isinstance(stmt, ast.Expr):
            self._unit_of(stmt.value, env)
        elif isinstance(stmt, (ast.Assert,)):
            self._unit_of(stmt.test, env)

    def _bind(self, target: ast.AST, value_unit: str, env) -> None:
        if not isinstance(target, ast.Name):
            return
        declared = unit_of_name(target.id)
        if self._conflict(declared, value_unit):
            self._emit(
                target,
                f"assignment binds a {describe_unit(value_unit)} value "
                f"to {target.id!r}, which declares "
                f"{describe_unit(declared)}",
            )
        if dimension_of(declared) is not None:
            env[target.id] = declared  # the name's declaration wins
        else:
            env[target.id] = value_unit

    # -- expressions --------------------------------------------------

    def _unit_of(self, node: ast.AST, env, depth: int = 0) -> str:
        if depth > 16:
            return UNKNOWN
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) and not isinstance(
                node.value, bool
            ):
                return SCALAR
            return UNKNOWN
        if isinstance(node, ast.Name):
            return env.get(node.id, unit_of_name(node.id))
        if isinstance(node, ast.Attribute):
            # Visit the base (it may contain calls worth checking) but
            # infer from the attribute's own name: `batch.times_s`.
            self._unit_of(node.value, env, depth + 1)
            return unit_of_name(node.attr)
        if isinstance(node, ast.BinOp):
            return self._binop_unit(node, env, depth)
        if isinstance(node, ast.UnaryOp):
            return self._unit_of(node.operand, env, depth + 1)
        if isinstance(node, ast.Compare):
            self._compare(node, env, depth)
            return SCALAR
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._unit_of(value, env, depth + 1)
            return UNKNOWN
        if isinstance(node, ast.IfExp):
            self._unit_of(node.test, env, depth + 1)
            return join_units(
                self._unit_of(node.body, env, depth + 1),
                self._unit_of(node.orelse, env, depth + 1),
            )
        if isinstance(node, ast.Call):
            return self._call_unit(node, env, depth)
        if isinstance(node, ast.Subscript):
            self._unit_of(node.slice, env, depth + 1)
            return self._unit_of(node.value, env, depth + 1)
        if isinstance(node, ast.Starred):
            return self._unit_of(node.value, env, depth + 1)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self._unit_of(element, env, depth + 1)
            return UNKNOWN
        if isinstance(node, ast.Dict):
            for value in node.values:
                if value is not None:
                    self._unit_of(value, env, depth + 1)
            return UNKNOWN
        return UNKNOWN

    def _binop_unit(self, node: ast.BinOp, env, depth: int) -> str:
        left = self._unit_of(node.left, env, depth + 1)
        right = self._unit_of(node.right, env, depth + 1)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if self._conflict(left, right):
                op = "+" if isinstance(node.op, ast.Add) else "-"
                self._emit(
                    node,
                    f"mixing {describe_unit(left)} and "
                    f"{describe_unit(right)} in {op!r}; convert via "
                    "repro.units first",
                )
                return UNKNOWN
            return join_units(left, right)
        if isinstance(node.op, ast.Mult):
            return units_multiply(left, right)
        if isinstance(node.op, ast.Div):
            return units_divide(left, right)
        return UNKNOWN

    def _compare(self, node: ast.Compare, env, depth: int) -> None:
        units = [self._unit_of(node.left, env, depth + 1)]
        units += [self._unit_of(c, env, depth + 1) for c in node.comparators]
        for index in range(len(units) - 1):
            if self._conflict(units[index], units[index + 1]):
                self._emit(
                    node,
                    f"comparison between {describe_unit(units[index])} "
                    f"and {describe_unit(units[index + 1])}; convert via "
                    "repro.units first",
                )

    def _call_unit(self, node: ast.Call, env, depth: int) -> str:
        func = node.func
        qualname = self.info.imports.qualify(func)
        arg_units = [self._unit_of(arg, env, depth + 1) for arg in node.args]
        kwarg_units = {
            kw.arg: self._unit_of(kw.value, env, depth + 1)
            for kw in node.keywords
            if kw.arg is not None
        }
        if isinstance(func, ast.Name) and func.id in _PASSTHROUGH_BUILTINS:
            return arg_units[0] if arg_units else UNKNOWN
        if qualname in _PASSTHROUGH_QUALNAMES:
            return arg_units[0] if arg_units else UNKNOWN
        callee = self._resolve_callee(func, qualname)
        if callee is not None:
            self._check_call_args(node, callee, arg_units, kwarg_units)
            fn = self.project.function_summary(callee)
            if fn is not None and dimension_of(fn.return_unit) is not None:
                return fn.return_unit
            return UNKNOWN
        # Unresolved: trust the callable's own name (converters and
        # suffixed helpers outside the scan still carry their contract).
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else ""
        )
        return _unit_from_callable_name(name) if name else UNKNOWN

    def _resolve_callee(self, func, qualname):
        if qualname is not None:
            ref = {"kind": "fq", "ref": qualname}
        elif isinstance(func, ast.Name):
            ref = {"kind": "local", "name": func.id}
        else:
            return None
        return self.project.resolve_call_ref(self.info.name, ref)

    def _check_call_args(
        self, node: ast.Call, callee, arg_units, kwarg_units
    ) -> None:
        fn = self.project.function_summary(callee)
        if fn is None:
            return
        params = list(fn.params)
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        if any(isinstance(arg, ast.Starred) for arg in node.args):
            return  # positional mapping unknowable
        callee_name = f"{callee[0]}.{callee[1]}"
        for index, unit in enumerate(arg_units):
            if index >= len(params):
                break
            declared = fn.param_units.get(params[index], UNKNOWN)
            if self._conflict(declared, unit):
                self._emit(
                    node.args[index],
                    f"argument {params[index]!r} of {callee_name} "
                    f"expects {describe_unit(declared)}, got "
                    f"{describe_unit(unit)}",
                )
        for name, unit in kwarg_units.items():
            declared = fn.param_units.get(name, UNKNOWN)
            if self._conflict(declared, unit):
                self._emit(
                    node,
                    f"argument {name!r} of {callee_name} expects "
                    f"{describe_unit(declared)}, got {describe_unit(unit)}",
                )
