"""Project call graph over function summaries.

Nodes are :data:`~repro.checks.semantic.project.FunctionKey` pairs;
edges come from each summary's recorded call references, resolved
cross-module through the :class:`ProjectContext` symbol table.  The
graph provides what the interprocedural rules need:

* a bottom-up order over strongly connected components (Tarjan), so
  per-function facts can be propagated callee-before-caller with
  mutual recursion collapsing into one component;
* reachability and shortest witness paths from an entry point, for
  "``run()`` reaches this wall-clock read via ..." diagnostics.
"""

from __future__ import annotations

from repro.checks.semantic.project import FunctionKey, ProjectContext

__all__ = ["CallGraph"]


class CallGraph:
    """Directed call graph with SCC condensation and witness paths."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.edges: dict[FunctionKey, tuple[FunctionKey, ...]] = {}
        for module_name in sorted(project.summaries):
            summary = project.summaries[module_name]
            for qualname in sorted(summary.functions):
                fn = summary.functions[qualname]
                key = (module_name, qualname)
                seen: list[FunctionKey] = []
                for ref in fn.calls:
                    callee = project.resolve_call_ref(module_name, ref)
                    if callee is not None and callee not in seen:
                        seen.append(callee)
                self.edges[key] = tuple(seen)

    def callees(self, key: FunctionKey) -> tuple[FunctionKey, ...]:
        """Resolved project-internal callees of one function."""
        return self.edges.get(key, ())

    def sccs_bottom_up(self) -> list[tuple[FunctionKey, ...]]:
        """Strongly connected components, callees before callers.

        Iterative Tarjan; the emission order of Tarjan is already a
        reverse topological order of the condensation, which is exactly
        the bottom-up summary-propagation order.
        """
        index: dict[FunctionKey, int] = {}
        lowlink: dict[FunctionKey, int] = {}
        on_stack: set[FunctionKey] = set()
        stack: list[FunctionKey] = []
        counter = 0
        components: list[tuple[FunctionKey, ...]] = []

        for root in sorted(self.edges):
            if root in index:
                continue
            # Explicit work stack: (node, iterator position).
            work: list[tuple[FunctionKey, int]] = [(root, 0)]
            while work:
                node, child_index = work[-1]
                if child_index == 0:
                    index[node] = lowlink[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                advanced = False
                children = self.edges.get(node, ())
                while child_index < len(children):
                    child = children[child_index]
                    child_index += 1
                    if child not in self.edges:
                        continue  # summary-less (shouldn't happen)
                    if child not in index:
                        work[-1] = (node, child_index)
                        work.append((child, 0))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if advanced:
                    continue
                work.pop()
                if lowlink[node] == index[node]:
                    component: list[FunctionKey] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(tuple(sorted(component)))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return components

    def reachable_from(self, entry: FunctionKey) -> set[FunctionKey]:
        """Every function transitively callable from ``entry`` (inclusive)."""
        seen = {entry}
        frontier = [entry]
        while frontier:
            node = frontier.pop()
            for callee in self.edges.get(node, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen

    def witness_path(
        self, entry: FunctionKey, target: FunctionKey
    ) -> list[FunctionKey] | None:
        """Shortest call path entry -> target (BFS), or ``None``."""
        if entry == target:
            return [entry]
        previous: dict[FunctionKey, FunctionKey] = {}
        frontier = [entry]
        seen = {entry}
        while frontier:
            next_frontier: list[FunctionKey] = []
            for node in frontier:
                for callee in self.edges.get(node, ()):
                    if callee in seen:
                        continue
                    seen.add(callee)
                    previous[callee] = node
                    if callee == target:
                        path = [callee]
                        while path[-1] != entry:
                            path.append(previous[path[-1]])
                        return list(reversed(path))
                    next_frontier.append(callee)
            frontier = next_frontier
        return None
