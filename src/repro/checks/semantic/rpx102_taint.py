"""RPX102 — seed-provenance taint for random generators.

RPX007 can see an unseeded ``default_rng()`` on the line it is written;
it cannot see a generator born from ambient entropy *three calls away*
— a helper that seeds from ``time.time_ns()``, a module global built
from ``os.getpid()``, a factory whose seed argument some caller fills
with wall clock.  This rule evaluates the taint term recorded for every
``Generator``/``SeedSequence`` sampling site in the cached summaries:
the receiver's seed must trace back to an explicit constant, a threaded
``seed``/``rng`` parameter, or a :mod:`repro.rng` entry point.  A
positive trace to ambient state (and only a positive trace — unknown
dataflow never fires) is reported at the sampling call.
"""

from __future__ import annotations

from typing import Iterator

from repro.checks.engine import Finding
from repro.checks.semantic.callgraph import CallGraph
from repro.checks.semantic.lattice import AMBIENT
from repro.checks.semantic.project import ProjectContext
from repro.checks.semantic.summaries import resolve_node_path
from repro.checks.semantic.taint import evaluate_term

__all__ = ["SeedTaintRule"]


class SeedTaintRule:
    """Flag sampling from generators whose seed traces to ambient state."""

    rule_id = "RPX102"
    title = "every sampled generator's seed traces to an explicit seed"

    def check_project(
        self, project: ProjectContext, graph: CallGraph
    ) -> Iterator[Finding]:
        """Yield a finding per ambient-seeded sampling site."""
        for module_name in sorted(project.summaries):
            info = project.modules.get(module_name)
            if info is None:
                continue
            if info.matches_any(project.config.nondeterminism_exempt):
                continue  # the CLI boundary may request true entropy
            if project.is_rng_module(module_name):
                continue  # the seed-threading machinery itself
            summary = project.summaries[module_name]
            for qualname in sorted(summary.functions):
                fn = summary.functions[qualname]
                for site in fn.samples:
                    value = evaluate_term(
                        project, module_name, site["recv"]
                    )
                    if not (
                        value.is_generator and value.provenance == AMBIENT
                    ):
                        continue
                    node = resolve_node_path(info.tree, site["locator"])
                    source = value.why or "ambient state"
                    yield Finding(
                        path=info.path,
                        line=getattr(node, "lineno", 1) if node else 1,
                        col=getattr(node, "col_offset", 0) if node else 0,
                        rule_id=self.rule_id,
                        message=(
                            f"Generator.{site['method']}() in "
                            f"{module_name}.{qualname} draws from a "
                            f"generator whose seed traces to {source}; "
                            "thread an explicit seed parameter or a "
                            "repro.rng stream instead"
                        ),
                    )
