"""Abstract domains for the semantic analysis: units and seed provenance.

Two small lattices shared by the RPX102/RPX103 rules:

* **Unit lattice** — concrete measurement units (``w``, ``kw``, ``s``,
  ``j``, ...), each belonging to a physical *dimension* (power, time,
  energy, data, bandwidth).  ``UNKNOWN`` is top (no information);
  ``SCALAR`` marks a dimensionless factor (a count, a ratio, a literal
  ``2``).  The algebra knows the paper's three load-bearing
  identities — power × time = energy, energy / time = power,
  energy / power = time — at SI scale, plus the wire layer's
  bytes / time = bandwidth pair, so ``watts * seconds`` infers joules
  while ``kilowatts * seconds`` (a scale mix) degrades to ``UNKNOWN``
  rather than silently claiming a unit.

* **Provenance lattice** — where a random generator's seed came from:
  ``EXPLICIT`` (a constant, a threaded parameter, or a
  :mod:`repro.rng` entry point), ``AMBIENT`` (wall clock, OS entropy,
  environment, the global RNG), or ``UNKNOWN``.  ``AMBIENT`` dominates
  a join: one ambient contributor taints the whole value.
"""

from __future__ import annotations

__all__ = [
    "AMBIENT",
    "DIMENSIONS",
    "EXPLICIT",
    "SCALAR",
    "UNIT_SUFFIXES",
    "UNIT_WORDS",
    "UNKNOWN",
    "describe_unit",
    "dimension_of",
    "join_provenance",
    "join_units",
    "unit_of_name",
    "units_divide",
    "units_multiply",
]

#: Sentinel units.  ``UNKNOWN`` is "no information" (never flagged);
#: ``SCALAR`` is "definitely dimensionless" (a literal or count).
UNKNOWN = "?"
SCALAR = "1"

#: Concrete unit token -> physical dimension.
DIMENSIONS: dict[str, str] = {
    "s": "time",
    "min": "time",
    "h": "time",
    "w": "power",
    "kw": "power",
    "mw": "power",
    "j": "energy",
    "kwh": "energy",
    "b": "data",
    "bit": "data",
    "b/s": "bandwidth",
}

#: Identifier suffixes that declare a unit (the repo-wide convention
#: RPX002 enforces for quantity parameters).  ``_min`` is deliberately
#: absent: ``x_min`` almost always means "minimum", not minutes.
UNIT_SUFFIXES: dict[str, str] = {
    "_s": "s",
    "_seconds": "s",
    "_h": "h",
    "_hours": "h",
    "_w": "w",
    "_watts": "w",
    "_kw": "kw",
    "_mw": "mw",
    "_j": "j",
    "_joules": "j",
    "_kwh": "kwh",
    # Wire-layer sizes and rates.  ``_b`` is deliberately absent: short
    # tails like ``rank_b`` mean "the second of a pair", not bytes.
    "_bytes": "b",
    "_bits": "bit",
    "_bps": "b/s",
}

#: Whole identifiers that *are* a unit-bearing quantity (``watts``,
#: ``seconds``, ...) — used for bare names like the repo's ubiquitous
#: ``watts`` arrays and for parsing ``x_to_y`` converter names.
UNIT_WORDS: dict[str, str] = {
    "seconds": "s",
    "minutes": "min",
    "hours": "h",
    "watts": "w",
    "kilowatts": "kw",
    "megawatts": "mw",
    "joules": "j",
    "kwh": "kwh",
    "kilowatt_hours": "kwh",
    "bytes": "b",
    "bits": "bit",
}

#: power x time -> energy at SI scale (plus the kW·h convenience pair
#: and the wire layer's bandwidth x time -> bytes).
_PRODUCTS: dict[tuple[str, str], str] = {
    ("w", "s"): "j",
    ("kw", "h"): "kwh",
    ("b/s", "s"): "b",
}
_QUOTIENTS: dict[tuple[str, str], str] = {
    ("j", "s"): "w",
    ("j", "w"): "s",
    ("kwh", "h"): "kw",
    ("kwh", "kw"): "h",
    ("b", "s"): "b/s",
    ("b", "b/s"): "s",
}


def dimension_of(unit: str) -> str | None:
    """Physical dimension of a concrete unit (``None`` for sentinels)."""
    return DIMENSIONS.get(unit)


def describe_unit(unit: str) -> str:
    """Human-readable rendering, e.g. ``'kw (power)'``."""
    dim = dimension_of(unit)
    return f"{unit} ({dim})" if dim else unit


def unit_of_name(name: str) -> str:
    """Unit declared by an identifier, or :data:`UNKNOWN`.

    ``core_power_w`` -> ``w``; ``watts`` -> ``w``; ``n_nodes`` ->
    :data:`UNKNOWN`.
    """
    lowered = name.lower()
    if lowered in UNIT_WORDS:
        return UNIT_WORDS[lowered]
    for suffix, unit in UNIT_SUFFIXES.items():
        if lowered.endswith(suffix) and len(lowered) > len(suffix):
            return unit
    return UNKNOWN


def join_units(a: str, b: str) -> str:
    """Least upper bound: agreement keeps the unit, conflict loses it."""
    if a == b:
        return a
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    if a == SCALAR:
        return b
    if b == SCALAR:
        return a
    return UNKNOWN


def units_multiply(a: str, b: str) -> str:
    """Unit of ``a * b`` under the power/time/energy algebra."""
    if a == SCALAR:
        return b
    if b == SCALAR:
        return a
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    return _PRODUCTS.get((a, b)) or _PRODUCTS.get((b, a)) or UNKNOWN


def units_divide(a: str, b: str) -> str:
    """Unit of ``a / b`` under the power/time/energy algebra."""
    if b == SCALAR:
        return a
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    if a == b:
        return SCALAR
    if a == SCALAR:
        return UNKNOWN
    return _QUOTIENTS.get((a, b), UNKNOWN)


# --------------------------------------------------------------------------
# Seed provenance

EXPLICIT = "explicit"
AMBIENT = "ambient"
#: Reused as the provenance "no information" value too — the same
#: semantics (never flagged) apply.
_PROVENANCE_ORDER = (EXPLICIT, "?", AMBIENT)


def join_provenance(*values: str) -> str:
    """Join provenances: any :data:`AMBIENT` contributor wins."""
    best = EXPLICIT
    for value in values:
        if _PROVENANCE_ORDER.index(value) > _PROVENANCE_ORDER.index(best):
            best = value
    return best
