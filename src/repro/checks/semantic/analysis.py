"""Orchestration of the whole-project semantic pass.

:func:`run_semantic_lint` is the programmatic entry point behind
``repro lint --semantic``:

1. build the :class:`ProjectContext` (parallel parse, cached
   summaries),
2. build the :class:`CallGraph` and run every enabled RPX1xx rule,
3. apply the same ``# repro: noqa`` suppression contract the per-file
   engine honours,
4. return a deterministic, sorted report.

Baseline filtering is deliberately *not* applied here — the caller
(CLI, tests) decides how accepted findings gate, because the SARIF
artifact wants both populations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.checks.config import LintConfig
from repro.checks.engine import Finding, LintCache, noqa_map
from repro.checks.semantic.callgraph import CallGraph
from repro.checks.semantic.project import ProjectContext
from repro.checks.semantic.rpx101_purity import PurityRule
from repro.checks.semantic.rpx102_taint import SeedTaintRule
from repro.checks.semantic.rpx103_units import UnitDimensionRule

__all__ = [
    "SEMANTIC_RULES",
    "SemanticReport",
    "run_semantic_lint",
    "semantic_rule_index",
]

#: Every registered whole-project rule, in id order.
SEMANTIC_RULES = (PurityRule(), SeedTaintRule(), UnitDimensionRule())


def semantic_rule_index() -> dict[str, object]:
    """Rule id -> rule instance for every semantic rule."""
    return {rule.rule_id: rule for rule in SEMANTIC_RULES}


@dataclass
class SemanticReport:
    """Outcome of one whole-project semantic pass."""

    findings: list[Finding]
    files_scanned: int
    summary_cache_hits: int = 0
    #: files that failed to parse: (path, message) — surfaced as
    #: RPX000 findings by the per-file engine, repeated here so a
    #: standalone semantic run can still see them.
    parse_errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the project is semantically clean."""
        return not self.findings


def run_semantic_lint(
    paths: Iterable[Path | str],
    config: LintConfig | None = None,
    cache: LintCache | None = None,
    jobs: int | None = None,
    project: ProjectContext | None = None,
) -> SemanticReport:
    """Run the RPX1xx interprocedural rules over a whole project.

    Pass a prebuilt ``project`` to skip re-parsing (the benchmark does
    this to time phases separately); otherwise one is built from
    ``paths``, consulting ``cache`` for per-module summaries.
    """
    config = config or LintConfig()
    if project is None:
        project = ProjectContext.build(paths, config, cache=cache, jobs=jobs)
    graph = CallGraph(project)
    findings: list[Finding] = []
    for rule in SEMANTIC_RULES:
        if not config.rule_enabled(rule.rule_id):
            continue
        findings.extend(rule.check_project(project, graph))
    findings = _apply_noqa(project, findings)
    if cache is not None:
        cache.save()
    return SemanticReport(
        findings=sorted(findings),
        files_scanned=len(project.modules) + len(project.parse_errors),
        summary_cache_hits=project.summary_cache_hits,
        parse_errors=list(project.parse_errors),
    )


def _apply_noqa(
    project: ProjectContext, findings: list[Finding]
) -> list[Finding]:
    """Honour ``# repro: noqa`` lines for semantic findings too."""
    suppressions: dict[str, dict[int, frozenset[str] | None]] = {}
    for info in project.modules.values():
        if any("noqa" in line for line in info.lines):
            suppressions[info.path] = noqa_map(info.lines)
    if not suppressions:
        return findings
    kept: list[Finding] = []
    for finding in findings:
        per_line = suppressions.get(finding.path, {})
        rule_ids = per_line.get(finding.line, frozenset())
        if rule_ids is None or finding.rule_id in (rule_ids or ()):
            continue
        kept.append(finding)
    return kept
