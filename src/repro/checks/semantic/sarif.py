"""SARIF 2.1.0 rendering of lint reports.

SARIF (Static Analysis Results Interchange Format) is what CI services
ingest for code-scanning annotations.  One ``run`` per report: the tool
descriptor lists every rule that was active (id, short description,
help URI into ``docs/linting.md``), and each finding becomes a
``result`` with a physical location.  Findings accepted by the baseline
are still emitted — SARIF's ``baselineState`` distinguishes
``"unchanged"`` (accepted) from ``"new"``, so the artifact carries the
full picture while CI fails only on new results.
"""

from __future__ import annotations

import json

from repro.checks.engine import Finding

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "render_sarif", "sarif_document"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_DOCS_URI = "https://github.com/repro/repro/blob/main/docs/linting.md"


def _rule_descriptor(rule_id: str, title: str) -> dict:
    return {
        "id": rule_id,
        "name": rule_id,
        "shortDescription": {"text": title},
        "helpUri": _DOCS_URI,
        "defaultConfiguration": {"level": "error"},
    }


def _result(finding: Finding, baseline_state: str | None) -> dict:
    result = {
        "ruleId": finding.rule_id,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(1, finding.line),
                        # SARIF columns are 1-based; AST cols are 0-based.
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if baseline_state is not None:
        result["baselineState"] = baseline_state
    return result


def sarif_document(
    findings: list[Finding],
    rules: list[tuple[str, str]],
    accepted: list[Finding] | None = None,
) -> dict:
    """Build the SARIF log object.

    Parameters
    ----------
    findings:
        New (gate-failing) findings.
    rules:
        ``(rule_id, title)`` for every rule that ran, whether or not it
        fired — SARIF viewers use this as the rule catalogue.
    accepted:
        Baseline-accepted findings, emitted with ``baselineState:
        "unchanged"`` so the artifact stays complete.
    """
    baseline_in_use = accepted is not None
    accepted = accepted or []
    results = [
        _result(f, "new" if baseline_in_use else None) for f in findings
    ]
    results += [_result(f, "unchanged") for f in accepted]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": _DOCS_URI,
                        "rules": [
                            _rule_descriptor(rule_id, title)
                            for rule_id, title in sorted(rules)
                        ],
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def render_sarif(
    findings: list[Finding],
    rules: list[tuple[str, str]],
    accepted: list[Finding] | None = None,
) -> str:
    """Serialise :func:`sarif_document` to a JSON string."""
    return json.dumps(
        sarif_document(findings, rules, accepted), indent=2, sort_keys=False
    )
