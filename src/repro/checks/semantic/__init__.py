"""Whole-project semantic analysis (the RPX1xx rule family).

Where :mod:`repro.checks` rules judge one file at a time, this package
parses the whole project once (:class:`ProjectContext`), summarises each
module into a compact, cacheable form, links summaries over the call
graph, and runs three interprocedural rules:

- **RPX101** purity/determinism: code reachable from a cached
  experiment ``run()`` must not read ambient state.
- **RPX102** seed-provenance taint: every sampled generator's seed must
  trace to an explicit seed or a :mod:`repro.rng` stream.
- **RPX103** unit-dimension inference: quantities carrying physical
  units (seconds, watts, joules, ...) must not mix dimensions.

Entry point: :func:`run_semantic_lint`.
"""

from repro.checks.semantic.analysis import (
    SEMANTIC_RULES,
    SemanticReport,
    run_semantic_lint,
    semantic_rule_index,
)
from repro.checks.semantic.baseline import (
    DEFAULT_BASELINE_FILE,
    Baseline,
    BaselineMatch,
)
from repro.checks.semantic.callgraph import CallGraph
from repro.checks.semantic.project import ModuleInfo, ProjectContext
from repro.checks.semantic.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    render_sarif,
    sarif_document,
)

__all__ = [
    "Baseline",
    "BaselineMatch",
    "CallGraph",
    "DEFAULT_BASELINE_FILE",
    "ModuleInfo",
    "ProjectContext",
    "SARIF_SCHEMA_URI",
    "SARIF_VERSION",
    "SEMANTIC_RULES",
    "SemanticReport",
    "render_sarif",
    "run_semantic_lint",
    "sarif_document",
    "semantic_rule_index",
]
