"""Whole-project context: every module parsed once, names resolved across files.

:class:`ProjectContext` is the substrate the RPX1xx interprocedural
rules run on.  Building one:

1. expands the scan paths with the engine's
   :func:`~repro.checks.engine.iter_python_files`,
2. parses every file (fanned out over the same thread pool shape
   ``run_lint`` uses — parsing dominates the cold cost),
3. extracts each module's :class:`~repro.checks.semantic.summaries.ModuleSummary`,
   consulting the :class:`~repro.checks.engine.LintCache` under an
   AST-normalised key so reformatting never re-analyses,
4. exposes cross-module name resolution (``resolve_fq``) that follows
   ``from x import y`` re-export chains to the defining module.

Module names are derived from the filesystem (walking up while an
``__init__.py`` is present), so the same machinery analyses
``src/repro`` and a synthetic fixture package identically.
"""

from __future__ import annotations

import ast
import concurrent.futures
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.checks.config import LintConfig, path_matches
from repro.checks.engine import (
    ImportMap,
    LintCache,
    _parse,
    iter_python_files,
)
from repro.checks.semantic.summaries import (
    ModuleSummary,
    extract_module_summary,
    summary_cache_key,
)

__all__ = ["FunctionKey", "ModuleInfo", "ProjectContext", "module_name_for"]

#: A function's identity across the project: (module, qualname).
FunctionKey = tuple[str, str]


def module_name_for(path: Path) -> str:
    """Dotted module name of a file, derived from package structure.

    Walks upward while the parent directory is a package (has an
    ``__init__.py``): ``src/repro/stream/ingest.py`` ->
    ``repro.stream.ingest``; a loose script maps to its stem.
    """
    path = Path(path)
    parts: list[str] = [] if path.name == "__init__.py" else [path.stem]
    directory = path.parent
    while (directory / "__init__.py").is_file():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) if parts else path.stem


@dataclass
class ModuleInfo:
    """One parsed module and its per-file derived structures."""

    name: str
    path: str  # posix, as scanned
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    imports: ImportMap = field(init=False)
    #: top-level function definitions by name (call-graph targets).
    functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = field(
        init=False, default_factory=dict
    )
    #: top-level simple assignments by target name (for re-exported
    #: globals and seed constants).
    globals: dict[str, ast.AST] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        self.imports = ImportMap(self.tree)
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self.functions[f"{node.name}.{item.name}"] = item
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.globals[target.id] = node.value
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and node.value is not None:
                    self.globals[node.target.id] = node.value

    def matches_any(self, patterns: tuple[str, ...]) -> bool:
        """Whether this module's path matches any config pattern."""
        return any(path_matches(self.path, p) for p in patterns)


class ProjectContext:
    """All modules of a scan, with summaries and cross-module resolution."""

    def __init__(self, config: LintConfig) -> None:
        self.config = config
        self.modules: dict[str, ModuleInfo] = {}
        self.summaries: dict[str, ModuleSummary] = {}
        self.parse_errors: list[tuple[str, str]] = []  # (path, message)
        self.summary_cache_hits = 0

    # -- construction -------------------------------------------------

    @classmethod
    def build(
        cls,
        paths: Iterable[Path | str],
        config: LintConfig | None = None,
        cache: LintCache | None = None,
        jobs: int | None = None,
    ) -> "ProjectContext":
        """Parse and summarise every Python file under ``paths``."""
        config = config or LintConfig()
        project = cls(config)
        files = iter_python_files([Path(p) for p in paths], config)
        workers = jobs or config.jobs or min(32, (os.cpu_count() or 1) + 4)
        workers = max(1, min(workers, max(1, len(files))))

        def load(path: Path):
            try:
                source = path.read_text(encoding="utf-8", errors="replace")
            except OSError as exc:
                return (path, None, None, f"cannot read file: {exc}")
            try:
                tree = _parse(source, path.as_posix())
            except SyntaxError as exc:
                return (path, source, None, f"syntax error: {exc.msg}")
            return (path, source, tree, None)

        if workers == 1 or len(files) <= 1:
            loaded = [load(f) for f in files]
        else:
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=workers
            ) as pool:
                loaded = list(pool.map(load, files))

        for path, source, tree, error in loaded:
            if error is not None:
                project.parse_errors.append((path.as_posix(), error))
                continue
            name = module_name_for(path)
            if name in project.modules:
                # Duplicate module names (two scan roots overlapping)
                # keep the first occurrence deterministically.
                continue
            project.modules[name] = ModuleInfo(
                name=name,
                path=path.as_posix(),
                source=source,
                tree=tree,
                lines=source.splitlines(),
            )
        project._summarise(cache, workers)
        return project

    def _summarise(self, cache: LintCache | None, workers: int) -> None:
        """Fill ``self.summaries``, consulting the cache per module."""

        def summarise(info: ModuleInfo) -> tuple[str, ModuleSummary, bool]:
            key = (
                summary_cache_key(info.source, self.config)
                if cache is not None
                else ""
            )
            if cache is not None:
                raw = cache.get_raw(key)
                if raw is not None:
                    try:
                        return info.name, ModuleSummary.from_dict(raw), True
                    except (KeyError, TypeError, ValueError):
                        pass  # corrupt entry: fall through to extraction
            summary = extract_module_summary(
                info.name, info.tree, info.imports, self.config
            )
            if cache is not None:
                cache.put_raw(key, summary.to_dict())
            return info.name, summary, False

        infos = sorted(self.modules.values(), key=lambda m: m.name)
        if workers == 1 or len(infos) <= 1:
            results = [summarise(info) for info in infos]
        else:
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=workers
            ) as pool:
                results = list(pool.map(summarise, infos))
        for name, summary, hit in results:
            self.summaries[name] = summary
            self.summary_cache_hits += int(hit)

    # -- name resolution ----------------------------------------------

    def function_summary(self, key: FunctionKey):
        """Summary for a function key, or ``None``."""
        summary = self.summaries.get(key[0])
        if summary is None:
            return None
        return summary.functions.get(key[1])

    def resolve_fq(
        self, fq: str, _depth: int = 0
    ) -> tuple[str, str, str] | None:
        """Resolve a dotted name to its defining site.

        Returns ``(kind, module, name)`` where ``kind`` is ``"func"``,
        ``"global"`` or ``"module"`` — following ``from x import y``
        re-export chains up to a fixed depth — or ``None`` when the
        name does not land inside the analysed project.
        """
        if _depth > 10:
            return None
        # Longest module prefix wins: "a.b.c" may be module a.b, attr c.
        parts = fq.split(".")
        for cut in range(len(parts), 0, -1):
            module = ".".join(parts[:cut])
            if module not in self.modules:
                continue
            rest = parts[cut:]
            if not rest:
                return ("module", module, "")
            if len(rest) > 2:
                return None  # attribute chains deeper than Cls.meth
            name = ".".join(rest)
            info = self.modules[module]
            if name in info.functions:
                return ("func", module, name)
            if name in info.globals:
                return ("global", module, name)
            # Re-export: `from x import y` then someone imports it from
            # here.  Follow the alias to the defining module.
            target = info.imports.qualify(
                ast.Name(id=rest[0], ctx=ast.Load())
            )
            if target is not None and target != fq:
                suffix = "." + rest[1] if len(rest) == 2 else ""
                return self.resolve_fq(target + suffix, _depth + 1)
            return None
        return None

    def resolve_call_ref(
        self, module: str, ref: dict
    ) -> FunctionKey | None:
        """Resolve one summary call reference to a project function key."""
        if ref.get("kind") == "local":
            name = ref["name"]
            info = self.modules.get(module)
            if info is None:
                return None
            if name in info.functions:
                return (module, name)
            target = info.imports.qualify(ast.Name(id=name, ctx=ast.Load()))
            if target is None:
                return None
            resolved = self.resolve_fq(target)
        else:
            resolved = self.resolve_fq(ref.get("ref", ""))
        if resolved is not None and resolved[0] == "func":
            return (resolved[1], resolved[2])
        return None

    def module_for_path_patterns(
        self, patterns: tuple[str, ...]
    ) -> list[ModuleInfo]:
        """Modules whose path matches any of the given config patterns."""
        return [
            info
            for info in sorted(self.modules.values(), key=lambda m: m.name)
            if info.matches_any(patterns)
        ]

    def is_rng_module(self, module: str) -> bool:
        """Whether a module is a configured explicit-seed RNG entry point."""
        info = self.modules.get(module)
        if info is not None:
            return info.matches_any(self.config.rng_modules)
        # Not part of the scan: fall back to matching the dotted name
        # against the pattern stems ("repro/rng.py" -> "repro.rng").
        for pattern in self.config.rng_modules:
            stem = pattern.rsplit("/", 1)[-1].removesuffix(".py")
            dotted = pattern.removesuffix(".py").replace("/", ".")
            if module == dotted or module.rsplit(".", 1)[-1] == stem:
                return True
        return False
