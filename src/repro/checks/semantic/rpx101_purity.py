"""RPX101 — purity/determinism of cached experiment code.

The :mod:`repro.parallel` result cache replays a stored experiment
record whenever the experiment's ``(code, params)`` fingerprint is
unchanged — which is only sound if everything transitively reachable
from the experiment's ``run()`` is a pure function of those inputs.  A
wall-clock read, an environment lookup, a file read outside the
declared parameters, or a draw from the global RNG three calls below
``run()`` silently breaks that contract: the cache would keep replaying
a result the code can no longer reproduce.

This rule propagates each function's direct ambient reads (collected in
the cached per-module summaries) bottom-up over the call-graph SCCs,
then reports every ambient operation reachable from an experiment entry
point, with the shortest call path as a witness.  Files listed in
``nondeterminism-exempt`` (the CLI, the runner) may read ambient state;
reads *their callees* perform are still traced.
"""

from __future__ import annotations

from typing import Iterator

from repro.checks.engine import Finding
from repro.checks.semantic.callgraph import CallGraph
from repro.checks.semantic.project import FunctionKey, ProjectContext
from repro.checks.semantic.summaries import AmbientOp, resolve_node_path

__all__ = ["PurityRule"]

#: (owning function, ambient op) — the unit of reporting.
_Site = tuple[FunctionKey, AmbientOp]


class PurityRule:
    """Flag ambient-state reads reachable from cached experiment entry points."""

    rule_id = "RPX101"
    title = "code reachable from a cached run() must be pure in (params, code)"

    def check_project(
        self, project: ProjectContext, graph: CallGraph
    ) -> Iterator[Finding]:
        """Yield one finding per ambient op reachable from any entry point."""
        transitive = self._propagate(project, graph)
        reported: set[_Site] = set()
        for entry in self._entry_points(project):
            for site in sorted(
                transitive.get(entry, ()),
                key=lambda s: (s[0], s[1].locator),
            ):
                if site in reported:
                    continue
                reported.add(site)
                finding = self._finding(project, graph, entry, site)
                if finding is not None:
                    yield finding

    # -- propagation --------------------------------------------------

    def _entry_points(self, project: ProjectContext) -> list[FunctionKey]:
        """Top-level ``run`` functions of experiment modules."""
        entries: list[FunctionKey] = []
        packages = project.config.experiments_packages
        for name in sorted(project.modules):
            info = project.modules[name]
            # Same containment convention RPX005 uses for its scope.
            if not any(
                f"/{pkg.strip('/')}/" in f"/{info.path}" for pkg in packages
            ):
                continue
            basename = info.path.rsplit("/", 1)[-1]
            if basename in project.config.experiments_exempt:
                continue
            if "run" in info.functions:
                entries.append((info.name, "run"))
        return entries

    def _own_sites(self, project: ProjectContext, key: FunctionKey) -> set[_Site]:
        module, qualname = key
        info = project.modules.get(module)
        if info is not None and info.matches_any(
            project.config.nondeterminism_exempt
        ):
            return set()
        fn = project.function_summary(key)
        if fn is None:
            return set()
        return {(key, op) for op in fn.ambient}

    def _propagate(
        self, project: ProjectContext, graph: CallGraph
    ) -> dict[FunctionKey, set[_Site]]:
        """Bottom-up union of ambient sites over call-graph SCCs."""
        transitive: dict[FunctionKey, set[_Site]] = {}
        for component in graph.sccs_bottom_up():
            sites: set[_Site] = set()
            for member in component:
                sites |= self._own_sites(project, member)
                for callee in graph.callees(member):
                    if callee not in component:
                        sites |= transitive.get(callee, set())
            for member in component:
                transitive[member] = sites
        return transitive

    # -- reporting ----------------------------------------------------

    def _finding(
        self,
        project: ProjectContext,
        graph: CallGraph,
        entry: FunctionKey,
        site: _Site,
    ) -> Finding | None:
        owner, op = site
        info = project.modules.get(owner[0])
        if info is None:
            return None
        node = resolve_node_path(info.tree, op.locator)
        path = graph.witness_path(entry, owner)
        if path is None:
            via = f"{entry[0]}.{entry[1]}"
        else:
            via = " -> ".join(f"{mod}.{name}" for mod, name in path)
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            path=info.path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            message=(
                f"{op.qualname} ({op.kind}) is reachable from cached "
                f"experiment entry point {entry[0]}.run "
                f"(call path: {via}); the result cache assumes run() is "
                "a pure function of (code, params)"
            ),
        )
