"""Accepted-findings baseline: pre-existing findings don't block CI.

A semantic rule landing on a mature tree inevitably surfaces findings
that are *intentional* (the runner timing itself, a CLI entropy
escape hatch).  Rather than suppressing them inline or weakening the
rules, accepted findings live in a committed baseline file
(``.repro-lint-baseline.json`` by default), each with a one-line
justification.  The gate then stays strict in the only direction that
matters: a finding in the baseline is reported as accepted and does not
fail the run; a *new* finding does.

Baseline entries match on ``(rule, path, message)`` — deliberately not
on line numbers, so reformatting and unrelated edits never resurrect an
accepted finding.  Entries that no longer match anything are reported
as stale so the file cannot silently rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.checks.engine import Finding

__all__ = ["Baseline", "BaselineMatch", "DEFAULT_BASELINE_FILE"]

DEFAULT_BASELINE_FILE = ".repro-lint-baseline.json"

#: Format version of the baseline document.
_BASELINE_VERSION = "1"


def _key(rule: str, path: str, message: str) -> tuple[str, str, str]:
    return (rule, Path(path).as_posix(), message)


@dataclass
class BaselineMatch:
    """Outcome of filtering a report through a baseline."""

    new: list[Finding] = field(default_factory=list)
    accepted: list[Finding] = field(default_factory=list)
    #: entries that matched nothing this run (candidates for deletion).
    stale: list[dict] = field(default_factory=list)


class Baseline:
    """The committed set of accepted findings."""

    def __init__(self, entries: list[dict] | None = None) -> None:
        self.entries = entries or []

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.is_file():
            return cls()
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise ValueError(f"unreadable baseline {path}: {exc}") from exc
        if not isinstance(data, dict) or not isinstance(
            data.get("entries"), list
        ):
            raise ValueError(f"malformed baseline {path}")
        return cls([e for e in data["entries"] if isinstance(e, dict)])

    @classmethod
    def from_findings(
        cls, findings: list[Finding], justification: str = "accepted at baseline creation"
    ) -> "Baseline":
        """Build a baseline accepting every given finding."""
        entries = [
            {
                "rule": f.rule_id,
                "path": f.path,
                "message": f.message,
                "justification": justification,
            }
            for f in sorted(findings)
        ]
        return cls(entries)

    def apply(self, findings: list[Finding]) -> BaselineMatch:
        """Split findings into new vs accepted; collect stale entries."""
        index: dict[tuple[str, str, str], dict] = {}
        for entry in self.entries:
            try:
                index[_key(entry["rule"], entry["path"], entry["message"])] = entry
            except (KeyError, TypeError):
                continue  # malformed entry: counts as stale below
        matched: set[tuple[str, str, str]] = set()
        result = BaselineMatch()
        for finding in findings:
            key = _key(finding.rule_id, finding.path, finding.message)
            if key in index:
                matched.add(key)
                result.accepted.append(finding)
            else:
                result.new.append(finding)
        for entry in self.entries:
            try:
                key = _key(entry["rule"], entry["path"], entry["message"])
            except (KeyError, TypeError):
                result.stale.append(entry)
                continue
            if key not in matched:
                result.stale.append(entry)
        return result

    def render(self) -> str:
        """The canonical on-disk form (sorted, indented, newline-terminated)."""
        entries = sorted(
            self.entries,
            key=lambda e: (
                str(e.get("rule", "")),
                str(e.get("path", "")),
                str(e.get("message", "")),
            ),
        )
        return (
            json.dumps(
                {"version": _BASELINE_VERSION, "entries": entries}, indent=2
            )
            + "\n"
        )

    def save(self, path: Path | str) -> None:
        """Write the baseline file."""
        Path(path).write_text(self.render(), encoding="utf-8")
