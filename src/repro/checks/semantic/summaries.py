"""Per-function summaries: the cacheable unit of the semantic analysis.

One extraction pass over a module's AST produces a
:class:`ModuleSummary` — everything the interprocedural rules need to
know about the module *without re-walking its tree*:

* **purity** — every ambient-state read in each function body (wall
  clock, environment, OS entropy, filesystem outside declared inputs,
  the global NumPy RNG), plus the function's outgoing call references,
  so RPX101 can propagate impurity bottom-up over the call graph;
* **seed taint** — a small *term language* abstracting each function's
  dataflow: what its return value is built from, which expressions
  reach `Generator` sampling calls, and what every module global is
  bound to.  Terms are closed under substitution, so RPX102 evaluates
  them across call boundaries by plugging caller argument terms into
  callee return terms;
* **units** — parameter/return units declared by the ``_s``/``_w``
  suffix conventions or a ``watts_to_kilowatts``-style converter name,
  the seed facts RPX103 propagates through arithmetic.

Summaries are JSON-serialisable and keyed on the module's
*AST-normalised* content hash (comments and reformatting do not
invalidate — the same normalisation the :mod:`repro.parallel` result
cache trusts).  Because a comment edit shifts line numbers without
changing the key, findings never anchor on a stored ``lineno``:
every source position is stored as a *node locator* (the child-index
path from the module root) and resolved against the freshly parsed
tree on every run.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field

from repro.checks.config import LintConfig
from repro.checks.engine import ImportMap

__all__ = [
    "AMBIENT_ATTRIBUTES",
    "AMBIENT_CALLS",
    "AMBIENT_MODULES",
    "FILESYSTEM_CALLS",
    "FILESYSTEM_METHODS",
    "GENERATOR_FACTORIES",
    "GLOBAL_RNG_CALLS",
    "SAMPLING_METHODS",
    "SEMANTIC_VERSION",
    "AmbientOp",
    "FunctionSummary",
    "ModuleSummary",
    "extract_module_summary",
    "node_paths",
    "resolve_node_path",
    "summary_cache_key",
]

#: Bumped whenever summary extraction or the term language changes, so
#: stale cached summaries can never feed the rules.
SEMANTIC_VERSION = "1"

# --- ambient-state vocabulary ---------------------------------------------

#: Callables whose result depends on when/where the process runs
#: (superset of the RPX004 per-file list — the interprocedural rule
#: also cares about process identity and environment reads).
AMBIENT_CALLS: dict[str, str] = {
    "time.time": "wall clock",
    "time.time_ns": "wall clock",
    "time.monotonic": "wall clock",
    "time.monotonic_ns": "wall clock",
    "time.perf_counter": "wall clock",
    "time.perf_counter_ns": "wall clock",
    "time.localtime": "wall clock",
    "time.gmtime": "wall clock",
    "datetime.datetime.now": "wall clock",
    "datetime.datetime.today": "wall clock",
    "datetime.datetime.utcnow": "wall clock",
    "datetime.date.today": "wall clock",
    "os.urandom": "OS entropy",
    "os.getrandom": "OS entropy",
    "uuid.uuid1": "OS entropy",
    "uuid.uuid4": "OS entropy",
    "os.getenv": "environment",
    "os.getpid": "process identity",
    "os.getcwd": "process identity",
    "os.getlogin": "process identity",
    "socket.gethostname": "process identity",
    "platform.node": "process identity",
}

#: Attribute *reads* that are ambient even without a call.
AMBIENT_ATTRIBUTES: dict[str, str] = {
    "os.environ": "environment",
    "sys.argv": "process identity",
}

#: Modules that are ambient wholesale (shared hidden state).
AMBIENT_MODULES = ("random", "secrets")

#: Legacy NumPy global-state RNG entry points (RPX001's target, seen
#: here as an ambient effect: the stream depends on every prior draw).
GLOBAL_RNG_CALLS = frozenset(
    f"numpy.random.{name}"
    for name in (
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "choice", "shuffle", "permutation", "normal", "uniform",
        "standard_normal", "RandomState", "get_state", "set_state",
    )
)

#: Filesystem reads by qualified name; flagged unless the path derives
#: from a function parameter (a *declared* input).
FILESYSTEM_CALLS = frozenset(
    {
        "os.listdir", "os.scandir", "os.walk", "os.stat",
        "os.path.exists", "os.path.getsize", "os.path.getmtime",
        "glob.glob", "glob.iglob",
    }
)

#: Method names that read the filesystem when called on a path-like
#: receiver (``Path.read_text`` etc.); same declared-input exemption.
FILESYSTEM_METHODS = frozenset(
    {"read_text", "read_bytes", "iterdir", "glob", "rglob"}
)

#: NumPy generator/seed factories whose determinism hinges on the seed
#: argument.
GENERATOR_FACTORIES = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
    }
)

#: ``numpy.random.Generator`` drawing methods — the sinks RPX102 guards.
SAMPLING_METHODS = frozenset(
    {
        "random", "normal", "standard_normal", "uniform", "integers",
        "choice", "shuffle", "permutation", "permuted", "exponential",
        "poisson", "gamma", "beta", "binomial", "lognormal",
        "multivariate_normal", "chisquare", "standard_cauchy",
        "standard_exponential", "standard_gamma", "spawn",
    }
)

#: Builtins that pass their first argument's value through unchanged
#: for taint purposes.
_PASSTHROUGH_BUILTINS = frozenset({"int", "float", "abs", "round", "bool", "str"})


# --- node locators --------------------------------------------------------


def node_paths(tree: ast.AST) -> dict[int, tuple[int, ...]]:
    """Map ``id(node)`` -> child-index path from the tree root.

    The path is stable under whitespace/comment edits (which leave the
    AST shape unchanged), which is what lets summaries be cached under
    an AST-normalised key and still anchor findings at current lines.
    """
    paths: dict[int, tuple[int, ...]] = {id(tree): ()}
    stack: list[tuple[ast.AST, tuple[int, ...]]] = [(tree, ())]
    while stack:
        node, path = stack.pop()
        for index, child in enumerate(ast.iter_child_nodes(node)):
            child_path = path + (index,)
            paths[id(child)] = child_path
            stack.append((child, child_path))
    return paths


def resolve_node_path(tree: ast.AST, path: tuple[int, ...]) -> ast.AST | None:
    """Inverse of :func:`node_paths`: follow a child-index path."""
    node: ast.AST = tree
    for index in path:
        children = list(ast.iter_child_nodes(node))
        if index >= len(children):
            return None
        node = children[index]
    return node


def summary_cache_key(source: str, config: LintConfig) -> str:
    """Content-addressed key for one module's cached summary.

    Keyed on the AST dump, not the bytes: comments, blank lines and
    reformatting re-use the cached summary; any change the parser can
    see invalidates it.  Unparseable sources fall back to a raw hash.
    """
    try:
        payload = ast.dump(ast.parse(source))
    except (SyntaxError, ValueError):
        payload = source
    hasher = hashlib.sha256()
    hasher.update(b"semantic\x00")
    hasher.update(SEMANTIC_VERSION.encode())
    hasher.update(b"\x00")
    hasher.update(config.fingerprint().encode())
    hasher.update(b"\x00")
    hasher.update(payload.encode("utf-8"))
    return hasher.hexdigest()


# --- summary dataclasses --------------------------------------------------


@dataclass(frozen=True)
class AmbientOp:
    """One direct ambient-state read inside a function body."""

    kind: str  # "wall clock", "environment", "filesystem", ...
    qualname: str  # what was read, for the message
    locator: tuple[int, ...]

    def to_dict(self) -> dict:
        """JSON form for the summary cache."""
        return {"kind": self.kind, "qualname": self.qualname,
                "locator": list(self.locator)}

    @classmethod
    def from_dict(cls, data: dict) -> "AmbientOp":
        return cls(kind=data["kind"], qualname=data["qualname"],
                   locator=tuple(data["locator"]))


@dataclass
class FunctionSummary:
    """Everything the interprocedural rules know about one function."""

    qualname: str  # "run" or "Meter.read"
    params: tuple[str, ...] = ()
    #: parameter name -> unit token, for parameters that declare one.
    param_units: dict[str, str] = field(default_factory=dict)
    #: unit the function promises to return ('?' when undeclared).
    return_unit: str = "?"
    #: direct ambient reads in the body.
    ambient: tuple[AmbientOp, ...] = ()
    #: outgoing call references ({"kind": "local"|"fq", "name"/"ref"}).
    calls: tuple[dict, ...] = ()
    #: taint term for the return value (None: nothing returned).
    returns: dict | None = None
    #: Generator sampling sites: {"method", "locator", "recv": term}.
    samples: tuple[dict, ...] = ()

    def to_dict(self) -> dict:
        """JSON form for the summary cache."""
        return {
            "qualname": self.qualname,
            "params": list(self.params),
            "param_units": dict(self.param_units),
            "return_unit": self.return_unit,
            "ambient": [op.to_dict() for op in self.ambient],
            "calls": list(self.calls),
            "returns": self.returns,
            "samples": list(self.samples),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionSummary":
        return cls(
            qualname=data["qualname"],
            params=tuple(data["params"]),
            param_units=dict(data["param_units"]),
            return_unit=data["return_unit"],
            ambient=tuple(AmbientOp.from_dict(d) for d in data["ambient"]),
            calls=tuple(
                {str(k): v for k, v in c.items()} for c in data["calls"]
            ),
            returns=data["returns"],
            samples=tuple(
                {
                    "method": s["method"],
                    "locator": tuple(s["locator"]),
                    "recv": s["recv"],
                }
                for s in data["samples"]
            ),
        )


@dataclass
class ModuleSummary:
    """All function summaries of one module plus its global bindings."""

    module: str
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    #: module-global name -> taint term (for ``_GEN = default_rng()``).
    globals_taint: dict[str, dict] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON form for the summary cache."""
        return {
            "module": self.module,
            "functions": {
                name: fn.to_dict() for name, fn in self.functions.items()
            },
            "globals_taint": dict(self.globals_taint),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleSummary":
        return cls(
            module=data["module"],
            functions={
                name: FunctionSummary.from_dict(d)
                for name, d in data["functions"].items()
            },
            globals_taint=dict(data["globals_taint"]),
        )


# --- extraction -----------------------------------------------------------


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


class _Extractor:
    """Single-pass extraction of one module's :class:`ModuleSummary`."""

    def __init__(self, module: str, tree: ast.Module, imports: ImportMap,
                 config: LintConfig) -> None:
        self.module = module
        self.tree = tree
        self.imports = imports
        self.config = config
        self.paths = node_paths(tree)
        self.summary = ModuleSummary(module=module)

    def run(self) -> ModuleSummary:
        # Module-level bindings first, so function bodies can reference
        # a global generator through {"k": "global"} terms.
        module_env: dict[str, dict] = {}
        self._walk_block(self.tree.body, env=module_env, fn=None)
        self.summary.globals_taint = module_env
        for qualname, node in self._functions(self.tree):
            self.summary.functions[qualname] = self._extract_function(
                qualname, node
            )
        return self.summary

    @staticmethod
    def _functions(tree: ast.Module):
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node.name, node
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield f"{node.name}.{item.name}", item

    # -- function extraction ----------------------------------------

    def _extract_function(
        self, qualname: str, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> FunctionSummary:
        args = node.args
        params = tuple(
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        )
        fn = FunctionSummary(qualname=qualname, params=params)
        from repro.checks.semantic.lattice import unit_of_name

        for name in params:
            unit = unit_of_name(name)
            if unit != "?":
                fn.param_units[name] = unit
        fn.return_unit = self._declared_return_unit(node.name, params, fn)
        state = _FunctionState(params=set(params))
        self._walk_block(node.body, env=state.env, fn=fn, state=state)
        fn.ambient = tuple(state.ambient)
        fn.calls = tuple(state.calls)
        fn.samples = tuple(state.samples)
        if state.returns:
            fn.returns = _join(state.returns)
        return fn

    def _declared_return_unit(
        self, name: str, params: tuple[str, ...], fn: FunctionSummary
    ) -> str:
        from repro.checks.semantic.lattice import UNIT_WORDS, unit_of_name

        parts = name.split("_to_")
        if len(parts) == 2 and parts[0] in UNIT_WORDS and parts[1] in UNIT_WORDS:
            # A converter name is authoritative for its first parameter
            # too (``watts_to_kilowatts(watts)`` -> watts is 'w').
            if params:
                fn.param_units.setdefault(params[0], UNIT_WORDS[parts[0]])
            return UNIT_WORDS[parts[1]]
        return unit_of_name(name)

    # -- ordered statement walk -------------------------------------

    def _walk_block(self, body, env: dict[str, dict], fn, state=None) -> None:
        for stmt in body:
            self._walk_stmt(stmt, env, fn, state)

    def _walk_stmt(self, stmt, env, fn, state) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs get their own summary or are skipped
        if state is not None:
            # Scan only this statement's own expressions — nested
            # statement bodies are scanned when the walk reaches them,
            # so nothing is double-counted.
            if isinstance(stmt, (ast.If, ast.While)):
                self._scan_effects(stmt.test, env, state)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_effects(stmt.iter, env, state)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._scan_effects(item.context_expr, env, state)
            elif isinstance(stmt, ast.Try):
                pass
            else:
                self._scan_effects(stmt, env, state)
        if isinstance(stmt, ast.Assign):
            value = self._term(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, stmt.value, value, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, stmt.value, self._term(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                old = env.get(stmt.target.id, _UNKNOWN)
                env[stmt.target.id] = _join([old, self._term(stmt.value, env)])
        elif isinstance(stmt, ast.Return):
            if state is not None:
                if stmt.value is None:
                    state.returns.append(_CONST)
                else:
                    state.returns.append(self._term(stmt.value, env))
        elif isinstance(stmt, (ast.If,)):
            self._walk_block(stmt.body, env, fn, state)
            self._walk_block(stmt.orelse, env, fn, state)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = self._term(stmt.iter, env)
            self._walk_block(stmt.body, env, fn, state)
            self._walk_block(stmt.orelse, env, fn, state)
        elif isinstance(stmt, ast.While):
            self._walk_block(stmt.body, env, fn, state)
            self._walk_block(stmt.orelse, env, fn, state)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if isinstance(item.optional_vars, ast.Name):
                    env[item.optional_vars.id] = self._term(
                        item.context_expr, env
                    )
            self._walk_block(stmt.body, env, fn, state)
        elif isinstance(stmt, ast.Try):
            self._walk_block(stmt.body, env, fn, state)
            for handler in stmt.handlers:
                self._walk_block(handler.body, env, fn, state)
            self._walk_block(stmt.orelse, env, fn, state)
            self._walk_block(stmt.finalbody, env, fn, state)

    def _bind(self, target, value_node, term, env) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = term
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements = (
                value_node.elts
                if isinstance(value_node, (ast.Tuple, ast.List))
                and len(value_node.elts) == len(target.elts)
                else None
            )
            for index, sub in enumerate(target.elts):
                if isinstance(sub, ast.Name):
                    if elements is not None:
                        env[sub.id] = self._term(elements[index], env)
                    else:
                        env[sub.id] = term

    # -- effect scanning (purity + sampling sites) --------------------

    def _scan_effects(self, stmt, env, state) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call):
                self._scan_call(node, env, state)
            elif isinstance(node, ast.Attribute):
                qualname = self.imports.qualify(node)
                if qualname in AMBIENT_ATTRIBUTES:
                    state.add_ambient(
                        AMBIENT_ATTRIBUTES[qualname], qualname,
                        self.paths[id(node)],
                    )
                elif (
                    qualname is not None
                    and qualname.split(".", 1)[0] in AMBIENT_MODULES
                ):
                    state.add_ambient(
                        "shared RNG/entropy state", qualname,
                        self.paths[id(node)],
                    )

    def _scan_call(self, node: ast.Call, env, state) -> None:
        func = node.func
        qualname = self.imports.qualify(func)
        if qualname in AMBIENT_CALLS:
            state.add_ambient(
                AMBIENT_CALLS[qualname], qualname, self.paths[id(node)]
            )
        elif qualname in GLOBAL_RNG_CALLS:
            state.add_ambient(
                "global RNG state", qualname, self.paths[id(node)]
            )
        elif qualname in FILESYSTEM_CALLS:
            if not self._path_is_declared_input(node, state):
                state.add_ambient(
                    "filesystem", qualname, self.paths[id(node)]
                )
        elif isinstance(func, ast.Name) and func.id == "open":
            if not self._path_is_declared_input(node, state):
                state.add_ambient(
                    "filesystem", "open", self.paths[id(node)]
                )
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in FILESYSTEM_METHODS
            and qualname is None  # a real receiver object, not a module
        ):
            if not self._receiver_is_declared_input(func.value, state):
                state.add_ambient(
                    "filesystem", f"<path>.{func.attr}",
                    self.paths[id(node)],
                )
        # Outgoing call edge for the call graph.
        ref = self._call_ref(func, qualname)
        if ref is not None:
            state.calls.append(ref)
        # Generator sampling site?
        if (
            isinstance(func, ast.Attribute)
            and func.attr in SAMPLING_METHODS
            and qualname is None
        ):
            state.samples.append(
                {
                    "method": func.attr,
                    "locator": self.paths[id(node)],
                    "recv": self._term(func.value, env),
                }
            )

    def _call_ref(self, func, qualname) -> dict | None:
        if qualname is not None:
            return {"kind": "fq", "ref": qualname}
        if isinstance(func, ast.Name):
            return {"kind": "local", "name": func.id}
        return None

    def _path_is_declared_input(self, call: ast.Call, state) -> bool:
        """Whether a filesystem call's path argument derives from a parameter."""
        if not call.args and not call.keywords:
            return False
        candidates = list(call.args[:1]) + [
            kw.value for kw in call.keywords if kw.arg in ("file", "path")
        ]
        return any(_names_in(arg) & state.params for arg in candidates)

    def _receiver_is_declared_input(self, recv: ast.AST, state) -> bool:
        return bool(_names_in(recv) & state.params)

    # -- taint term construction --------------------------------------

    def _term(self, node: ast.AST, env: dict[str, dict], depth: int = 0) -> dict:
        if depth > 12:
            return _UNKNOWN
        if isinstance(node, ast.Constant):
            return _CONST
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            return self._name_term(node)
        if isinstance(node, ast.Attribute):
            qualname = self.imports.qualify(node)
            if qualname in AMBIENT_ATTRIBUTES:
                return {"k": "ambient", "why": qualname}
            if qualname is not None:
                return {"k": "global", "ref": qualname}
            return self._term(node.value, env, depth + 1)
        if isinstance(node, ast.Call):
            return self._call_term(node, env, depth)
        if isinstance(node, ast.BinOp):
            return _join(
                [
                    self._term(node.left, env, depth + 1),
                    self._term(node.right, env, depth + 1),
                ]
            )
        if isinstance(node, ast.UnaryOp):
            return self._term(node.operand, env, depth + 1)
        if isinstance(node, ast.BoolOp):
            return _join([self._term(v, env, depth + 1) for v in node.values])
        if isinstance(node, ast.IfExp):
            return _join(
                [
                    self._term(node.body, env, depth + 1),
                    self._term(node.orelse, env, depth + 1),
                ]
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            if not node.elts:
                return _CONST
            return _join([self._term(e, env, depth + 1) for e in node.elts])
        if isinstance(node, ast.Subscript):
            return self._term(node.value, env, depth + 1)
        if isinstance(node, ast.Starred):
            return self._term(node.value, env, depth + 1)
        return _UNKNOWN

    def _name_term(self, node: ast.Name) -> dict:
        # Parameter lookups are rewritten by the caller via `env`; a
        # bare name here is either an import or a module global.
        qualname = self.imports.qualify(node)
        if qualname is not None:
            return {"k": "global", "ref": qualname}
        return {"k": "global", "ref": f"{self.module}.{node.id}"}

    def _call_term(self, node: ast.Call, env, depth: int) -> dict:
        func = node.func
        qualname = self.imports.qualify(func)
        if qualname in GENERATOR_FACTORIES:
            seed = node.args[0] if node.args else None
            if seed is None:
                for kw in node.keywords:
                    if kw.arg in ("seed", "entropy"):
                        seed = kw.value
                        break
            if seed is None or (
                isinstance(seed, ast.Constant) and seed.value is None
            ):
                seed_term: dict = {"k": "ambient", "why": "OS entropy"}
            else:
                seed_term = self._term(seed, env, depth + 1)
            return {"k": "gen", "seed": seed_term}
        if qualname in AMBIENT_CALLS:
            return {"k": "ambient", "why": qualname}
        if qualname in GLOBAL_RNG_CALLS or (
            qualname is not None
            and qualname.split(".", 1)[0] in AMBIENT_MODULES
        ):
            return {"k": "ambient", "why": qualname}
        if isinstance(func, ast.Name) and func.id in _PASSTHROUGH_BUILTINS:
            if node.args:
                return self._term(node.args[0], env, depth + 1)
            return _CONST
        ref = self._call_ref(func, qualname)
        if ref is None:
            # A method call on a taint-tracked value keeps its taint
            # (``seq.spawn(1)[0]`` stays seeded by ``seq``'s seed).
            if isinstance(func, ast.Attribute):
                return self._term(func.value, env, depth + 1)
            return _UNKNOWN
        args = [self._term(a, env, depth + 1) for a in node.args]
        kwargs = {
            kw.arg: self._term(kw.value, env, depth + 1)
            for kw in node.keywords
            if kw.arg is not None
        }
        return {"k": "call", "ref": ref, "args": args, "kwargs": kwargs}


class _FunctionState:
    """Mutable scratch state while extracting one function."""

    def __init__(self, params: set[str]) -> None:
        self.params = params
        self.env: dict[str, dict] = {
            name: {"k": "param", "name": name} for name in params
        }
        self.ambient: list[AmbientOp] = []
        self.calls: list[dict] = []
        self.samples: list[dict] = []
        self.returns: list[dict] = []
        self._seen_ambient: set[tuple] = set()

    def add_ambient(self, kind: str, qualname: str, locator) -> None:
        key = (kind, qualname, locator)
        if key not in self._seen_ambient:
            self._seen_ambient.add(key)
            self.ambient.append(AmbientOp(kind, qualname, tuple(locator)))


_CONST = {"k": "const"}
_UNKNOWN = {"k": "unknown"}


def _join(terms: list[dict]) -> dict:
    terms = [t for t in terms if t is not None]
    if not terms:
        return _UNKNOWN
    if len(terms) == 1:
        return terms[0]
    return {"k": "join", "terms": terms}


def extract_module_summary(
    module: str, tree: ast.Module, imports: ImportMap, config: LintConfig
) -> ModuleSummary:
    """Extract the cacheable semantic summary of one parsed module."""
    return _Extractor(module, tree, imports, config).run()
