"""Cross-module evaluation of seed-provenance taint terms.

Summaries abstract every dataflow as a small term language (see
:mod:`repro.checks.semantic.summaries`).  This module evaluates a term
to a :class:`Value` — *is it a random generator, and where did its seed
come from?* — substituting caller argument values into callee return
terms at call boundaries, following module-global bindings across
files, and treating any factory inside a configured ``rng-modules``
file as explicit-seeded by construction (they map a missing seed to the
fixed paper seed).

Evaluation is deliberately optimistic about what it cannot see:
unresolved calls and parameters evaluate to non-taint, so RPX102 only
fires on a *positive* trace from a sampling call back to ambient
entropy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.checks.semantic.lattice import AMBIENT, EXPLICIT, join_provenance
from repro.checks.semantic.project import FunctionKey, ProjectContext

__all__ = ["Value", "evaluate_term"]

_MAX_DEPTH = 24


@dataclass(frozen=True)
class Value:
    """Abstract value: generator-ness + seed provenance + a witness."""

    is_generator: bool = False
    provenance: str = EXPLICIT
    why: str | None = None  # which ambient source, for the message

    def join(self, other: "Value") -> "Value":
        """Least upper bound: ambient wins, generator-ness is sticky."""
        provenance = join_provenance(self.provenance, other.provenance)
        why = self.why if self.provenance == AMBIENT else other.why
        return Value(
            is_generator=self.is_generator or other.is_generator,
            provenance=provenance,
            why=why,
        )


_EXPLICIT = Value()
_UNKNOWN = Value(provenance="?")


def evaluate_term(
    project: ProjectContext,
    module: str,
    term: dict | None,
    argenv: dict[str, Value] | None = None,
    _stack: frozenset[FunctionKey] = frozenset(),
    _depth: int = 0,
) -> Value:
    """Evaluate a taint term in the context of ``module``."""
    if term is None or _depth > _MAX_DEPTH:
        return _UNKNOWN
    kind = term.get("k")
    if kind == "const":
        return _EXPLICIT
    if kind == "param":
        if argenv is not None and term["name"] in argenv:
            return argenv[term["name"]]
        # An unbound parameter is the repo's contract working: the
        # value was threaded in explicitly by some caller.
        return _EXPLICIT
    if kind == "ambient":
        return Value(provenance=AMBIENT, why=term.get("why"))
    if kind == "unknown":
        return _UNKNOWN
    if kind == "gen":
        seed = evaluate_term(
            project, module, term.get("seed"), argenv, _stack, _depth + 1
        )
        return Value(
            is_generator=True, provenance=seed.provenance, why=seed.why
        )
    if kind == "join":
        value = _EXPLICIT
        for part in term.get("terms", ()):
            value = value.join(
                evaluate_term(project, module, part, argenv, _stack, _depth + 1)
            )
        return value
    if kind == "global":
        return _evaluate_global(
            project, term.get("ref", ""), _stack, _depth
        )
    if kind == "call":
        return _evaluate_call(project, module, term, argenv, _stack, _depth)
    return _UNKNOWN


def _evaluate_global(
    project: ProjectContext,
    ref: str,
    stack: frozenset[FunctionKey],
    depth: int,
) -> Value:
    resolved = project.resolve_fq(ref)
    if resolved is None:
        return _UNKNOWN
    kind, target_module, name = resolved
    if kind == "global":
        summary = project.summaries.get(target_module)
        if summary is None:
            return _UNKNOWN
        term = summary.globals_taint.get(name)
        return evaluate_term(
            project, target_module, term, None, stack, depth + 1
        )
    if kind == "func" and project.is_rng_module(target_module):
        # Referencing (not calling) an rng-module factory: harmless.
        return _EXPLICIT
    return _UNKNOWN


def _evaluate_call(
    project: ProjectContext,
    module: str,
    term: dict,
    argenv: dict[str, Value] | None,
    stack: frozenset[FunctionKey],
    depth: int,
) -> Value:
    ref = term.get("ref") or {}
    callee = project.resolve_call_ref(module, ref)
    arg_values = [
        evaluate_term(project, module, arg, argenv, stack, depth + 1)
        for arg in term.get("args", ())
    ]
    kwarg_values = {
        name: evaluate_term(project, module, sub, argenv, stack, depth + 1)
        for name, sub in (term.get("kwargs") or {}).items()
    }
    if callee is None:
        # Not a project function.  An rng-modules factory referenced
        # from outside the scan (e.g. fixtures importing repro.rng)
        # still counts as explicit-seeded.
        fq = ref.get("ref", "") if ref.get("kind") == "fq" else ""
        if fq:
            owner = fq.rsplit(".", 1)[0]
            if project.is_rng_module(owner):
                return Value(is_generator=True, provenance=EXPLICIT)
        return _UNKNOWN
    if project.is_rng_module(callee[0]):
        return Value(is_generator=True, provenance=EXPLICIT)
    if callee in stack:
        return _UNKNOWN  # recursion: give up rather than loop
    fn = project.function_summary(callee)
    if fn is None or fn.returns is None:
        return _UNKNOWN
    callee_env: dict[str, Value] = {}
    for index, name in enumerate(fn.params):
        if index < len(arg_values):
            callee_env[name] = arg_values[index]
        elif name in kwarg_values:
            callee_env[name] = kwarg_values[name]
    return evaluate_term(
        project,
        callee[0],
        fn.returns,
        callee_env,
        stack | {callee},
        depth + 1,
    )
