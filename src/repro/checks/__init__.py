"""Domain lint engine enforcing the repo's reproducibility invariants.

``repro.checks`` is a small AST-based static-analysis pass with rules
specific to this reproduction's methodology: no global NumPy random
state (RPX001), unit-literal discipline (RPX002), no float equality on
computed values (RPX003), no hidden nondeterminism in library code
(RPX004), the experiment runner/seed contract (RPX005), honest
``__all__`` export lists (RPX006), no OS-entropy generator
construction (RPX007) and no silent fault swallowing in recovery
paths (RPX008).

Run it as ``repro lint [paths...]`` or programmatically::

    from repro.checks import load_config, run_lint
    report = run_lint(["src/repro"], config=load_config("."))
    assert report.ok, report.render_text()

See ``docs/linting.md`` for rule rationale, configuration
(``[tool.repro.lint]`` in ``pyproject.toml``) and suppression
(``# repro: noqa RPXnnn``).
"""

from __future__ import annotations

from repro.checks.config import LintConfig, find_pyproject, load_config, path_matches
from repro.checks.engine import (
    CACHE_VERSION,
    PARSE_ERROR_ID,
    FileContext,
    Finding,
    ImportMap,
    LintCache,
    LintReport,
    Rule,
    cache_key,
    check_file,
    check_source,
    iter_python_files,
    noqa_map,
    run_lint,
)
from repro.checks.rules import ALL_RULES, default_rules, rule_index

__all__ = [
    "ALL_RULES",
    "CACHE_VERSION",
    "FileContext",
    "Finding",
    "ImportMap",
    "LintCache",
    "LintConfig",
    "LintReport",
    "PARSE_ERROR_ID",
    "Rule",
    "cache_key",
    "check_file",
    "check_source",
    "default_rules",
    "find_pyproject",
    "iter_python_files",
    "load_config",
    "noqa_map",
    "path_matches",
    "rule_index",
    "run_lint",
]
