"""repro — reproduction of *Node Variability in Large-Scale Power
Measurements: Perspectives from the Green500, Top500 and EEHPCWG*
(Scogland et al., SC '15).

The package has three layers:

* **Substrates** — a simulated supercomputing estate:
  :mod:`repro.cluster` (component/node/fleet power models with
  manufacturing variability, VIDs, fans, DVFS), :mod:`repro.workloads`
  (HPL and the stress workloads the paper's datasets used),
  :mod:`repro.traces` (power time series), :mod:`repro.metering`
  (meters, power-delivery hierarchy, and executable EE HPC WG Level
  1/2/3 measurement campaigns), and :mod:`repro.lists` (a Green500-style
  list substrate).

* **Core contribution** — :mod:`repro.core`: the statistical
  sample-size rule (Eqs. 1–5), confidence-interval machinery with
  finite-population correction, measurement-window rules, the bootstrap
  coverage study, and the paper's new submission requirements.

* **Analysis & experiments** — :mod:`repro.analysis` (descriptive
  stats, normality diagnostics, window-gaming search, ranking impact)
  and :mod:`repro.experiments` (one module per paper table/figure,
  regenerating each artefact and comparing against the published
  values).

Quickstart::

    from repro.cluster import get_system
    from repro.core import recommend_sample_size

    lrz = get_system("lrz")
    sample = lrz.node_sample(utilisation=0.96)
    n = recommend_sample_size(
        n_nodes=len(sample),
        cv=sample.coefficient_of_variation(),
        accuracy=0.01,
        confidence=0.95,
    )
"""

from repro import units
from repro.rng import default_rng

__version__ = "1.0.0"

__all__ = ["units", "default_rng", "__version__"]
