"""Node composition: components + variability + thermal state.

A :class:`NodeConfig` describes the *design* of a node (how many CPUs,
GPUs, how much DRAM, the fan bank); a :class:`Node` is one manufactured
instance of that design, carrying its own silicon lottery draws
(per-processor power multipliers, GPU VIDs, inlet temperature).

For the large population studies, :class:`~repro.cluster.system.SystemModel`
evaluates whole fleets with vectorised arrays instead of instantiating
one :class:`Node` per machine; :class:`Node` exists for the
small-sample case studies (the L-CSC Figure 4 experiment measures a
handful of nodes individually).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.cluster.components import (
    CpuModel,
    DramModel,
    FanModel,
    GpuModel,
    NicModel,
)
from repro.cluster.dvfs import OperatingPoint
from repro.cluster.thermal import FanController, FanPolicy, ThermalEnvironment
from repro.cluster.variability import ManufacturingVariation, VidBinning

__all__ = ["NodeConfig", "Node"]


@dataclass(frozen=True)
class NodeConfig:
    """Design of one node type.

    Attributes
    ----------
    cpu / n_cpus:
        CPU socket model and count per node.
    gpu / n_gpus:
        Accelerator model and count per node (0 for CPU-only nodes).
    dram:
        Aggregate DRAM model for the node.
    nic:
        Network interface model.
    fan:
        Fan-bank model (set ``fan.max_watts = 0`` for blade designs
        whose fans are chassis-level and metered separately).
    other_watts:
        Constant board overhead (VRM losses at the board level, BMC,
        storage) in watts.
    """

    cpu: CpuModel = field(default_factory=CpuModel)
    n_cpus: int = 2
    gpu: GpuModel | None = None
    n_gpus: int = 0
    dram: DramModel = field(default_factory=lambda: DramModel.for_capacity(32.0))
    nic: NicModel = field(default_factory=NicModel)
    fan: FanModel = field(default_factory=FanModel)
    other_watts: float = 20.0

    def __post_init__(self) -> None:
        if self.n_cpus < 0 or self.n_gpus < 0:
            raise ValueError("component counts must be >= 0")
        if self.n_cpus == 0 and self.n_gpus == 0:
            raise ValueError("a node needs at least one processor")
        if self.n_gpus > 0 and self.gpu is None:
            raise ValueError("n_gpus > 0 requires a gpu model")
        if self.other_watts < 0:
            raise ValueError("other_watts must be >= 0")

    def nominal_it_power(self, utilisation: float = 1.0) -> float:
        """IT (non-fan) power of a nominal node at the given utilisation."""
        p = self.n_cpus * self.cpu.power(utilisation)
        if self.n_gpus:
            p += self.n_gpus * self.gpu.power(utilisation)
        p += self.dram.power(utilisation) + self.nic.power(utilisation)
        return p + self.other_watts

    def nominal_peak_power(self) -> float:
        """Nominal node IT power at full load plus fans at full speed."""
        return self.nominal_it_power(1.0) + self.fan.power(1.0)


@dataclass(frozen=True)
class Node:
    """One manufactured node.

    Attributes
    ----------
    node_id:
        Identifier within the system.
    config:
        The node design.
    cpu_multipliers / gpu_multipliers:
        Per-socket power multipliers from process variation, length
        ``n_cpus`` / ``n_gpus``.
    gpu_vids:
        VID code per GPU (empty for CPU-only nodes).
    inlet_c:
        The node's machine-room inlet temperature.
    fan_controller:
        Fan regulation policy shared by a system, possibly pinned.
    """

    node_id: int
    config: NodeConfig
    cpu_multipliers: np.ndarray
    gpu_multipliers: np.ndarray
    gpu_vids: np.ndarray
    inlet_c: float
    fan_controller: FanController
    environment: ThermalEnvironment = field(default_factory=ThermalEnvironment)

    def __post_init__(self) -> None:
        if len(self.cpu_multipliers) != self.config.n_cpus:
            raise ValueError("cpu_multipliers length mismatch")
        if len(self.gpu_multipliers) != self.config.n_gpus:
            raise ValueError("gpu_multipliers length mismatch")
        if len(self.gpu_vids) != self.config.n_gpus:
            raise ValueError("gpu_vids length mismatch")
        if np.any(self.cpu_multipliers <= 0) or np.any(self.gpu_multipliers <= 0):
            raise ValueError("multipliers must be positive")

    # ------------------------------------------------------------------
    @staticmethod
    def manufacture(
        node_id: int,
        config: NodeConfig,
        rng: np.random.Generator,
        *,
        variation: ManufacturingVariation | None = None,
        environment: ThermalEnvironment | None = None,
        fan_controller: FanController | None = None,
        vid_binning: VidBinning | None = None,
    ) -> "Node":
        """Roll the silicon lottery for one node."""
        variation = variation or ManufacturingVariation()
        environment = environment or ThermalEnvironment()
        fan_controller = fan_controller or FanController(fan_model=config.fan)
        cpu_mult = variation.sample_multipliers(max(config.n_cpus, 1), rng)[
            : config.n_cpus
        ]
        if config.n_gpus:
            gpu_mult = variation.sample_multipliers(config.n_gpus, rng)
            binning = vid_binning or VidBinning()
            # VID encodes the ASIC's *timing* quality (minimum stable
            # voltage), which the paper's L-CSC study found to be
            # unrelated to its leakage draw — so the VID is an
            # independent sample, not a re-ranking of the multipliers.
            quality = rng.beta(2.0, 2.0, size=config.n_gpus)
            vids = binning.quality_to_vid(quality)
        else:
            gpu_mult = np.empty(0)
            vids = np.empty(0, dtype=np.int64)
        inlet = float(environment.sample_inlet_temperatures(1, rng)[0])
        return Node(
            node_id=node_id,
            config=config,
            cpu_multipliers=np.asarray(cpu_mult, dtype=float),
            gpu_multipliers=np.asarray(gpu_mult, dtype=float),
            gpu_vids=vids,
            inlet_c=inlet,
            fan_controller=fan_controller,
            environment=environment,
        )

    # ------------------------------------------------------------------
    def it_power(
        self,
        utilisation,
        *,
        gpu_point: OperatingPoint | None = None,
        cpu_freq_multiplier: float = 1.0,
    ):
        """IT (non-fan) node power at the given utilisation.

        ``gpu_point`` overrides every GPU's operating point (the fixed
        774 MHz / 1.018 V configuration); when ``None``, each GPU runs
        at its nominal frequency with its VID-programmed voltage.
        ``cpu_freq_multiplier`` scales CPU frequency (DVFS), with
        voltage following linearly — the usual f/V rail coupling.
        """
        cfg = self.config
        u = np.asarray(utilisation, dtype=float)
        total = np.zeros_like(u, dtype=float)
        for mult in self.cpu_multipliers:
            total = total + mult * cfg.cpu.power_at(
                u,
                cfg.cpu.nominal_mhz * cpu_freq_multiplier,
                cfg.cpu.nominal_volts * cpu_freq_multiplier,
            )
        if cfg.n_gpus:
            binning = VidBinning()
            for mult, vid in zip(self.gpu_multipliers, self.gpu_vids):
                if gpu_point is None:
                    f = cfg.gpu.nominal_mhz
                    v = float(binning.voltage_for_vid(int(vid)))
                else:
                    f, v = gpu_point.freq_mhz, gpu_point.volts
                total = total + mult * cfg.gpu.power_at(u, f, v)
        total = total + cfg.dram.power(u) + cfg.nic.power(u) + cfg.other_watts
        return float(total) if np.ndim(utilisation) == 0 else total

    def fan_power(self, it_watts):
        """Fan power given the node's current IT draw."""
        return self.fan_controller.power(it_watts, self.inlet_c, self.environment)

    def total_power(self, utilisation, **kwargs):
        """IT power plus fan power at the given utilisation."""
        it = self.it_power(utilisation, **kwargs)
        return it + self.fan_power(it)

    def with_fan_policy(self, policy: FanPolicy, pinned_speed: float | None = None) -> "Node":
        """Copy of this node with a different fan policy."""
        ctrl = self.fan_controller
        if policy is FanPolicy.PINNED:
            ctrl = ctrl.pinned(pinned_speed)
        else:
            ctrl = FanController(
                fan_model=ctrl.fan_model,
                policy=FanPolicy.AUTO,
                pinned_speed=ctrl.pinned_speed,
                k_power=ctrl.k_power,
                k_inlet=ctrl.k_inlet,
                reference_watts=ctrl.reference_watts,
            )
        return replace(self, fan_controller=ctrl)
