"""Fleet-level system model.

A :class:`SystemModel` is a population of nodes of one design, with
per-node manufacturing draws, inlet temperatures and (for GPU systems)
VID assignments held as *arrays* so that whole-fleet power evaluation is
a handful of vectorised expressions rather than ``N`` Python objects.
Sequoia-25's ~98k-node scale evaluates in milliseconds this way.

The affine structure the evaluation exploits::

    node_i(u) = fixed(u) + proc(u) · m_i + fan(it_i, T_i)

where ``m_i`` is node *i*'s aggregate processor multiplier and the fan
term is the only node-level non-linearity (cube-law in a clipped affine
speed).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.cluster.components import GpuModel
from repro.cluster.node import Node, NodeConfig
from repro.cluster.dvfs import OperatingPoint
from repro.cluster.thermal import FanController, FanPolicy, ThermalEnvironment
from repro.cluster.variability import ManufacturingVariation, VidBinning, assign_vids
from repro.rng import SeededStreams
from repro.traces.nodeset import NodeSample

__all__ = ["SystemModel"]


@dataclass(frozen=True)
class _Fleet:
    """Materialised per-node draws for one system."""

    proc_mean_mult: np.ndarray  # (n_nodes,) mean CPU multiplier per node
    gpu_mults: np.ndarray  # (n_nodes, n_gpus) or (n_nodes, 0)
    gpu_vids: np.ndarray  # (n_nodes, n_gpus) int
    inlet_c: np.ndarray  # (n_nodes,)


class SystemModel:
    """A homogeneous supercomputer of ``n_nodes`` nodes.

    Parameters
    ----------
    name:
        System label (``"LRZ"``, ``"Titan"``...).
    n_nodes:
        Fleet size (the paper's ``N``).
    config:
        The node design.
    variation:
        Process-variation distribution for processors.
    environment:
        Machine-room thermal environment.
    fan_controller:
        Fan regulation policy; defaults to AUTO on ``config.fan``.
    seed:
        Root seed for this system's silicon lottery; fixed per system in
        the registry so Table 4 regenerates identically.
    power_scale:
        Global calibration multiplier applied to every node's power
        (used by the registry to pin the fleet mean to published values).
    """

    def __init__(
        self,
        name: str,
        n_nodes: int,
        config: NodeConfig,
        *,
        variation: ManufacturingVariation | None = None,
        environment: ThermalEnvironment | None = None,
        fan_controller: FanController | None = None,
        vid_binning: VidBinning | None = None,
        shared=None,
        seed: int = 0,
        power_scale: float = 1.0,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if power_scale <= 0:
            raise ValueError("power_scale must be positive")
        self.name = name
        self.n_nodes = int(n_nodes)
        self.config = config
        self.variation = variation or ManufacturingVariation()
        self.environment = environment or ThermalEnvironment()
        self.fan_controller = fan_controller or FanController(fan_model=config.fan)
        self.vid_binning = vid_binning or VidBinning()
        #: Optional :class:`~repro.cluster.shared.SharedInfrastructure`
        #: (interconnect, infrastructure nodes) participating in runs.
        self.shared = shared
        self.seed = int(seed)
        self.power_scale = float(power_scale)
        self._fleet_cache: _Fleet | None = None

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        kind = "GPU" if self.config.n_gpus else "CPU"
        return (
            f"SystemModel({self.name!r}, n_nodes={self.n_nodes}, kind={kind}, "
            f"nominal_node={self.config.nominal_it_power(1.0):.0f} W)"
        )

    def _fleet(self) -> _Fleet:
        """Materialise (and memoise) the fleet's per-node draws."""
        if self._fleet_cache is not None:
            return self._fleet_cache
        streams = SeededStreams(self.seed)
        cfg = self.config
        n = self.n_nodes

        if cfg.n_cpus:
            cpu_rng = streams["cpu-variation"]
            cpu_m = self.variation.sample_multipliers(n * cfg.n_cpus, cpu_rng)
            proc_mean = cpu_m.reshape(n, cfg.n_cpus).mean(axis=1)
        else:
            proc_mean = np.zeros(n)

        if cfg.n_gpus:
            gpu_rng = streams["gpu-variation"]
            gpu_m = self.variation.sample_multipliers(n * cfg.n_gpus, gpu_rng)
            gpu_m = gpu_m.reshape(n, cfg.n_gpus)
            vid_rng = streams["vid-assignment"]
            vids = assign_vids(n * cfg.n_gpus, vid_rng, self.vid_binning)
            vids = vids.reshape(n, cfg.n_gpus)
        else:
            gpu_m = np.empty((n, 0))
            vids = np.empty((n, 0), dtype=np.int64)

        inlet = self.environment.sample_inlet_temperatures(
            n, streams["inlet-temperature"]
        )
        self._fleet_cache = _Fleet(proc_mean, gpu_m, vids, inlet)
        return self._fleet_cache

    # ------------------------------------------------------------------
    # fleet power evaluation
    # ------------------------------------------------------------------
    def node_it_powers(
        self,
        utilisation,
        *,
        gpu_point: OperatingPoint | None = None,
        cpu_freq_multiplier: float = 1.0,
        freq_multiplier: float = 1.0,
        indices: np.ndarray | None = None,
    ) -> np.ndarray:
        """IT power of every node, shape ``(N,)``.

        ``utilisation`` is a scalar for balanced workloads (HPL,
        FIRESTARTER, MPrime — everything the paper's Section 4 data
        used) or a per-node array for imbalanced schedules (the Davis
        et al. regime the paper's caveats discuss).  ``indices``
        restricts the evaluation to a node subset (same draws as the
        corresponding full-fleet positions; a per-node utilisation
        array must already be subset-length in that case).

        ``cpu_freq_multiplier`` scales the CPU operating point only;
        ``freq_multiplier`` is machine-wide DVFS — it scales CPUs *and*
        GPUs (frequency and rail voltage tracking linearly), the knob a
        :class:`~repro.cluster.dvfs.DvfsGovernor` drives over a run.
        """
        if freq_multiplier <= 0:
            raise ValueError("freq_multiplier must be positive")
        u = np.asarray(utilisation, dtype=float)
        if np.any(u < 0.0) or np.any(u > 1.0):
            raise ValueError("utilisation must be in [0, 1]")
        cfg = self.config
        fleet = self._fleet()
        if indices is None:
            proc_mult = fleet.proc_mean_mult
            gpu_mults = fleet.gpu_mults
            gpu_vids = fleet.gpu_vids
        else:
            idx = np.asarray(indices, dtype=np.int64)
            proc_mult = fleet.proc_mean_mult[idx]
            gpu_mults = fleet.gpu_mults[idx]
            gpu_vids = fleet.gpu_vids[idx]
        if u.ndim == 1 and u.shape != proc_mult.shape:
            raise ValueError(
                f"per-node utilisation has length {u.size}, fleet "
                f"evaluation covers {proc_mult.size} nodes"
            )
        if u.ndim > 1:
            raise ValueError("utilisation must be a scalar or 1-D array")

        cpu_mult = cpu_freq_multiplier * freq_multiplier
        cpu_each = cfg.cpu.power_at(
            u,
            cfg.cpu.nominal_mhz * cpu_mult,
            cfg.cpu.nominal_volts * cpu_mult,
        )
        total = cfg.n_cpus * cpu_each * proc_mult

        if cfg.n_gpus:
            gpu: GpuModel = cfg.gpu
            u_gpu = u[:, None] if u.ndim == 1 else u
            if gpu_point is None:
                volts = (
                    np.asarray(self.vid_binning.voltage_for_vid(gpu_vids))
                    * freq_multiplier
                )
                per_gpu = gpu.power_at(
                    u_gpu, gpu.nominal_mhz * freq_multiplier, volts
                )
            else:
                per_gpu = gpu.power_at(
                    u_gpu, gpu_point.freq_mhz, gpu_point.volts
                )
            # per_gpu is scalar (balanced) or (N, 1) (per-node); either
            # broadcasts against the (N, n_gpus) multipliers.
            total = total + (np.asarray(per_gpu) * gpu_mults).sum(axis=1)

        total = total + (
            cfg.dram.power(u) + cfg.nic.power(u) + cfg.other_watts
        )
        return total * self.power_scale

    def node_total_powers(
        self, utilisation: float, *, indices: np.ndarray | None = None, **kwargs
    ) -> np.ndarray:
        """IT + fan power of every node (or a subset), shape ``(N,)``."""
        it = self.node_it_powers(utilisation, indices=indices, **kwargs)
        inlet = self._fleet().inlet_c
        if indices is not None:
            inlet = inlet[np.asarray(indices, dtype=np.int64)]
        fans = self.fan_controller.power(it, inlet, self.environment)
        return it + np.asarray(fans, dtype=float)

    def node_sample(
        self,
        utilisation: float = 0.95,
        *,
        schedule=None,
        measurement_noise_cv: float = 0.0,
        rng: np.random.Generator | None = None,
        **kwargs,
    ) -> NodeSample:
        """Time-averaged per-node powers under a workload.

        ``schedule`` (a :class:`~repro.workloads.schedule.LoadSchedule`)
        turns the balanced default into an imbalanced run — the regime
        where the paper warns its normality-based machinery breaks.
        ``measurement_noise_cv`` adds multiplicative Gaussian noise
        modelling per-node meter calibration error (the paper cites
        "standard variance of power measurement equipment of 1–1.5%").
        """
        if schedule is not None:
            if schedule.n_nodes != self.n_nodes:
                raise ValueError(
                    f"schedule covers {schedule.n_nodes} nodes, "
                    f"system has {self.n_nodes}"
                )
            utilisation = schedule.apply(utilisation)
        watts = self.node_total_powers(utilisation, **kwargs)
        if measurement_noise_cv < 0:
            raise ValueError("measurement_noise_cv must be >= 0")
        if measurement_noise_cv > 0:
            if rng is None:
                rng = SeededStreams(self.seed)["meter-noise"]
            watts = watts * (1.0 + measurement_noise_cv * rng.standard_normal(watts.size))
            watts = np.maximum(watts, 0.0)
        return NodeSample(watts, system=self.name)

    def system_power(self, utilisation: float, **kwargs) -> float:
        """True full-system compute power at the given utilisation (W).

        Compute nodes only — shared infrastructure, when present, is
        reported separately (see :attr:`shared` and
        :meth:`total_system_power`).
        """
        return float(self.node_total_powers(utilisation, **kwargs).sum())

    def total_system_power(self, utilisation: float, **kwargs) -> float:
        """Compute power plus shared-subsystem power (W) — the number a
        whole-machine (Level 3) measurement sees."""
        total = self.system_power(utilisation, **kwargs)
        if self.shared is not None:
            total += float(np.asarray(self.shared.power(utilisation)))
        return total

    # ------------------------------------------------------------------
    # individual nodes (for case studies)
    # ------------------------------------------------------------------
    def manufacture_node(self, node_id: int) -> Node:
        """Materialise one node as a full :class:`Node` object.

        Draws are taken from the fleet arrays so the object agrees with
        the vectorised evaluation for the same ``node_id``.
        """
        if not (0 <= node_id < self.n_nodes):
            raise ValueError(f"node_id {node_id} out of range")
        fleet = self._fleet()
        cfg = self.config
        return Node(
            node_id=node_id,
            config=cfg,
            cpu_multipliers=np.full(cfg.n_cpus, fleet.proc_mean_mult[node_id]),
            gpu_multipliers=fleet.gpu_mults[node_id].copy(),
            gpu_vids=fleet.gpu_vids[node_id].copy(),
            inlet_c=float(fleet.inlet_c[node_id]),
            fan_controller=self.fan_controller,
            environment=self.environment,
        )

    # ------------------------------------------------------------------
    # variants
    # ------------------------------------------------------------------
    def with_fan_policy(
        self, policy: FanPolicy, pinned_speed: float | None = None
    ) -> "SystemModel":
        """Copy of the system with a different fan policy.

        Fleet draws are preserved (same seed), so this isolates the fan
        effect — the comparison behind the paper's "pin all fans"
        recommendation.
        """
        if policy is FanPolicy.PINNED:
            ctrl = self.fan_controller.pinned(pinned_speed)
        else:
            ctrl = replace(self.fan_controller, policy=FanPolicy.AUTO)
        return self._copy(fan_controller=ctrl)

    def with_power_scale(self, power_scale: float) -> "SystemModel":
        """Copy with a different global calibration multiplier."""
        return self._copy(power_scale=power_scale)

    def with_variation(self, variation: ManufacturingVariation) -> "SystemModel":
        """Copy with a different process-variation distribution."""
        return self._copy(variation=variation)

    def _copy(self, **overrides) -> "SystemModel":
        kwargs = dict(
            name=self.name,
            n_nodes=self.n_nodes,
            config=self.config,
            variation=self.variation,
            environment=self.environment,
            fan_controller=self.fan_controller,
            vid_binning=self.vid_binning,
            shared=self.shared,
            seed=self.seed,
            power_scale=self.power_scale,
        )
        kwargs.update(overrides)
        name = kwargs.pop("name")
        n_nodes = kwargs.pop("n_nodes")
        config = kwargs.pop("config")
        clone = SystemModel(name, n_nodes, config, **kwargs)
        # The fleet draws depend only on (seed, config, variation,
        # environment, vid_binning); share the materialised fleet when
        # none of those changed (e.g. a pure power_scale or fan-policy
        # change), so calibration loops don't re-roll 100k-node fleets.
        draw_keys = ("config", "variation", "environment", "vid_binning", "seed")
        if not any(k in overrides for k in draw_keys) and n_nodes == self.n_nodes:
            clone._fleet_cache = self._fleet_cache
        return clone
