"""Shared (non-compute-node) subsystems: interconnect and infrastructure.

Table 1's aspect 3 is about these: Level 1 measures "compute nodes
only", Level 2 requires "all participating subsystems, either measured
or estimated", Level 3 requires them *measured*.  The switches,
directors and infrastructure nodes draw real power that the machine
cannot run without — so a compute-only Level 1 number systematically
understates power and overstates FLOPS/W, which is exactly what
Scogland et al. [19] observed across levels and the paper cites in
Section 2.2 ("the Level 1 and Level 2 methodologies can significantly
overstate a system's energy efficiency").

The model is deliberately simple: interconnect power is almost
load-invariant (switch ASICs burn near-constant power; SerDes idle at
full rate), infrastructure nodes are constant, and a Level 2 site's
*estimate* of the total carries a systematic error (it reads datasheets
or samples one switch).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SharedInfrastructure"]


@dataclass(frozen=True)
class SharedInfrastructure:
    """Non-compute subsystems participating in a run.

    Attributes
    ----------
    interconnect_watts:
        Switch/director power at idle traffic.
    interconnect_load_watts:
        Additional interconnect power at full traffic (small: links
        burn most of their power just being up).
    infrastructure_watts:
        Head/management/storage-router nodes that cannot be switched
        off for the run.
    estimation_error:
        Signed relative error of a Level 2 site's *estimate* of the
        shared total (datasheet-based; negative = underestimate).
    """

    interconnect_watts: float = 0.0
    interconnect_load_watts: float = 0.0
    infrastructure_watts: float = 0.0
    estimation_error: float = 0.0

    def __post_init__(self) -> None:
        if self.interconnect_watts < 0 or self.infrastructure_watts < 0:
            raise ValueError("shared powers must be non-negative")
        if self.interconnect_load_watts < 0:
            raise ValueError("interconnect_load_watts must be >= 0")
        if self.estimation_error <= -1.0:
            raise ValueError("estimation_error must exceed -1")

    def power(self, utilisation=1.0):
        """True shared power at the given compute utilisation."""
        u = np.asarray(utilisation, dtype=float)
        if np.any(u < 0) or np.any(u > 1):
            raise ValueError("utilisation must be in [0, 1]")
        p = (
            self.interconnect_watts
            + self.interconnect_load_watts * u
            + self.infrastructure_watts
        )
        return float(p) if np.ndim(utilisation) == 0 else p

    def estimate(self, utilisation=1.0) -> float:
        """What a Level 2 site reports for the shared subsystems."""
        return float(
            np.asarray(self.power(utilisation)) * (1.0 + self.estimation_error)
        )

    @property
    def is_zero(self) -> bool:
        """Whether there is any shared power at all."""
        return (
            self.interconnect_watts == 0
            and self.interconnect_load_watts == 0
            and self.infrastructure_watts == 0
        )
