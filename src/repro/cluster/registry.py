"""Catalog of the paper's test systems, calibrated to its published data.

Two families:

* **Node-variability systems** (Tables 3 & 4): Calcul Québec, CEA Fat,
  CEA Thin, LRZ, Titan, TU Dresden.  Each is a :class:`SystemModel`
  whose fleet mean per-node power μ̂ and coefficient of variation σ̂/μ̂
  are pinned to Table 4 by a two-knob fixed-point calibration
  (global ``power_scale`` for μ̂, process-variation ``sigma`` for σ̂/μ̂).

* **Trace systems** (Table 2 & Figure 1): Colosse, Sequoia(-25),
  Piz Daint, L-CSC.  Each is a (system, HPL workload) pair whose
  core-phase power *shape* — the first-20% and last-20% segment averages
  relative to the core average — is fit with two one-dimensional root
  solves (``rho`` for the tail-off, ``warmup_boost`` for the start-of-run
  transient), then scaled to the published absolute core power.

All calibrations are deterministic (fixed per-system seeds) and cached,
so every experiment and benchmark sees identical fleets.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, replace

import numpy as np
from scipy.optimize import brentq

from repro.cluster.components import (
    CpuModel,
    DramModel,
    FanModel,
    GpuModel,
    NicModel,
)
from repro.cluster.node import NodeConfig
from repro.cluster.system import SystemModel
from repro.cluster.thermal import FanController, ThermalEnvironment
from repro.cluster.variability import ManufacturingVariation, VidBinning
from repro.units import hours_to_seconds, kilowatts_to_watts
from repro.workloads.hpl import HplWorkload

__all__ = [
    "Table2Row",
    "Table3Row",
    "Table4Row",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_SYSTEMS",
    "NODE_VARIABILITY_SYSTEMS",
    "TRACE_SYSTEMS",
    "get_system",
    "get_trace_setup",
    "list_systems",
    "workload_utilisation",
]


# ----------------------------------------------------------------------
# Published constants
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table2Row:
    """One row of the paper's Table 2 (all power in kW)."""

    runtime_s: float
    core_kw: float
    first20_kw: float
    last20_kw: float


@dataclass(frozen=True)
class Table3Row:
    """One row of the paper's Table 3 (system inventory)."""

    cpus_per_node: str
    ram_per_node: str
    components_measured: str
    workload: str


@dataclass(frozen=True)
class Table4Row:
    """One row of the paper's Table 4 (per-node power statistics)."""

    n_nodes: int
    mean_w: float
    std_w: float

    @property
    def cv(self) -> float:
        """σ̂/μ̂ as published."""
        return self.std_w / self.mean_w


PAPER_TABLE2: dict[str, Table2Row] = {
    "colosse": Table2Row(hours_to_seconds(7.0), 398.7, 398.1, 398.2),
    "sequoia": Table2Row(hours_to_seconds(28.0), 11503.3, 11628.7, 11244.2),
    "piz-daint": Table2Row(hours_to_seconds(1.5), 833.4, 873.8, 698.4),
    "l-csc": Table2Row(hours_to_seconds(1.5), 59.1, 63.9, 46.8),
}

PAPER_TABLE3: dict[str, Table3Row] = {
    "calcul-quebec": Table3Row("2x Intel X5560", "24 GiB", "480x2 nodes", "HPL"),
    "cea-fat": Table3Row("4x Intel X7560", "16x4 GiB", "316 nodes", "HPL"),
    "cea-thin": Table3Row("2x Intel E5-2680", "16x4 GiB", "640 nodes", "HPL"),
    "lrz": Table3Row("2x Intel E5-2680", "32 GiB", "512 nodes", "MPrime"),
    "titan": Table3Row("1x AMD 6274", "32 GiB", "GPUs in 1000 nodes", "Rodinia CFD"),
    "tu-dresden": Table3Row("2x Intel E5-2690", "8x4 GiB", "210 nodes", "FIRESTARTER"),
}

PAPER_TABLE4: dict[str, Table4Row] = {
    "calcul-quebec": Table4Row(480, 581.93, 11.66),
    "cea-fat": Table4Row(360, 971.74, 19.81),
    "cea-thin": Table4Row(5040, 366.84, 10.41),
    "lrz": Table4Row(9216, 209.88, 5.31),
    "titan": Table4Row(18688, 90.74, 1.81),
    "tu-dresden": Table4Row(210, 386.86, 5.85),
}

#: Mean core-phase utilisation assumed for each node-variability dataset
#: (FIRESTARTER pushes near peak; MPrime slightly lower; HPL and the CFD
#: solver average lower still).
_WORKLOAD_UTILISATION: dict[str, float] = {
    "calcul-quebec": 0.92,
    "cea-fat": 0.92,
    "cea-thin": 0.92,
    "lrz": 0.96,
    "titan": 0.90,
    "tu-dresden": 0.99,
}

NODE_VARIABILITY_SYSTEMS: tuple[str, ...] = tuple(PAPER_TABLE4)
TRACE_SYSTEMS: tuple[str, ...] = tuple(PAPER_TABLE2)
PAPER_SYSTEMS: tuple[str, ...] = NODE_VARIABILITY_SYSTEMS + TRACE_SYSTEMS

#: Per-system seeds: stable, arbitrary, distinct.
_SEEDS: dict[str, int] = {name: 1000 + i for i, name in enumerate(PAPER_SYSTEMS)}


# ----------------------------------------------------------------------
# Node designs
# ----------------------------------------------------------------------
def _cpu(idle: float, peak: float, mhz: float) -> CpuModel:
    return CpuModel(idle_watts=idle, peak_watts=peak, nominal_mhz=mhz)


def _small_fan(max_watts: float, reference_watts: float) -> FanController:
    return FanController(
        fan_model=FanModel(max_watts=max_watts, min_speed=0.3),
        reference_watts=reference_watts,
    )


def _base_configs() -> dict[str, tuple[NodeConfig, FanController]]:
    """Uncalibrated node designs for the node-variability systems.

    Component wattages are nominal-datasheet-flavoured; the calibration
    step pins the fleet mean to Table 4, so only *ratios* (idle share,
    fan share) matter here.
    """
    return {
        # A Calcul Québec "blade" holds two 2-socket X5560 nodes; the
        # paper measures blades, so the unit here is a 4-socket blade.
        "calcul-quebec": (
            NodeConfig(
                cpu=_cpu(18.0, 95.0, 2800.0),
                n_cpus=4,
                dram=DramModel.for_capacity(48.0),
                nic=NicModel(),
                fan=FanModel(max_watts=60.0),
                other_watts=40.0,
            ),
            _small_fan(60.0, 600.0),
        ),
        "cea-fat": (
            NodeConfig(
                cpu=_cpu(25.0, 130.0, 2260.0),
                n_cpus=4,
                dram=DramModel.for_capacity(64.0),
                nic=NicModel(),
                fan=FanModel(max_watts=90.0),
                other_watts=60.0,
            ),
            _small_fan(90.0, 1000.0),
        ),
        "cea-thin": (
            NodeConfig(
                cpu=_cpu(20.0, 130.0, 2700.0),
                n_cpus=2,
                dram=DramModel.for_capacity(64.0),
                nic=NicModel(),
                fan=FanModel(max_watts=45.0),
                other_watts=25.0,
            ),
            _small_fan(45.0, 380.0),
        ),
        # SuperMUC thin nodes are direct-warm-water cooled: tiny fans.
        "lrz": (
            NodeConfig(
                cpu=_cpu(20.0, 130.0, 2700.0),
                n_cpus=2,
                dram=DramModel.for_capacity(32.0),
                nic=NicModel(),
                fan=FanModel(max_watts=8.0),
                other_watts=18.0,
            ),
            _small_fan(8.0, 220.0),
        ),
        # Titan's dataset is *GPU-only* power for K20x cards; the unit is
        # a GPU, with no node-level DRAM/NIC/fan in the measurement.
        "titan": (
            NodeConfig(
                cpu=_cpu(1.0, 1.0, 2200.0),  # placeholder, zero-count below
                n_cpus=0,
                gpu=GpuModel(idle_watts=18.0, peak_watts=120.0,
                             nominal_mhz=732.0),
                n_gpus=1,
                dram=DramModel(idle_watts=0.0, peak_watts=0.0, gib=32.0),
                nic=NicModel(idle_watts=0.0, peak_watts=0.0),
                fan=FanModel(max_watts=0.0),
                other_watts=0.0,
            ),
            _small_fan(0.0, 100.0),
        ),
        "tu-dresden": (
            NodeConfig(
                cpu=_cpu(22.0, 135.0, 2900.0),
                n_cpus=2,
                dram=DramModel.for_capacity(32.0),
                nic=NicModel(),
                fan=FanModel(max_watts=40.0),
                other_watts=22.0,
            ),
            _small_fan(40.0, 400.0),
        ),
    }


#: Outlier contamination used for all node-variability fleets: a handful
#: of nodes per thousand sit visibly right of the bulk (Figure 2).
_OUTLIERS = dict(outlier_rate=0.004, outlier_sigma=0.08)

#: Titan's K20x boards run a fixed core rail; most of the published
#: spread is silicon, so its VID grid is made power-neutral-ish.
_TITAN_VIDS = VidBinning(volts_per_step=0.002)


# ----------------------------------------------------------------------
# Node-variability calibration
# ----------------------------------------------------------------------
def _calibrate_fleet(
    system: SystemModel, target_mu: float, target_cv: float, utilisation: float
) -> SystemModel:
    """Fixed-point calibration of (power_scale, variation.sigma).

    ``power_scale`` scales all powers uniformly, so one step pins the
    mean exactly.  σ̂/μ̂ is driven by the variation sigma but also picks
    up fan/VID/outlier variance, so sigma is iterated multiplicatively;
    four rounds land well inside 1% of the target for every paper
    system.
    """
    for _ in range(4):
        sample = system.node_sample(utilisation)
        mu = sample.mean()
        cv = sample.coefficient_of_variation()
        new_scale = system.power_scale * (target_mu / mu)
        ratio = np.clip(target_cv / max(cv, 1e-9), 0.25, 4.0)
        new_sigma = float(np.clip(system.variation.sigma * ratio, 1e-5, 0.5))
        system = system.with_power_scale(new_scale).with_variation(
            replace(system.variation, sigma=new_sigma)
        )
    return system


@functools.lru_cache(maxsize=None)
def get_system(name: str) -> SystemModel:
    """Return the calibrated :class:`SystemModel` for a paper system.

    Valid names are the keys of :data:`PAPER_TABLE4` (node-variability
    systems).  For the Table 2 / Figure 1 systems use
    :func:`get_trace_setup`, which also returns the fitted workload.
    """
    if name not in PAPER_TABLE4:
        raise KeyError(
            f"unknown node-variability system {name!r}; "
            f"choose from {sorted(PAPER_TABLE4)}"
        )
    config, fan_ctrl = _base_configs()[name]
    row = PAPER_TABLE4[name]
    system = SystemModel(
        name,
        row.n_nodes,
        config,
        variation=ManufacturingVariation(sigma=0.75 * row.cv, **_OUTLIERS),
        environment=ThermalEnvironment(),
        fan_controller=fan_ctrl,
        vid_binning=_TITAN_VIDS if name == "titan" else VidBinning(),
        seed=_SEEDS[name],
    )
    return _calibrate_fleet(system, row.mean_w, row.cv, _WORKLOAD_UTILISATION[name])


def workload_utilisation(name: str) -> float:
    """Mean core-phase utilisation assumed for a Table 3/4 dataset."""
    return _WORKLOAD_UTILISATION[name]


def list_systems() -> list[str]:
    """All registered paper systems (both families)."""
    return list(PAPER_SYSTEMS)


# ----------------------------------------------------------------------
# Trace systems (Table 2 / Figure 1)
# ----------------------------------------------------------------------
def _trace_base(name: str) -> SystemModel:
    """Uncalibrated fleets for the four HPL trace systems."""
    if name == "colosse":
        config = NodeConfig(
            cpu=_cpu(18.0, 95.0, 2800.0), n_cpus=2,
            dram=DramModel.for_capacity(24.0),
            fan=FanModel(max_watts=40.0), other_watts=25.0,
        )
        n_nodes, fan_ref = 960, 300.0
    elif name == "sequoia":
        # Sequoia-25 = Sequoia + Vulcan BlueGene/Q racks; water-cooled,
        # one low-power SoC per node, enormous node count.
        config = NodeConfig(
            cpu=_cpu(14.0, 55.0, 1600.0), n_cpus=1,
            dram=DramModel.for_capacity(16.0),
            nic=NicModel(idle_watts=4.0, peak_watts=5.0),
            fan=FanModel(max_watts=0.0), other_watts=10.0,
        )
        n_nodes, fan_ref = 122880, 100.0
    elif name == "piz-daint":
        config = NodeConfig(
            cpu=_cpu(18.0, 115.0, 2600.0), n_cpus=1,
            gpu=GpuModel(idle_watts=20.0, peak_watts=180.0, nominal_mhz=732.0),
            n_gpus=1,
            dram=DramModel.for_capacity(32.0),
            fan=FanModel(max_watts=0.0),  # chassis blowers not in model
            other_watts=20.0,
        )
        n_nodes, fan_ref = 5272, 250.0
    elif name == "l-csc":
        config = NodeConfig(
            cpu=_cpu(20.0, 120.0, 2300.0), n_cpus=2,
            gpu=GpuModel(idle_watts=18.0, peak_watts=200.0, nominal_mhz=900.0),
            n_gpus=4,
            dram=DramModel.for_capacity(256.0),
            fan=FanModel(max_watts=120.0), other_watts=40.0,
        )
        n_nodes, fan_ref = 56, 1100.0
    else:
        raise KeyError(
            f"unknown trace system {name!r}; choose from {sorted(PAPER_TABLE2)}"
        )
    return SystemModel(
        name,
        n_nodes,
        config,
        variation=ManufacturingVariation(sigma=0.02, **_OUTLIERS),
        fan_controller=_small_fan(config.fan.max_watts, fan_ref),
        seed=_SEEDS[name],
    )


def _fleet_power_curve(system: SystemModel) -> tuple[np.ndarray, np.ndarray]:
    """Tabulate total fleet power vs. utilisation (129-point grid).

    Computing this once per fit — instead of once per objective
    evaluation — is what keeps the Sequoia-scale calibration fast.
    """
    u_curve = np.linspace(0.0, 1.0, 129)
    p_curve = np.array(
        [system.node_total_powers(float(ui)).sum() for ui in u_curve]
    )
    return u_curve, p_curve


def _segment_power_ratios(
    curve: tuple[np.ndarray, np.ndarray], workload: HplWorkload,
    n_grid: int = 4001,
) -> tuple[float, float, float]:
    """(core, first20/core, last20/core) of the noise-free power profile."""
    x = np.linspace(0.0, 1.0, n_grid)
    u = np.asarray(workload.utilisation(x))
    u_curve, p_curve = curve
    p = np.interp(u, u_curve, p_curve)
    core = float(np.trapezoid(p, x))
    first = float(np.trapezoid(p[x <= 0.2], x[x <= 0.2]) / 0.2)
    last = float(np.trapezoid(p[x >= 0.8], x[x >= 0.8]) / 0.2)
    return core, first / core, last / core


def _fit_trace_shape(
    system: SystemModel, name: str, row: Table2Row, cpu_class: bool
) -> HplWorkload:
    """Fit (rho, warmup_boost) to Table 2's segment ratios.

    ``rho`` controls the tail (last-20% ratio) and ``warmup_boost`` the
    start-of-run transient (first-20% ratio); the mild coupling between
    them is handled by two alternation rounds of scalar root finding.
    """
    target_first = row.first20_kw / row.core_kw
    target_last = row.last20_kw / row.core_kw
    warmup_fraction = 0.25
    rho_lo, rho_hi = (1e-5, 0.05) if cpu_class else (0.01, 3.0)
    boost = 0.0
    rho = np.sqrt(rho_lo * rho_hi)
    curve = _fleet_power_curve(system)

    def make(rho_: float, boost_: float) -> HplWorkload:
        return HplWorkload(
            row.runtime_s,
            rho=rho_,
            u_max=0.95,
            u_min=0.02,
            warmup_fraction=warmup_fraction,
            warmup_boost=boost_,
            setup_s=0.02 * row.runtime_s,
            teardown_s=0.01 * row.runtime_s,
            name=f"HPL@{name}",
        )

    for _ in range(2):
        def last_err(log_rho: float) -> float:
            _, _, last = _segment_power_ratios(curve, make(np.exp(log_rho), boost))
            return last - target_last

        lo, hi = np.log(rho_lo), np.log(rho_hi)
        if last_err(lo) * last_err(hi) < 0:
            rho = float(np.exp(brentq(last_err, lo, hi, xtol=1e-4)))
        else:
            # Target flatter than the flattest attainable curve: pin at
            # the flat end (Colosse's 0.12% dip is below model floor).
            rho = rho_lo if abs(last_err(lo)) < abs(last_err(hi)) else rho_hi

        def first_err(boost_: float) -> float:
            _, first, _ = _segment_power_ratios(curve, make(rho, boost_))
            return first - target_first

        b_lo, b_hi = -0.5, 0.8
        if first_err(b_lo) * first_err(b_hi) < 0:
            boost = float(brentq(first_err, b_lo, b_hi, xtol=1e-5))
        else:
            boost = b_lo if abs(first_err(b_lo)) < abs(first_err(b_hi)) else b_hi
    return make(rho, boost)


@functools.lru_cache(maxsize=None)
def get_trace_setup(name: str) -> tuple[SystemModel, HplWorkload]:
    """Calibrated (system, HPL workload) pair for a Table 2 system.

    The returned pair reproduces the paper's runtime, core-phase average
    power and first/last-20% segment averages (Table 2) when run through
    :func:`repro.traces.synth.simulate_run`.
    """
    if name not in PAPER_TABLE2:
        raise KeyError(
            f"unknown trace system {name!r}; choose from {sorted(PAPER_TABLE2)}"
        )
    row = PAPER_TABLE2[name]
    system = _trace_base(name)
    cpu_class = name in ("colosse", "sequoia")
    target_w = kilowatts_to_watts(row.core_kw)
    workload = _fit_trace_shape(system, name, row, cpu_class)
    # Fan power responds non-linearly to the global scale (cube-law in a
    # clipped affine speed), so pinning the absolute level is a short
    # fixed-point loop, with one shape refit at the final scale.
    for round_ in range(2):
        for _ in range(3):
            core_w, _, _ = _segment_power_ratios(
                _fleet_power_curve(system), workload
            )
            system = system.with_power_scale(
                system.power_scale * target_w / core_w
            )
        if round_ == 0:
            workload = _fit_trace_shape(system, name, row, cpu_class)
    return system, workload
