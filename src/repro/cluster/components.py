"""Component-level power models.

Each model maps an activity level (and for processors an operating
point) to power in watts.  They follow the standard decomposition used
in the power-modeling literature the paper cites (Fan et al. [6],
Davis et al. [3]):

    P = P_static(leakage, voltage) + P_dynamic(C, f, V, utilisation)

with dynamic power ``C · f · V²`` scaled by utilisation, and static
(leakage) power growing with voltage.  All models are vectorised over
utilisation so a whole run's utilisation trace is evaluated in one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

__all__ = [
    "ComponentPowerModel",
    "CpuModel",
    "GpuModel",
    "DramModel",
    "NicModel",
    "FanModel",
]


@dataclass(frozen=True)
class ComponentPowerModel:
    """Base affine component model: ``P = idle + util^gamma · (peak − idle)``.

    ``gamma`` models the mild non-linearity of power vs. utilisation
    observed on real servers (Fan et al. report gamma slightly above 1
    for CPUs; DRAM is close to linear).

    Attributes
    ----------
    name:
        Component label used in reports.
    idle_watts:
        Power at zero utilisation.
    peak_watts:
        Power at full utilisation.
    gamma:
        Utilisation exponent; 1.0 gives the plain linear model.
    """

    name: str
    idle_watts: float
    peak_watts: float
    gamma: float = 1.0

    def __post_init__(self) -> None:
        if self.idle_watts < 0:
            raise ValueError(f"{self.name}: idle power must be >= 0")
        if self.peak_watts < self.idle_watts:
            raise ValueError(
                f"{self.name}: peak power {self.peak_watts} below idle "
                f"{self.idle_watts}"
            )
        if self.gamma <= 0:
            raise ValueError(f"{self.name}: gamma must be positive")

    def power(self, utilisation):
        """Power in watts at the given utilisation in ``[0, 1]``.

        Accepts scalars or arrays; out-of-range utilisation is an error
        rather than being clipped, to surface workload-model bugs.
        """
        u = np.asarray(utilisation, dtype=float)
        if np.any(u < -1e-12) or np.any(u > 1.0 + 1e-12):
            raise ValueError(f"{self.name}: utilisation outside [0, 1]")
        u = np.clip(u, 0.0, 1.0)
        p = self.idle_watts + (u ** self.gamma) * (self.peak_watts - self.idle_watts)
        return float(p) if np.ndim(utilisation) == 0 else p

    def with_multiplier(self, factor: float) -> "ComponentPowerModel":
        """Scale both idle and peak power — per-unit manufacturing spread."""
        if factor <= 0:
            raise ValueError("multiplier must be positive")
        return replace(
            self,
            idle_watts=self.idle_watts * factor,
            peak_watts=self.peak_watts * factor,
        )


@dataclass(frozen=True)
class _ProcessorModel(ComponentPowerModel):
    """Shared machinery for CPU/GPU models with explicit f/V dependence.

    ``idle_watts``/``peak_watts`` describe the *nominal* operating point
    (``nominal_mhz``, ``nominal_volts``).  :meth:`power_at` rescales the
    dynamic component by ``(f/f0)·(V/V0)²`` and the static component by
    the leakage-voltage law ``(V/V0)^leakage_exponent``, which captures
    the first-order behaviour of sub-threshold leakage without a full
    device model.
    """

    nominal_mhz: float = 2000.0
    nominal_volts: float = 1.0
    leakage_exponent: float = 2.0
    static_fraction: float = 0.3  # share of peak power that is leakage

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.nominal_mhz <= 0 or self.nominal_volts <= 0:
            raise ValueError(f"{self.name}: nominal f/V must be positive")
        if not (0.0 <= self.static_fraction < 1.0):
            raise ValueError(f"{self.name}: static_fraction must be in [0, 1)")

    def power_at(self, utilisation, freq_mhz, volts):
        """Power at an arbitrary operating point.

        The nominal-point decomposition is::

            P_static0  = min(static_fraction · peak, idle)
            P_dyn_peak = peak − P_static0
            P_dyn_idle = idle − P_static0

        (static power can never exceed the observed idle power, so the
        static share is capped there; this also makes ``power_at`` at
        the nominal point coincide exactly with :meth:`power`), and each
        piece scales with (f, V) as described in the class docstring.
        All three arguments broadcast together, so a fleet's per-unit
        voltages can be evaluated in one call.
        """
        f = np.asarray(freq_mhz, dtype=float)
        v = np.asarray(volts, dtype=float)
        if np.any(f <= 0) or np.any(v <= 0):
            raise ValueError(f"{self.name}: operating point must be positive")
        u = np.asarray(utilisation, dtype=float)
        if np.any(u < -1e-12) or np.any(u > 1.0 + 1e-12):
            raise ValueError(f"{self.name}: utilisation outside [0, 1]")
        u = np.clip(u, 0.0, 1.0)

        static0 = min(self.static_fraction * self.peak_watts, self.idle_watts)
        dyn_peak0 = self.peak_watts - static0
        dyn_idle0 = self.idle_watts - static0

        f_ratio = f / self.nominal_mhz
        v_ratio = v / self.nominal_volts
        dyn_scale = f_ratio * v_ratio**2
        static_scale = v_ratio**self.leakage_exponent

        dyn = dyn_idle0 + (u ** self.gamma) * (dyn_peak0 - dyn_idle0)
        p = static0 * static_scale + dyn * dyn_scale
        scalar = (
            np.ndim(utilisation) == 0
            and np.ndim(freq_mhz) == 0
            and np.ndim(volts) == 0
        )
        return float(p) if scalar else p


@dataclass(frozen=True)
class CpuModel(_ProcessorModel):
    """A CPU socket.  Defaults approximate a ~130 W Xeon E5-class part."""

    name: str = "cpu"
    idle_watts: float = 25.0
    peak_watts: float = 130.0
    gamma: float = 1.1
    nominal_mhz: float = 2700.0
    nominal_volts: float = 1.0


@dataclass(frozen=True)
class GpuModel(_ProcessorModel):
    """A GPU accelerator.  Defaults approximate a ~235 W K20x-class part."""

    name: str = "gpu"
    idle_watts: float = 20.0
    peak_watts: float = 235.0
    gamma: float = 1.0
    nominal_mhz: float = 732.0
    nominal_volts: float = 1.0
    static_fraction: float = 0.25


@dataclass(frozen=True)
class DramModel(ComponentPowerModel):
    """DRAM power: mostly activity-linear with a refresh floor."""

    name: str = "dram"
    idle_watts: float = 4.0
    peak_watts: float = 12.0
    gamma: float = 1.0
    gib: float = 32.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.gib <= 0:
            raise ValueError("dram capacity must be positive")

    @staticmethod
    def for_capacity(gib: float, watts_per_gib_idle: float = 0.125,
                     watts_per_gib_peak: float = 0.375) -> "DramModel":
        """Scale the default module model to a node's total capacity."""
        return DramModel(
            idle_watts=gib * watts_per_gib_idle,
            peak_watts=gib * watts_per_gib_peak,
            gib=gib,
        )


@dataclass(frozen=True)
class NicModel(ComponentPowerModel):
    """Network interface: nearly load-invariant (Fan et al.'s constant
    offset for networking components)."""

    name: str = "nic"
    idle_watts: float = 8.0
    peak_watts: float = 10.0
    gamma: float = 1.0


@dataclass(frozen=True)
class FanModel:
    """Node fan bank following the cube-law fan affinity relation.

    ``P(speed) = max_watts · speed³`` for a normalised speed in
    ``[min_speed, 1]``.  The paper's L-CSC case study measured >100 W of
    node-power spread attributable to automatic fan regulation — more
    than the ASIC variability itself — so fans get a first-class model
    rather than being folded into "other".
    """

    name: str = "fans"
    max_watts: float = 120.0
    min_speed: float = 0.3

    def __post_init__(self) -> None:
        if self.max_watts < 0:
            raise ValueError("fan max power must be >= 0")
        if not (0.0 < self.min_speed <= 1.0):
            raise ValueError("min_speed must be in (0, 1]")

    def power(self, speed):
        """Fan power at a normalised speed in ``[min_speed, 1]``."""
        s = np.asarray(speed, dtype=float)
        if np.any(s < self.min_speed - 1e-12) or np.any(s > 1.0 + 1e-12):
            raise ValueError(
                f"fan speed outside [{self.min_speed}, 1]"
            )
        s = np.clip(s, self.min_speed, 1.0)
        p = self.max_watts * s**3
        return float(p) if np.ndim(speed) == 0 else p
