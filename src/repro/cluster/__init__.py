"""Simulated supercomputer substrate.

The paper measured real machines at eight sites; we rebuild the
machinery those measurements exercised: component-level power models
(:mod:`~repro.cluster.components`), manufacturing variability and
voltage-ID binning (:mod:`~repro.cluster.variability`), fan/thermal
behaviour (:mod:`~repro.cluster.thermal`), DVFS operating points
(:mod:`~repro.cluster.dvfs`), and their composition into nodes
(:mod:`~repro.cluster.node`) and systems (:mod:`~repro.cluster.system`).
:mod:`~repro.cluster.registry` instantiates the nine systems the paper
reports on, calibrated to its published figures.
"""

from repro.cluster.components import (
    ComponentPowerModel,
    CpuModel,
    DramModel,
    FanModel,
    GpuModel,
    NicModel,
)
from repro.cluster.variability import (
    ManufacturingVariation,
    VidBinning,
    assign_vids,
)
from repro.cluster.thermal import FanController, FanPolicy, ThermalEnvironment
from repro.cluster.dvfs import (
    DvfsGovernor,
    OperatingPoint,
    VoltageFrequencyCurve,
    efficiency_search,
)
from repro.cluster.node import Node, NodeConfig
from repro.cluster.shared import SharedInfrastructure
from repro.cluster.system import SystemModel
from repro.cluster.registry import (
    PAPER_SYSTEMS,
    NODE_VARIABILITY_SYSTEMS,
    TRACE_SYSTEMS,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    get_system,
    get_trace_setup,
    list_systems,
    workload_utilisation,
)

__all__ = [
    "ComponentPowerModel",
    "CpuModel",
    "GpuModel",
    "DramModel",
    "NicModel",
    "FanModel",
    "ManufacturingVariation",
    "VidBinning",
    "assign_vids",
    "FanController",
    "FanPolicy",
    "ThermalEnvironment",
    "DvfsGovernor",
    "OperatingPoint",
    "VoltageFrequencyCurve",
    "efficiency_search",
    "Node",
    "NodeConfig",
    "SharedInfrastructure",
    "SystemModel",
    "PAPER_SYSTEMS",
    "NODE_VARIABILITY_SYSTEMS",
    "TRACE_SYSTEMS",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "get_system",
    "get_trace_setup",
    "list_systems",
    "workload_utilisation",
]
