"""Thermal environment and fan control.

The paper's L-CSC case study found that *automatic fan regulation*
causes larger node-to-node power variance than the processors
themselves (>100 W per node), and recommends pinning all fans to the
same speed for measurements.  This module provides both policies:

* :class:`FanPolicy.AUTO` — fan speed tracks node thermal load (a
  first-order model of inlet temperature + dissipated heat), so two
  nodes with identical silicon but different rack positions draw
  measurably different fan power.
* :class:`FanPolicy.PINNED` — all fans at a fixed speed, the paper's
  mitigation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.cluster.components import FanModel

__all__ = ["FanPolicy", "ThermalEnvironment", "FanController"]


class FanPolicy(enum.Enum):
    """How node fans are regulated during a run."""

    AUTO = "auto"
    PINNED = "pinned"


@dataclass(frozen=True)
class ThermalEnvironment:
    """Per-node ambient conditions inside the machine room.

    Inlet temperature varies at two scales: **across racks** (ends of
    cold aisles, hot spots under failing CRAC units — all nodes in a
    rack share this) and **within a rack** (height above the floor).
    The decomposition matters for subset selection: a contiguous
    (single-rack) measurement subset shares one rack draw, so its fan
    power does not average out the way a random subset's does.

    Attributes
    ----------
    nominal_inlet_c:
        Machine-room design inlet temperature.
    inlet_spread_c:
        Total standard deviation of per-node inlet temperature.
    rack_share:
        Fraction of the inlet *variance* carried by the shared rack
        effect (0 = iid nodes, 1 = perfectly rack-correlated).
    rack_size:
        Nodes per rack (consecutive node IDs share a rack).
    max_inlet_c:
        Thermal alarm threshold used by the auto fan law.
    """

    nominal_inlet_c: float = 22.0
    inlet_spread_c: float = 1.5
    rack_share: float = 0.5
    rack_size: int = 32
    max_inlet_c: float = 35.0

    def __post_init__(self) -> None:
        if self.inlet_spread_c < 0:
            raise ValueError("inlet_spread_c must be >= 0")
        if not (0.0 <= self.rack_share <= 1.0):
            raise ValueError("rack_share must be in [0, 1]")
        if self.rack_size < 1:
            raise ValueError("rack_size must be >= 1")
        if self.max_inlet_c <= self.nominal_inlet_c:
            raise ValueError("max_inlet_c must exceed nominal_inlet_c")

    def sample_inlet_temperatures(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw per-node inlet temperatures in °C.

        Consecutive node IDs share racks of :attr:`rack_size`; each
        node's temperature is ``nominal + rack effect + node effect``,
        with the variance split per :attr:`rack_share` and the total
        draw truncated to ±3 total spreads.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        n_racks = (n + self.rack_size - 1) // self.rack_size
        rack_sd = self.inlet_spread_c * np.sqrt(self.rack_share)
        node_sd = self.inlet_spread_c * np.sqrt(1.0 - self.rack_share)
        rack_z = rng.standard_normal(n_racks)
        node_z = rng.standard_normal(n)
        rack_of = np.arange(n) // self.rack_size
        z = rack_sd * rack_z[rack_of] + node_sd * node_z
        z = np.clip(z, -3.0 * self.inlet_spread_c, 3.0 * self.inlet_spread_c) \
            if self.inlet_spread_c > 0 else z
        return self.nominal_inlet_c + z


@dataclass(frozen=True)
class FanController:
    """Maps thermal state to fan speed under a policy.

    Under :class:`FanPolicy.AUTO`, the controller targets a die
    temperature by raising fan speed with both the node's dissipated
    power and its inlet temperature::

        speed = clip(min_speed
                     + k_power · (P_it / P_ref)
                     + k_inlet · (T_inlet − T_nominal) / (T_max − T_nominal),
                     min_speed, 1)

    Under :class:`FanPolicy.PINNED`, it returns ``pinned_speed``
    everywhere — the paper's recommended "lowest speed that maintains
    the thermal limits".
    """

    fan_model: FanModel
    policy: FanPolicy = FanPolicy.AUTO
    pinned_speed: float = 0.45
    k_power: float = 0.55
    k_inlet: float = 0.35
    reference_watts: float = 1000.0

    def __post_init__(self) -> None:
        if not (self.fan_model.min_speed <= self.pinned_speed <= 1.0):
            raise ValueError(
                f"pinned_speed {self.pinned_speed} outside "
                f"[{self.fan_model.min_speed}, 1]"
            )
        if self.k_power < 0 or self.k_inlet < 0:
            raise ValueError("gains must be non-negative")
        if self.reference_watts <= 0:
            raise ValueError("reference_watts must be positive")

    def speed(self, it_watts, inlet_c, env: ThermalEnvironment):
        """Fan speed for the given IT power draw and inlet temperature.

        Vectorised over both arguments (broadcast together).
        """
        if self.policy is FanPolicy.PINNED:
            shape = np.broadcast(np.asarray(it_watts), np.asarray(inlet_c)).shape
            out = np.full(shape, self.pinned_speed)
            return float(out) if out.shape == () else out
        p = np.asarray(it_watts, dtype=float)
        t = np.asarray(inlet_c, dtype=float)
        if np.any(p < 0):
            raise ValueError("IT power must be non-negative")
        headroom = env.max_inlet_c - env.nominal_inlet_c
        s = (
            self.fan_model.min_speed
            + self.k_power * (p / self.reference_watts)
            + self.k_inlet * (t - env.nominal_inlet_c) / headroom
        )
        s = np.clip(s, self.fan_model.min_speed, 1.0)
        return float(s) if np.ndim(it_watts) == 0 and np.ndim(inlet_c) == 0 else s

    def power(self, it_watts, inlet_c, env: ThermalEnvironment):
        """Fan power (W) for the given thermal state."""
        return self.fan_model.power(self.speed(it_watts, inlet_c, env))

    def pinned(self, speed: float | None = None) -> "FanController":
        """Return a pinned copy of this controller (paper's mitigation)."""
        return FanController(
            fan_model=self.fan_model,
            policy=FanPolicy.PINNED,
            pinned_speed=self.pinned_speed if speed is None else speed,
            k_power=self.k_power,
            k_inlet=self.k_inlet,
            reference_watts=self.reference_watts,
        )
