"""Manufacturing variability and voltage-ID (VID) binning.

Two mechanisms from the paper's Sections 1 and 5:

* **Process variation** — imperfections in the substrate and circuit
  paths give each die a different leakage level and therefore a
  different power draw at identical settings.  We model each unit's
  power as the nominal model scaled by a multiplicative factor drawn
  from a lognormal distribution (leakage spread is right-skewed), with
  an optional heavy-tail contamination component producing the outlier
  nodes visible in the paper's Figure 2 histograms.

* **VID binning** — vendors program a per-ASIC Voltage ID: the minimum
  voltage guaranteeing stable operation at the rated frequency.  Worse
  silicon needs a higher voltage, and power grows with ``V²``, so VID is
  both a quality label and a power predictor at default settings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ManufacturingVariation", "VidBinning", "assign_vids"]


@dataclass(frozen=True)
class ManufacturingVariation:
    """Distribution of per-unit power multipliers.

    Attributes
    ----------
    sigma:
        Standard deviation of the log-multiplier for the bulk of units.
        ``sigma=0.02`` yields roughly the 1.5–3% node-level σ/μ the paper
        measures (node-level spread is diluted by load-invariant
        components, then re-amplified by fans).
    outlier_rate:
        Probability that a unit is an outlier (bad thermal paste, a
        degraded VRM, a mis-binned die...).
    outlier_sigma:
        Log-std-dev of the outlier population.
    """

    sigma: float = 0.02
    outlier_rate: float = 0.0
    outlier_sigma: float = 0.10

    def __post_init__(self) -> None:
        if self.sigma < 0 or self.outlier_sigma < 0:
            raise ValueError("sigmas must be non-negative")
        if not (0.0 <= self.outlier_rate < 1.0):
            raise ValueError("outlier_rate must be in [0, 1)")

    def sample_multipliers(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` power multipliers, mean-centred at 1.

        The lognormal is parameterised so that the *median* multiplier
        is 1; the slight positive mean shift (``exp(sigma²/2)``) is the
        physically expected right skew of leakage.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        mult = rng.lognormal(mean=0.0, sigma=self.sigma, size=n)
        if self.outlier_rate > 0:
            is_outlier = rng.random(n) < self.outlier_rate
            n_out = int(is_outlier.sum())
            if n_out:
                # Outliers skew high: |N(0, σ_out)| added in log space.
                bump = np.abs(rng.normal(0.0, self.outlier_sigma, size=n_out))
                mult[is_outlier] *= np.exp(bump)
        return mult

    def expected_cv(self) -> float:
        """Approximate coefficient of variation of the bulk population.

        For small sigma, a lognormal's CV ≈ sigma.  Outliers add a
        contribution this deliberately ignores (the paper, likewise,
        treats outliers as a *violation* of the normal model to be
        stress-tested by bootstrap, not as part of σ/μ planning).
        """
        return float(np.sqrt(np.expm1(self.sigma**2)))


@dataclass(frozen=True)
class VidBinning:
    """Discrete VID grid and the silicon-quality → VID mapping.

    Attributes
    ----------
    vid_values:
        The discrete VIDs the vendor programs, in increasing order.  The
        L-CSC case study plots efficiency against integer VID codes; we
        default to a similar small integer grid.
    base_volts:
        Voltage corresponding to the lowest VID at the rated frequency.
    volts_per_step:
        Voltage increment per VID step.
    """

    vid_values: tuple = (40, 41, 42, 43, 44, 45, 46, 47, 48)
    base_volts: float = 1.100
    volts_per_step: float = 0.00625

    def __post_init__(self) -> None:
        if len(self.vid_values) < 2:
            raise ValueError("need at least two VID bins")
        if list(self.vid_values) != sorted(set(self.vid_values)):
            raise ValueError("vid_values must be strictly increasing")
        if self.base_volts <= 0 or self.volts_per_step <= 0:
            raise ValueError("voltages must be positive")

    def voltage_for_vid(self, vid) -> np.ndarray | float:
        """Default (vendor-programmed) voltage for a VID code."""
        v = np.asarray(vid, dtype=float)
        lo, hi = self.vid_values[0], self.vid_values[-1]
        if np.any(v < lo) or np.any(v > hi):
            raise ValueError(f"vid outside grid [{lo}, {hi}]")
        volts = self.base_volts + (v - lo) * self.volts_per_step
        return float(volts) if np.ndim(vid) == 0 else volts

    def quality_to_vid(self, quality: np.ndarray) -> np.ndarray:
        """Map silicon quality quantiles in ``[0, 1]`` to VID codes.

        Quality 0 is the best die (lowest required voltage).  The grid is
        filled by quantile so the resulting VID histogram is roughly the
        bell shape vendors actually ship (most parts mid-grid).
        """
        q = np.asarray(quality, dtype=float)
        if np.any(q < 0) or np.any(q > 1):
            raise ValueError("quality must be in [0, 1]")
        edges = np.linspace(0.0, 1.0, len(self.vid_values) + 1)[1:-1]
        idx = np.searchsorted(edges, q, side="right")
        return np.asarray(self.vid_values, dtype=np.int64)[idx]


def assign_vids(
    n: int,
    rng: np.random.Generator,
    binning: VidBinning | None = None,
    *,
    concentration: float = 2.0,
) -> np.ndarray:
    """Assign VIDs to ``n`` ASICs.

    Silicon quality is drawn from a symmetric Beta(``concentration``,
    ``concentration``) so that mid-grid VIDs dominate, matching the
    population the L-CSC study sampled.  Returns an int array of VID
    codes.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if concentration <= 0:
        raise ValueError("concentration must be positive")
    binning = binning or VidBinning()
    quality = rng.beta(concentration, concentration, size=n)
    return binning.quality_to_vid(quality)
