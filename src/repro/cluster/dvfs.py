"""Dynamic voltage/frequency scaling: operating points and governors.

Models the mechanisms behind two of the paper's observations:

* The L-CSC team searched the frequency/voltage space and found the most
  efficient Linpack point at **774 MHz / 1.018 V** — below the default
  900 MHz point whose voltage the per-ASIC VID defines
  (:func:`efficiency_search` reproduces that optimisation).
* DVFS governors move power around *within* a run, which interacts
  badly with partial-run measurement windows ("placing the power
  measurement interval in this period, the power measurement could
  completely avoid the period where the processor runs at higher
  frequencies") — :class:`DvfsGovernor` provides the time-varying
  frequency profile that the trace synthesiser consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.cluster.components import _ProcessorModel

__all__ = [
    "OperatingPoint",
    "VoltageFrequencyCurve",
    "DvfsGovernor",
    "efficiency_search",
]


@dataclass(frozen=True)
class OperatingPoint:
    """A (frequency, voltage) pair a processor can be clocked at."""

    freq_mhz: float
    volts: float

    def __post_init__(self) -> None:
        if self.freq_mhz <= 0 or self.volts <= 0:
            raise ValueError("operating point must have positive f and V")


@dataclass(frozen=True)
class VoltageFrequencyCurve:
    """Minimum stable voltage as a function of frequency for one ASIC.

    The stability frontier is modeled as affine in frequency with a
    per-ASIC offset — the silicon-quality term the VID encodes — and a
    hard voltage floor below which the rail cannot scale::

        V_min(f) = max(v0 + slope · (f − f0) + quality_offset,
                       v_floor + quality_offset)

    A requested point below the frontier is unstable (the real L-CSC
    tuning campaign discovered this boundary empirically, by crashing).
    The floor is what creates an *interior* efficiency optimum: below
    the knee, voltage is pinned, so performance-per-watt falls with
    frequency; above it, voltage grows with frequency and the V² term
    dominates — L-CSC's sweet spot at 774 MHz / 1.018 V is exactly the
    knee.
    """

    f0_mhz: float = 774.0
    v0: float = 1.000
    slope_v_per_mhz: float = 0.0004
    quality_offset: float = 0.0
    v_floor: float | None = None  # defaults to v0 (knee at f0)

    def __post_init__(self) -> None:
        if self.f0_mhz <= 0 or self.v0 <= 0:
            raise ValueError("curve anchors must be positive")
        if self.slope_v_per_mhz < 0:
            raise ValueError("slope must be >= 0 (voltage rises with frequency)")
        if self.v_floor is not None and self.v_floor <= 0:
            raise ValueError("v_floor must be positive")

    def min_stable_volts(self, freq_mhz) -> np.ndarray | float:
        """Minimum voltage for stability at ``freq_mhz``."""
        f = np.asarray(freq_mhz, dtype=float)
        if np.any(f <= 0):
            raise ValueError("frequency must be positive")
        floor = self.v0 if self.v_floor is None else self.v_floor
        v = self.v0 + self.slope_v_per_mhz * (f - self.f0_mhz)
        v = np.maximum(v, floor) + self.quality_offset
        return float(v) if np.ndim(freq_mhz) == 0 else v

    def is_stable(self, point: OperatingPoint) -> bool:
        """Whether the ASIC can run at ``point`` without errors."""
        return point.volts >= float(self.min_stable_volts(point.freq_mhz)) - 1e-12


@dataclass(frozen=True)
class DvfsGovernor:
    """A frequency-selection policy over the course of a run.

    Attributes
    ----------
    name:
        Governor label (``"performance"``, ``"powersave"``,
        ``"efficiency"``...).
    profile:
        Callable mapping run fraction in ``[0, 1]`` (vectorised) to a
        frequency multiplier relative to nominal.  The default is the
        constant 1 (performance governor).
    """

    name: str = "performance"
    profile: Callable[[np.ndarray], np.ndarray] | None = None

    def frequency_multiplier(self, run_fraction) -> np.ndarray | float:
        """Frequency multiplier at the given run fraction(s)."""
        x = np.asarray(run_fraction, dtype=float)
        if np.any(x < 0) or np.any(x > 1):
            raise ValueError("run_fraction must be in [0, 1]")
        if self.profile is None:
            out = np.ones_like(x)
        else:
            out = np.asarray(self.profile(x), dtype=float)
            if np.any(out <= 0):
                raise ValueError("governor produced non-positive multiplier")
        return float(out) if np.ndim(run_fraction) == 0 else out

    @staticmethod
    def performance() -> "DvfsGovernor":
        """Constant nominal frequency."""
        return DvfsGovernor(name="performance")

    @staticmethod
    def stepped(breaks: Sequence[float], multipliers: Sequence[float]) -> "DvfsGovernor":
        """Piecewise-constant governor.

        ``breaks`` are run-fraction boundaries (strictly increasing,
        within (0,1)); ``multipliers`` has ``len(breaks) + 1`` entries.
        A ``stepped([0.6], [1.0, 0.8])`` governor drops the clock 20%
        for the final 40% of the run — the shape a window-gaming
        submitter would exploit.
        """
        br = list(breaks)
        mu = list(multipliers)
        if len(mu) != len(br) + 1:
            raise ValueError("need len(multipliers) == len(breaks) + 1")
        if any(not (0.0 < b < 1.0) for b in br) or sorted(set(br)) != br:
            raise ValueError("breaks must be strictly increasing within (0, 1)")
        if any(m <= 0 for m in mu):
            raise ValueError("multipliers must be positive")
        br_arr = np.asarray(br, dtype=float)
        mu_arr = np.asarray(mu, dtype=float)

        def profile(x: np.ndarray) -> np.ndarray:
            # Intervals are closed on the right: a break at 0.6 means
            # the first multiplier applies through x = 0.6 inclusive.
            return mu_arr[np.searchsorted(br_arr, x, side="left")]

        return DvfsGovernor(name=f"stepped[{len(br)}]", profile=profile)


def efficiency_search(
    processor: _ProcessorModel,
    curve: VoltageFrequencyCurve,
    freq_grid_mhz: Sequence[float] | np.ndarray,
    *,
    utilisation: float = 0.95,
    perf_exponent: float = 1.0,
    voltage_margin: float = 0.0,
) -> tuple[OperatingPoint, np.ndarray]:
    """Sweep the frequency grid for the most energy-efficient point.

    For each frequency, the voltage is set to the ASIC's minimum stable
    voltage (plus ``voltage_margin``), performance is taken as
    ``f^perf_exponent`` (Linpack on L-CSC is compute-bound, exponent 1),
    and efficiency is performance per watt.  Returns the best
    :class:`OperatingPoint` and the full efficiency array for the grid —
    the curve the L-CSC team traced by hand.
    """
    freqs = np.asarray(freq_grid_mhz, dtype=float)
    if freqs.size == 0:
        raise ValueError("frequency grid is empty")
    if np.any(freqs <= 0):
        raise ValueError("frequencies must be positive")
    if not (0.0 < utilisation <= 1.0):
        raise ValueError("utilisation must be in (0, 1]")

    volts = np.asarray(curve.min_stable_volts(freqs), dtype=float) + voltage_margin
    power = np.array(
        [processor.power_at(utilisation, f, v) for f, v in zip(freqs, volts)]
    )
    perf = freqs**perf_exponent
    eff = perf / power
    best = int(np.argmax(eff))
    return OperatingPoint(float(freqs[best]), float(volts[best])), eff
