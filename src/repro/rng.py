"""Deterministic random-number management.

Every stochastic component in :mod:`repro` draws from a
:class:`numpy.random.Generator` passed in explicitly or created here.
Experiments must be exactly reproducible, so nothing in the library ever
touches the global NumPy random state.

The helpers wrap :class:`numpy.random.SeedSequence` so that independent
subsystems (e.g. per-node manufacturing variation vs. meter noise) get
*statistically independent* streams derived from one user-facing seed,
and so that adding a new consumer never perturbs the draws seen by
existing ones (spawn keys are namespaced by string label).
"""

from __future__ import annotations

import zlib
from typing import Iterator

import numpy as np

__all__ = ["default_rng", "spawn", "stream", "SeededStreams"]

#: Seed used by experiments when the caller does not supply one.  Fixed so
#: that the benchmark harness regenerates identical tables run-to-run.
DEFAULT_SEED = 0x5C15  # "SC15"


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return a fresh :class:`numpy.random.Generator`.

    ``None`` maps to :data:`DEFAULT_SEED` (not to OS entropy): the library
    is reproducible by default, and callers wanting true entropy can pass
    ``numpy.random.default_rng()`` themselves wherever a generator is
    accepted.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def _label_key(label: str) -> int:
    """Map a string label to a stable 32-bit spawn key."""
    return zlib.crc32(label.encode("utf-8"))


def stream(seed: int | None, label: str) -> np.random.Generator:
    """Return an independent generator for ``label`` derived from ``seed``.

    Two calls with the same ``(seed, label)`` produce identical streams;
    different labels produce independent streams.  Use this when a
    subsystem needs its own noise source that must not shift if another
    subsystem starts consuming random numbers.
    """
    root = np.random.SeedSequence(DEFAULT_SEED if seed is None else seed)
    child = np.random.SeedSequence(
        entropy=root.entropy, spawn_key=(_label_key(label),)
    )
    return np.random.default_rng(child)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` independent child generators from ``rng``."""
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


class SeededStreams:
    """Named family of independent random streams under one seed.

    Examples
    --------
    >>> streams = SeededStreams(seed=7)
    >>> a = streams["manufacturing"]
    >>> b = streams["meter-noise"]
    >>> a is streams["manufacturing"]   # memoised
    True
    """

    def __init__(self, seed: int | None = None) -> None:
        self._seed = DEFAULT_SEED if seed is None else seed
        self._cache: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this family derives from."""
        return self._seed

    def __getitem__(self, label: str) -> np.random.Generator:
        if label not in self._cache:
            self._cache[label] = stream(self._seed, label)
        return self._cache[label]

    def __contains__(self, label: str) -> bool:
        return label in self._cache

    def __iter__(self) -> Iterator[str]:
        return iter(self._cache)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeededStreams(seed={self._seed}, labels={sorted(self._cache)})"
