"""Chaos harness: inject faults end-to-end and audit the recovery.

:func:`run_chaos` wires the whole degraded pipeline together — fault a
simulated run (:mod:`repro.faults.models`), stream it through the
self-healing ingest (:mod:`repro.faults.recovery`), and then put the
result on trial twice:

* **reconciliation** — the emitted
  :class:`~repro.faults.quality.QualityReport` must account for every
  injected fault *exactly*: detected-missing equals injected-missing
  on the cells that arrived, detected-stuck equals injected-stuck,
  and so on, category by category against the injector's
  :class:`~repro.faults.models.FaultLedger`.
* **bounds** — the degraded fleet mean and node σ/μ must sit within
  the error bounds the report itself states, measured against the
  fault-free ground truth of the same run.

Everything is a pure function of ``(run, scenario, seed)``; the
X-FAULT experiment and the ``repro chaos`` CLI are thin shells over
:func:`run_chaos` / :func:`chaos_sweep`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults.models import (
    BurstDropout,
    ClockDrift,
    ClockJitter,
    FaultLedger,
    FaultModel,
    FaultPlan,
    NodeLoss,
    SampleDropout,
    SpikeGlitch,
    StuckAtLastValue,
    TruncatedTail,
    inject_run,
)
from repro.faults.quality import QualityReport
from repro.faults.recovery import (
    FlakySource,
    RecoveryPipeline,
    ResilientIngestLoop,
    RetryPolicy,
)
from repro.stream.ingest import SimClock

__all__ = ["ChaosScenario", "ChaosOutcome", "run_chaos", "chaos_sweep"]


@dataclass(frozen=True)
class ChaosScenario:
    """A named bundle of fault intensities (all default to off)."""

    name: str = "chaos"
    dropout_rate: float = 0.0
    burst_rate: float = 0.0
    burst_mean_ticks: float = 5.0
    stuck_rate: float = 0.0
    stuck_mean_ticks: float = 4.0
    spike_rate: float = 0.0
    spike_factor: float = 8.0
    jitter_sd_s: float = 0.0
    drift_frac: float = 0.0
    node_loss: int = 0
    node_loss_at_frac: float = 0.5
    truncate_frac: float = 0.0
    delivery_failure_rate: float = 0.0

    def models(self) -> list[FaultModel]:
        """The matrix-level fault models this scenario switches on."""
        out: list[FaultModel] = []
        if self.truncate_frac > 0:
            out.append(TruncatedTail(frac=self.truncate_frac))
        if self.drift_frac != 0:
            out.append(ClockDrift(drift_frac=self.drift_frac))
        if self.jitter_sd_s > 0:
            out.append(ClockJitter(sd_s=self.jitter_sd_s))
        if self.stuck_rate > 0:
            out.append(
                StuckAtLastValue(
                    rate=self.stuck_rate, mean_ticks=self.stuck_mean_ticks
                )
            )
        if self.spike_rate > 0:
            out.append(
                SpikeGlitch(rate=self.spike_rate, factor=self.spike_factor)
            )
        if self.node_loss > 0:
            out.append(
                NodeLoss(count=self.node_loss, at_frac=self.node_loss_at_frac)
            )
        if self.burst_rate > 0:
            out.append(
                BurstDropout(
                    rate=self.burst_rate, mean_ticks=self.burst_mean_ticks
                )
            )
        if self.dropout_rate > 0:
            out.append(SampleDropout(rate=self.dropout_rate))
        return out

    def plan(self, seed: int | None) -> FaultPlan:
        """Canonical seeded fault plan for this scenario."""
        return FaultPlan.canonical(self.models(), seed)


@dataclass(frozen=True)
class ChaosOutcome:
    """One chaos trial: degraded estimates, label, and both verdicts."""

    scenario: ChaosScenario
    gap_policy: str
    seed: int | None
    clean_fleet_mean_w: float
    clean_node_cv: float
    report: QualityReport
    ledger: FaultLedger
    reconciliation: dict = field(default_factory=dict)
    retries: int = 0
    batches_abandoned: int = 0

    @property
    def rel_err_fleet_mean(self) -> float:
        """|degraded − clean| / clean for the fleet-mean estimate."""
        return abs(
            self.report.fleet_mean_w - self.clean_fleet_mean_w
        ) / self.clean_fleet_mean_w

    @property
    def rel_err_node_cv(self) -> float:
        """|degraded − clean| / clean for the node σ/μ estimate."""
        return abs(
            self.report.node_cv - self.clean_node_cv
        ) / self.clean_node_cv

    #: Slack for comparing errors against a stated bound of 0.0: a
    #: fault-free run's Welford-accumulated statistics differ from the
    #: direct numpy truth in the last bit or two.
    _BOUND_EPS = 1e-12

    @property
    def mean_within_bound(self) -> bool:
        """Does the fleet-mean error sit inside the stated bound?"""
        bound = self.report.error_bound_fleet_mean()
        return self.rel_err_fleet_mean <= bound + self._BOUND_EPS

    @property
    def cv_within_bound(self) -> bool:
        """Does the σ/μ error sit inside the stated bound?"""
        bound = self.report.error_bound_node_cv()
        return self.rel_err_node_cv <= bound + self._BOUND_EPS

    @property
    def reconciled(self) -> bool:
        """Did every exact-accounting check pass?"""
        return all(self.reconciliation.values())

    def ok(self) -> bool:
        """Reconciled *and* within both stated bounds."""
        return self.reconciled and self.mean_within_bound and self.cv_within_bound

    def to_dict(self) -> dict:
        """JSON-friendly rendering."""
        return {
            "scenario": self.scenario.name,
            "gap_policy": self.gap_policy,
            "seed": self.seed,
            "clean_fleet_mean_w": self.clean_fleet_mean_w,
            "clean_node_cv": self.clean_node_cv,
            "rel_err_fleet_mean": self.rel_err_fleet_mean,
            "rel_err_node_cv": self.rel_err_node_cv,
            "mean_within_bound": self.mean_within_bound,
            "cv_within_bound": self.cv_within_bound,
            "reconciliation": dict(self.reconciliation),
            "retries": self.retries,
            "batches_abandoned": self.batches_abandoned,
            "report": self.report.to_dict(),
            "ledger": self.ledger.to_dict(),
        }

    def lines(self) -> list[str]:
        """Human-readable verdict block."""
        bound_mean = self.report.error_bound_fleet_mean()
        bound_cv = self.report.error_bound_node_cv()
        out = [
            f"scenario {self.scenario.name} (policy={self.gap_policy})",
            f"  fleet mean   {self.report.fleet_mean_w:.2f} W degraded vs "
            f"{self.clean_fleet_mean_w:.2f} W clean "
            f"(err {100 * self.rel_err_fleet_mean:.3f}% <= "
            f"bound {100 * bound_mean:.3f}%: "
            f"{'ok' if self.mean_within_bound else 'VIOLATED'})",
            f"  node sigma/mu {100 * self.report.node_cv:.3f}% degraded vs "
            f"{100 * self.clean_node_cv:.3f}% clean "
            f"(err {100 * self.rel_err_node_cv:.3f}% <= "
            f"bound {100 * bound_cv:.3f}%: "
            f"{'ok' if self.cv_within_bound else 'VIOLATED'})",
            f"  reconciliation {'exact' if self.reconciled else 'FAILED'} "
            + "("
            + ", ".join(
                f"{k}={'ok' if v else 'FAIL'}"
                for k, v in self.reconciliation.items()
            )
            + ")",
        ]
        out.extend("  " + line for line in self.report.lines())
        return out


def _clean_truth(run, node_indices) -> tuple[float, float]:
    """Fault-free fleet mean and node sigma/mu over the core phase."""
    t0_s, t1_s = run.core_window
    _, watts = run.node_power_matrix(t0_s, t1_s, node_indices)
    node_means = watts.mean(axis=0)
    fleet_mean_w = float(node_means.mean())
    node_cv = float(node_means.std(ddof=1)) / fleet_mean_w
    return fleet_mean_w, node_cv


def run_chaos(
    run,
    scenario: ChaosScenario,
    *,
    gap_policy: str = "hold",
    seed: int | None = None,
    ticks_per_batch: int = 60,
    node_indices: np.ndarray | None = None,
    original_level: int = 2,
    quarantine_after: int = 30,
    retry_policy: RetryPolicy | None = None,
) -> ChaosOutcome:
    """Inject ``scenario`` into ``run``, recover, and audit the label.

    Pure function of its arguments: the same ``(run, scenario, seed)``
    produces a bit-identical :class:`ChaosOutcome` on every call.
    """
    clean_mean_w, clean_cv = _clean_truth(run, node_indices)
    injection = inject_run(run, scenario.plan(seed), node_indices=node_indices)
    source = injection.batches(ticks_per_batch)
    if scenario.delivery_failure_rate > 0:
        source = FlakySource(
            source,
            failure_rate=scenario.delivery_failure_rate,
            seed=seed,
            label=f"chaos:{scenario.name}:delivery",
        )
    pipeline = RecoveryPipeline(
        gap_policy=gap_policy,
        quarantine_after=quarantine_after,
        original_level=original_level,
    )
    loop = ResilientIngestLoop(
        source,
        pipeline.observe,
        clock=SimClock(run.dt),
        policy=retry_policy,
        seed=seed,
    )
    loop.run()
    report = pipeline.finalize(
        expected_ticks=injection.ledger.n_ticks_planned,
        batches_retried=loop.retries,
        batches_abandoned=loop.batches_abandoned,
    )
    # Which delivered ticks actually arrived (abandoned batches never
    # reached the pipeline)?  Needed to reconcile exactly: the report
    # can only account for faults on cells it was shown.
    arrived = np.ones(injection.n_ticks, dtype=bool)
    for batch in loop.abandoned:
        lo = int(np.searchsorted(injection.times, batch.t0_s))
        arrived[lo: lo + batch.n_ticks] = False
    ledger = injection.ledger
    reconciliation = {
        "missing": report.samples_missing
        == int(injection.missing_mask[arrived].sum()),
        "stuck": report.samples_stuck
        == int(injection.stuck_mask[arrived].sum()),
        "spiked": report.samples_spiked
        == int(injection.spike_mask[arrived].sum()),
        "never_arrived": report.samples_never_arrived
        == ledger.samples_truncated + loop.samples_abandoned,
        "repairs": report.samples_repaired
        == report.samples_missing + report.samples_flagged,
        "quarantine_covers_lost": set(ledger.nodes_lost)
        <= set(report.nodes_quarantined),
    }
    return ChaosOutcome(
        scenario=scenario,
        gap_policy=gap_policy,
        seed=seed,
        clean_fleet_mean_w=clean_mean_w,
        clean_node_cv=clean_cv,
        report=report,
        ledger=ledger,
        reconciliation=reconciliation,
        retries=loop.retries,
        batches_abandoned=loop.batches_abandoned,
    )


def chaos_sweep(
    run,
    scenarios: list[ChaosScenario],
    *,
    gap_policy: str = "hold",
    seed: int | None = None,
    **kwargs,
) -> list[ChaosOutcome]:
    """Run several scenarios against one run (same seed discipline)."""
    return [
        run_chaos(run, sc, gap_policy=gap_policy, seed=seed, **kwargs)
        for sc in scenarios
    ]
