"""Deterministic fault models over *wire frames*.

:mod:`repro.faults.models` corrupts the sample matrix before it is
serialised; this module corrupts the **transport**: whole frames of the
:mod:`repro.wire` protocol are dropped (collector outage, UDP loss) or
bit-flipped in flight (link noise).  The same two contracts hold:

Determinism
    Each model draws from its own :mod:`repro.rng` stream, namespaced
    by position and label inside the :class:`WireFaultPlan`, so a plan
    applied twice to the same frame sequence mangles bit-identical
    bytes.

Disjointness
    A frame is claimed by at most one model — a dropped frame is never
    also corrupted — so the :class:`WireLedger` is exact and the wire
    chaos harness (:mod:`repro.wire.chaos`) can reconcile the
    :class:`~repro.wire.session.WireReader`'s CRC/gap counters against
    it with ``==``, no tolerances.

Corruption flips bytes strictly *after* the fixed header, so the frame
still announces a plausible header and its declared extent: the parser
must detect the damage through the CRC-32 trailer, producing exactly
one ``corrupt`` event per corrupted frame.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.rng import stream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    # repro.wire depends on this module at runtime (wire.chaos builds
    # WireFaultPlans), so the reverse edge stays annotation-only.
    from repro.wire.session import WireFrame

__all__ = [
    "WireLedger",
    "WireDelivery",
    "WireFaultModel",
    "FrameDrop",
    "FrameCorruption",
    "WireFaultPlan",
]


@dataclass(frozen=True)
class WireLedger:
    """Exact accounting of every frame-level fault injected.

    The transport side of the reconciliation test: the
    :class:`~repro.wire.session.WireReader` must explain every one of
    these counts through its CRC and sequence-gap counters.
    """

    frames_sent: int
    n_nodes: int
    frames_dropped: int = 0
    frames_corrupted: int = 0
    ticks_dropped: int = 0
    ticks_corrupted: int = 0
    bytes_sent: int = 0
    bytes_corrupted: int = 0
    dropped_seqs: tuple[int, ...] = ()
    corrupted_seqs: tuple[int, ...] = ()

    @property
    def frames_delivered(self) -> int:
        """Frames that reach the reader with a valid CRC."""
        return self.frames_sent - self.frames_dropped - self.frames_corrupted

    @property
    def frames_lost(self) -> int:
        """Frames whose samples never decode (dropped + corrupted)."""
        return self.frames_dropped + self.frames_corrupted

    @property
    def ticks_lost(self) -> int:
        """Ticks whose rows the reader must deliver as NaN gaps."""
        return self.ticks_dropped + self.ticks_corrupted

    @property
    def samples_lost(self) -> int:
        """Scalar samples lost to the wire (``ticks_lost * n_nodes``)."""
        return self.ticks_lost * self.n_nodes

    def to_dict(self) -> dict:
        """JSON-friendly rendering."""
        return {
            "frames_sent": self.frames_sent,
            "n_nodes": self.n_nodes,
            "frames_dropped": self.frames_dropped,
            "frames_corrupted": self.frames_corrupted,
            "ticks_dropped": self.ticks_dropped,
            "ticks_corrupted": self.ticks_corrupted,
            "bytes_sent": self.bytes_sent,
            "bytes_corrupted": self.bytes_corrupted,
            "dropped_seqs": list(self.dropped_seqs),
            "corrupted_seqs": list(self.corrupted_seqs),
        }


@dataclass(frozen=True)
class WireDelivery:
    """What the lossy link delivers, plus the exact record of the loss.

    ``chunks`` holds the surviving byte strings in transmission order —
    dropped frames are simply absent, corrupted frames are present but
    mangled.  Feed them to a :class:`~repro.wire.session.WireReader`
    and reconcile its counters against ``ledger``.
    """

    chunks: tuple[bytes, ...]
    ledger: WireLedger

    @property
    def data(self) -> bytes:
        """The delivered stream as one contiguous byte string."""
        return b"".join(self.chunks)


class _WireState:
    """Mutable scratch threaded through a plan's models."""

    def __init__(self, frames: list[WireFrame]) -> None:
        self.frames = list(frames)
        self.chunks: list[bytes | None] = [f.data for f in frames]
        # Frames already claimed by some model (disjointness contract).
        self.claimed = np.zeros(len(frames), dtype=bool)
        self.ledger = WireLedger(
            frames_sent=len(frames),
            n_nodes=frames[0].n_nodes if frames else 0,
            bytes_sent=sum(f.n_bytes for f in frames),
        )

    def tally(self, **updates) -> None:
        """Fold count updates into the ledger."""
        self.ledger = replace(self.ledger, **updates)


class WireFaultModel:
    """Base class: one named, seeded frame-level fault transform."""

    #: Distinguishes two instances of the same model in one plan.
    tag: str = ""

    @property
    def label(self) -> str:
        """Stable stream label for this model."""
        base = type(self).__name__
        return f"{base}:{self.tag}" if self.tag else base

    def _apply(self, state: _WireState, rng: np.random.Generator) -> None:
        raise NotImplementedError  # pragma: no cover - abstract


@dataclass(frozen=True)
class FrameDrop(WireFaultModel):
    """Drop each unclaimed frame independently with probability ``rate``.

    A dropped frame never reaches the reader: its sequence number is a
    gap, and its rows must come back as NaN.
    """

    rate: float
    tag: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"drop rate must be in [0, 1], got {self.rate}")

    def _apply(self, state: _WireState, rng: np.random.Generator) -> None:
        hit = rng.random(len(state.frames)) < self.rate
        hit &= ~state.claimed
        state.claimed |= hit
        dropped = [
            f for f, h in zip(state.frames, hit) if h
        ]
        for f in dropped:
            state.chunks[f.seq - state.frames[0].seq] = None
        state.tally(
            frames_dropped=state.ledger.frames_dropped + len(dropped),
            ticks_dropped=state.ledger.ticks_dropped
            + sum(f.n_ticks for f in dropped),
            dropped_seqs=tuple(
                sorted(
                    state.ledger.dropped_seqs
                    + tuple(f.seq for f in dropped)
                )
            ),
        )


@dataclass(frozen=True)
class FrameCorruption(WireFaultModel):
    """XOR random bytes of each hit frame's body, after the header.

    Each unclaimed frame is hit independently with probability
    ``rate``; a hit frame gets ``flips`` of its post-header bytes
    (payload or CRC trailer) XOR-ed with seeded non-zero masks.  The
    header survives, so the parser reads a plausible frame and must
    reject it on the CRC — the detection path under test.  In the
    astronomically unlikely event the mangled body still matches its
    CRC, one extra deterministic flip is applied.
    """

    rate: float
    flips: int = 4
    tag: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(
                f"corruption rate must be in [0, 1], got {self.rate}"
            )
        if self.flips < 1:
            raise ValueError(f"flips must be >= 1, got {self.flips}")

    def _apply(self, state: _WireState, rng: np.random.Generator) -> None:
        import struct
        import zlib

        from repro.wire.framing import HEADER_LEN

        hit = rng.random(len(state.frames)) < self.rate
        hit &= ~state.claimed
        state.claimed |= hit
        n_corrupt = 0
        ticks_corrupt = 0
        bytes_corrupt = 0
        seqs: list[int] = []
        base_seq = state.frames[0].seq if state.frames else 0
        for frame, h in zip(state.frames, hit):
            if not h:
                continue
            data = bytearray(frame.data)
            body_len = len(data) - HEADER_LEN
            n_flips = min(self.flips, body_len)
            offsets = HEADER_LEN + rng.choice(
                body_len, size=n_flips, replace=False
            )
            masks = rng.integers(1, 256, size=n_flips, dtype=np.uint8)
            for off, mask in zip(offsets, masks):
                data[int(off)] ^= int(mask)
            payload_end = len(data) - 4
            stored = struct.unpack_from("<I", data, payload_end)[0]
            if zlib.crc32(bytes(data[:payload_end])) & 0xFFFFFFFF == stored:
                data[HEADER_LEN] ^= 0xFF  # pragma: no cover - 2**-32
            state.chunks[frame.seq - base_seq] = bytes(data)
            n_corrupt += 1
            ticks_corrupt += frame.n_ticks
            bytes_corrupt += int(n_flips)
            seqs.append(frame.seq)
        state.tally(
            frames_corrupted=state.ledger.frames_corrupted + n_corrupt,
            ticks_corrupted=state.ledger.ticks_corrupted + ticks_corrupt,
            bytes_corrupted=state.ledger.bytes_corrupted + bytes_corrupt,
            corrupted_seqs=tuple(
                sorted(state.ledger.corrupted_seqs + tuple(seqs))
            ),
        )


@dataclass(frozen=True)
class WireFaultPlan:
    """An ordered, seeded composition of frame-level fault models.

    Mirrors :class:`~repro.faults.models.FaultPlan`: each model gets an
    independent stream derived from ``seed`` and its position + label,
    and models only touch frames no earlier model claimed.
    """

    models: tuple[WireFaultModel, ...]
    seed: int

    def __post_init__(self) -> None:
        labels = [f"{i}:{m.label}" for i, m in enumerate(self.models)]
        if len(set(labels)) != len(labels):  # pragma: no cover - by construction
            raise ValueError("wire fault model labels must be unique")

    @staticmethod
    def canonical(
        models: list[WireFaultModel], seed: int
    ) -> "WireFaultPlan":
        """Order models deterministically: corruption before drops.

        Corruption first means a frame that would have been mangled
        *and* lost is counted as corrupted — the reader sees neither
        either way, but the ledger category is fixed by construction.
        """
        rank = {FrameCorruption: 0, FrameDrop: 1}
        ordered = sorted(
            models, key=lambda m: (rank.get(type(m), len(rank)), m.label)
        )
        return WireFaultPlan(models=tuple(ordered), seed=seed)

    def apply(self, frames: list[WireFrame]) -> WireDelivery:
        """Mangle a frame sequence; returns delivery + exact ledger."""
        if not frames:
            raise ValueError("cannot fault an empty frame sequence")
        seqs = [f.seq for f in frames]
        if seqs != list(range(seqs[0], seqs[0] + len(seqs))):
            raise ValueError(
                "frames must arrive in consecutive sequence order"
            )
        state = _WireState(frames)
        for i, model in enumerate(self.models):
            rng = stream(self.seed, f"wire-faults:{i}:{model.label}")
            model._apply(state, rng)
        return WireDelivery(
            chunks=tuple(c for c in state.chunks if c is not None),
            ledger=state.ledger,
        )
