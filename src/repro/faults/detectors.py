"""Correlated-excursion detectors for the delivered telemetry stream.

The per-cell detectors in :mod:`repro.faults.recovery` catch faults
that betray themselves one cell at a time — a NaN, a latch, a glitch.
The pathologies in :mod:`repro.faults.pathology` do not: a duty-cycled
meter repeats *whole fleet ticks*, an entropy offset moves *every node
together*, and device spread is a *persistent* per-node shift that no
single sample can reveal.  These detectors consume the same delivered
:class:`~repro.stream.ingest.SampleBatch` stream and look for exactly
that correlated structure:

* :class:`AliasingDetector` — counts exact fleet-mean repeats, estimates
  the meter period from the stale-run structure, sweeps candidate
  periods with a phase comb (window-sweep re-averaging), and estimates
  the aliasing bias as *raw average − fresh-samples-only average*.
* :class:`PersistentOffsetDetector` — per-segment per-node power ratios
  to the fleet mean; a node whose ratio keeps the same sign in nearly
  every segment carries a persistent offset.  Reports the cross-node
  spread of those persistent ratios.
* :class:`EntropyDriftDetector` — compares fleet-mean jumps at
  hypothesised segment boundaries against typical interior tick steps;
  a common-mode per-segment offset makes boundary jumps anomalously
  large.

All three are deterministic, pure functions of the observed stream —
no RNG, no wall clock — so detection verdicts replay bit-identically.
They are deliberately decoupled from :mod:`repro.stream.monitor`: the
:class:`~repro.stream.monitor.ComplianceMonitor` accepts any object
with this ``observe``/``verdict`` shape as a plug-in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "AliasingDetector",
    "PersistentOffsetDetector",
    "EntropyDriftDetector",
    "CorrelatedDetectors",
    "AliasingVerdict",
    "OffsetVerdict",
    "EntropyVerdict",
    "CorrelatedVerdict",
]


def _fleet_means(watts: np.ndarray) -> np.ndarray:
    """NaN-tolerant per-tick fleet means (NaN when a whole tick is out)."""
    valid = np.isfinite(watts)
    counts = valid.sum(axis=1)
    sums = np.where(valid, watts, 0.0).sum(axis=1)
    return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)


@dataclass(frozen=True)
class AliasingVerdict:
    """Beat-frequency / stale-hold evidence in the fleet-mean series."""

    suspected: bool
    repeat_frac: float
    stale_runs: int
    period_est_ticks: float
    best_period_ticks: int
    phase_spread_w: float
    bias_w_est: float

    def to_dict(self) -> dict:
        """JSON-friendly rendering."""
        return {
            "suspected": self.suspected,
            "repeat_frac": self.repeat_frac,
            "stale_runs": self.stale_runs,
            "period_est_ticks": self.period_est_ticks,
            "best_period_ticks": self.best_period_ticks,
            "phase_spread_w": self.phase_spread_w,
            "bias_w_est": self.bias_w_est,
        }


@dataclass(frozen=True)
class OffsetVerdict:
    """Persistent per-node offset evidence."""

    suspected: bool
    persistent_nodes: int
    n_nodes: int
    persistent_cv: float

    def to_dict(self) -> dict:
        """JSON-friendly rendering."""
        return {
            "suspected": self.suspected,
            "persistent_nodes": self.persistent_nodes,
            "n_nodes": self.n_nodes,
            "persistent_cv": self.persistent_cv,
        }


@dataclass(frozen=True)
class EntropyVerdict:
    """Common-mode segment-boundary jump evidence."""

    suspected: bool
    boundary_jump_w: float
    interior_step_w: float
    jump_ratio: float

    def to_dict(self) -> dict:
        """JSON-friendly rendering."""
        return {
            "suspected": self.suspected,
            "boundary_jump_w": self.boundary_jump_w,
            "interior_step_w": self.interior_step_w,
            "jump_ratio": self.jump_ratio,
        }


@dataclass(frozen=True)
class CorrelatedVerdict:
    """Combined verdict of the three correlated-excursion detectors."""

    aliasing: AliasingVerdict
    offset: OffsetVerdict
    entropy: EntropyVerdict

    @property
    def any_suspected(self) -> bool:
        """Did any detector flag correlated structure?"""
        return (
            self.aliasing.suspected
            or self.offset.suspected
            or self.entropy.suspected
        )

    def to_dict(self) -> dict:
        """JSON-friendly rendering."""
        return {
            "any_suspected": self.any_suspected,
            "aliasing": self.aliasing.to_dict(),
            "offset": self.offset.to_dict(),
            "entropy": self.entropy.to_dict(),
        }

    def lines(self) -> list[str]:
        """Human-readable verdict block."""
        a, o, e = self.aliasing, self.offset, self.entropy
        return [
            "detect aliasing "
            + ("SUSPECTED" if a.suspected else "clear")
            + f" (repeat {100 * a.repeat_frac:.1f}%, "
            f"period ~{a.period_est_ticks:.1f} ticks, "
            f"comb best {a.best_period_ticks}, "
            f"bias est {a.bias_w_est:+.2f} W)",
            "detect node-offset "
            + ("SUSPECTED" if o.suspected else "clear")
            + f" ({o.persistent_nodes}/{o.n_nodes} persistent, "
            f"cv {100 * o.persistent_cv:.2f}%)",
            "detect entropy-drift "
            + ("SUSPECTED" if e.suspected else "clear")
            + f" (boundary jump {e.boundary_jump_w:.2f} W vs "
            f"interior {e.interior_step_w:.2f} W, x{e.jump_ratio:.1f})",
        ]


class AliasingDetector:
    """Detect duty-cycled (sample-and-hold) meters from repeat structure.

    A held reading repeats the previous *fleet* tick exactly — real
    power telemetry essentially never does.  The detector counts exact
    consecutive repeats of the fleet-mean series, estimates the meter
    period as ``ticks / stale-run count``, and re-averages with a phase
    comb: for each candidate period the per-phase means of the series
    are computed, and the best candidate is the one whose phases spread
    the most (the beat signature of a duty cycle).  The bias estimate
    is ``mean(all ticks) − mean(fresh ticks only)`` — what window-sweep
    re-averaging would remove.
    """

    def __init__(
        self,
        *,
        repeat_threshold_frac: float = 0.05,
        min_stale_runs: int = 3,
        max_period_ticks: int = 64,
    ) -> None:
        if not (0.0 < repeat_threshold_frac < 1.0):
            raise ValueError("repeat_threshold_frac must be in (0, 1)")
        if max_period_ticks < 2:
            raise ValueError("max_period_ticks must be >= 2")
        self.repeat_threshold_frac = float(repeat_threshold_frac)
        self.min_stale_runs = int(min_stale_runs)
        self.max_period_ticks = int(max_period_ticks)

    def verdict(self, series_w: np.ndarray) -> AliasingVerdict:
        """Judge a fleet-mean-per-tick series (NaNs tolerated)."""
        v = np.asarray(series_w, dtype=float)
        finite = np.isfinite(v)
        prev, curr = v[:-1], v[1:]
        both = finite[:-1] & finite[1:]
        rep_pair = both & (prev == curr)
        n_pairs = int(both.sum())
        repeat_frac = float(rep_pair.sum()) / max(1, n_pairs)
        # A stale run starts where a repeat pair follows a non-repeat.
        starts = rep_pair & ~np.concatenate(([False], rep_pair[:-1]))
        stale_runs = int(starts.sum())
        period_est = v.size / stale_runs if stale_runs > 0 else 0.0
        # Fresh ticks: finite and not a repeat of their predecessor.
        stale = np.concatenate(([False], rep_pair))
        fresh = finite & ~stale
        raw_mean = float(v[finite].mean()) if finite.any() else 0.0
        fresh_mean = float(v[fresh].mean()) if fresh.any() else raw_mean
        bias_w_est = raw_mean - fresh_mean
        best_period, best_spread = 0, 0.0
        max_p = min(self.max_period_ticks, max(2, v.size // 4))
        for p in range(2, max_p + 1):
            spreads = []
            for phase in range(p):
                comb = v[phase::p]
                comb = comb[np.isfinite(comb)]
                if comb.size:
                    spreads.append(float(comb.mean()))
            if len(spreads) >= 2:
                spread = max(spreads) - min(spreads)
                if spread > best_spread:
                    best_period, best_spread = p, spread
        suspected = (
            repeat_frac >= self.repeat_threshold_frac
            and stale_runs >= self.min_stale_runs
        )
        return AliasingVerdict(
            suspected=suspected,
            repeat_frac=repeat_frac,
            stale_runs=stale_runs,
            period_est_ticks=period_est,
            best_period_ticks=best_period,
            phase_spread_w=best_spread,
            bias_w_est=bias_w_est,
        )


class PersistentOffsetDetector:
    """Detect persistent per-node offsets from segment-wise ratios.

    Each segment yields one power ratio per node (node segment mean over
    fleet segment mean).  A node is *persistent* when its mean ratio
    sits at least ``min_offset_frac`` from 1 **and** the ratio keeps the
    same sign in at least ``persist_frac`` of the segments it appears
    in.  ``persistent_cv`` — the cross-node standard deviation of the
    mean ratios — measures how much of the fleet's node CV is carried by
    such standing offsets; device spread inflates it directly, which is
    why the suspicion threshold is on the CV, not on the node count.
    """

    def __init__(
        self,
        *,
        min_offset_frac: float = 0.01,
        persist_frac: float = 0.8,
        cv_threshold: float = 0.02,
    ) -> None:
        if min_offset_frac <= 0.0:
            raise ValueError("min_offset_frac must be positive")
        if not (0.5 <= persist_frac <= 1.0):
            raise ValueError("persist_frac must be in [0.5, 1]")
        if cv_threshold <= 0.0:
            raise ValueError("cv_threshold must be positive")
        self.min_offset_frac = float(min_offset_frac)
        self.persist_frac = float(persist_frac)
        self.cv_threshold = float(cv_threshold)

    def verdict(self, ratios: np.ndarray) -> OffsetVerdict:
        """Judge a ``(n_segments, n_nodes)`` matrix of node/fleet ratios."""
        r = np.asarray(ratios, dtype=float)
        if r.ndim != 2 or r.shape[0] < 2:
            return OffsetVerdict(
                suspected=False,
                persistent_nodes=0,
                n_nodes=0 if r.ndim != 2 else r.shape[1],
                persistent_cv=0.0,
            )
        finite = np.isfinite(r)
        seen = finite.sum(axis=0)
        dev = np.where(finite, r - 1.0, 0.0)
        mean_ratio = 1.0 + dev.sum(axis=0) / np.maximum(seen, 1)
        pos = (finite & (dev > 0.0)).sum(axis=0)
        neg = (finite & (dev < 0.0)).sum(axis=0)
        consistent = (
            np.maximum(pos, neg) >= self.persist_frac * np.maximum(seen, 1)
        )
        offset = np.abs(mean_ratio - 1.0) >= self.min_offset_frac
        persistent = consistent & offset & (seen >= 2)
        judged = mean_ratio[seen >= 2]
        cv = float(judged.std(ddof=1)) if judged.size >= 2 else 0.0
        return OffsetVerdict(
            suspected=cv >= self.cv_threshold,
            persistent_nodes=int(persistent.sum()),
            n_nodes=int(r.shape[1]),
            persistent_cv=cv,
        )


class EntropyDriftDetector:
    """Detect common-mode per-segment offsets from boundary jumps.

    An entropy-dependent offset is constant within a segment and steps
    at segment boundaries, so the fleet-mean series jumps anomalously
    exactly there.  The detector compares the *median* absolute
    fleet-mean step at hypothesised boundaries (every ``segment_ticks``)
    against the median *non-zero* interior step.  Medians on both
    sides: a genuine per-segment offset moves *every* boundary, while a
    workload phase transition (an HPL tail-off step) that happens to
    coincide with one boundary moves only that one — a mean would be
    dragged over the threshold by that single coincidence, a median is
    not.  Interior steps of exactly zero are excluded so a stacked
    aliasing meter's held ticks do not deflate the baseline.
    """

    def __init__(
        self, *, segment_ticks: int = 60, jump_ratio_threshold: float = 3.0
    ) -> None:
        if segment_ticks < 2:
            raise ValueError("segment_ticks must be >= 2")
        if jump_ratio_threshold <= 1.0:
            raise ValueError("jump_ratio_threshold must be > 1")
        self.segment_ticks = int(segment_ticks)
        self.jump_ratio_threshold = float(jump_ratio_threshold)

    def verdict(self, series_w: np.ndarray) -> EntropyVerdict:
        """Judge a fleet-mean-per-tick series (NaNs tolerated)."""
        v = np.asarray(series_w, dtype=float)
        steps = np.abs(np.diff(v))
        ok = np.isfinite(steps)
        # Step i is v[i+1] − v[i]; it crosses a boundary when i+1 is a
        # segment start.
        at_boundary = (np.arange(1, v.size) % self.segment_ticks) == 0
        jumps = steps[ok & at_boundary]
        interior = steps[ok & ~at_boundary]
        interior = interior[interior > 0.0]
        if jumps.size < 2 or interior.size < 2:
            return EntropyVerdict(
                suspected=False,
                boundary_jump_w=0.0,
                interior_step_w=0.0,
                jump_ratio=0.0,
            )
        jump_w = float(np.median(jumps))
        step_w = float(np.median(interior))
        ratio = jump_w / step_w if step_w > 0 else float("inf")
        return EntropyVerdict(
            suspected=ratio >= self.jump_ratio_threshold,
            boundary_jump_w=jump_w,
            interior_step_w=step_w,
            jump_ratio=ratio,
        )


class CorrelatedDetectors:
    """Streaming front end bundling the three correlated detectors.

    Feed delivered batches through :meth:`observe` (duck-typed: anything
    with ``watts`` shaped ``(n_ticks, n_nodes)`` works, so both
    :class:`~repro.stream.ingest.SampleBatch` and raw matrices plug in),
    then call :meth:`verdict`.  State kept is O(ticks) for the fleet
    series plus O(segments × nodes) for the ratio matrix — never the
    full power matrix.
    """

    def __init__(
        self,
        *,
        aliasing: AliasingDetector | None = None,
        offset: PersistentOffsetDetector | None = None,
        entropy: EntropyDriftDetector | None = None,
        segment_ticks: int = 60,
    ) -> None:
        self.aliasing = aliasing if aliasing is not None else AliasingDetector()
        self.offset = (
            offset if offset is not None else PersistentOffsetDetector()
        )
        self.entropy = (
            entropy
            if entropy is not None
            else EntropyDriftDetector(segment_ticks=segment_ticks)
        )
        self.segment_ticks = int(segment_ticks)
        self._fleet_chunks: list[np.ndarray] = []
        # Rows of the segment currently filling; a segment is always
        # reduced in one fixed-shape call, so verdicts are exactly
        # invariant to how the stream was chunked into batches.
        self._seg_rows: list[np.ndarray] = []
        self._ratio_rows: list[np.ndarray] = []
        self.ticks_seen = 0

    @classmethod
    def for_run(
        cls, *, dt_s: float, segment_ticks: int = 60
    ) -> "CorrelatedDetectors":
        """Detectors for a tick-driven run (``dt_s`` kept for symmetry)."""
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        return cls(segment_ticks=max(2, segment_ticks))

    @staticmethod
    def _ratio_row(segment_watts: np.ndarray) -> np.ndarray | None:
        """One node/fleet ratio row from a full segment matrix."""
        valid = np.isfinite(segment_watts)
        counts = valid.sum(axis=0)
        sums = np.where(valid, segment_watts, 0.0).sum(axis=0)
        node_mean_w = sums / np.maximum(counts, 1)
        observed = counts > 0
        if not observed.any():
            return None
        fleet_w = float(node_mean_w[observed].mean())
        if fleet_w <= 0:
            return None
        row = np.full(node_mean_w.shape, np.nan)
        row[observed] = node_mean_w[observed] / fleet_w
        return row

    def observe(self, batch) -> None:
        """Fold one delivered batch into the detector state."""
        watts = np.asarray(batch.watts, dtype=float)
        self._fleet_chunks.append(_fleet_means(watts))
        self.ticks_seen += int(watts.shape[0])
        lo = 0
        n_ticks = watts.shape[0]
        while lo < n_ticks:
            filled = sum(r.shape[0] for r in self._seg_rows)
            hi = min(n_ticks, lo + self.segment_ticks - filled)
            self._seg_rows.append(watts[lo:hi].copy())
            if filled + (hi - lo) >= self.segment_ticks:
                row = self._ratio_row(np.concatenate(self._seg_rows))
                if row is not None:
                    self._ratio_rows.append(row)
                self._seg_rows = []
            lo = hi

    def verdict(self) -> CorrelatedVerdict:
        """Judge everything observed so far (pure; observe can continue)."""
        series = (
            np.concatenate(self._fleet_chunks)
            if self._fleet_chunks
            else np.empty(0)
        )
        rows = list(self._ratio_rows)
        # Include the partial trailing segment without consuming it.
        if self._seg_rows:
            partial = np.concatenate(self._seg_rows)
            if partial.shape[0] >= 2:
                row = self._ratio_row(partial)
                if row is not None:
                    rows.append(row)
        ratios = (
            np.stack(rows) if rows else np.empty((0, 0))
        )
        return CorrelatedVerdict(
            aliasing=self.aliasing.verdict(series),
            offset=self.offset.verdict(ratios),
            entropy=self.entropy.verdict(series),
        )
