"""Data-quality provenance for fault-degraded aggregates.

A degraded measurement is only honest if it says *how* degraded it is.
:class:`QualityReport` is the label the recovery layer attaches to
every aggregate it emits: exactly how many samples were expected, how
many arrived, what was repaired and how, which nodes were written off,
and — crucially — a conservative bound on how far the reported fleet
statistics can sit from the fault-free truth.  The chaos harness
(:mod:`repro.faults.chaos`) closes the loop by checking both sides:
the counts must reconcile *exactly* against the injector's
:class:`~repro.faults.models.FaultLedger`, and the observed estimate
errors must fall inside the report's stated bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["QualityReport", "COMPLIANCE_LEVELS"]

#: EE HPC WG measurement-quality levels, best to worst.
COMPLIANCE_LEVELS = (3, 2, 1, 0)

#: Conservative sigma multiplier for the stated error bounds.  The
#: bounds are engineering guarantees ("the degraded estimate is within
#: this much of truth"), not confidence intervals, so we take z = 4:
#: they must hold for the worst surviving node draw, not on average.
_BOUND_Z = 4.0


@dataclass(frozen=True)
class QualityReport:
    """Provenance label carried by every fault-degraded aggregate.

    Sample accounting (all counts are matrix *cells*, i.e. one node at
    one tick):

    - ``samples_expected``: what a perfect meter would have delivered
      over the planned horizon.
    - ``samples_arrived``: cells actually delivered (finite or NaN).
    - ``samples_missing``: cells delivered as NaN (meter dropout, node
      loss).
    - ``samples_never_arrived``: cells that never showed up at all
      (truncated tails, batches abandoned after retry exhaustion).
    - ``samples_stuck`` / ``samples_spiked``: finite-but-wrong cells the
      detectors flagged.
    - ``samples_held`` / ``samples_interpolated`` / ``samples_excluded``:
      how flagged/missing cells were repaired, by gap policy.

    Recovery accounting:

    - ``nodes_quarantined``: node ids written off after sustained
      missing runs; their cells are excluded from fleet statistics.
    - ``batches_retried`` / ``batches_abandoned``: transient delivery
      failures absorbed by bounded retry, and batches dropped after
      retry exhaustion.

    Verdict:

    - ``effective_coverage``: fraction of expected cells that informed
      the final statistics.
    - ``original_level`` / ``effective_level``: the compliance level the
      run aimed for and the level the circuit breaker actually granted.
    - ``fleet_mean_w`` / ``node_cv`` / ``sigma_node_w`` / ``n_nodes_used``:
      the degraded statistics this report labels.

    Wire provenance (defaulted so pre-wire call sites are unchanged):

    - ``codec``: wire codec spec the samples crossed (``""`` when the
      aggregate never left process memory).
    - ``codec_error_bound_w``: the codec's per-sample error bound in
      watts (0 for lossless codecs); folded into the stated error
      bounds below.
    - ``frames_dropped`` / ``frames_corrupt``: transport-level frame
      losses the reader detected via sequence gaps and CRC failures.
    - ``notes``: provenance caveats that do not fit a count — e.g. the
      :class:`~repro.stream.estimators.P2Quantile` approximate-merge
      caveat when quantile statistics crossed a lossy codec.

    Correlated-fault provenance (defaulted so pre-pathology call sites
    are unchanged):

    - ``correlated_bias_w``: magnitude of the common-mode (fleet-wide)
      mean bias injected by correlated pathologies, in watts — the
      per-node time-mean bias averaged across nodes.
    - ``correlated_cv_extra``: extra across-node spread carried by
      persistent per-node biases, as a fraction of the fleet mean (the
      standard deviation of per-node time-mean biases over the mean).
    - ``correlated_models``: labels of the pathology models the terms
      come from; required non-empty whenever either term is non-zero.

    When all three are at their defaults the error bounds below assume
    *independent* per-cell errors — an assumption, not a fact — and
    :attr:`stated_notes` says so explicitly.
    """

    samples_expected: int
    samples_arrived: int
    samples_missing: int
    samples_never_arrived: int
    samples_stuck: int
    samples_spiked: int
    samples_held: int
    samples_interpolated: int
    samples_excluded: int
    nodes_quarantined: tuple[int, ...]
    batches_retried: int
    batches_abandoned: int
    effective_coverage: float
    original_level: int
    effective_level: int
    fleet_mean_w: float
    node_cv: float
    sigma_node_w: float
    sigma_tick_w: float
    n_nodes_used: int
    codec: str = ""
    codec_error_bound_w: float = 0.0
    frames_dropped: int = 0
    frames_corrupt: int = 0
    notes: tuple[str, ...] = ()
    correlated_bias_w: float = 0.0
    correlated_cv_extra: float = 0.0
    correlated_models: tuple[str, ...] = ()

    #: Caveat rendered whenever the bounds carry no correlated terms:
    #: the z-bounds below are only valid if meter errors really are
    #: independent per cell, and nothing in the data can prove that.
    INDEPENDENCE_NOTE = (
        "error bounds assume independent per-cell meter errors; "
        "correlated pathologies (aliasing, common-mode offsets, device "
        "spread) are not covered"
    )

    def __post_init__(self) -> None:
        if self.samples_expected < 0 or self.samples_arrived < 0:
            raise ValueError("sample counts must be non-negative")
        if self.samples_arrived > self.samples_expected:
            raise ValueError(
                "cannot deliver more samples than were expected"
            )
        if not (0.0 <= self.effective_coverage <= 1.0):
            raise ValueError("effective_coverage must be in [0, 1]")
        for level in (self.original_level, self.effective_level):
            if level not in COMPLIANCE_LEVELS:
                raise ValueError(f"unknown compliance level {level}")
        if self.codec_error_bound_w < 0.0:
            raise ValueError("codec_error_bound_w must be non-negative")
        if self.frames_dropped < 0 or self.frames_corrupt < 0:
            raise ValueError("frame counts must be non-negative")
        if self.codec_error_bound_w > 0.0 and not self.codec:
            raise ValueError(
                "a non-zero codec error bound requires naming the codec"
            )
        if self.correlated_bias_w < 0.0 or self.correlated_cv_extra < 0.0:
            raise ValueError("correlated terms must be non-negative")
        if (
            self.correlated_bias_w > 0.0 or self.correlated_cv_extra > 0.0
        ) and not self.correlated_models:
            raise ValueError(
                "non-zero correlated terms require naming the models "
                "in correlated_models"
            )

    # -- accounting identities -----------------------------------------
    @property
    def samples_flagged(self) -> int:
        """Finite-but-wrong cells the detectors caught."""
        return self.samples_stuck + self.samples_spiked

    @property
    def samples_repaired(self) -> int:
        """Cells replaced or excised by the gap policy."""
        return (
            self.samples_held
            + self.samples_interpolated
            + self.samples_excluded
        )

    @property
    def samples_unusable(self) -> int:
        """Cells that could not contribute a trustworthy reading."""
        return (
            self.samples_missing
            + self.samples_never_arrived
            + self.samples_flagged
        )

    def downgraded(self) -> bool:
        """Did the circuit breaker reduce the compliance level?"""
        return self.effective_level < self.original_level

    @property
    def assumes_independence(self) -> bool:
        """Are the bounds computed with no correlated-fault terms?"""
        return (
            self.correlated_bias_w <= 0.0
            and self.correlated_cv_extra <= 0.0
            and not self.correlated_models
        )

    @property
    def stated_notes(self) -> tuple[str, ...]:
        """Notes as rendered: ``notes`` plus the independence caveat.

        A computed view, not a mutation of :attr:`notes` — callers that
        compare raw ``notes`` tuples (the wire layer does) are
        unaffected, but every human- or JSON-facing rendering states
        the independence assumption whenever the bounds rely on it.
        """
        if self.assumes_independence:
            return self.notes + (self.INDEPENDENCE_NOTE,)
        return self.notes

    # -- stated error bounds -------------------------------------------
    def error_bound_fleet_mean(self) -> float:
        """Relative bound on the degraded fleet-mean power estimate.

        Two degradation channels: (a) dropping ``k`` of ``n`` nodes
        shifts the mean of the survivors by at most about
        ``z * (sigma_node/mu) * sqrt(k) / n`` (the removed nodes are a
        draw from the node distribution, each within ``z`` sigma of the
        fleet mean); (b) unusable cells — repaired, excised or never
        delivered — perturb the time average by at most ``z`` per-tick
        sigma on the unusable fraction (covers the worst case of an
        entire truncated tail sitting at the extreme of the within-run
        power swing).  A lossy wire codec adds a third channel: every
        surviving sample may sit up to ``codec_error_bound_w`` from its
        true value, shifting the mean by at most that much — relative
        term ``e / mu``.
        """
        n_total = self.n_nodes_used + len(self.nodes_quarantined)
        if n_total == 0 or self.fleet_mean_w <= 0:
            return math.inf
        cv_node = self.sigma_node_w / self.fleet_mean_w
        k_lost = len(self.nodes_quarantined)
        subset_term = _BOUND_Z * cv_node * math.sqrt(max(k_lost, 0)) / n_total
        repair_frac = self.samples_unusable / max(self.samples_expected, 1)
        if repair_frac >= 1.0:
            return math.inf
        cv_tick = self.sigma_tick_w / self.fleet_mean_w
        repair_term = _BOUND_Z * cv_tick * repair_frac / (1.0 - repair_frac)
        codec_term = self.codec_error_bound_w / self.fleet_mean_w
        if self.correlated_bias_w >= self.fleet_mean_w:
            return math.inf
        # The observed mean is (clean + bias); the relative error is
        # judged against the *clean* truth, so the worst case divides
        # the bias by (observed − bias), not by the observed mean.
        correlated_term = self.correlated_bias_w / (
            self.fleet_mean_w - self.correlated_bias_w
        )
        return subset_term + repair_term + codec_term + correlated_term

    def error_bound_node_cv(self) -> float:
        """Relative bound on the degraded sigma/mu (node CV) estimate.

        Channels: (a) estimating sigma from ``n_eff`` instead of ``n``
        nodes has relative sampling error about
        ``z * sqrt(k_lost / (2 (n_eff - 1)))``; (b) repairs bias each
        node's time average by at most ``delta = cv_tick * repair_frac``
        of the mean, which perturbs the node CV by about
        ``(delta/cv)^2 / 2 + z * delta / (cv * sqrt(n_eff))``; (c) a
        lossy wire codec perturbs each node's time average by at most
        ``e = codec_error_bound_w``, moving the across-node sigma by at
        most ``2e`` and the mean by at most ``e`` — relative term
        ``2e / sigma_node + e / mu``.
        """
        n_eff = self.n_nodes_used
        if n_eff < 2 or self.node_cv <= 0 or self.fleet_mean_w <= 0:
            return math.inf
        k_lost = len(self.nodes_quarantined)
        sigma_term = _BOUND_Z * math.sqrt(
            max(k_lost, 0) / (2.0 * (n_eff - 1))
        )
        repair_frac = self.samples_unusable / max(self.samples_expected, 1)
        if repair_frac >= 1.0:
            return math.inf
        cv_tick = self.sigma_tick_w / self.fleet_mean_w
        delta = cv_tick * repair_frac / (1.0 - repair_frac)
        bias_term = (delta / self.node_cv) ** 2 / 2.0
        noise_term = _BOUND_Z * delta / (self.node_cv * math.sqrt(n_eff))
        codec_term = 0.0
        if self.codec_error_bound_w > 0.0:
            if self.sigma_node_w <= 0.0:
                return math.inf
            codec_term = (
                2.0 * self.codec_error_bound_w / self.sigma_node_w
                + self.codec_error_bound_w / self.fleet_mean_w
            )
        correlated_term = 0.0
        if not self.assumes_independence:
            # Persistent per-node biases add up to correlated_cv_extra
            # of across-node spread (triangle inequality on the node
            # sigma: |sigma(m + b) - sigma(m)| <= sigma(b)), so the
            # clean CV can sit as low as (node_cv - extra); a common-
            # mode bias additionally shifts the mean in the CV's
            # denominator.  Either channel exhausting its budget makes
            # the bound honest but useless: infinity.
            if self.correlated_cv_extra >= self.node_cv:
                return math.inf
            if self.correlated_bias_w >= self.fleet_mean_w:
                return math.inf
            correlated_term = self.correlated_cv_extra / (
                self.node_cv - self.correlated_cv_extra
            ) + self.correlated_bias_w / (
                self.fleet_mean_w - self.correlated_bias_w
            )
        return sigma_term + bias_term + noise_term + codec_term + correlated_term

    # -- rendering ------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-friendly rendering (bounds included)."""
        return {
            "samples_expected": self.samples_expected,
            "samples_arrived": self.samples_arrived,
            "samples_missing": self.samples_missing,
            "samples_never_arrived": self.samples_never_arrived,
            "samples_stuck": self.samples_stuck,
            "samples_spiked": self.samples_spiked,
            "samples_held": self.samples_held,
            "samples_interpolated": self.samples_interpolated,
            "samples_excluded": self.samples_excluded,
            "nodes_quarantined": list(self.nodes_quarantined),
            "batches_retried": self.batches_retried,
            "batches_abandoned": self.batches_abandoned,
            "effective_coverage": self.effective_coverage,
            "original_level": self.original_level,
            "effective_level": self.effective_level,
            "fleet_mean_w": self.fleet_mean_w,
            "node_cv": self.node_cv,
            "sigma_node_w": self.sigma_node_w,
            "sigma_tick_w": self.sigma_tick_w,
            "n_nodes_used": self.n_nodes_used,
            "codec": self.codec,
            "codec_error_bound_w": self.codec_error_bound_w,
            "frames_dropped": self.frames_dropped,
            "frames_corrupt": self.frames_corrupt,
            "notes": list(self.stated_notes),
            "correlated_bias_w": self.correlated_bias_w,
            "correlated_cv_extra": self.correlated_cv_extra,
            "correlated_models": list(self.correlated_models),
            "error_bound_fleet_mean": self.error_bound_fleet_mean(),
            "error_bound_node_cv": self.error_bound_node_cv(),
        }

    def lines(self) -> list[str]:
        """Human-readable summary block."""
        cov_pct = 100.0 * self.effective_coverage
        out = [
            "data quality",
            f"  coverage            {cov_pct:.2f}% of "
            f"{self.samples_expected} expected samples",
            f"  missing / flagged   {self.samples_missing} missing, "
            f"{self.samples_stuck} stuck, {self.samples_spiked} spiked",
            f"  never arrived       {self.samples_never_arrived}",
            f"  repairs             {self.samples_held} held, "
            f"{self.samples_interpolated} interpolated, "
            f"{self.samples_excluded} excluded",
            f"  retries             {self.batches_retried} batch retries, "
            f"{self.batches_abandoned} abandoned",
        ]
        if self.nodes_quarantined:
            ids = ", ".join(str(i) for i in self.nodes_quarantined)
            out.append(f"  quarantined nodes   {ids}")
        if self.codec:
            out.append(
                f"  wire codec          {self.codec} "
                f"(+/-{self.codec_error_bound_w:g} W/sample), "
                f"{self.frames_dropped} frames dropped, "
                f"{self.frames_corrupt} corrupt"
            )
        if self.correlated_models:
            names = ", ".join(self.correlated_models)
            out.append(
                f"  correlated faults   {names}: common-mode bias "
                f"{self.correlated_bias_w:.2f} W, node spread "
                f"+{100 * self.correlated_cv_extra:.2f}% of mean"
            )
        for note in self.stated_notes:
            out.append(f"  note                {note}")
        level_note = (
            f"L{self.original_level} -> L{self.effective_level}"
            if self.downgraded()
            else f"L{self.effective_level}"
        )
        out.append(f"  compliance          {level_note}")
        bound_mean = self.error_bound_fleet_mean()
        bound_cv = self.error_bound_node_cv()
        if math.isfinite(bound_mean):
            out.append(
                f"  stated error bound  mean +/-{100 * bound_mean:.2f}%, "
                f"sigma/mu +/-{100 * bound_cv:.2f}% (relative)"
            )
        else:
            out.append("  stated error bound  unavailable (degenerate run)")
        return out
