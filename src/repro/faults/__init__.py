"""Deterministic fault injection and self-healing ingestion.

The paper's measurements came from real meters that drop samples,
latch stale readings, glitch, drift and die mid-run; this package
models those failures deterministically and hardens the streaming
pipeline against them, labelling every degraded aggregate with an
exact :class:`~repro.faults.quality.QualityReport`.

Layout:

* :mod:`repro.faults.models` — seeded, composable fault models over
  per-node power matrices, with an exact injection ledger.
* :mod:`repro.faults.recovery` — bounded retry with backoff, fault
  detection, gap repair policies, per-node quarantine and the
  compliance circuit breaker.
* :mod:`repro.faults.quality` — the provenance label and its stated
  error bounds.
* :mod:`repro.faults.chaos` — the end-to-end harness auditing that
  recovery accounts for every injected fault and stays within the
  bounds it states.
* :mod:`repro.faults.wire` — frame-level transport faults (drops and
  CRC-detectable corruption) over the :mod:`repro.wire` protocol,
  under the same determinism and disjointness contracts.
* :mod:`repro.faults.pathology` — *correlated* meter pathologies from
  the related literature (duty-cycled aliasing meters, input-entropy-
  dependent power, per-accelerator spread), their gaming and
  sampling-cost analyses, and the widened-bound audit harness.
* :mod:`repro.faults.detectors` — stream-level correlated-excursion
  detectors (repeat/beat structure, persistent per-node offsets,
  segment-boundary jumps) the per-cell recovery layer cannot see.
"""

from repro.faults.chaos import ChaosOutcome, ChaosScenario, chaos_sweep, run_chaos
from repro.faults.detectors import (
    AliasingDetector,
    CorrelatedDetectors,
    CorrelatedVerdict,
    EntropyDriftDetector,
    PersistentOffsetDetector,
)
from repro.faults.models import (
    BurstDropout,
    ClockDrift,
    ClockJitter,
    FaultInjection,
    FaultLedger,
    FaultModel,
    FaultPlan,
    NodeLoss,
    SampleDropout,
    SpikeGlitch,
    StuckAtLastValue,
    TruncatedTail,
    inject_run,
)
from repro.faults.pathology import (
    AliasingMeter,
    DeviceSpreadModel,
    EntropyPowerModel,
    PathologyOutcome,
    PathologyScenario,
    run_pathology,
    standard_scenarios,
)
from repro.faults.quality import QualityReport
from repro.faults.recovery import (
    FlakySource,
    MaskedRunningMoments,
    RecoveryPipeline,
    ResilientIngestLoop,
    RetryPolicy,
    TransientMeterError,
)
from repro.faults.wire import (
    FrameCorruption,
    FrameDrop,
    WireDelivery,
    WireFaultModel,
    WireFaultPlan,
    WireLedger,
)

__all__ = [
    "AliasingDetector",
    "AliasingMeter",
    "BurstDropout",
    "ChaosOutcome",
    "ChaosScenario",
    "ClockDrift",
    "ClockJitter",
    "CorrelatedDetectors",
    "CorrelatedVerdict",
    "DeviceSpreadModel",
    "EntropyDriftDetector",
    "EntropyPowerModel",
    "FaultInjection",
    "FaultLedger",
    "FaultModel",
    "FaultPlan",
    "FlakySource",
    "FrameCorruption",
    "FrameDrop",
    "MaskedRunningMoments",
    "NodeLoss",
    "PathologyOutcome",
    "PathologyScenario",
    "PersistentOffsetDetector",
    "QualityReport",
    "RecoveryPipeline",
    "ResilientIngestLoop",
    "RetryPolicy",
    "SampleDropout",
    "SpikeGlitch",
    "StuckAtLastValue",
    "TransientMeterError",
    "TruncatedTail",
    "WireDelivery",
    "WireFaultModel",
    "WireFaultPlan",
    "WireLedger",
    "chaos_sweep",
    "inject_run",
    "run_chaos",
    "run_pathology",
    "standard_scenarios",
]
