"""Correlated meter pathologies: aliasing, entropy power, device spread.

The models in :mod:`repro.faults.models` are wrong *independently* —
each faulted cell is an isolated NaN, latch or glitch, which is exactly
the structure the :class:`~repro.faults.quality.QualityReport` z-bounds
assume.  The related literature says the dangerous errors are
*correlated*:

* **Sampling-window aliasing** ("Part-time Power Measurements:
  nvidia-smi's Lack of Attention"): the meter itself is duty-cycled —
  it reads for ``on`` ticks out of every ``period`` and holds the last
  reading in between.  Every average computed from the stream is then
  biased by the beat between the meter's duty cycle and the workload's
  power trajectory, in the *same direction for every node at once*.
  :class:`AliasingMeter` models the hold; the exact per-cell bias goes
  into the ledger.
* **Input-entropy-dependent power** ("Understanding the Impact of Input
  Entropy on FPU, CPU, and GPU Power"): two nominally identical runs
  draw different power because the data they chew differs.
  :class:`EntropyPowerModel` applies a seeded per-segment fleet-wide
  offset — a common-mode error no per-node detector can see.
* **Per-accelerator spread** ("Not All GPUs Are Created Equal"):
  binning gives each device a persistent efficiency multiplier, so node
  CV and fleet mean shift *jointly* and permanently.
  :class:`DeviceSpreadModel` draws one multiplicative factor per node.

All three live under the existing :class:`~repro.faults.models.FaultPlan`
determinism and disjointness contracts.  :class:`AliasingMeter` is a
value corruption and *claims* the cells it overwrites;
:class:`EntropyPowerModel` and :class:`DeviceSpreadModel` are *ambient*
transforms — they perturb every cell without claiming any, and
therefore must run before any claiming model (enforced with a clear
error).  Every model records its exact injected bias in the
:class:`~repro.faults.models.FaultLedger` and the per-cell ``bias_w``
matrix, which is what lets :func:`run_pathology` audit that the
correlation-widened :class:`~repro.faults.quality.QualityReport` bounds
actually cover the observed estimate errors — and that the *unwidened*
(independence-assuming) bounds do not.

:func:`gaming_assessment` and :func:`sampling_cost` close the loop back
to the paper: what do the Level 1–3 reporting rules let a strategic
submitter shave off the reported power under each pathology, and how
many extra Eq. 1–5 samples does the pathology cost against the Table 5
grid?
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.analysis.gaming import optimal_window_gain
from repro.core.sampling import recommend_sample_size
from repro.faults.detectors import CorrelatedDetectors, CorrelatedVerdict
from repro.faults.models import (
    FaultModel,
    FaultPlan,
    NodeLoss,
    SampleDropout,
    SpikeGlitch,
    _InjectionState,
    inject_run,
)
from repro.faults.quality import QualityReport
from repro.faults.recovery import RecoveryPipeline, ResilientIngestLoop
from repro.stream.ingest import SimClock
from repro.traces.powertrace import PowerTrace

__all__ = [
    "AliasingMeter",
    "EntropyPowerModel",
    "DeviceSpreadModel",
    "PathologyScenario",
    "PathologyOutcome",
    "GamingAssessment",
    "SamplingCost",
    "run_pathology",
    "gaming_assessment",
    "sampling_cost",
    "standard_scenarios",
]


def _require_unclaimed(state: _InjectionState, label: str) -> None:
    """Ambient pathologies must see a fully unclaimed matrix."""
    if state.taken.any():
        n = int(state.taken.sum())
        raise ValueError(
            f"{label}: {n} cells already claimed by an earlier model; "
            "ambient pathology models perturb every cell and must run "
            "before any claiming model (FaultPlan.canonical orders them "
            "correctly)"
        )


@dataclass(frozen=True)
class AliasingMeter(FaultModel):
    """Duty-cycled sampling-window meter (nvidia-smi-style aliasing).

    The meter reads during the first ``round(duty_frac * period_ticks)``
    ticks of every ``period_ticks``-long cycle (shifted by
    ``phase_ticks``) and *holds the last on-window reading* for the off
    ticks — all nodes at once, because the duty cycle belongs to the
    collector, not the node.  On any trending trace the held readings
    are systematically stale, so every average computed downstream is
    biased by the beat between the meter period and the workload's
    power trajectory.

    Off-window cells are value corruptions: they are claimed under the
    disjointness contract, flagged in ``aliased_mask``, and their exact
    bias (held − true) is recorded per cell in ``bias_w`` and summed in
    the ledger.  ``duty_frac = 1.0`` is the identity: the meter is
    always on and the matrix passes through bit-identical.
    """

    period_ticks: int
    duty_frac: float
    phase_ticks: int = 0
    tag: str = ""
    canonical_rank = 50

    def __post_init__(self) -> None:
        if self.period_ticks < 1:
            raise ValueError("period_ticks must be >= 1")
        if not (0.0 < self.duty_frac <= 1.0):
            raise ValueError(
                f"duty_frac must be in (0, 1], got {self.duty_frac}"
            )
        if self.phase_ticks < 0:
            raise ValueError("phase_ticks must be >= 0")

    @property
    def on_ticks(self) -> int:
        """Ticks per cycle the meter actually reads."""
        return min(
            self.period_ticks,
            max(1, int(round(self.duty_frac * self.period_ticks))),
        )

    def _apply(self, state: _InjectionState, rng: np.random.Generator) -> None:
        if self.on_ticks >= self.period_ticks:
            return  # always-on meter: exact identity
        n_ticks = state.watts.shape[0]
        ticks = np.arange(n_ticks)
        on = (ticks + self.phase_ticks) % self.period_ticks < self.on_ticks
        # Source row for every tick: the latest on tick at or before it.
        src = np.maximum.accumulate(np.where(on, ticks, -1))
        stale = ~on & (src >= 0)
        if not stale.any():
            return
        mask = np.zeros(state.watts.shape, dtype=bool)
        mask[stale] = True
        if (state.taken & mask).any():
            n = int((state.taken & mask).sum())
            raise ValueError(
                f"{self.label}: {n} off-window cells already claimed by "
                "an earlier model; a duty-cycled meter overwrites whole "
                "ticks and cannot share them under the disjointness "
                "contract"
            )
        held = state.watts[src[stale], :]
        bias = held - state.watts[stale, :]
        state.watts[stale, :] = held
        state.aliased |= mask
        state.taken |= mask
        state.bias_w[stale, :] += bias
        state.tally(
            samples_aliased=state.ledger.samples_aliased + int(mask.sum()),
            aliasing_bias_w_sum=state.ledger.aliasing_bias_w_sum
            + float(bias.sum()),
            aliasing_bias_abs_max_w=max(
                state.ledger.aliasing_bias_abs_max_w,
                float(np.abs(bias).max()),
            ),
        )


@dataclass(frozen=True)
class EntropyPowerModel(FaultModel):
    """Input-entropy-dependent power: a seeded per-segment offset.

    The run is split into segments of ``segment_ticks``; segment ``k``
    processes input of entropy ``e_k`` drawn uniformly from
    ``(entropy_lo, entropy_hi)``, and the whole fleet's power shifts by

        ``offset_w(k) = 2 * amplitude_w * (e_k - (lo + hi) / 2)``

    so offsets span ±``amplitude_w * (hi − lo)`` around zero.  The
    offset is *common-mode*: every node in a segment moves together,
    which is why per-node outlier detectors cannot see it.

    Ambient (non-claiming): cells keep their claimability, but the
    exact offset is recorded per cell in ``bias_w`` and summed in the
    ledger.  Constant entropy (``lo == hi``) or ``amplitude_w = 0``
    makes every offset exactly zero — the identity.
    """

    amplitude_w: float
    segment_ticks: int = 60
    entropy_lo: float = 0.0
    entropy_hi: float = 1.0
    tag: str = ""
    canonical_rank = 40

    def __post_init__(self) -> None:
        if self.amplitude_w < 0.0:
            raise ValueError("amplitude_w must be non-negative")
        if self.segment_ticks < 1:
            raise ValueError("segment_ticks must be >= 1")
        if self.entropy_hi < self.entropy_lo:
            raise ValueError("entropy_hi must be >= entropy_lo")

    def _apply(self, state: _InjectionState, rng: np.random.Generator) -> None:
        n_ticks, n_nodes = state.watts.shape
        n_segments = math.ceil(n_ticks / self.segment_ticks)
        entropy = rng.uniform(self.entropy_lo, self.entropy_hi, n_segments)
        mid = 0.5 * (self.entropy_lo + self.entropy_hi)
        offsets_w = 2.0 * self.amplitude_w * (entropy - mid)
        tick_offset_w = offsets_w[np.arange(n_ticks) // self.segment_ticks]
        shifted = np.abs(tick_offset_w) > 0.0
        if not shifted.any():
            return  # constant entropy or zero amplitude: exact identity
        _require_unclaimed(state, self.label)
        state.watts += tick_offset_w[:, None]
        state.bias_w += tick_offset_w[:, None]
        state.tally(
            samples_entropy_shifted=state.ledger.samples_entropy_shifted
            + int(shifted.sum()) * n_nodes,
            entropy_bias_w_sum=state.ledger.entropy_bias_w_sum
            + float(tick_offset_w.sum()) * n_nodes,
            entropy_bias_abs_max_w=max(
                state.ledger.entropy_bias_abs_max_w,
                float(np.abs(tick_offset_w).max()),
            ),
        )


@dataclass(frozen=True)
class DeviceSpreadModel(FaultModel):
    """Persistent per-node efficiency draws (accelerator binning).

    Node ``j``'s meter-visible power is rescaled by a persistent factor
    ``1 + spread_frac * z_j`` with ``z_j`` a seeded standard-normal
    draw clipped to ±``clip_sigma`` (keeps factors positive and bounds
    the worst node).  The factors survive the whole run — identical
    workloads genuinely draw different power per device — so the node
    CV and the fleet mean shift *jointly*, which is exactly what the
    independent-error bounds cannot cover.

    Ambient (non-claiming); the exact per-cell rescaling bias lands in
    ``bias_w`` and the ledger.  ``spread_frac = 0`` is the identity.
    """

    spread_frac: float
    clip_sigma: float = 4.0
    tag: str = ""
    canonical_rank = 30

    def __post_init__(self) -> None:
        if not (0.0 <= self.spread_frac <= 0.2):
            raise ValueError(
                f"spread_frac must be in [0, 0.2], got {self.spread_frac}"
            )
        if self.clip_sigma <= 0.0:
            raise ValueError("clip_sigma must be positive")

    def _apply(self, state: _InjectionState, rng: np.random.Generator) -> None:
        n_nodes = state.watts.shape[1]
        z = np.clip(
            rng.standard_normal(n_nodes), -self.clip_sigma, self.clip_sigma
        )
        factors = 1.0 + self.spread_frac * z
        off = np.abs(factors - 1.0) > 0.0
        if not off.any():
            return  # zero spread: exact identity
        _require_unclaimed(state, self.label)
        bias = state.watts * (factors[None, :] - 1.0)
        state.watts *= factors[None, :]
        state.bias_w += bias
        state.tally(
            nodes_spread=state.ledger.nodes_spread + int(off.sum()),
            spread_max_abs_frac=max(
                state.ledger.spread_max_abs_frac,
                float(np.abs(factors - 1.0).max()),
            ),
            spread_bias_w_sum=state.ledger.spread_bias_w_sum
            + float(bias.sum()),
        )


@dataclass(frozen=True)
class PathologyScenario:
    """A named pathology bundle, stackable with independent faults.

    All intensities default to off; :meth:`models` switches on only the
    non-trivial channels, and :meth:`plan` orders them canonically
    (spread → entropy → aliasing → spikes → node loss → dropout).
    """

    name: str = "pathology"
    aliasing_period_ticks: int = 0
    aliasing_duty_frac: float = 1.0
    aliasing_phase_ticks: int = 0
    entropy_amplitude_w: float = 0.0
    entropy_segment_ticks: int = 60
    entropy_lo: float = 0.0
    entropy_hi: float = 1.0
    spread_frac: float = 0.0
    dropout_rate: float = 0.0
    spike_rate: float = 0.0
    spike_factor: float = 8.0
    node_loss: int = 0

    def models(self) -> list[FaultModel]:
        """The fault models this scenario switches on."""
        out: list[FaultModel] = []
        if self.spread_frac > 0:
            out.append(DeviceSpreadModel(spread_frac=self.spread_frac))
        if self.entropy_amplitude_w > 0:
            out.append(
                EntropyPowerModel(
                    amplitude_w=self.entropy_amplitude_w,
                    segment_ticks=self.entropy_segment_ticks,
                    entropy_lo=self.entropy_lo,
                    entropy_hi=self.entropy_hi,
                )
            )
        if (
            self.aliasing_period_ticks > 0
            and self.aliasing_duty_frac < 1.0
        ):
            out.append(
                AliasingMeter(
                    period_ticks=self.aliasing_period_ticks,
                    duty_frac=self.aliasing_duty_frac,
                    phase_ticks=self.aliasing_phase_ticks,
                )
            )
        if self.spike_rate > 0:
            out.append(
                SpikeGlitch(rate=self.spike_rate, factor=self.spike_factor)
            )
        if self.node_loss > 0:
            out.append(NodeLoss(count=self.node_loss))
        if self.dropout_rate > 0:
            out.append(SampleDropout(rate=self.dropout_rate))
        return out

    def plan(self, seed: int | None) -> FaultPlan:
        """Canonical seeded fault plan for this scenario."""
        return FaultPlan.canonical(self.models(), seed)

    @property
    def any_pathology(self) -> bool:
        """Whether any correlated channel is switched on."""
        return (
            self.spread_frac > 0
            or self.entropy_amplitude_w > 0
            or (
                self.aliasing_period_ticks > 0
                and self.aliasing_duty_frac < 1.0
            )
        )


def standard_scenarios(
    kinds: tuple[str, ...] = ("aliasing", "entropy", "spread"),
    *,
    intensity: str = "high",
) -> list[PathologyScenario]:
    """The named pathology grid the CLI, smoke and X-PATH share.

    ``intensity`` is ``"low"`` or ``"high"``; the low cells sit near
    the paper's λ = 1% accuracy target, the high cells well past it.
    """
    if intensity not in ("low", "high"):
        raise ValueError(f"intensity must be 'low' or 'high', got {intensity!r}")
    high = intensity == "high"
    table = {
        "aliasing": PathologyScenario(
            name=f"aliasing-{intensity}",
            aliasing_period_ticks=10,
            aliasing_duty_frac=0.2 if high else 0.6,
        ),
        "entropy": PathologyScenario(
            name=f"entropy-{intensity}",
            entropy_amplitude_w=60.0 if high else 15.0,
            entropy_segment_ticks=30,
        ),
        "spread": PathologyScenario(
            name=f"spread-{intensity}",
            spread_frac=0.06 if high else 0.02,
        ),
    }
    unknown = [k for k in kinds if k not in table]
    if unknown:
        raise ValueError(
            f"unknown pathology kind(s) {unknown}; "
            f"choose from {sorted(table)}"
        )
    return [table[k] for k in kinds]


# ---------------------------------------------------------------------------
# Gaming and sampling-cost analysis
# ---------------------------------------------------------------------------

#: Pre-2015 Level 1 instrumented fraction (1/64 of the machine) and the
#: Level 2 fraction (1/8); Level 3 is the whole machine.
_LEVEL_NODE_FRACTIONS = {1: 1.0 / 64.0, 2: 1.0 / 8.0, 3: 1.0}


@dataclass(frozen=True)
class GamingAssessment:
    """What the Level 1–3 rules let a strategic submitter report.

    All powers are per-node watts (multiply by the fleet size for
    machine watts).  Per level, ``reported_w`` is the best legal
    submission on the *delivered* (possibly pathological) stream:

    * **Level 1** (pre-2015): instrument the cheapest legal node subset
      (1/64 of the machine) and place the best legal 20% window in the
      middle 80% of the core phase.
    * **Level 2**: the cheapest legal 1/8 subset, full core window.
    * **Level 3**: the whole machine, full core window — only the
      meter pathology itself can shave here.

    ``shave_w`` is ``true_mean_w − reported_w``: watts per node shaved
    off the honest whole-machine average.
    """

    true_mean_w: float
    reported_w: dict[int, float]
    subset_nodes: dict[int, int]

    def shave_w(self, level: int) -> float:
        """Watts per node shaved at ``level`` (positive = understated)."""
        return self.true_mean_w - self.reported_w[level]

    def to_dict(self) -> dict:
        """JSON-friendly rendering."""
        return {
            "true_mean_w": self.true_mean_w,
            "reported_w": {str(k): v for k, v in self.reported_w.items()},
            "shave_w": {
                str(level): self.shave_w(level) for level in self.reported_w
            },
            "subset_nodes": {
                str(k): v for k, v in self.subset_nodes.items()
            },
        }


def gaming_assessment(
    times_s: np.ndarray,
    delivered_watts: np.ndarray,
    true_mean_w: float,
) -> GamingAssessment:
    """Best legal Level 1–3 submissions on a delivered node matrix.

    ``delivered_watts`` is the (finite) faulted matrix the submitter's
    meters produced; ``true_mean_w`` is the honest fault-free
    whole-machine per-node average the shave is judged against.  The
    adversary picks the lowest-power legal node subset for each level
    and, at Level 1, additionally the optimal legal window via
    :func:`repro.analysis.gaming.optimal_window_gain`.
    """
    watts = np.asarray(delivered_watts, dtype=float)
    if not np.all(np.isfinite(watts)):
        raise ValueError(
            "gaming_assessment needs a finite delivered matrix; repair "
            "or exclude missing cells first"
        )
    n_nodes = watts.shape[1]
    node_means = watts.mean(axis=0)
    order = np.argsort(node_means, kind="stable")
    reported_w: dict[int, float] = {}
    subset_nodes: dict[int, int] = {}
    for level, fraction in _LEVEL_NODE_FRACTIONS.items():
        k = max(2, math.ceil(fraction * n_nodes - 1e-9))
        k = min(k, n_nodes)
        subset = order[:k]
        subset_trace_w = watts[:, subset].mean(axis=1)
        if level == 1:
            trace = PowerTrace(np.asarray(times_s, dtype=float), subset_trace_w)
            reported_w[level] = optimal_window_gain(trace).best_average
        else:
            reported_w[level] = float(subset_trace_w.mean())
        subset_nodes[level] = int(k)
    return GamingAssessment(
        true_mean_w=float(true_mean_w),
        reported_w=reported_w,
        subset_nodes=subset_nodes,
    )


@dataclass(frozen=True)
class SamplingCost:
    """Extra Eq. 1–5 samples a pathology costs against Table 5.

    ``n_clean`` / ``n_delivered`` are the Eq. 5 recommended sample
    sizes (``N = 10 000``, λ, 95%) at the clean and the delivered node
    CV — the "corresponding Table 5 cell" before and after the
    pathology.  ``restorable`` says whether more sampling can restore
    the λ verdict at all: a correlated *bias* of more than λ of the
    mean cannot be sampled away, only a variance inflation can.
    """

    accuracy_frac: float
    cv_clean: float
    cv_delivered: float
    n_clean: int
    n_delivered: int
    bias_frac: float
    population: int = 10_000

    @property
    def multiplier(self) -> float:
        """Required-sample multiplier vs the clean Table 5 cell."""
        return self.n_delivered / self.n_clean

    @property
    def extra_samples(self) -> int:
        """Extra nodes to instrument to keep the λ verdict."""
        return self.n_delivered - self.n_clean

    @property
    def restorable(self) -> bool:
        """Can extra sampling restore the verdict (bias below λ)?"""
        return self.bias_frac <= self.accuracy_frac

    def to_dict(self) -> dict:
        """JSON-friendly rendering."""
        return {
            "accuracy_frac": self.accuracy_frac,
            "cv_clean": self.cv_clean,
            "cv_delivered": self.cv_delivered,
            "n_clean": self.n_clean,
            "n_delivered": self.n_delivered,
            "multiplier": self.multiplier,
            "extra_samples": self.extra_samples,
            "bias_frac": self.bias_frac,
            "restorable": self.restorable,
            "population": self.population,
        }


def sampling_cost(
    cv_clean: float,
    cv_delivered: float,
    bias_frac: float,
    *,
    accuracy_frac: float = 0.01,
    population: int = 10_000,
) -> SamplingCost:
    """Eq. 5 sampling cost of a pathology vs the Table 5 grid."""
    n_clean = recommend_sample_size(
        population, cv_clean, accuracy_frac
    ).n
    n_delivered = recommend_sample_size(
        population, cv_delivered, accuracy_frac
    ).n
    return SamplingCost(
        accuracy_frac=accuracy_frac,
        cv_clean=float(cv_clean),
        cv_delivered=float(cv_delivered),
        n_clean=n_clean,
        n_delivered=n_delivered,
        bias_frac=abs(float(bias_frac)),
        population=population,
    )


# ---------------------------------------------------------------------------
# End-to-end pathology harness
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PathologyOutcome:
    """One pathology trial: audit verdicts, detection, gaming, cost."""

    scenario: PathologyScenario
    gap_policy: str
    seed: int | None
    clean_fleet_mean_w: float
    clean_node_cv: float
    report: QualityReport
    ledger_dict: dict
    reconciliation: dict
    detection: CorrelatedVerdict | None
    gaming: GamingAssessment | None
    cost: SamplingCost | None

    #: Audit slack.  Wider than the chaos harness's 1e-12: the exact
    #: correlated bias term makes the widened mean bound *tight* (the
    #: error equals the bound up to float summation order), so the
    #: slack must absorb Welford-vs-matrix-mean rounding differences.
    _BOUND_EPS = 1e-9

    @property
    def rel_err_fleet_mean(self) -> float:
        """|degraded − clean| / clean for the fleet-mean estimate."""
        return abs(
            self.report.fleet_mean_w - self.clean_fleet_mean_w
        ) / self.clean_fleet_mean_w

    @property
    def rel_err_node_cv(self) -> float:
        """|degraded − clean| / clean for the node σ/μ estimate."""
        if self.clean_node_cv <= 0:
            return math.inf
        return abs(
            self.report.node_cv - self.clean_node_cv
        ) / self.clean_node_cv

    @property
    def mean_within_bound(self) -> bool:
        """Fleet-mean error inside the correlation-widened bound?"""
        return (
            self.rel_err_fleet_mean
            <= self.report.error_bound_fleet_mean() + self._BOUND_EPS
        )

    @property
    def cv_within_bound(self) -> bool:
        """σ/μ error inside the correlation-widened bound?"""
        return (
            self.rel_err_node_cv
            <= self.report.error_bound_node_cv() + self._BOUND_EPS
        )

    @property
    def independent_bound_mean_violated(self) -> bool:
        """Would the unwidened (independence-assuming) bound have lied?

        Strips the correlated terms from the report and re-evaluates the
        fleet-mean bound: under a real pathology the observed error
        escapes it — the demonstration that independent-error z-bounds
        are invalid under correlated faults.
        """
        stripped = replace(
            self.report,
            correlated_bias_w=0.0,
            correlated_cv_extra=0.0,
            correlated_models=(),
        )
        return (
            self.rel_err_fleet_mean
            > stripped.error_bound_fleet_mean() + self._BOUND_EPS
        )

    @property
    def reconciled(self) -> bool:
        """Did every exact-accounting check pass?"""
        return all(self.reconciliation.values())

    def ok(self) -> bool:
        """Reconciled *and* within both widened bounds."""
        return (
            self.reconciled and self.mean_within_bound and self.cv_within_bound
        )

    def to_dict(self) -> dict:
        """JSON-friendly rendering."""
        return {
            "scenario": self.scenario.name,
            "gap_policy": self.gap_policy,
            "seed": self.seed,
            "clean_fleet_mean_w": self.clean_fleet_mean_w,
            "clean_node_cv": self.clean_node_cv,
            "rel_err_fleet_mean": self.rel_err_fleet_mean,
            "rel_err_node_cv": self.rel_err_node_cv,
            "mean_within_bound": self.mean_within_bound,
            "cv_within_bound": self.cv_within_bound,
            "independent_bound_mean_violated": (
                self.independent_bound_mean_violated
            ),
            "reconciliation": dict(self.reconciliation),
            "report": self.report.to_dict(),
            "ledger": dict(self.ledger_dict),
            "detection": (
                None if self.detection is None else self.detection.to_dict()
            ),
            "gaming": None if self.gaming is None else self.gaming.to_dict(),
            "cost": None if self.cost is None else self.cost.to_dict(),
        }

    def lines(self) -> list[str]:
        """Human-readable verdict block."""
        bound_mean = self.report.error_bound_fleet_mean()
        bound_cv = self.report.error_bound_node_cv()
        out = [
            f"pathology {self.scenario.name} (policy={self.gap_policy})",
            f"  fleet mean   {self.report.fleet_mean_w:.2f} W degraded vs "
            f"{self.clean_fleet_mean_w:.2f} W clean "
            f"(err {100 * self.rel_err_fleet_mean:.3f}% <= "
            f"bound {100 * bound_mean:.3f}%: "
            f"{'ok' if self.mean_within_bound else 'VIOLATED'})",
            f"  node sigma/mu {100 * self.report.node_cv:.3f}% degraded vs "
            f"{100 * self.clean_node_cv:.3f}% clean "
            f"(err {100 * self.rel_err_node_cv:.3f}% <= "
            f"bound {100 * bound_cv:.3f}%: "
            f"{'ok' if self.cv_within_bound else 'VIOLATED'})",
            "  independence-only bound would have "
            + (
                "LIED (violated)"
                if self.independent_bound_mean_violated
                else "held"
            ),
            f"  reconciliation {'exact' if self.reconciled else 'FAILED'} "
            + "("
            + ", ".join(
                f"{k}={'ok' if v else 'FAIL'}"
                for k, v in self.reconciliation.items()
            )
            + ")",
        ]
        if self.detection is not None:
            out.extend("  " + line for line in self.detection.lines())
        if self.gaming is not None:
            for level in sorted(self.gaming.reported_w):
                out.append(
                    f"  gaming L{level}   reported "
                    f"{self.gaming.reported_w[level]:.2f} W/node "
                    f"({self.gaming.subset_nodes[level]} nodes), shave "
                    f"{self.gaming.shave_w(level):+.2f} W/node"
                )
        if self.cost is not None:
            out.append(
                f"  sampling cost n {self.cost.n_clean} -> "
                f"{self.cost.n_delivered} "
                f"(x{self.cost.multiplier:.2f}, "
                f"{'restorable' if self.cost.restorable else 'NOT restorable'}"
                f" at lambda={self.cost.accuracy_frac:.1%})"
            )
        out.extend("  " + line for line in self.report.lines())
        return out


def _bias_terms(injection) -> tuple[float, float, tuple[str, ...]]:
    """Exact correlated bound terms from the injector's bias matrix.

    Per-node time-mean bias ``b_j`` over the delivered ticks decomposes
    the pathology into a common-mode mean shift (``|mean_j b_j|``) and
    a node-spread shift (``std_j b_j``, in watts).  These are what the
    correlation-aware :class:`~repro.faults.quality.QualityReport`
    bounds consume.
    """
    models: list[str] = []
    ledger = injection.ledger
    if ledger.samples_aliased > 0:
        models.append("AliasingMeter")
    if ledger.samples_entropy_shifted > 0:
        models.append("EntropyPowerModel")
    if ledger.nodes_spread > 0:
        models.append("DeviceSpreadModel")
    if not models or injection.bias_w is None:
        return 0.0, 0.0, ()
    node_bias_w = injection.bias_w.mean(axis=0)
    common_bias_w = abs(float(node_bias_w.mean()))
    if node_bias_w.size >= 2:
        spread_sigma_w = float(node_bias_w.std(ddof=1))
    else:
        spread_sigma_w = 0.0
    return common_bias_w, spread_sigma_w, tuple(models)


def _clean_truth(run, node_indices) -> tuple[float, float]:
    """Fault-free fleet mean and node sigma/mu over the core phase."""
    t0_s, t1_s = run.core_window
    _, watts = run.node_power_matrix(t0_s, t1_s, node_indices)
    node_means = watts.mean(axis=0)
    fleet_mean_w = float(node_means.mean())
    node_cv = float(node_means.std(ddof=1)) / fleet_mean_w
    return fleet_mean_w, node_cv


def run_pathology(
    run,
    scenario: PathologyScenario,
    *,
    gap_policy: str = "hold",
    seed: int | None = None,
    ticks_per_batch: int = 60,
    node_indices: np.ndarray | None = None,
    original_level: int = 2,
    quarantine_after: int = 30,
    detect: bool = True,
    assess_gaming: bool = True,
) -> PathologyOutcome:
    """Inject a pathology, recover, detect, and audit the widened label.

    Pure function of its arguments, like
    :func:`repro.faults.chaos.run_chaos`.  Differences from the
    independent-fault harness:

    * the per-cell **stuck detector is disabled** — a duty-cycled
      meter's held readings are exact repeats by construction, and
      flagging them per cell would double-count what the ledger already
      records as aliasing; the stream-level
      :class:`~repro.faults.detectors.AliasingDetector` owns repeat
      structure instead (pathology scenarios therefore never stack
      ``StuckAtLastValue``);
    * the :class:`~repro.faults.quality.QualityReport` is widened with
      the exact correlated bias terms from the injection ledger, and
      the audit checks both that the widened bounds hold and (for
      real pathologies) that the unwidened bounds would not;
    * when ``detect`` is on, the delivered stream also feeds the
      :class:`~repro.faults.detectors.CorrelatedDetectors`, and the
      verdict rides along in the outcome;
    * when ``assess_gaming`` is on and the pathology is pure (no
      missing cells), the Level 1–3 gaming deltas and the Table 5
      sampling cost are computed on the delivered matrix.
    """
    clean_mean_w, clean_cv = _clean_truth(run, node_indices)
    injection = inject_run(run, scenario.plan(seed), node_indices=node_indices)
    pipeline = RecoveryPipeline(
        gap_policy=gap_policy,
        quarantine_after=quarantine_after,
        original_level=original_level,
        stuck_min_repeats=10**9,
    )
    loop = ResilientIngestLoop(
        injection.batches(ticks_per_batch),
        pipeline.observe,
        clock=SimClock(run.dt),
        seed=seed,
    )
    loop.run()
    common_bias_w, spread_sigma_w, correlated_models = _bias_terms(injection)
    report = pipeline.finalize(
        expected_ticks=injection.ledger.n_ticks_planned,
        batches_retried=loop.retries,
        batches_abandoned=loop.batches_abandoned,
    )
    if correlated_models:
        report = replace(
            report,
            correlated_bias_w=common_bias_w,
            correlated_cv_extra=(
                spread_sigma_w / report.fleet_mean_w
                if report.fleet_mean_w > 0
                else 0.0
            ),
            correlated_models=correlated_models,
        )
    ledger = injection.ledger
    bias_matrix_sum_w = float(injection.bias_w.sum())
    ledger_bias_sum_w = (
        ledger.aliasing_bias_w_sum
        + ledger.entropy_bias_w_sum
        + ledger.spread_bias_w_sum
    )
    scale_w = max(abs(bias_matrix_sum_w), abs(ledger_bias_sum_w), 1.0)
    reconciliation = {
        "missing": report.samples_missing
        == int(injection.missing_mask.sum()),
        "spiked": report.samples_spiked
        == int(injection.spike_mask.sum()),
        "stuck_detector_idle": report.samples_stuck == 0,
        "never_arrived": report.samples_never_arrived
        == ledger.samples_truncated,
        "repairs": report.samples_repaired
        == report.samples_missing + report.samples_flagged,
        "aliased_cells": ledger.samples_aliased
        == int(injection.aliased_mask.sum()),
        "bias_ledger_matches_matrix": (
            abs(bias_matrix_sum_w - ledger_bias_sum_w) / scale_w <= 1e-9
        ),
        "quarantine_covers_lost": set(ledger.nodes_lost)
        <= set(report.nodes_quarantined),
    }
    detection = None
    if detect:
        detectors = CorrelatedDetectors.for_run(
            dt_s=run.dt, segment_ticks=scenario.entropy_segment_ticks
        )
        for batch in injection.batches(ticks_per_batch):
            detectors.observe(batch)
        detection = detectors.verdict()
    gaming = None
    cost = None
    pure = not injection.missing_mask.any()
    if assess_gaming and pure:
        gaming = gaming_assessment(
            injection.times, injection.watts, clean_mean_w
        )
        cost = sampling_cost(
            cv_clean=clean_cv,
            cv_delivered=report.node_cv,
            bias_frac=(
                abs(report.fleet_mean_w - clean_mean_w) / clean_mean_w
            ),
        )
    return PathologyOutcome(
        scenario=scenario,
        gap_policy=gap_policy,
        seed=seed,
        clean_fleet_mean_w=clean_mean_w,
        clean_node_cv=clean_cv,
        report=report,
        ledger_dict=ledger.to_dict(),
        reconciliation=reconciliation,
        detection=detection,
        gaming=gaming,
        cost=cost,
    )
