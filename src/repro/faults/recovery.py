"""Self-healing ingestion: retry, detect, repair, quarantine, label.

The clean pipeline (:mod:`repro.stream.ingest`) assumes every sample
arrives finite and on time.  This module is the hardened version a real
collector needs, in four deterministic pieces:

* :class:`RetryPolicy` + :class:`ResilientIngestLoop` — transient
  delivery failures (:class:`TransientMeterError`) are absorbed by
  bounded retry with exponential backoff and seeded jitter, all on the
  :class:`~repro.stream.ingest.SimClock`; after ``max_retries`` the
  batch is abandoned, *counted*, and the loop moves on.
* :class:`FlakySource` — a deterministic fault wrapper that makes any
  batch source raise a seeded number of transient failures per batch;
  the chaos harness's delivery-failure channel.
* :class:`RecoveryPipeline` — per-sample detection (NaN dropouts,
  stuck-at-last-value repeats, spike glitches), configurable gap
  policies (``hold`` / ``interpolate`` / ``exclude``), per-node
  quarantine after sustained outages, a circuit breaker that downgrades
  the run's compliance level instead of failing, and one-pass masked
  statistics feeding a :class:`~repro.faults.quality.QualityReport`.
* :class:`MaskedRunningMoments` — the per-node Welford accumulator that
  tolerates holes: each node keeps its own count, so a missing cell
  simply doesn't advance that node's moments.

Everything is a pure function of ``(inputs, seed)``; nothing here reads
the wall clock or global RNG state, and a replay of the same faulty
stream produces a bit-identical report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.faults.quality import QualityReport
from repro.rng import stream
from repro.stream.ingest import BoundedQueue, SampleBatch, SimClock

__all__ = [
    "breaker_level",
    "TransientMeterError",
    "RetryPolicy",
    "FlakySource",
    "ResilientIngestLoop",
    "MaskedRunningMoments",
    "GAP_POLICIES",
    "RecoveryState",
    "RecoveryPipeline",
    "build_quality_report",
]

#: Supported gap-repair policies.
GAP_POLICIES = ("hold", "interpolate", "exclude")


class TransientMeterError(RuntimeError):
    """A retryable delivery failure (collector timeout, bus glitch)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter.

    Attempt ``k`` (0-based) waits ``base_delay_s * factor**k``,
    perturbed by ±``jitter_frac`` (drawn from the caller's seeded
    stream so replays back off identically).
    """

    max_retries: int = 3
    base_delay_s: float = 1.0
    factor: float = 2.0
    jitter_frac: float = 0.1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay_s <= 0:
            raise ValueError("base_delay_s must be positive")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")
        if not (0.0 <= self.jitter_frac < 1.0):
            raise ValueError("jitter_frac must be in [0, 1)")

    def delay_s(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff delay before retry number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        nominal_s = self.base_delay_s * self.factor ** attempt
        jitter = 1.0 + self.jitter_frac * (2.0 * rng.random() - 1.0)
        return nominal_s * jitter


class FlakySource:
    """Wrap a batch iterator with deterministic transient failures.

    Each underlying batch is preceded by a seeded geometric number of
    :class:`TransientMeterError` raises (``failure_rate`` is the
    per-attempt failure probability).  The wrapper is itself a batch
    iterator, so it drops straight into :class:`ResilientIngestLoop` —
    or into the plain :class:`~repro.stream.ingest.IngestLoop`, where
    the first failure crashes the run and motivates this module.
    """

    def __init__(
        self,
        batches,
        *,
        failure_rate: float,
        seed: int | None = None,
        label: str = "flaky-source",
    ) -> None:
        if not (0.0 <= failure_rate < 1.0):
            raise ValueError(
                f"failure_rate must be in [0, 1), got {failure_rate}"
            )
        self._inner = iter(batches)
        self._rate = failure_rate
        self._rng = stream(seed, label)
        self._pending: SampleBatch | None = None
        self._fails_left = 0
        self.failures_raised = 0

    def __iter__(self) -> "FlakySource":
        return self

    def _draw_failures(self) -> int:
        k = 0
        while self._rate > 0 and self._rng.random() < self._rate:
            k += 1
        return k

    def __next__(self) -> SampleBatch:
        if self._pending is None:
            self._pending = next(self._inner)
            self._fails_left = self._draw_failures()
        if self._fails_left > 0:
            self._fails_left -= 1
            self.failures_raised += 1
            raise TransientMeterError(
                "simulated transient delivery failure"
            )
        batch = self._pending
        self._pending = None
        return batch

    def abandon_current(self) -> SampleBatch | None:
        """Give up on the pending batch; returns it (for accounting)."""
        batch = self._pending
        self._pending = None
        self._fails_left = 0
        return batch


class ResilientIngestLoop:
    """An ingest loop that survives transient source failures.

    Same deterministic producer/consumer schedule and bounded-queue
    backpressure as :class:`~repro.stream.ingest.IngestLoop`, but
    ``next(source)`` raising :class:`TransientMeterError` triggers the
    :class:`RetryPolicy`: back off on the simulated clock, retry, and
    after ``max_retries`` abandon the batch (via the source's
    ``abandon_current`` hook when it has one) and continue.  Every
    retry, abandonment and lost sample is counted — faults never
    disappear silently.
    """

    def __init__(
        self,
        source,
        consumer,
        *,
        clock: SimClock,
        policy: RetryPolicy | None = None,
        seed: int | None = None,
        queue_capacity: int = 8,
        drain_per_step: int = 1,
    ) -> None:
        if drain_per_step < 1:
            raise ValueError("drain_per_step must be >= 1")
        self._source = iter(source)
        self._consumer = consumer
        self._clock = clock
        self._policy = policy if policy is not None else RetryPolicy()
        self._rng = stream(seed, "resilient-ingest:retry-jitter")
        self.queue = BoundedQueue(queue_capacity)
        self._drain_per_step = int(drain_per_step)
        self.stalls = 0
        self.batches_ingested = 0
        self.samples_ingested = 0
        self.retries = 0
        self.backoff_ticks = 0
        self.batches_abandoned = 0
        self.samples_abandoned = 0
        #: Abandoned batches, kept for exact fault reconciliation.
        self.abandoned: list[SampleBatch] = []

    def _abandon(self) -> None:
        self.batches_abandoned += 1
        abandon = getattr(self._source, "abandon_current", None)
        if abandon is None:
            return
        batch = abandon()
        if batch is not None:
            self.samples_abandoned += batch.n_samples
            self.abandoned.append(batch)

    _EXHAUSTED = object()

    def _next_batch(self):
        """Fetch the next batch, retrying through transient failures."""
        attempt = 0
        while True:
            try:
                return next(self._source)
            except StopIteration:
                return self._EXHAUSTED
            except TransientMeterError:
                if attempt >= self._policy.max_retries:
                    self._abandon()
                    attempt = 0
                    continue
                delay_s = self._policy.delay_s(attempt, self._rng)
                ticks = max(1, math.ceil(delay_s / self._clock.dt_s))
                self._clock.advance(ticks)
                self.backoff_ticks += ticks
                self.retries += 1
                attempt += 1

    def _drain(self, max_items: int) -> None:
        for _ in range(max_items):
            if not len(self.queue):
                return
            batch = self.queue.get()
            self._consumer(batch)
            self.batches_ingested += 1
            self.samples_ingested += batch.n_samples

    def run(self) -> "ResilientIngestLoop":
        """Drive the loop until the source and queue are empty."""
        while True:
            batch = self._next_batch()
            if batch is self._EXHAUSTED:
                break
            while not self.queue.put(batch):
                self.stalls += 1
                self._drain(1)
            self._drain(self._drain_per_step)
        self._drain(len(self.queue))
        return self


class MaskedRunningMoments:
    """Per-component Welford moments that tolerate missing samples.

    Like :class:`repro.stream.estimators.RunningMoments`, but each of
    the ``n_components`` columns keeps its *own* count: pushing a row
    with a validity mask advances only the valid columns.  Update order
    is strictly row-by-row, so the accumulated moments are bit-identical
    for any batching of the same row sequence.
    """

    __slots__ = ("_count", "_mean", "_m2")

    def __init__(self, n_components: int) -> None:
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self._count = np.zeros(n_components, dtype=np.int64)
        self._mean = np.zeros(n_components)
        self._m2 = np.zeros(n_components)

    @property
    def count(self) -> np.ndarray:
        """Valid samples per component."""
        return self._count.copy()

    def push_row(self, values: np.ndarray, valid: np.ndarray) -> None:
        """Fold one row in; only ``valid`` columns advance."""
        values = np.asarray(values, dtype=float)
        valid = np.asarray(valid, dtype=bool)
        if values.shape != self._mean.shape or valid.shape != values.shape:
            raise ValueError("row shape must match n_components")
        cnt = self._count + valid
        delta = np.where(valid, values - self._mean, 0.0)
        self._mean = self._mean + delta / np.maximum(cnt, 1)
        delta2 = np.where(valid, values - self._mean, 0.0)
        self._m2 = self._m2 + delta * delta2
        self._count = cnt

    def push_value(self, component: int, value: float) -> None:
        """Fold a single scalar into one component."""
        row = np.zeros_like(self._mean)
        valid = np.zeros_like(self._mean, dtype=bool)
        row[component] = value
        valid[component] = True
        self.push_row(row, valid)

    @classmethod
    def concat(cls, parts: list["MaskedRunningMoments"]) -> "MaskedRunningMoments":
        """Join component-partitioned estimators along the component axis.

        The shard reduction for masked moments: each component already
        keeps its own count, so joining node-disjoint shards is a pure
        array concatenation in node order — exact to the bit, with no
        floating-point combination at all.  Unlike
        :meth:`repro.stream.estimators.RunningMoments.concat` the parts
        may have *different* per-component counts (holes are per node).
        """
        if not parts:
            raise ValueError("concat needs at least one part")
        out = cls(sum(p._count.size for p in parts))
        out._count = np.concatenate([p._count for p in parts])
        out._mean = np.concatenate([p._mean for p in parts])
        out._m2 = np.concatenate([p._m2 for p in parts])
        return out

    @property
    def mean(self) -> np.ndarray:
        """Per-component mean (NaN where no samples)."""
        return np.where(self._count > 0, self._mean, np.nan)

    @property
    def variance(self) -> np.ndarray:
        """Per-component sample variance, ddof=1 (NaN below 2)."""
        return np.where(
            self._count > 1, self._m2 / np.maximum(self._count - 1, 1), np.nan
        )

    @property
    def std(self) -> np.ndarray:
        """Per-component sample standard deviation."""
        return np.sqrt(self.variance)


@dataclass(frozen=True)
class RecoveryState:
    """Snapshot of a recovery kernel's per-node state plus counters.

    The unit the shard layer reduces: a
    :class:`RecoveryPipeline` over node range ``[lo, hi)`` produces a
    ``RecoveryState`` whose arrays are exactly the ``[lo, hi)`` column
    slice of the state a full-fleet pipeline would hold — every
    detection, repair and quarantine decision reads only the node's own
    column.  :meth:`concat` therefore reassembles the fleet state bit
    for bit, and :func:`build_quality_report` renders either a serial
    or a merged state into the identical :class:`QualityReport`.
    """

    node_ids: np.ndarray
    quarantined: np.ndarray
    usable_per_node: np.ndarray
    moments: MaskedRunningMoments
    ticks_seen: int
    original_level: int
    samples_missing: int
    samples_stuck: int
    samples_spiked: int
    samples_held: int
    samples_interpolated: int
    samples_excluded: int

    @property
    def n_nodes(self) -> int:
        """Nodes covered by this state."""
        return int(self.node_ids.size)

    @staticmethod
    def concat(parts: list["RecoveryState"]) -> "RecoveryState":
        """Reassemble node-partitioned states in node order (exact).

        Per-node arrays concatenate; scalar fault counters add (each
        faulted cell is counted by exactly one shard); ``ticks_seen``
        and ``original_level`` must agree across shards because every
        shard replays the same tick grid.
        """
        if not parts:
            raise ValueError("concat needs at least one part")
        first = parts[0]
        for i, part in enumerate(parts):
            if part.ticks_seen != first.ticks_seen:
                raise ValueError(
                    f"part {i} saw {part.ticks_seen} ticks, part 0 saw "
                    f"{first.ticks_seen}; shards must cover the same ticks"
                )
            if part.original_level != first.original_level:
                raise ValueError("parts disagree on original_level")
        return RecoveryState(
            node_ids=np.concatenate([p.node_ids for p in parts]),
            quarantined=np.concatenate([p.quarantined for p in parts]),
            usable_per_node=np.concatenate(
                [p.usable_per_node for p in parts]
            ),
            moments=MaskedRunningMoments.concat([p.moments for p in parts]),
            ticks_seen=first.ticks_seen,
            original_level=first.original_level,
            samples_missing=sum(p.samples_missing for p in parts),
            samples_stuck=sum(p.samples_stuck for p in parts),
            samples_spiked=sum(p.samples_spiked for p in parts),
            samples_held=sum(p.samples_held for p in parts),
            samples_interpolated=sum(p.samples_interpolated for p in parts),
            samples_excluded=sum(p.samples_excluded for p in parts),
        )


def breaker_level(
    original_level: int, coverage: float, any_quarantined: bool
) -> int:
    """Grade surviving coverage into an effective compliance level."""
    level = original_level
    if coverage < 0.995 or any_quarantined:
        level = min(level, 2)
    if coverage < 0.98:
        level = min(level, 1)
    if coverage < 0.60:
        level = 0
    return level


def build_quality_report(
    state: RecoveryState,
    *,
    expected_ticks: int,
    batches_retried: int = 0,
    batches_abandoned: int = 0,
) -> QualityReport:
    """Render a recovery state into its quality-labelled statistics.

    The single rendering path for serial and sharded runs:
    :meth:`RecoveryPipeline.finalize` calls it on its own snapshot, and
    the shard reducer calls it on the :meth:`RecoveryState.concat` of
    the per-shard snapshots — so a sharded report is bit-identical to
    the serial one by construction, not by coincidence.

    ``expected_ticks`` is the planned horizon (what a perfect meter
    would have delivered); the gap between it and what arrived is
    attributed to truncation/abandonment (``samples_never_arrived``).
    """
    if expected_ticks < state.ticks_seen:
        raise ValueError(
            "expected_ticks cannot be below the ticks actually seen"
        )
    n = state.n_nodes
    kept = ~state.quarantined
    samples_expected = int(expected_ticks) * n
    samples_arrived = state.ticks_seen * n
    coverage = float(state.usable_per_node[kept].sum()) / max(
        samples_expected, 1
    )
    quarantined_ids = tuple(
        int(i) for i in state.node_ids[state.quarantined]
    )
    # Fleet statistics over surviving nodes.
    node_means = state.moments.mean
    node_stds = state.moments.std
    counts = state.moments.count
    used = kept & (counts >= 2)
    n_used = int(used.sum())
    if n_used >= 2:
        means = node_means[used]
        fleet_mean_w = float(means.mean())
        sigma_node_w = float(means.std(ddof=1))
        node_cv = sigma_node_w / fleet_mean_w
        sigma_tick_w = float(node_stds[used].mean())
    else:
        fleet_mean_w = float(node_means[used][0]) if n_used else 0.0
        sigma_node_w = 0.0
        node_cv = 0.0
        sigma_tick_w = 0.0
    return QualityReport(
        samples_expected=samples_expected,
        samples_arrived=samples_arrived,
        samples_missing=state.samples_missing,
        samples_never_arrived=samples_expected - samples_arrived,
        samples_stuck=state.samples_stuck,
        samples_spiked=state.samples_spiked,
        samples_held=state.samples_held,
        samples_interpolated=state.samples_interpolated,
        samples_excluded=state.samples_excluded,
        nodes_quarantined=quarantined_ids,
        batches_retried=batches_retried,
        batches_abandoned=batches_abandoned,
        effective_coverage=coverage,
        original_level=state.original_level,
        effective_level=breaker_level(
            state.original_level, coverage, bool(state.quarantined.any())
        ),
        fleet_mean_w=fleet_mean_w,
        node_cv=node_cv,
        sigma_node_w=sigma_node_w,
        sigma_tick_w=sigma_tick_w,
        n_nodes_used=n_used,
    )


class _NodeState:
    """Cross-batch per-node recovery state (arrays over nodes)."""

    def __init__(self, n_nodes: int) -> None:
        self.last_raw = np.full(n_nodes, np.nan)      # last finite reading
        self.last_good = np.full(n_nodes, np.nan)     # last trusted reading
        self.repeat_run = np.zeros(n_nodes, dtype=np.int64)
        self.missing_run = np.zeros(n_nodes, dtype=np.int64)
        self.quarantined = np.zeros(n_nodes, dtype=bool)
        self.gap_len = np.zeros(n_nodes, dtype=np.int64)  # interpolate only


class RecoveryPipeline:
    """Detect, repair and label a degraded per-node sample stream.

    Feed it :class:`~repro.stream.ingest.SampleBatch` objects (NaN
    marks a missing reading) via :meth:`observe`; call :meth:`finalize`
    with the planned horizon to get the :class:`QualityReport`.

    Detection — per cell, in order:

    1. **missing**: the reading is NaN.
    2. **stuck**: the reading exactly equals the node's previous finite
       reading for at least ``stuck_min_repeats`` consecutive ticks (a
       latched meter; genuine continuous readings never repeat
       exactly).
    3. **spiked**: the reading exceeds ``spike_ratio`` × the node's
       last trusted reading (an isolated ADC glitch).

    Repair — what a flagged/missing cell contributes to statistics:

    * ``hold``: the node's last trusted reading.
    * ``interpolate``: linear fill once the gap closes (tail gaps fall
      back to hold); the *live* repaired feed still holds, because a
      streaming consumer cannot wait for the future.
    * ``exclude``: nothing — the cell is excised.

    A node whose readings go missing for ``quarantine_after``
    consecutive ticks is quarantined (sticky): its column is dropped
    from the final statistics and reported in the quality label.  The
    circuit breaker then grades the surviving coverage into an
    effective compliance level — a degraded run downgrades (L3 → L2 →
    L1 → 0) instead of failing.
    """

    def __init__(
        self,
        *,
        gap_policy: str = "hold",
        spike_ratio: float = 4.0,
        stuck_min_repeats: int = 1,
        quarantine_after: int = 30,
        original_level: int = 2,
        deliver=None,
    ) -> None:
        if gap_policy not in GAP_POLICIES:
            raise ValueError(
                f"gap_policy must be one of {GAP_POLICIES}, got {gap_policy!r}"
            )
        if spike_ratio <= 1.0:
            raise ValueError("spike_ratio must exceed 1")
        if stuck_min_repeats < 1:
            raise ValueError("stuck_min_repeats must be >= 1")
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        self.gap_policy = gap_policy
        self.spike_ratio = float(spike_ratio)
        self.stuck_min_repeats = int(stuck_min_repeats)
        self.quarantine_after = int(quarantine_after)
        self.original_level = int(original_level)
        self._deliver = deliver
        # Established on the first batch.
        self._nodes: _NodeState | None = None
        self._moments: MaskedRunningMoments | None = None
        self._node_ids: np.ndarray | None = None
        self._usable_per_node: np.ndarray | None = None
        # Counters.
        self.ticks_seen = 0
        self.samples_missing = 0
        self.samples_stuck = 0
        self.samples_spiked = 0
        self.samples_held = 0
        self.samples_interpolated = 0
        self.samples_excluded = 0

    # ------------------------------------------------------------------
    def _start(self, batch: SampleBatch) -> None:
        n = batch.n_nodes
        self._nodes = _NodeState(n)
        self._moments = MaskedRunningMoments(n)
        self._node_ids = np.asarray(batch.node_ids, dtype=np.int64).copy()
        self._usable_per_node = np.zeros(n, dtype=np.int64)

    def _push_stat(self, j: int, value: float) -> None:
        self._moments.push_value(j, value)

    def _repair_cell(self, j: int, nodes: _NodeState) -> tuple[float, bool]:
        """Dispose of one unusable cell.

        Returns ``(delivered value, counts toward the statistics)``;
        the caller folds counted values into the tick's single
        vectorised moment push.
        """
        have_ref = bool(np.isfinite(nodes.last_good[j]))
        if nodes.quarantined[j] or not have_ref:
            self.samples_excluded += 1
            return np.nan, False
        if self.gap_policy == "exclude":
            self.samples_excluded += 1
            return np.nan, False
        if self.gap_policy == "interpolate":
            # Defer: filled linearly when the gap closes (or held at
            # finalize for tail gaps).  The live feed holds meanwhile.
            nodes.gap_len[j] += 1
            return float(nodes.last_good[j]), False
        # hold
        self.samples_held += 1
        return float(nodes.last_good[j]), True

    def _close_gap(self, j: int, nodes: _NodeState, new_value: float) -> None:
        """Linear-fill a closed interpolation gap into the statistics."""
        gap = int(nodes.gap_len[j])
        if gap == 0:
            return
        lo = float(nodes.last_good[j])
        for k in range(1, gap + 1):
            filled = lo + (new_value - lo) * k / (gap + 1)
            self._push_stat(j, filled)
        self.samples_interpolated += gap
        nodes.gap_len[j] = 0

    def observe(self, batch: SampleBatch) -> None:
        """Fold one (possibly faulty) batch into the pipeline."""
        if self._nodes is None:
            self._start(batch)
        elif not np.array_equal(batch.node_ids, self._node_ids):
            raise ValueError("batch node_ids changed mid-stream")
        nodes = self._nodes
        repaired = np.array(batch.watts, dtype=float, copy=True)
        keep_tick = np.zeros(batch.n_ticks, dtype=bool)
        for i in range(batch.n_ticks):
            row = np.asarray(batch.watts[i], dtype=float)
            finite = np.isfinite(row)
            missing = ~finite
            self.samples_missing += int(missing.sum())
            # Stuck: exact repeat of the previous finite reading.
            eq = finite & np.isfinite(nodes.last_raw) & (row == nodes.last_raw)
            nodes.repeat_run = np.where(eq, nodes.repeat_run + 1, 0)
            stuck = eq & (nodes.repeat_run >= self.stuck_min_repeats)
            self.samples_stuck += int(stuck.sum())
            # Spike: a jump past spike_ratio x the last trusted reading.
            ref = nodes.last_good
            with np.errstate(invalid="ignore"):
                spiked = (
                    finite
                    & ~stuck
                    & np.isfinite(ref)
                    & (row > self.spike_ratio * ref)
                )
            self.samples_spiked += int(spiked.sum())
            usable = finite & ~stuck & ~spiked
            # Quarantine on sustained outage (sticky).
            nodes.missing_run = np.where(missing, nodes.missing_run + 1, 0)
            nodes.quarantined |= nodes.missing_run >= self.quarantine_after
            # Account + repair.  Columns are independent in the Welford
            # update, so the tick's scalar pushes fold into one masked
            # row push — bit-identical to pushing column by column, but
            # O(n) per tick instead of O(n^2).
            active = usable & ~nodes.quarantined
            if self.gap_policy == "interpolate":
                for j in np.flatnonzero(active & (nodes.gap_len > 0)):
                    self._close_gap(int(j), nodes, float(row[j]))
            push_vals = np.where(active, row, 0.0)
            push_mask = active.copy()
            for j in np.flatnonzero(~usable):
                j = int(j)
                value, counted = self._repair_cell(j, nodes)
                repaired[i, j] = value
                if counted:
                    push_vals[j] = value
                    push_mask[j] = True
            self._moments.push_row(push_vals, push_mask)
            self._usable_per_node += active
            nodes.last_good = np.where(usable, row, nodes.last_good)
            nodes.last_raw = np.where(finite, row, nodes.last_raw)
            keep_tick[i] = bool(np.isfinite(repaired[i]).any())
            self.ticks_seen += 1
        if self._deliver is not None and keep_tick.any():
            self._deliver(
                SampleBatch(
                    times=np.asarray(batch.times)[keep_tick],
                    watts=repaired[keep_tick],
                    node_ids=self._node_ids,
                )
            )

    # ------------------------------------------------------------------
    def _flush_tail_gaps(self) -> None:
        """Hold-fill interpolation gaps still open at end of stream."""
        if self._nodes is None or self.gap_policy != "interpolate":
            return
        nodes = self._nodes
        for j in range(nodes.gap_len.size):
            gap = int(nodes.gap_len[j])
            if gap == 0:
                continue
            for _ in range(gap):
                self._push_stat(j, float(nodes.last_good[j]))
            self.samples_held += gap
            nodes.gap_len[j] = 0

    def state_snapshot(self) -> RecoveryState:
        """Snapshot the per-node state + counters for shard reduction.

        Flushes still-open interpolation gaps first (tail gaps hold), so
        the snapshot is the same state :meth:`finalize` would render.
        The arrays are copies — the pipeline can keep streaming.
        """
        if self._nodes is None:
            raise ValueError("no batches observed")
        self._flush_tail_gaps()
        moments = MaskedRunningMoments(self._node_ids.size)
        moments._count = self._moments._count.copy()
        moments._mean = self._moments._mean.copy()
        moments._m2 = self._moments._m2.copy()
        return RecoveryState(
            node_ids=self._node_ids.copy(),
            quarantined=self._nodes.quarantined.copy(),
            usable_per_node=self._usable_per_node.copy(),
            moments=moments,
            ticks_seen=self.ticks_seen,
            original_level=self.original_level,
            samples_missing=self.samples_missing,
            samples_stuck=self.samples_stuck,
            samples_spiked=self.samples_spiked,
            samples_held=self.samples_held,
            samples_interpolated=self.samples_interpolated,
            samples_excluded=self.samples_excluded,
        )

    def finalize(
        self,
        *,
        expected_ticks: int,
        batches_retried: int = 0,
        batches_abandoned: int = 0,
    ) -> QualityReport:
        """Close the stream and emit the quality-labelled statistics.

        A thin wrapper over :func:`build_quality_report` on this
        pipeline's own :meth:`state_snapshot` — the same rendering path
        the shard reducer uses on merged state.
        """
        return build_quality_report(
            self.state_snapshot(),
            expected_ticks=expected_ticks,
            batches_retried=batches_retried,
            batches_abandoned=batches_abandoned,
        )
