"""Deterministic fault models over per-node power matrices.

Real meters do not deliver the clean ``(times, watts)`` grid the rest
of the library assumes.  "Part-time" meters drop samples (singly and in
bursts), firmware latches a stale reading and repeats it, ADC glitches
emit wild spikes, collector clocks drift and jitter, nodes disappear
mid-run, and log files end early.  This module renders each of those as
a *deterministic, composable transform* over a per-node power matrix —
the same ``(times, watts, node_ids)`` view that
:meth:`repro.traces.synth.SimulatedRun.node_power_matrix` produces and
:mod:`repro.stream.ingest` replays.

Determinism contract
--------------------
Every model draws from its own :class:`numpy.random.SeedSequence`
stream, namespaced by the model's position and label inside the
:class:`FaultPlan` (the :mod:`repro.rng` discipline).  A plan applied
twice to the same matrix with the same seed injects bit-identical
faults, and adding a new model to the end of a plan never perturbs the
draws of the models before it.

Disjointness contract
---------------------
A matrix cell is faulted by at most one model: each model only touches
cells no earlier model claimed.  That keeps the :class:`FaultLedger`
exact — the recovery layer's :class:`~repro.faults.quality.QualityReport`
must reconcile against these counts *exactly*, category by category,
which is only a meaningful test if the categories cannot overlap.

Missing samples (dropout, node loss) are marked ``NaN`` in the returned
matrix; value corruptions (stuck-at, spikes) keep finite — but wrong —
readings, exactly as a real meter would report them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.rng import stream

__all__ = [
    "FaultLedger",
    "FaultInjection",
    "FaultModel",
    "SampleDropout",
    "BurstDropout",
    "StuckAtLastValue",
    "SpikeGlitch",
    "ClockJitter",
    "ClockDrift",
    "NodeLoss",
    "TruncatedTail",
    "FaultPlan",
    "inject_run",
]


@dataclass(frozen=True)
class FaultLedger:
    """Exact accounting of every injected fault.

    The injector's side of the reconciliation test: the recovery
    layer's :class:`~repro.faults.quality.QualityReport` must explain
    every one of these counts.

    Attributes
    ----------
    n_ticks_planned / n_nodes:
        Shape of the matrix *before* any truncation — what a perfect
        meter would have delivered.
    samples_dropped / samples_burst_dropped:
        Cells turned ``NaN`` by per-sample and burst dropout.
    samples_stuck:
        Cells overwritten with the previous reading (stuck meter).
    samples_spiked:
        Cells multiplied by a glitch factor.
    node_loss_samples / nodes_lost:
        Cells blanked by mid-run node loss, and the node ids that died.
    ticks_truncated:
        Whole trailing ticks removed from the matrix (log ends early).
    jittered_ticks / max_jitter_s / drift_frac:
        Timestamp perturbations (these move ``times``, not ``watts``).
    samples_aliased / aliasing_bias_w_sum / aliasing_bias_abs_max_w:
        Cells replaced by a duty-cycled meter's held reading
        (:class:`~repro.faults.pathology.AliasingMeter`), the signed sum
        of the per-cell bias they carry, and the worst single-cell bias.
    samples_entropy_shifted / entropy_bias_w_sum / entropy_bias_abs_max_w:
        Cells shifted by an input-entropy-dependent power offset
        (:class:`~repro.faults.pathology.EntropyPowerModel`) and the
        exact bias they carry.
    nodes_spread / spread_max_abs_frac / spread_bias_w_sum:
        Nodes rescaled by persistent efficiency draws
        (:class:`~repro.faults.pathology.DeviceSpreadModel`), the
        largest |factor − 1|, and the signed watt-sum of the rescaling.
    """

    n_ticks_planned: int
    n_nodes: int
    samples_dropped: int = 0
    samples_burst_dropped: int = 0
    samples_stuck: int = 0
    samples_spiked: int = 0
    node_loss_samples: int = 0
    nodes_lost: tuple[int, ...] = ()
    ticks_truncated: int = 0
    jittered_ticks: int = 0
    max_jitter_s: float = 0.0
    drift_frac: float = 0.0
    samples_aliased: int = 0
    aliasing_bias_w_sum: float = 0.0
    aliasing_bias_abs_max_w: float = 0.0
    samples_entropy_shifted: int = 0
    entropy_bias_w_sum: float = 0.0
    entropy_bias_abs_max_w: float = 0.0
    nodes_spread: int = 0
    spread_max_abs_frac: float = 0.0
    spread_bias_w_sum: float = 0.0

    @property
    def samples_planned(self) -> int:
        """Cells a perfect meter would have delivered."""
        return self.n_ticks_planned * self.n_nodes

    @property
    def samples_truncated(self) -> int:
        """Cells that never arrive because the trace tail is cut."""
        return self.ticks_truncated * self.n_nodes

    @property
    def samples_missing_at_arrival(self) -> int:
        """Cells delivered as ``NaN`` (dropout of any kind + node loss)."""
        return (
            self.samples_dropped
            + self.samples_burst_dropped
            + self.node_loss_samples
        )

    @property
    def samples_corrupted(self) -> int:
        """Cells delivered finite but wrong (stuck + spiked)."""
        return self.samples_stuck + self.samples_spiked

    @property
    def samples_biased(self) -> int:
        """Cells carrying correlated (pathology) bias, exact count."""
        return self.samples_aliased + self.samples_entropy_shifted

    @property
    def any_correlated(self) -> bool:
        """Whether any correlated pathology touched the matrix."""
        return self.samples_biased > 0 or self.nodes_spread > 0

    def to_dict(self) -> dict:
        """JSON-friendly rendering."""
        return {
            "n_ticks_planned": self.n_ticks_planned,
            "n_nodes": self.n_nodes,
            "samples_dropped": self.samples_dropped,
            "samples_burst_dropped": self.samples_burst_dropped,
            "samples_stuck": self.samples_stuck,
            "samples_spiked": self.samples_spiked,
            "node_loss_samples": self.node_loss_samples,
            "nodes_lost": list(self.nodes_lost),
            "ticks_truncated": self.ticks_truncated,
            "jittered_ticks": self.jittered_ticks,
            "max_jitter_s": self.max_jitter_s,
            "drift_frac": self.drift_frac,
            "samples_aliased": self.samples_aliased,
            "aliasing_bias_w_sum": self.aliasing_bias_w_sum,
            "aliasing_bias_abs_max_w": self.aliasing_bias_abs_max_w,
            "samples_entropy_shifted": self.samples_entropy_shifted,
            "entropy_bias_w_sum": self.entropy_bias_w_sum,
            "entropy_bias_abs_max_w": self.entropy_bias_abs_max_w,
            "nodes_spread": self.nodes_spread,
            "spread_max_abs_frac": self.spread_max_abs_frac,
            "spread_bias_w_sum": self.spread_bias_w_sum,
        }


class _InjectionState:
    """Mutable scratch state threaded through a plan's models."""

    def __init__(
        self, times: np.ndarray, watts: np.ndarray, node_ids: np.ndarray
    ) -> None:
        self.times = np.array(times, dtype=float, copy=True)
        self.watts = np.array(watts, dtype=float, copy=True)
        self.node_ids = np.asarray(node_ids, dtype=np.int64)
        n_ticks, n_nodes = self.watts.shape
        # Cells already claimed by some model (disjointness contract).
        self.taken = np.zeros((n_ticks, n_nodes), dtype=bool)
        self.missing = np.zeros((n_ticks, n_nodes), dtype=bool)
        self.stuck = np.zeros((n_ticks, n_nodes), dtype=bool)
        self.spiked = np.zeros((n_ticks, n_nodes), dtype=bool)
        self.aliased = np.zeros((n_ticks, n_nodes), dtype=bool)
        # Exact correlated bias each cell carries (delivered − true),
        # written only by the pathology models.
        self.bias_w = np.zeros((n_ticks, n_nodes), dtype=float)
        self.ledger = FaultLedger(
            n_ticks_planned=n_ticks, n_nodes=n_nodes
        )

    def mark_missing(self, mask: np.ndarray) -> int:
        """NaN every unclaimed cell in ``mask``; returns how many."""
        fresh = mask & ~self.taken
        self.watts[fresh] = np.nan
        self.missing |= fresh
        self.taken |= fresh
        return int(fresh.sum())

    def tally(self, **updates) -> None:
        """Fold count updates into the ledger."""
        self.ledger = replace(self.ledger, **updates)


@dataclass(frozen=True)
class FaultInjection:
    """A faulted matrix plus the exact record of what was done to it.

    ``aliased_mask`` marks cells replaced by a duty-cycled meter's held
    reading; ``bias_w`` carries the *exact* correlated bias per cell
    (delivered − true, zero wherever no pathology model wrote) — the
    injector's side of the correlated-bound audit.  Both default to
    ``None`` for call sites predating the pathology pack; plans always
    fill them.
    """

    times: np.ndarray
    watts: np.ndarray
    node_ids: np.ndarray
    ledger: FaultLedger
    missing_mask: np.ndarray
    stuck_mask: np.ndarray
    spike_mask: np.ndarray
    aliased_mask: np.ndarray | None = None
    bias_w: np.ndarray | None = None

    @property
    def n_ticks(self) -> int:
        """Delivered ticks (after any truncation)."""
        return int(self.times.size)

    @property
    def n_nodes(self) -> int:
        """Nodes in the matrix."""
        return int(self.node_ids.size)

    def batches(self, ticks_per_batch: int = 60):
        """Yield the faulted matrix as :class:`SampleBatch` objects.

        Batch boundaries never affect which faults exist — the whole
        matrix is faulted up front — so any ``ticks_per_batch`` streams
        bit-identical faulty samples.
        """
        from repro.stream.ingest import SampleBatch

        if ticks_per_batch < 1:
            raise ValueError("ticks_per_batch must be >= 1")
        for lo in range(0, self.times.size, ticks_per_batch):
            hi = min(lo + ticks_per_batch, self.times.size)
            yield SampleBatch(
                times=self.times[lo:hi],
                watts=self.watts[lo:hi],
                node_ids=self.node_ids,
            )


class FaultModel:
    """Base class: one named, seeded fault transform.

    Subclasses implement :meth:`_apply`; the label (class name plus the
    instance ``tag``) namespaces the model's random stream inside a
    :class:`FaultPlan`.
    """

    #: Distinguishes two instances of the same model in one plan.
    tag: str = ""

    #: Position in :meth:`FaultPlan.canonical` order (lower runs first).
    #: Shape changes come first, then ambient/value pathologies (which
    #: need every cell unclaimed), then per-cell corruptions, then
    #: dropout NaNs.  Spaced by 10 so external models can interleave.
    canonical_rank: int = 1000

    @property
    def label(self) -> str:
        """Stable stream label for this model."""
        base = type(self).__name__
        return f"{base}:{self.tag}" if self.tag else base

    def _apply(self, state: _InjectionState, rng: np.random.Generator) -> None:
        raise NotImplementedError  # pragma: no cover - abstract

    @staticmethod
    def _burst_starts(
        rng: np.random.Generator,
        shape: tuple[int, int],
        rate: float,
        mean_ticks: float,
    ) -> list[tuple[int, int, int]]:
        """Deterministic ``(t, node, length)`` burst plan.

        Starts are iid Bernoulli per cell; lengths are geometric with
        the given mean (>= 1).  Draw order is fixed (full-grid uniforms,
        then one geometric per start in row-major order), so the plan
        is a pure function of ``(rng stream, shape, rate, mean_ticks)``.
        """
        starts = np.argwhere(rng.random(shape) < rate)
        if starts.size == 0:
            return []
        p = min(1.0, 1.0 / max(mean_ticks, 1.0))
        lengths = rng.geometric(p, size=starts.shape[0])
        return [
            (int(t), int(j), int(ln))
            for (t, j), ln in zip(starts, lengths)
        ]


@dataclass(frozen=True)
class SampleDropout(FaultModel):
    """Per-sample iid dropout: each cell goes ``NaN`` with ``rate``."""

    rate: float
    tag: str = ""
    canonical_rank = 100

    def __post_init__(self) -> None:
        if not (0.0 <= self.rate < 1.0):
            raise ValueError(f"rate must be in [0, 1), got {self.rate}")

    def _apply(self, state: _InjectionState, rng: np.random.Generator) -> None:
        mask = rng.random(state.watts.shape) < self.rate
        n = state.mark_missing(mask)
        state.tally(samples_dropped=state.ledger.samples_dropped + n)


@dataclass(frozen=True)
class BurstDropout(FaultModel):
    """Consecutive-run dropout: a meter goes quiet for several ticks.

    ``rate`` is the per-cell probability that a burst *starts* there;
    burst length is geometric with mean ``mean_ticks``.
    """

    rate: float
    mean_ticks: float = 5.0
    tag: str = ""
    canonical_rank = 90

    def __post_init__(self) -> None:
        if not (0.0 <= self.rate < 1.0):
            raise ValueError(f"rate must be in [0, 1), got {self.rate}")
        if self.mean_ticks < 1.0:
            raise ValueError("mean_ticks must be >= 1")

    def _apply(self, state: _InjectionState, rng: np.random.Generator) -> None:
        n_ticks = state.watts.shape[0]
        total = 0
        for t, j, length in self._burst_starts(
            rng, state.watts.shape, self.rate, self.mean_ticks
        ):
            hi = min(t + length, n_ticks)
            mask = np.zeros(state.watts.shape, dtype=bool)
            mask[t:hi, j] = True
            total += state.mark_missing(mask)
        state.tally(
            samples_burst_dropped=state.ledger.samples_burst_dropped + total
        )


@dataclass(frozen=True)
class StuckAtLastValue(FaultModel):
    """A meter latches its previous reading and repeats it.

    A stuck run at ``(t, node)`` overwrites ``length`` cells with the
    reading at ``t - 1``.  Runs needing an unclaimed anchor cell and an
    unclaimed target range are kept; others are skipped whole, so the
    ledger counts exactly the cells that were actually overwritten.
    """

    rate: float
    mean_ticks: float = 4.0
    tag: str = ""
    canonical_rank = 60

    def __post_init__(self) -> None:
        if not (0.0 <= self.rate < 1.0):
            raise ValueError(f"rate must be in [0, 1), got {self.rate}")
        if self.mean_ticks < 1.0:
            raise ValueError("mean_ticks must be >= 1")

    def _apply(self, state: _InjectionState, rng: np.random.Generator) -> None:
        n_ticks = state.watts.shape[0]
        total = 0
        for t, j, length in self._burst_starts(
            rng, state.watts.shape, self.rate, self.mean_ticks
        ):
            if t < 1:
                continue  # no previous reading to latch
            hi = min(t + length, n_ticks)
            # Anchor and targets must be unclaimed (disjointness).
            if state.taken[t - 1: hi, j].any():
                continue
            state.watts[t:hi, j] = state.watts[t - 1, j]
            state.stuck[t:hi, j] = True
            # Claim the anchor too (without counting it): a later
            # dropout model must not erase the reference reading the
            # recovery detector needs for an exact reconciliation.
            state.taken[t - 1: hi, j] = True
            total += hi - t
        state.tally(samples_stuck=state.ledger.samples_stuck + total)


@dataclass(frozen=True)
class SpikeGlitch(FaultModel):
    """Isolated ADC glitches: a reading multiplied by ``factor``.

    Spikes land only on unclaimed cells whose *previous* tick is also
    unclaimed, so the recovery layer's last-good-value detector sees a
    genuine reference reading before every spike.
    """

    rate: float
    factor: float = 8.0
    tag: str = ""
    canonical_rank = 70

    def __post_init__(self) -> None:
        if not (0.0 <= self.rate < 1.0):
            raise ValueError(f"rate must be in [0, 1), got {self.rate}")
        if self.factor <= 1.0:
            raise ValueError("factor must exceed 1")

    def _apply(self, state: _InjectionState, rng: np.random.Generator) -> None:
        hits = np.argwhere(rng.random(state.watts.shape) < self.rate)
        total = 0
        for t, j in hits:
            t, j = int(t), int(j)
            if t < 1 or state.taken[t, j] or state.taken[t - 1, j]:
                continue
            if state.spiked[t - 1, j]:  # keep spikes isolated
                continue
            state.watts[t, j] *= self.factor
            state.spiked[t, j] = True
            # Claim the spike and its anchor (anchor uncounted): the
            # detector needs a clean preceding reading to reference.
            state.taken[t - 1: t + 1, j] = True
            total += 1
        state.tally(samples_spiked=state.ledger.samples_spiked + total)


@dataclass(frozen=True)
class ClockJitter(FaultModel):
    """Per-tick timestamping noise, bounded to preserve monotonicity.

    Jitter is clipped to ±45% of the local tick spacing so the stream
    stays time-ordered; what degrades is the *worst observed interval*,
    which is exactly what the live compliance monitor judges.
    """

    sd_s: float
    tag: str = ""
    canonical_rank = 20

    def __post_init__(self) -> None:
        if self.sd_s <= 0:
            raise ValueError("sd_s must be positive")

    def _apply(self, state: _InjectionState, rng: np.random.Generator) -> None:
        t = state.times
        if t.size < 2:
            return
        dt_lo = float(np.diff(t).min())
        bound_s = 0.45 * dt_lo
        jitter_s = np.clip(
            rng.normal(0.0, self.sd_s, size=t.size), -bound_s, bound_s
        )
        state.times = t + jitter_s
        state.tally(
            jittered_ticks=state.ledger.jittered_ticks + int(t.size),
            max_jitter_s=max(
                state.ledger.max_jitter_s, float(np.abs(jitter_s).max())
            ),
        )


@dataclass(frozen=True)
class ClockDrift(FaultModel):
    """Linear collector-clock drift: times stretch by ``drift_frac``."""

    drift_frac: float
    tag: str = ""
    canonical_rank = 10

    def __post_init__(self) -> None:
        if abs(self.drift_frac) >= 0.5:
            raise ValueError("drift_frac must be small (|drift| < 0.5)")

    def _apply(self, state: _InjectionState, rng: np.random.Generator) -> None:
        t0 = float(state.times[0])
        state.times = t0 + (state.times - t0) * (1.0 + self.drift_frac)
        state.tally(drift_frac=state.ledger.drift_frac + self.drift_frac)


@dataclass(frozen=True)
class NodeLoss(FaultModel):
    """``count`` nodes disappear at ``at_frac`` of the way through."""

    count: int = 1
    at_frac: float = 0.5
    tag: str = ""
    canonical_rank = 80

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if not (0.0 <= self.at_frac < 1.0):
            raise ValueError("at_frac must be in [0, 1)")

    def _apply(self, state: _InjectionState, rng: np.random.Generator) -> None:
        n_ticks, n_nodes = state.watts.shape
        if self.count > n_nodes:
            raise ValueError(
                f"cannot lose {self.count} of {n_nodes} nodes"
            )
        cols = rng.choice(n_nodes, size=self.count, replace=False)
        fail_tick = int(self.at_frac * n_ticks)
        mask = np.zeros(state.watts.shape, dtype=bool)
        for j in np.sort(cols):
            mask[fail_tick:, int(j)] = True
        n = state.mark_missing(mask)
        state.tally(
            node_loss_samples=state.ledger.node_loss_samples + n,
            nodes_lost=tuple(
                sorted(
                    set(state.ledger.nodes_lost)
                    | {int(state.node_ids[int(j)]) for j in cols}
                )
            ),
        )


@dataclass(frozen=True)
class TruncatedTail(FaultModel):
    """The trace ends early: the last ``frac`` of ticks never arrive."""

    frac: float
    tag: str = ""
    canonical_rank = 0

    def __post_init__(self) -> None:
        if not (0.0 <= self.frac < 1.0):
            raise ValueError(f"frac must be in [0, 1), got {self.frac}")

    def _apply(self, state: _InjectionState, rng: np.random.Generator) -> None:
        n_ticks = state.watts.shape[0]
        cut = int(round(self.frac * n_ticks))
        if cut == 0:
            return
        keep = n_ticks - cut
        if keep < 1:
            raise ValueError("truncation would remove the whole trace")
        state.times = state.times[:keep]
        state.watts = state.watts[:keep]
        state.taken = state.taken[:keep]
        state.missing = state.missing[:keep]
        state.stuck = state.stuck[:keep]
        state.spiked = state.spiked[:keep]
        state.aliased = state.aliased[:keep]
        state.bias_w = state.bias_w[:keep]
        state.tally(ticks_truncated=state.ledger.ticks_truncated + cut)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, seeded composition of fault models.

    Models apply in sequence; each gets an independent stream derived
    from ``seed`` and its position + label, so reordering or removing a
    model never changes the faults another model injects (beyond the
    cells it frees up).  Put shape-changing models
    (:class:`TruncatedTail`) first and value corruptions
    (:class:`StuckAtLastValue`, :class:`SpikeGlitch`) before dropout so
    corruption anchors see clean cells — :meth:`canonical` builds that
    order for you.
    """

    models: tuple[FaultModel, ...]
    seed: int

    def __post_init__(self) -> None:
        labels = [
            f"{i}:{m.label}" for i, m in enumerate(self.models)
        ]
        if len(set(labels)) != len(labels):  # pragma: no cover - by construction
            raise ValueError("fault model labels must be unique")

    @staticmethod
    def canonical(models: list[FaultModel], seed: int) -> "FaultPlan":
        """Order models so corruption anchors precede dropout NaNs.

        The ordering key is each model's ``canonical_rank`` class
        attribute (stable sort, so equal-rank models keep their given
        order): shape changes first, then correlated pathologies (which
        must see a fully unclaimed matrix), then value corruptions,
        then dropout.
        """
        ordered = sorted(models, key=lambda m: m.canonical_rank)
        return FaultPlan(models=tuple(ordered), seed=seed)

    def apply(
        self,
        times: np.ndarray,
        watts: np.ndarray,
        node_ids: np.ndarray | None = None,
    ) -> FaultInjection:
        """Fault a per-node matrix; returns matrix + exact ledger."""
        watts = np.asarray(watts, dtype=float)
        if watts.ndim != 2:
            raise ValueError("watts must be 2-D (n_ticks, n_nodes)")
        times = np.asarray(times, dtype=float)
        if times.shape != (watts.shape[0],):
            raise ValueError("times length must match watts rows")
        if node_ids is None:
            node_ids = np.arange(watts.shape[1], dtype=np.int64)
        if not np.all(np.isfinite(watts)):
            raise ValueError("input matrix must be fault-free (finite)")
        state = _InjectionState(times, watts, node_ids)
        for i, model in enumerate(self.models):
            rng = stream(self.seed, f"faults:{i}:{model.label}")
            model._apply(state, rng)
        return FaultInjection(
            times=state.times,
            watts=state.watts,
            node_ids=state.node_ids,
            ledger=state.ledger,
            missing_mask=state.missing,
            stuck_mask=state.stuck,
            spike_mask=state.spiked,
            aliased_mask=state.aliased,
            bias_w=state.bias_w,
        )


def inject_run(
    run,
    plan: FaultPlan,
    *,
    node_indices: np.ndarray | None = None,
    core_only: bool = True,
) -> FaultInjection:
    """Fault a :class:`~repro.traces.synth.SimulatedRun`'s node matrix.

    The faulted view is what the streaming layer then replays — see
    :meth:`FaultInjection.batches`.
    """
    if core_only:
        t0_s, t1_s = run.core_window
        times, watts = run.node_power_matrix(t0_s, t1_s, node_indices)
    else:
        times, watts = run.node_power_matrix(node_indices=node_indices)
    if node_indices is None:
        ids = np.arange(run.system.n_nodes, dtype=np.int64)
    else:
        ids = np.asarray(node_indices, dtype=np.int64).ravel()
    return plan.apply(times, watts, ids)
