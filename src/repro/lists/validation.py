"""Submission validation against the methodology.

A list operator runs each incoming submission through
:func:`validate_submission`: derived numbers are flagged as unverifiable,
measured ones are checked against their claimed level's Table 1 rules
and, optionally, against the paper's *new* requirements (full core
phase, 16 nodes or 10%).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.methodology import Aspect, Violation, check_submission
from repro.core.recommendations import (
    NEW_RULES,
    NewRules,
    recommended_measurement_nodes,
)
from repro.core.windows import MeasurementWindow
from repro.lists.submission import PowerSource, Submission

__all__ = ["ValidationReport", "validate_submission"]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating one submission."""

    submission: Submission
    violations: tuple = ()
    new_rule_failures: tuple = ()
    notes: tuple = ()

    @property
    def complies_with_level(self) -> bool:
        """Passes the claimed level's Table 1 rules."""
        return not self.violations

    @property
    def complies_with_new_rules(self) -> bool:
        """Passes the paper's recommended (post-2015) requirements."""
        return not self.new_rule_failures

    def summary(self) -> str:
        """One-line verdict for list tooling."""
        s = self.submission
        if s.source is PowerSource.DERIVED:
            return f"{s.system_name}: derived power — not verifiable"
        level = f"L{int(s.level)}"
        verdict = "OK" if self.complies_with_level else (
            f"{len(self.violations)} violation(s)"
        )
        new = "OK" if self.complies_with_new_rules else (
            f"{len(self.new_rule_failures)} failure(s)"
        )
        return f"{s.system_name}: {level} {verdict}; new rules {new}"


def validate_submission(
    submission: Submission, *, new_rules: NewRules | None = NEW_RULES
) -> ValidationReport:
    """Validate a submission.

    Parameters
    ----------
    new_rules:
        The post-2015 requirements to additionally check measured
        submissions against; pass ``None`` to check only the claimed
        level's original rules.
    """
    notes: list[str] = []
    if submission.source is PowerSource.DERIVED:
        notes.append(
            "power is derived from vendor data, not measured; "
            "accuracy cannot be assessed"
        )
        return ValidationReport(submission, notes=tuple(notes))

    desc = submission.description
    if desc is None:
        return ValidationReport(
            submission,
            violations=(
                Violation(
                    aspect=Aspect.MACHINE_FRACTION,
                    message="measured submission lacks a measurement description",
                ),
            ),
        )

    violations: list[Violation] = list(check_submission(desc))

    new_failures: list[str] = []
    if new_rules is not None:
        window = MeasurementWindow(
            desc.window_start_fraction, desc.window_end_fraction
        )
        if new_rules.full_core_phase and not (
            window.start <= 1e-9 and window.end >= 1.0 - 1e-9
        ):
            new_failures.append(
                "window does not cover the entire core phase "
                f"(covers {window.length:.0%})"
            )
        required = recommended_measurement_nodes(desc.n_nodes_total, new_rules)
        if desc.n_nodes_measured < required:
            new_failures.append(
                f"measured {desc.n_nodes_measured} nodes; new rule requires "
                f"{required} (max of {new_rules.min_nodes} or "
                f"{new_rules.node_fraction:.0%} of {desc.n_nodes_total})"
            )
    return ValidationReport(
        submission,
        violations=tuple(violations),
        new_rule_failures=tuple(new_failures),
        notes=tuple(notes),
    )
