"""List submissions: performance + power + measurement provenance."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.methodology import Level, MeasurementDescription
from repro.units import gflops_per_watt

__all__ = ["PowerSource", "Submission"]


class PowerSource(enum.Enum):
    """Where a submission's power number came from.

    The Nov 2014 Green500 mix the paper reports: 233 derived, 28
    Level 1, 6 at Level 2 or above, of 267 total.
    """

    DERIVED = "derived"  # vendor spec sheets / extrapolation, no measurement
    MEASURED = "measured"  # an EE HPC WG level measurement


@dataclass(frozen=True)
class Submission:
    """One list entry.

    Attributes
    ----------
    system_name:
        The machine's name.
    rmax_gflops:
        Sustained HPL performance in GFLOP/s (fixed by the full-system
        performance run regardless of how power was measured).
    power_watts:
        Submitted average power in watts.
    source:
        Measured or derived.
    level:
        The claimed methodology level (``None`` for derived numbers).
    description:
        Full measurement description for rule checking (optional; a
        submission without one cannot be validated beyond basics).
    true_power_watts:
        Simulation-only ground truth, when known (drives the
        rank-impact experiments); ``None`` for real-world-style records.
    """

    system_name: str
    rmax_gflops: float
    power_watts: float
    source: PowerSource = PowerSource.MEASURED
    level: Level | None = Level.L1
    description: MeasurementDescription | None = None
    true_power_watts: float | None = None

    def __post_init__(self) -> None:
        if self.rmax_gflops <= 0:
            raise ValueError("rmax must be positive")
        if self.power_watts <= 0:
            raise ValueError("power must be positive")
        if self.source is PowerSource.DERIVED and self.level is not None:
            raise ValueError("derived submissions have no measurement level")
        if self.source is PowerSource.MEASURED and self.level is None:
            raise ValueError("measured submissions must state a level")
        if self.true_power_watts is not None and self.true_power_watts <= 0:
            raise ValueError("true power must be positive when given")

    @property
    def efficiency_gflops_per_watt(self) -> float:
        """The Green500 ranking metric."""
        return gflops_per_watt(self.rmax_gflops, self.power_watts)

    @property
    def true_efficiency_gflops_per_watt(self) -> float | None:
        """Ground-truth efficiency, when the simulation knows it."""
        if self.true_power_watts is None:
            return None
        return gflops_per_watt(self.rmax_gflops, self.true_power_watts)

    @property
    def power_error(self) -> float | None:
        """Signed relative power error vs. ground truth (if known)."""
        if self.true_power_watts is None:
            return None
        return (self.power_watts - self.true_power_watts) / self.true_power_watts
