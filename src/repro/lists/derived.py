"""Derived (unmeasured) power numbers.

"Of the 267 submitted measurements on the November 2014 Green500 list,
233 submissions used power estimates based on derived numbers rather
than measurement" — vendor spec sheets summed over the parts list, the
path sites take when they cannot (or will not) measure.  This module
implements the standard derivation recipes so the reproduction can
quantify how derived numbers relate to the truth the simulator knows.

Three recipes, from most to least common:

* ``"tdp"`` — sum of component TDPs (peak powers) per node, times the
  node count.  Systematically *overstates* HPL power (parts rarely sit
  at TDP simultaneously) — which, on the Green500's FLOPS/W metric,
  *understates* efficiency: derived numbers are usually conservative.
* ``"tdp-derated"`` — the same with a flat vendor derating factor
  (marketing's "typical" number).
* ``"nameplate"`` — the PSU nameplate (node peak including fans, plus
  PSU headroom), the worst overstatement.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.node import NodeConfig

__all__ = ["derive_node_power", "derive_system_power", "DERIVATION_METHODS"]

DERIVATION_METHODS = ("tdp", "tdp-derated", "nameplate")

#: Flat factor vendors apply to the TDP sum for "typical" numbers.
_DERATING = 0.75

#: PSU sizing headroom above worst-case draw.
_NAMEPLATE_HEADROOM = 1.25


def derive_node_power(config: NodeConfig, method: str = "tdp") -> float:
    """Per-node power from the spec sheet, in watts."""
    tdp_sum = (
        config.n_cpus * config.cpu.peak_watts
        + config.n_gpus * (config.gpu.peak_watts if config.gpu else 0.0)
        + config.dram.peak_watts
        + config.nic.peak_watts
        + config.other_watts
    )
    if method == "tdp":
        return float(tdp_sum)
    if method == "tdp-derated":
        return float(_DERATING * tdp_sum)
    if method == "nameplate":
        return float(
            _NAMEPLATE_HEADROOM * (tdp_sum + config.fan.power(1.0))
        )
    raise ValueError(
        f"unknown derivation method {method!r}; "
        f"choose from {DERIVATION_METHODS}"
    )


def derive_system_power(
    config: NodeConfig,
    n_nodes: int,
    method: str = "tdp",
    *,
    interconnect_fraction: float = 0.0,
) -> float:
    """Full-system derived power, in watts.

    ``interconnect_fraction`` adds a flat share for switches and
    directors when the deriving site includes them (Level 1 does not
    require it, and derived submissions are inconsistent about it —
    one more reason they are not comparable).
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if not (0.0 <= interconnect_fraction < 1.0):
        raise ValueError("interconnect_fraction must be in [0, 1)")
    node = derive_node_power(config, method)
    return float(n_nodes * node * (1.0 + interconnect_fraction))
