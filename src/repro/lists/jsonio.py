"""Submission (de)serialisation.

The interchange format a list operator would actually accept: one JSON
document per submission carrying the performance number, the power
number, its provenance, and — for measured submissions — the full
measurement description needed to check the Table 1 rules.
"""

from __future__ import annotations

import json

from repro.core.methodology import (
    Level,
    MeasurementDescription,
    MeasurementPoint,
    Subsystem,
)
from repro.lists.submission import PowerSource, Submission

__all__ = ["submission_to_json", "submission_from_json"]

_FORMAT = "repro.submission/1"

_SUBSYSTEM_BY_VALUE = {s.value: s for s in Subsystem}
_POINT_BY_NAME = {p.name.lower(): p for p in MeasurementPoint}


def _description_to_dict(desc: MeasurementDescription) -> dict:
    return {
        "level": int(desc.level),
        "n_nodes_total": desc.n_nodes_total,
        "n_nodes_measured": desc.n_nodes_measured,
        "avg_node_power_watts": desc.avg_node_power_watts,
        "window_start_fraction": desc.window_start_fraction,
        "window_end_fraction": desc.window_end_fraction,
        "core_phase_seconds": desc.core_phase_seconds,
        "sample_interval_s": desc.sample_interval_s,
        "subsystems_measured": sorted(
            s.value for s in desc.subsystems_measured
        ),
        "subsystems_estimated": sorted(
            s.value for s in desc.subsystems_estimated
        ),
        "measurement_point": desc.measurement_point.name.lower(),
    }


def _description_from_dict(doc: dict) -> MeasurementDescription:
    try:
        point = _POINT_BY_NAME[doc["measurement_point"]]
    except KeyError:
        raise ValueError(
            f"unknown measurement_point {doc.get('measurement_point')!r}"
        ) from None
    try:
        measured = frozenset(
            _SUBSYSTEM_BY_VALUE[v] for v in doc["subsystems_measured"]
        )
        estimated = frozenset(
            _SUBSYSTEM_BY_VALUE[v] for v in doc["subsystems_estimated"]
        )
    except KeyError as exc:
        raise ValueError(f"unknown subsystem {exc}") from None
    return MeasurementDescription(
        level=Level(doc["level"]),
        n_nodes_total=int(doc["n_nodes_total"]),
        n_nodes_measured=int(doc["n_nodes_measured"]),
        avg_node_power_watts=float(doc["avg_node_power_watts"]),
        window_start_fraction=float(doc["window_start_fraction"]),
        window_end_fraction=float(doc["window_end_fraction"]),
        core_phase_seconds=float(doc["core_phase_seconds"]),
        sample_interval_s=(
            None if doc["sample_interval_s"] is None
            else float(doc["sample_interval_s"])
        ),
        subsystems_measured=measured,
        subsystems_estimated=estimated,
        measurement_point=point,
    )


def submission_to_json(submission: Submission) -> str:
    """Serialise a submission to the interchange JSON."""
    doc = {
        "format": _FORMAT,
        "system_name": submission.system_name,
        "rmax_gflops": submission.rmax_gflops,
        "power_watts": submission.power_watts,
        "source": submission.source.value,
        "level": None if submission.level is None else int(submission.level),
        "description": (
            None
            if submission.description is None
            else _description_to_dict(submission.description)
        ),
    }
    return json.dumps(doc, indent=2)


def submission_from_json(text: str) -> Submission:
    """Parse the interchange JSON back into a :class:`Submission`.

    Simulation-only fields (``true_power_watts``) are deliberately not
    part of the format: real submissions do not know the truth.
    """
    doc = json.loads(text)
    if doc.get("format") != _FORMAT:
        raise ValueError(f"unrecognised format {doc.get('format')!r}")
    source = PowerSource(doc["source"])
    level = None if doc.get("level") is None else Level(doc["level"])
    desc = (
        None
        if doc.get("description") is None
        else _description_from_dict(doc["description"])
    )
    return Submission(
        system_name=doc["system_name"],
        rmax_gflops=float(doc["rmax_gflops"]),
        power_watts=float(doc["power_watts"]),
        source=source,
        level=level,
        description=desc,
    )
