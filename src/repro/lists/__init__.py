"""A Green500/Top500-style list substrate.

Holds submissions (performance + power + measurement metadata), checks
them against the EE HPC WG methodology, and ranks them by energy
efficiency — the machinery the paper's Section 1 ranking argument and
the level-mix statistics ("of the 267 submitted measurements ... 233
used derived numbers, 28 Level 1, 6 higher") live in.
"""

from repro.lists.submission import PowerSource, Submission
from repro.lists.validation import ValidationReport, validate_submission
from repro.lists.derived import (
    DERIVATION_METHODS,
    derive_node_power,
    derive_system_power,
)
from repro.lists.green500 import (
    Green500List,
    RankedEntry,
    synthetic_green500,
)

__all__ = [
    "PowerSource",
    "Submission",
    "ValidationReport",
    "validate_submission",
    "DERIVATION_METHODS",
    "derive_node_power",
    "derive_system_power",
    "Green500List",
    "RankedEntry",
    "synthetic_green500",
]
