"""The Green500 list: ranking by energy efficiency.

Provides a ranked list structure over :class:`~repro.lists.submission.
Submission` records, and a synthetic Nov-2014-style list whose
efficiency spectrum and measurement-level mix match the paper's
description: 267 submissions — 233 derived, 28 Level 1, 6 at Level 2+
— with the top ranks separated by less than the 20% measurement
variation Level 1 admits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.methodology import Level
from repro.lists.submission import PowerSource, Submission

__all__ = ["RankedEntry", "Green500List", "synthetic_green500"]


@dataclass(frozen=True)
class RankedEntry:
    """One row of a ranked list."""

    rank: int
    submission: Submission

    @property
    def efficiency(self) -> float:
        """GFLOPS/W."""
        return self.submission.efficiency_gflops_per_watt


class Green500List:
    """An efficiency-ranked list of submissions."""

    def __init__(self, submissions: list[Submission]) -> None:
        if not submissions:
            raise ValueError("a list needs at least one submission")
        names = [s.system_name for s in submissions]
        if len(set(names)) != len(names):
            raise ValueError("system names must be unique within a list")
        self._entries = self._rank(submissions)

    @staticmethod
    def _rank(submissions: list[Submission]) -> list[RankedEntry]:
        ordered = sorted(
            submissions,
            key=lambda s: (-s.efficiency_gflops_per_watt, s.system_name),
        )
        return [RankedEntry(i + 1, s) for i, s in enumerate(ordered)]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __getitem__(self, rank: int) -> RankedEntry:
        """Entry at 1-based rank."""
        if not (1 <= rank <= len(self._entries)):
            raise IndexError(f"rank must be in [1, {len(self._entries)}]")
        return self._entries[rank - 1]

    def rank_of(self, system_name: str) -> int:
        """1-based rank of a system."""
        for e in self._entries:
            if e.submission.system_name == system_name:
                return e.rank
        raise KeyError(f"system {system_name!r} not on the list")

    def top(self, k: int = 10) -> list[RankedEntry]:
        """The first ``k`` entries."""
        if k < 1:
            raise ValueError("k must be >= 1")
        return self._entries[:k]

    # ------------------------------------------------------------------
    def level_mix(self) -> dict[str, int]:
        """Counts by power provenance: derived / L1 / L2 / L3."""
        mix = {"derived": 0, "L1": 0, "L2": 0, "L3": 0}
        for e in self._entries:
            s = e.submission
            if s.source is PowerSource.DERIVED:
                mix["derived"] += 1
            else:
                mix[f"L{int(s.level)}"] += 1
        return mix

    def efficiency_gap(self, rank_a: int, rank_b: int) -> float:
        """Relative efficiency advantage of rank ``a`` over rank ``b``.

        The paper's Section 1 point: "the advantage of the current 1st
        ranked system over the current 3rd ranked system is less than
        20%" — i.e. within Level 1's measurement variation.
        """
        ea = self[rank_a].efficiency
        eb = self[rank_b].efficiency
        return ea / eb - 1.0

    def reranked_with_powers(self, powers: dict[str, float]) -> "Green500List":
        """A new list with some submissions' powers replaced.

        Used by the rank-impact study: replace reported powers with
        alternative measurement outcomes and observe rank movement.
        """
        subs = []
        for e in self._entries:
            s = e.submission
            if s.system_name in powers:
                new_power = powers[s.system_name]
                if new_power <= 0:
                    raise ValueError("replacement power must be positive")
                s = Submission(
                    system_name=s.system_name,
                    rmax_gflops=s.rmax_gflops,
                    power_watts=new_power,
                    source=s.source,
                    level=s.level,
                    description=s.description,
                    true_power_watts=s.true_power_watts,
                )
            subs.append(s)
        return Green500List(subs)


def synthetic_green500(
    rng: np.random.Generator,
    *,
    n_systems: int = 267,
    n_derived: int = 233,
    n_level1: int = 28,
    top_efficiency: float = 5.27,  # L-CSC's Nov-2014 GFLOPS/W
    top3_gap: float = 0.135,  # paper: #1 leads #3 by < 20%
) -> Green500List:
    """Generate a Nov-2014-flavoured synthetic Green500.

    The top of the list is shaped so rank 1 leads rank 3 by
    ``top3_gap`` (< 20%); the body follows a smooth efficiency decay
    with log-normal size spread.  Levels are assigned so the mix matches
    the paper's counts, with higher-quality levels more common near the
    top (the machines that care most measure best).
    """
    if n_systems < 3:
        raise ValueError("need at least three systems")
    if n_derived + n_level1 > n_systems:
        raise ValueError("level mix exceeds list size")
    if not (0.0 < top3_gap < 1.0):
        raise ValueError("top3_gap must be in (0, 1)")

    # Efficiency spectrum: the top three pinned so that #1 leads #3 by
    # exactly ``top3_gap``, then a noisy geometric decay strictly below
    # #3 for the rest of the list.
    eff = np.empty(n_systems)
    eff[0] = top_efficiency
    eff[2] = top_efficiency / (1.0 + top3_gap)
    eff[1] = float(np.sqrt(eff[0] * eff[2]))
    ranks = np.arange(3, n_systems)
    decay = np.exp(-2.2 * (ranks - 2) / n_systems)
    tail = eff[2] * 0.98 * decay * (
        1.0 + 0.02 * rng.standard_normal(n_systems - 3)
    )
    eff[3:] = np.minimum(np.sort(tail)[::-1], eff[2] * 0.995)

    # System scale: Rmax from ~30 TFLOPS to ~30 PFLOPS, log-uniform.
    rmax = 10.0 ** rng.uniform(4.5, 7.5, size=n_systems) * 3.0  # GFLOPS
    powers = rmax / eff  # watts

    # Provenance mix: higher levels preferentially near the top.
    n_measured = n_systems - n_derived
    order_for_levels = np.argsort(-eff)
    measured_slots = set(order_for_levels[:n_measured].tolist())
    n_high = n_measured - n_level1  # Level 2+ entries
    high_slots = set(order_for_levels[:n_high].tolist())

    subs = []
    for i in range(n_systems):
        if i in measured_slots:
            level = Level.L2 if i in high_slots else Level.L1
            source = PowerSource.MEASURED
        else:
            level = None
            source = PowerSource.DERIVED
        subs.append(
            Submission(
                system_name=f"system-{i:03d}",
                rmax_gflops=float(rmax[i]),
                power_watts=float(powers[i]),
                source=source,
                level=level,
                true_power_watts=float(powers[i]),
            )
        )
    return Green500List(subs)
