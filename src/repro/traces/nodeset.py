"""Per-node power sample collections.

Section 4 of the paper works with one time-averaged power number per
node (measured over a balanced, floating-point-heavy workload).  The
:class:`NodeSample` container holds such a collection together with the
identity of the system it came from, and provides the descriptive
statistics the paper reports (Table 4) plus subset extraction for the
sampling experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = ["NodePowerSample", "NodeSample"]


@dataclass(frozen=True)
class NodePowerSample:
    """A single node's time-averaged power measurement.

    Attributes
    ----------
    node_id:
        Index of the node within its system.
    watts:
        Time-averaged power over the workload, in watts.
    metadata:
        Optional free-form attributes (e.g. ``{"vid": 43}`` for the
        L-CSC VID case study, or a rack/chassis location).
    """

    node_id: int
    watts: float
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.watts < 0:
            raise ValueError(f"node power must be non-negative, got {self.watts}")


class NodeSample:
    """A collection of per-node time-averaged power measurements.

    Parameters
    ----------
    watts:
        One time-averaged power value per node, in watts.
    system:
        Optional human-readable system name (e.g. ``"LRZ"``).
    node_ids:
        Optional explicit node identifiers; default ``0..n-1``.
    """

    __slots__ = ("_watts", "_node_ids", "system")

    def __init__(
        self,
        watts: Iterable[float],
        *,
        system: str = "",
        node_ids: Sequence[int] | None = None,
    ) -> None:
        arr = np.asarray(list(watts) if not isinstance(watts, np.ndarray) else watts,
                         dtype=float).ravel()
        if arr.size == 0:
            raise ValueError("a NodeSample needs at least one node")
        if not np.all(np.isfinite(arr)):
            raise ValueError("node powers contain non-finite values")
        if np.any(arr < 0):
            raise ValueError("node powers must be non-negative")
        arr = arr.copy()
        arr.flags.writeable = False
        self._watts = arr
        if node_ids is None:
            ids = np.arange(arr.size, dtype=np.int64)
        else:
            ids = np.asarray(node_ids, dtype=np.int64).ravel()
            if ids.size != arr.size:
                raise ValueError(
                    f"node_ids length {ids.size} != watts length {arr.size}"
                )
            if np.unique(ids).size != ids.size:
                raise ValueError("node_ids must be unique")
            ids = ids.copy()
        ids.flags.writeable = False
        self._node_ids = ids
        self.system = system

    # ------------------------------------------------------------------
    @property
    def watts(self) -> np.ndarray:
        """Per-node time-averaged powers (read-only)."""
        return self._watts

    @property
    def node_ids(self) -> np.ndarray:
        """Node identifiers (read-only)."""
        return self._node_ids

    def __len__(self) -> int:
        return int(self._watts.size)

    def __repr__(self) -> str:
        return (
            f"NodeSample(system={self.system!r}, n={len(self)}, "
            f"mean={self.mean():.2f} W, cv={self.coefficient_of_variation():.4f})"
        )

    # ------------------------------------------------------------------
    # Table 4 statistics
    # ------------------------------------------------------------------
    def mean(self) -> float:
        """Sample mean per-node power, the paper's μ̂."""
        return float(self._watts.mean())

    def std(self) -> float:
        """Sample standard deviation (ddof=1), the paper's σ̂."""
        if len(self) < 2:
            return 0.0
        return float(self._watts.std(ddof=1))

    def coefficient_of_variation(self) -> float:
        """σ̂/μ̂ — the relative variability the sample-size rule keys on."""
        mu = self.mean()
        if mu == 0:
            raise ValueError("coefficient of variation undefined for zero mean")
        return self.std() / mu

    def total(self) -> float:
        """Sum of per-node powers: the true full-system compute power."""
        return float(self._watts.sum())

    # ------------------------------------------------------------------
    # subsetting
    # ------------------------------------------------------------------
    def take(self, indices: Sequence[int] | np.ndarray) -> "NodeSample":
        """Return the sub-sample at the given positional indices."""
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size == 0:
            raise ValueError("subset must be non-empty")
        if np.any(idx < 0) or np.any(idx >= len(self)):
            raise ValueError("subset index out of range")
        return NodeSample(
            self._watts[idx], system=self.system, node_ids=self._node_ids[idx]
        )

    def random_subset(self, n: int, rng: np.random.Generator) -> "NodeSample":
        """Sample ``n`` nodes uniformly without replacement."""
        if not (1 <= n <= len(self)):
            raise ValueError(f"need 1 <= n <= {len(self)}, got {n}")
        idx = rng.choice(len(self), size=n, replace=False)
        return self.take(idx)

    def resample_population(self, population_size: int,
                            rng: np.random.Generator) -> "NodeSample":
        """Bootstrap a synthetic full system of ``population_size`` nodes
        by resampling this collection *with* replacement.

        Step 1 of the paper's Figure 3 calibration procedure.
        """
        if population_size < 1:
            raise ValueError("population_size must be >= 1")
        idx = rng.integers(0, len(self), size=population_size)
        return NodeSample(self._watts[idx], system=self.system)

    def sorted_by_power(self) -> "NodeSample":
        """Nodes ordered by increasing power (for screening analyses)."""
        order = np.argsort(self._watts, kind="stable")
        return self.take(order)
