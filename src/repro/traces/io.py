"""Trace and node-sample (de)serialisation.

Real measurement campaigns exchange meter logs as flat files; this
module reads and writes the two interchange formats the library's data
structures map onto:

* **trace CSV** — ``time_s,watts`` rows (header required), one file per
  meter, the format rack PDUs and SPEC-class analysers export;
* **node-sample CSV** — ``node_id,watts`` rows of per-node time-averaged
  power, the Section 4 data shape.

JSON round-trips carry full metadata for archival.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.traces.nodeset import NodeSample
from repro.traces.powertrace import PowerTrace

__all__ = [
    "write_trace_csv",
    "read_trace_csv",
    "write_node_sample_csv",
    "read_node_sample_csv",
    "trace_to_json",
    "trace_from_json",
]


def write_trace_csv(trace: PowerTrace, path) -> None:
    """Write a trace as ``time_s,watts`` CSV."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time_s", "watts"])
        for t, w in zip(trace.times, trace.watts):
            writer.writerow([f"{t:.6f}", f"{w:.6f}"])


def read_trace_csv(path) -> PowerTrace:
    """Read a ``time_s,watts`` CSV into a trace.

    Every row is validated *at load time* with the offending line
    number — a NaN/inf reading, a negative power, or a timestamp that
    fails to increase raises ``ValueError`` here instead of flowing
    silently into downstream estimators (real meter logs contain all
    three; see :mod:`repro.faults.models` for how they arise).
    """
    path = Path(path)
    times: list[float] = []
    watts: list[float] = []
    with path.open("r", newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None or [h.strip().lower() for h in header[:2]] != [
            "time_s", "watts",
        ]:
            raise ValueError(
                f"{path}: expected header 'time_s,watts', got {header!r}"
            )
        for lineno, row in enumerate(reader, start=2):
            if not row or (len(row) == 1 and not row[0].strip()):
                continue
            if len(row) < 2:
                raise ValueError(f"{path}:{lineno}: expected two columns")
            try:
                t = float(row[0])
                w = float(row[1])
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
            if not np.isfinite(t):
                raise ValueError(
                    f"{path}:{lineno}: non-finite timestamp {row[0]!r}"
                )
            if not np.isfinite(w):
                raise ValueError(
                    f"{path}:{lineno}: non-finite power reading {row[1]!r} "
                    "(dropped meter sample? repair it before loading)"
                )
            if w < 0:
                raise ValueError(
                    f"{path}:{lineno}: negative power reading {w!r} W"
                )
            if times and t <= times[-1]:
                raise ValueError(
                    f"{path}:{lineno}: timestamp {t!r} does not increase "
                    f"(previous row had {times[-1]!r}; is the log "
                    "interleaved or clock-skewed?)"
                )
            times.append(t)
            watts.append(w)
    if not times:
        raise ValueError(f"{path}: no samples")
    return PowerTrace(times, watts)


def write_node_sample_csv(sample: NodeSample, path) -> None:
    """Write per-node averages as ``node_id,watts`` CSV."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(["node_id", "watts"])
        for node_id, w in zip(sample.node_ids, sample.watts):
            writer.writerow([int(node_id), f"{w:.6f}"])


def read_node_sample_csv(path, *, system: str = "") -> NodeSample:
    """Read a ``node_id,watts`` CSV into a :class:`NodeSample`."""
    path = Path(path)
    ids: list[int] = []
    watts: list[float] = []
    with path.open("r", newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None or [h.strip().lower() for h in header[:2]] != [
            "node_id", "watts",
        ]:
            raise ValueError(
                f"{path}: expected header 'node_id,watts', got {header!r}"
            )
        for lineno, row in enumerate(reader, start=2):
            if not row or (len(row) == 1 and not row[0].strip()):
                continue
            if len(row) < 2:
                raise ValueError(f"{path}:{lineno}: expected two columns")
            try:
                node_id = int(row[0])
                w = float(row[1])
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
            if not np.isfinite(w):
                raise ValueError(
                    f"{path}:{lineno}: non-finite power reading {row[1]!r}"
                )
            if w < 0:
                raise ValueError(
                    f"{path}:{lineno}: negative power reading {w!r} W"
                )
            ids.append(node_id)
            watts.append(w)
    if not watts:
        raise ValueError(f"{path}: no nodes")
    return NodeSample(watts, system=system, node_ids=ids)


def trace_to_json(trace: PowerTrace, *, metadata: dict | None = None) -> str:
    """Serialise a trace (plus free-form metadata) to a JSON string."""
    doc = {
        "format": "repro.powertrace/1",
        "metadata": metadata or {},
        "times": trace.times.tolist(),
        "watts": trace.watts.tolist(),
    }
    return json.dumps(doc)


def trace_from_json(text: str) -> tuple[PowerTrace, dict]:
    """Deserialise :func:`trace_to_json` output.

    Returns the trace and its metadata dict.
    """
    doc = json.loads(text)
    if doc.get("format") != "repro.powertrace/1":
        raise ValueError(f"unrecognised format {doc.get('format')!r}")
    trace = PowerTrace(
        np.asarray(doc["times"], dtype=float),
        np.asarray(doc["watts"], dtype=float),
    )
    return trace, dict(doc.get("metadata", {}))
