"""The :class:`PowerTrace` time series.

A trace is a pair of equal-length 1-D arrays ``(times, watts)`` with
strictly increasing times.  Samples are treated as *instantaneous
readings*; averages over an interval use trapezoidal integration so
that irregularly sampled traces (e.g. an energy-integrating Level 3
meter downsampled for display) average correctly.

Design notes
------------
* Immutable by convention: operations return new traces; the underlying
  arrays are stored with ``writeable=False`` to catch accidental
  mutation (a correctness bug class the paper's own data pipeline hit).
* All per-sample math is vectorised NumPy; nothing here loops over
  samples in Python.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["PowerTrace"]


def _as_locked_array(values: Iterable[float], name: str) -> np.ndarray:
    arr = np.array(values, dtype=float, copy=True).ravel()
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    arr.flags.writeable = False
    return arr


class PowerTrace:
    """A sampled power signal.

    Parameters
    ----------
    times:
        Sample timestamps in seconds, strictly increasing.
    watts:
        Instantaneous power readings in watts, same length as ``times``.
        Power must be non-negative (a reading of 0 W is legal: a node
        that is powered off, or a meter dropout marked as zero).
    """

    __slots__ = ("_times", "_watts")

    def __init__(self, times: Iterable[float], watts: Iterable[float]) -> None:
        t = _as_locked_array(times, "times")
        p = _as_locked_array(watts, "watts")
        if t.shape != p.shape:
            raise ValueError(
                f"times and watts must have the same length, got {t.size} and {p.size}"
            )
        if t.size >= 2 and not np.all(np.diff(t) > 0):
            raise ValueError("times must be strictly increasing")
        if np.any(p < 0):
            raise ValueError("power readings must be non-negative")
        self._times = t
        self._watts = p

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Timestamps in seconds (read-only view)."""
        return self._times

    @property
    def watts(self) -> np.ndarray:
        """Power readings in watts (read-only view)."""
        return self._watts

    @property
    def start(self) -> float:
        """Timestamp of the first sample."""
        return float(self._times[0])

    @property
    def end(self) -> float:
        """Timestamp of the last sample."""
        return float(self._times[-1])

    @property
    def duration(self) -> float:
        """``end - start`` in seconds (zero for a single-sample trace)."""
        return self.end - self.start

    def __len__(self) -> int:
        return int(self._times.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PowerTrace):
            return NotImplemented
        return (
            self._times.shape == other._times.shape
            and bool(np.array_equal(self._times, other._times))
            and bool(np.array_equal(self._watts, other._watts))
        )

    def __hash__(self) -> int:
        return hash((self._times.tobytes(), self._watts.tobytes()))

    def __repr__(self) -> str:
        return (
            f"PowerTrace(n={len(self)}, span=[{self.start:.1f}, {self.end:.1f}] s, "
            f"mean={self.mean_power():.1f} W)"
        )

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def mean_power(self) -> float:
        """Time-weighted average power over the trace, in watts.

        For a single sample, the instantaneous reading is returned.
        Otherwise this is the trapezoidal integral of power divided by
        the duration, which is exact for piecewise-linear power and
        agrees with the arithmetic mean for uniformly sampled traces up
        to endpoint weighting.
        """
        if len(self) == 1:
            return float(self._watts[0])
        return self.energy() / self.duration

    def energy(self) -> float:
        """Total energy over the trace in joules (trapezoidal rule)."""
        if len(self) == 1:
            return 0.0
        return float(np.trapezoid(self._watts, self._times))

    def max_power(self) -> float:
        """Maximum instantaneous reading in watts."""
        return float(self._watts.max())

    def min_power(self) -> float:
        """Minimum instantaneous reading in watts."""
        return float(self._watts.min())

    def sample_interval(self) -> float:
        """Median spacing between samples, in seconds."""
        if len(self) < 2:
            raise ValueError("sample_interval undefined for single-sample trace")
        return float(np.median(np.diff(self._times)))

    # ------------------------------------------------------------------
    # slicing
    # ------------------------------------------------------------------
    def window(self, t0: float, t1: float) -> "PowerTrace":
        """Return the sub-trace covering ``[t0, t1]``.

        Samples strictly inside the window are kept; the boundary values
        at exactly ``t0`` and ``t1`` are *interpolated* and included, so
        that ``window(...).mean_power()`` equals the trapezoidal average
        of the parent signal over the window.  This matters when window
        edges fall between samples, which is the common case for the
        "20% of the middle 80%" Level 1 rule.
        """
        if not (t0 < t1):
            raise ValueError(f"need t0 < t1, got [{t0}, {t1}]")
        if t0 < self.start - 1e-9 or t1 > self.end + 1e-9:
            raise ValueError(
                f"window [{t0}, {t1}] outside trace span [{self.start}, {self.end}]"
            )
        t0 = max(t0, self.start)
        t1 = min(t1, self.end)
        inner = (self._times > t0) & (self._times < t1)
        times = np.concatenate(([t0], self._times[inner], [t1]))
        p0 = float(np.interp(t0, self._times, self._watts))
        p1 = float(np.interp(t1, self._times, self._watts))
        watts = np.concatenate(([p0], self._watts[inner], [p1]))
        # De-duplicate if t0/t1 landed exactly on existing samples.
        keep = np.concatenate(([True], np.diff(times) > 0))
        return PowerTrace(times[keep], watts[keep])

    def fraction_window(self, f0: float, f1: float) -> "PowerTrace":
        """Window by run fraction: ``f0=0.1, f1=0.9`` → the middle 80%."""
        if not (0.0 <= f0 < f1 <= 1.0):
            raise ValueError(f"need 0 <= f0 < f1 <= 1, got ({f0}, {f1})")
        span = self.duration
        if span == 0:
            raise ValueError("fraction_window undefined for zero-duration trace")
        return self.window(self.start + f0 * span, self.start + f1 * span)

    def shift(self, dt: float) -> "PowerTrace":
        """Return a copy with all timestamps shifted by ``dt`` seconds."""
        return PowerTrace(self._times + dt, self._watts)

    def scale(self, factor: float) -> "PowerTrace":
        """Return a copy with power multiplied by ``factor`` (>= 0).

        This is the linear extrapolation step of the EE HPC WG
        methodology: a subset measurement scaled by ``N / n``.
        """
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        return PowerTrace(self._times, self._watts * factor)

    def __add__(self, other: "PowerTrace") -> "PowerTrace":
        """Pointwise sum of two traces sharing identical timestamps."""
        if not isinstance(other, PowerTrace):
            return NotImplemented
        if not np.array_equal(self._times, other._times):
            raise ValueError(
                "traces must share timestamps; resample or align them first"
            )
        return PowerTrace(self._times, self._watts + other._watts)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_uniform(
        watts: Iterable[float], interval_s: float = 1.0, start: float = 0.0
    ) -> "PowerTrace":
        """Build a trace from uniformly spaced readings.

        ``interval_s`` defaults to one second — the Level 1/2 sampling
        granularity mandated by the methodology (Table 1, aspect 1a).
        """
        p = np.asarray(list(watts) if not isinstance(watts, np.ndarray) else watts,
                       dtype=float)
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        t = start + interval_s * np.arange(p.size, dtype=float)
        return PowerTrace(t, p)

    @staticmethod
    def constant(watts: float, duration_s: float, interval_s: float = 1.0,
                 start: float = 0.0) -> "PowerTrace":
        """A flat trace at ``watts`` for ``duration_s`` seconds."""
        n = max(2, int(round(duration_s / interval_s)) + 1)
        t = np.linspace(start, start + duration_s, n)
        return PowerTrace(t, np.full(n, float(watts)))

    @staticmethod
    def sum_traces(traces: list["PowerTrace"]) -> "PowerTrace":
        """Sum many aligned traces (e.g. per-node → full system).

        All traces must share identical timestamps; use
        :func:`repro.traces.ops.align` first if they do not.
        """
        if not traces:
            raise ValueError("need at least one trace")
        base = traces[0]
        stack = np.empty((len(traces), len(base)), dtype=float)
        for i, tr in enumerate(traces):
            if not np.array_equal(tr.times, base.times):
                raise ValueError(f"trace {i} timestamps differ from trace 0")
            stack[i] = tr.watts
        return PowerTrace(base.times, stack.sum(axis=0))
