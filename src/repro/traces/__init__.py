"""Power time-series data structures and operations.

The :class:`~repro.traces.powertrace.PowerTrace` is the common currency
between the cluster simulator, the metering layer and the statistical
core: a sampled power signal with explicit timestamps, supporting the
segment arithmetic (first/last 20%, middle 80%, sliding windows) that
the EE HPC WG methodology and the paper's Section 3 analysis are built
on.
"""

from repro.traces.powertrace import PowerTrace
from repro.traces.nodeset import NodePowerSample, NodeSample
from repro.traces.ops import (
    align,
    integrate_energy,
    resample,
    segment_average,
    sliding_window_averages,
    split_fractions,
)
from repro.traces.io import (
    read_node_sample_csv,
    read_trace_csv,
    trace_from_json,
    trace_to_json,
    write_node_sample_csv,
    write_trace_csv,
)
from repro.traces.synth import SimulatedRun, simulate_run

__all__ = [
    "PowerTrace",
    "NodePowerSample",
    "NodeSample",
    "align",
    "integrate_energy",
    "resample",
    "segment_average",
    "sliding_window_averages",
    "split_fractions",
    "read_node_sample_csv",
    "read_trace_csv",
    "trace_from_json",
    "trace_to_json",
    "write_node_sample_csv",
    "write_trace_csv",
    "SimulatedRun",
    "simulate_run",
]
