"""Trace synthesis: system × workload → power time series.

:func:`simulate_run` produces a :class:`SimulatedRun`: the full-system
power trace for a complete benchmark run (setup + core + teardown), the
core-phase window bounds, and on-demand per-subset traces for the
metering layer.

Performance note (the fleets are large): node power under a balanced
workload depends on time only through the scalar utilisation ``u(t)``,
so instead of an ``(n_nodes × n_times)`` evaluation we tabulate the
fleet's (or subset's) total power on a small utilisation grid once and
interpolate — O(n_nodes·G + n_times) instead of O(n_nodes·n_times).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.rng import SeededStreams
from repro.traces.powertrace import PowerTrace
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.system import SystemModel

__all__ = ["SimulatedRun", "simulate_run"]

_U_GRID = 129  # utilisation-grid resolution for the power interpolant


def _power_curve(
    system: SystemModel,
    indices: np.ndarray | None,
    *,
    freq_multiplier: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Tabulate total power of a node subset vs. utilisation."""
    u = np.linspace(0.0, 1.0, _U_GRID)
    totals = np.empty(_U_GRID)
    for i, ui in enumerate(u):
        totals[i] = system.node_total_powers(
            float(ui), indices=indices, freq_multiplier=freq_multiplier
        ).sum()
    return u, totals


def _powers_with_governor(
    system: SystemModel,
    indices: np.ndarray | None,
    util: np.ndarray,
    freq_mult: np.ndarray,
) -> np.ndarray:
    """Evaluate total power over time under a time-varying frequency
    multiplier, via one utilisation→power curve per distinct multiplier.

    Stepped governors have a handful of distinct values; a continuous
    profile would defeat the tabulation, so it is rejected.
    """
    levels = np.unique(freq_mult)
    if levels.size > 32:
        raise ValueError(
            "governor produces too many distinct frequency levels for "
            "tabulated evaluation; use a stepped governor"
        )
    watts = np.empty(util.size)
    for m in levels:
        u_grid, p_grid = _power_curve(
            system, indices, freq_multiplier=float(m)
        )
        mask = freq_mult == m
        watts[mask] = np.interp(util[mask], u_grid, p_grid)
    return watts


@dataclass
class SimulatedRun:
    """A complete simulated benchmark run on one system.

    Attributes
    ----------
    system / workload:
        What produced this run.
    trace:
        Full-run full-system power trace (setup + core + teardown).
    dt:
        Sample spacing in seconds.
    seed:
        Root seed for the run's stochastic components.
    noise_cv:
        Coefficient of variation of the common-mode power noise.
    """

    system: SystemModel
    workload: Workload
    trace: PowerTrace
    dt: float
    seed: int
    noise_cv: float
    _noise: np.ndarray = field(repr=False, default=None)
    _times: np.ndarray = field(repr=False, default=None)
    _util: np.ndarray = field(repr=False, default=None)
    _freq_mult: np.ndarray = field(repr=False, default=None)

    # ------------------------------------------------------------------
    @property
    def core_window(self) -> tuple[float, float]:
        """Wall-clock bounds of the core phase within :attr:`trace`."""
        return self.workload.phases.core_window()

    def core_trace(self) -> PowerTrace:
        """The core-phase slice of the full-system trace."""
        t0, t1 = self.core_window
        return self.trace.window(t0, t1)

    def true_core_average(self) -> float:
        """Time-averaged full-system power over the whole core phase.

        This is the quantity a perfect Level 3 measurement reports, and
        the ground truth all methodology experiments compare against.
        """
        return self.core_trace().mean_power()

    def subset_trace(self, node_indices: np.ndarray) -> PowerTrace:
        """Power trace of the summed subset of nodes.

        The subset sees the same utilisation profile and the same
        common-mode noise as the full system (load fluctuations are
        machine-wide under a balanced workload); only its silicon draws
        differ.  Meter-level noise belongs to the metering layer, not
        here.
        """
        idx = np.asarray(node_indices, dtype=np.int64).ravel()
        if idx.size == 0:
            raise ValueError("subset must be non-empty")
        if np.any(idx < 0) or np.any(idx >= self.system.n_nodes):
            raise ValueError("node index out of range")
        if np.unique(idx).size != idx.size:
            raise ValueError("node indices must be unique")
        if self._freq_mult is None:
            u_grid, p_grid = _power_curve(self.system, idx)
            watts = np.interp(self._util, u_grid, p_grid)
        else:
            watts = _powers_with_governor(
                self.system, idx, self._util, self._freq_mult
            )
        return PowerTrace(self._times, watts * self._noise)

    def node_power_matrix(
        self,
        t0_s: float | None = None,
        t1_s: float | None = None,
        node_indices: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-node instantaneous power on the simulation grid.

        Returns ``(times, watts)`` where ``watts[k, j]`` is node
        ``node_indices[j]``'s power at ``times[k]``, including the
        common-mode noise (consistent with :meth:`subset_trace`, which
        is the row-sum of this matrix).  ``[t0_s, t1_s]`` clips to grid
        samples inside the bounds (defaults: the whole run).  This is
        the per-node view the streaming layer
        (:mod:`repro.stream.ingest`) replays tick by tick.
        """
        if node_indices is None:
            idx = np.arange(self.system.n_nodes, dtype=np.int64)
        else:
            idx = np.asarray(node_indices, dtype=np.int64).ravel()
            if idx.size == 0:
                raise ValueError("node subset must be non-empty")
            if np.any(idx < 0) or np.any(idx >= self.system.n_nodes):
                raise ValueError("node index out of range")
            if np.unique(idx).size != idx.size:
                raise ValueError("node indices must be unique")
        lo = self._times[0] if t0_s is None else float(t0_s)
        hi = self._times[-1] if t1_s is None else float(t1_s)
        if hi < lo:
            raise ValueError(f"need t0_s <= t1_s, got [{lo}, {hi}]")
        in_span = (self._times >= lo - 1e-9) & (self._times <= hi + 1e-9)
        times = self._times[in_span]
        if times.size == 0:
            raise ValueError("no grid samples inside the requested span")
        util = self._util[in_span]
        noise = self._noise[in_span]
        u_grid = np.linspace(0.0, 1.0, _U_GRID)
        if self._freq_mult is None:
            levels = np.array([1.0])
            level_of = np.zeros(times.size, dtype=np.int64)
        else:
            fm = self._freq_mult[in_span]
            levels, level_of = np.unique(fm, return_inverse=True)
        watts = np.empty((times.size, idx.size))
        for li, mult in enumerate(levels):
            per_node = np.empty((_U_GRID, idx.size))
            for gi, ui in enumerate(u_grid):
                per_node[gi] = self.system.node_total_powers(
                    float(ui), indices=idx, freq_multiplier=float(mult)
                )
            mask = level_of == li
            u_sel = util[mask]
            cell = np.clip(
                np.searchsorted(u_grid, u_sel) - 1, 0, _U_GRID - 2
            )
            w = (u_sel - u_grid[cell]) / (u_grid[cell + 1] - u_grid[cell])
            watts[mask] = (
                per_node[cell] * (1 - w)[:, None]
                + per_node[cell + 1] * w[:, None]
            )
        return times, watts * noise[:, None]

    def _validated_indices(
        self, node_indices: np.ndarray | None
    ) -> np.ndarray:
        """Resolve and validate a node subset (default: every node)."""
        if node_indices is None:
            return np.arange(self.system.n_nodes, dtype=np.int64)
        idx = np.asarray(node_indices, dtype=np.int64).ravel()
        if idx.size == 0:
            raise ValueError("node subset must be non-empty")
        if np.any(idx < 0) or np.any(idx >= self.system.n_nodes):
            raise ValueError("node index out of range")
        if np.unique(idx).size != idx.size:
            raise ValueError("node indices must be unique")
        return idx

    def stream_run(
        self,
        *,
        node_indices: np.ndarray | None = None,
        ticks_per_batch: int = 60,
        core_only: bool = True,
        ring=None,
    ):
        """Stream per-node power batches without materialising the run.

        A generator over :class:`~repro.stream.ingest.SampleBatch`
        chunks that synthesises each tick block directly into its
        output buffer — the full ``(n_ticks, n_nodes)`` matrix of
        :meth:`node_power_matrix` never exists.  Cell for cell the
        yielded samples are *bit-identical* to the corresponding
        ``node_power_matrix`` slice (the interpolation arithmetic is
        the same elementwise expressions, evaluated chunkwise), so the
        streaming and batch layers agree exactly; the property suite
        locks this.

        Parameters
        ----------
        node_indices:
            Fleet subset to stream (default: every node) — a shard
            worker passes its contiguous node range.
        ticks_per_batch:
            Ticks per yielded batch (the collector's flush interval).
        core_only:
            Restrict to the core phase, as a methodology measurement
            would; ``False`` streams the full run.
        ring:
            Optional :class:`~repro.shard.slab.SlabRing` (anything with
            ``acquire()``/``release()`` and slab ``times``/``watts``/
            ``node_ids`` columns of capacity ``ticks_per_batch`` ×
            ``len(node_indices)``).  When given, batches are
            zero-copy views into the ring's preallocated slabs and a
            yielded view stays valid until one further batch has been
            yielded (double buffering); when ``None`` each batch is a
            fresh allocation, matching :func:`~repro.stream.ingest.replay_run`
            semantics.
        """
        if ticks_per_batch < 1:
            raise ValueError("ticks_per_batch must be >= 1")
        idx = self._validated_indices(node_indices)
        if core_only:
            t0_s, t1_s = self.core_window
            in_span = (self._times >= t0_s - 1e-9) & (
                self._times <= t1_s + 1e-9
            )
        else:
            in_span = np.ones(self._times.size, dtype=bool)
        times = self._times[in_span]
        if times.size == 0:
            raise ValueError("no grid samples inside the requested span")
        util = self._util[in_span]
        noise = self._noise[in_span]
        u_grid = np.linspace(0.0, 1.0, _U_GRID)
        if self._freq_mult is None:
            levels = np.array([1.0])
            level_of = np.zeros(times.size, dtype=np.int64)
        else:
            fm = self._freq_mult[in_span]
            levels, level_of = np.unique(fm, return_inverse=True)
        # Per-level utilisation→per-node power grids, tabulated once:
        # O(G · n_idx · n_levels) memory, independent of run length.
        grids = []
        for mult in levels:
            per_node = np.empty((_U_GRID, idx.size))
            for gi, ui in enumerate(u_grid):
                per_node[gi] = self.system.node_total_powers(
                    float(ui), indices=idx, freq_multiplier=float(mult)
                )
            grids.append(per_node)
        ids = idx.copy()
        # Scratch buffers reused across batches (single-level fast path).
        scratch_lo = np.empty((ticks_per_batch, idx.size))
        scratch_hi = np.empty((ticks_per_batch, idx.size))
        # Deferred import: repro.stream.ingest imports this module.
        from repro.stream.ingest import SampleBatch

        held: list = []
        try:
            for lo in range(0, times.size, ticks_per_batch):
                hi = min(lo + ticks_per_batch, times.size)
                n_t = hi - lo
                if ring is not None:
                    while len(held) >= max(ring.depth - 1, 1):
                        ring.release(held.pop(0))
                    slab = ring.acquire()
                    out = slab.watts[:n_t]
                    slab.times[:n_t] = times[lo:hi]
                    slab.node_ids[:] = ids
                    batch_times = slab.times[:n_t]
                    batch_ids = slab.node_ids
                    held.append(slab)
                else:
                    out = np.empty((n_t, idx.size))
                    batch_times = times[lo:hi]
                    batch_ids = ids
                chunk_levels = level_of[lo:hi]
                if levels.size == 1:
                    u_sel = util[lo:hi]
                    cell = np.clip(
                        np.searchsorted(u_grid, u_sel) - 1, 0, _U_GRID - 2
                    )
                    w = (u_sel - u_grid[cell]) / (
                        u_grid[cell + 1] - u_grid[cell]
                    )
                    # out = grid[cell]·(1−w) + grid[cell+1]·w, evaluated
                    # with the same elementwise ops node_power_matrix
                    # uses so chunked results match it bit for bit.
                    a = scratch_lo[:n_t]
                    b = scratch_hi[:n_t]
                    np.take(grids[0], cell, axis=0, out=a)
                    np.take(grids[0], cell + 1, axis=0, out=b)
                    a *= (1 - w)[:, None]
                    b *= w[:, None]
                    np.add(a, b, out=out)
                else:
                    for li in range(levels.size):
                        mask = chunk_levels == li
                        if not mask.any():
                            continue
                        u_sel = util[lo:hi][mask]
                        cell = np.clip(
                            np.searchsorted(u_grid, u_sel) - 1,
                            0,
                            _U_GRID - 2,
                        )
                        w = (u_sel - u_grid[cell]) / (
                            u_grid[cell + 1] - u_grid[cell]
                        )
                        out[mask] = (
                            grids[li][cell] * (1 - w)[:, None]
                            + grids[li][cell + 1] * w[:, None]
                        )
                out *= noise[lo:hi, None]
                yield SampleBatch.from_columns(
                    times=batch_times, watts=out, node_ids=batch_ids
                )
        finally:
            if ring is not None:
                for slab in held:
                    ring.release(slab)

    def node_average_powers(self) -> np.ndarray:
        """True per-node time-averaged power over the core phase.

        Computed from the utilisation profile's core-phase average; used
        as ground truth by sampling experiments.
        """
        t0, t1 = self.core_window
        in_core = (self._times >= t0) & (self._times <= t1)
        u_core = self._util[in_core]
        noise_core = self._noise[in_core]
        # Per-node power is affine-ish in u; average over the core grid.
        u_grid = np.linspace(0.0, 1.0, _U_GRID)
        per_node = np.empty((_U_GRID, self.system.n_nodes))
        for i, ui in enumerate(u_grid):
            per_node[i] = self.system.node_total_powers(float(ui))
        # Interpolate each node's power at the core utilisation samples.
        idx = np.clip(np.searchsorted(u_grid, u_core) - 1, 0, _U_GRID - 2)
        w = (u_core - u_grid[idx]) / (u_grid[idx + 1] - u_grid[idx])
        powers = per_node[idx] * (1 - w)[:, None] + per_node[idx + 1] * w[:, None]
        return (powers * noise_core[:, None]).mean(axis=0)


def simulate_run(
    system: SystemModel,
    workload: Workload,
    *,
    dt: float = 1.0,
    noise_cv: float = 0.004,
    noise_correlation_s: float = 30.0,
    governor=None,
    seed: int | None = None,
) -> SimulatedRun:
    """Simulate a full benchmark run and return its power trace.

    Parameters
    ----------
    dt:
        Sample spacing in seconds.  1 s is the methodology's Level 1/2
        granularity; long CPU runs may use coarser spacing for speed.
    noise_cv:
        Coefficient of variation of the multiplicative common-mode noise
        (load imbalance transients, OS jitter, PSU regulation).
    noise_correlation_s:
        Autocorrelation time of the noise (AR(1) in discrete steps); the
        paper's Sequoia curve is "jagged" at the minutes scale.
    governor:
        Optional :class:`~repro.cluster.dvfs.DvfsGovernor` applying a
        time-varying machine-wide frequency multiplier across the core
        phase (the methodology explicitly allows DVFS; Section 3 shows
        how it interacts with partial measurement windows).  Must be
        stepped (finitely many levels).  Setup/teardown run at nominal
        frequency.
    seed:
        Run-level seed; defaults to the system's seed.
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    if noise_cv < 0:
        raise ValueError("noise_cv must be >= 0")
    if noise_correlation_s <= 0:
        raise ValueError("noise_correlation_s must be positive")

    phases = workload.phases
    n = int(np.floor(phases.total_s / dt)) + 1
    times = dt * np.arange(n, dtype=float)

    # Utilisation profile over the full run.
    util = np.empty(n)
    in_setup = times < phases.core_start_s
    in_core = (times >= phases.core_start_s) & (times <= phases.core_end_s)
    in_teardown = times > phases.core_end_s
    util[in_setup] = workload.setup_utilisation()
    frac = (times[in_core] - phases.core_start_s) / phases.core_s
    util[in_core] = workload.utilisation(np.clip(frac, 0.0, 1.0))
    util[in_teardown] = workload.teardown_utilisation()

    # Common-mode AR(1) multiplicative noise.
    run_seed = system.seed if seed is None else int(seed)
    rng = SeededStreams(run_seed)["run-noise"]
    if noise_cv > 0:
        phi = float(np.exp(-dt / noise_correlation_s))
        innov_sd = noise_cv * np.sqrt(1.0 - phi**2)
        eps = rng.standard_normal(n) * innov_sd
        ar = np.empty(n)
        ar[0] = rng.standard_normal() * noise_cv
        # AR(1) recursion via lfilter-style vectorisation would need
        # scipy.signal; the paper-scale n (~1e5) makes a tight loop in
        # NumPy acceptable, but scipy is a dependency — use it.
        from scipy.signal import lfilter

        ar = lfilter([1.0], [1.0, -phi], eps)
        ar[0] = 0.0
        noise = np.clip(1.0 + ar, 0.5, 1.5)
    else:
        noise = np.ones(n)

    if governor is None:
        freq_mult = None
        u_grid, p_grid = _power_curve(system, None)
        watts = np.interp(util, u_grid, p_grid) * noise
    else:
        freq_mult = np.ones(n)
        freq_mult[in_core] = governor.frequency_multiplier(
            np.clip(frac, 0.0, 1.0)
        )
        watts = _powers_with_governor(system, None, util, freq_mult) * noise

    # Shared subsystems (interconnect, infrastructure) draw power for
    # the whole run; the full-system trace — what a whole-machine meter
    # upstream of everything sees — includes them.  Per-node subset
    # traces do not (node meters cannot see the switches).
    if system.shared is not None and not system.shared.is_zero:
        watts = watts + np.asarray(system.shared.power(util), dtype=float)

    trace = PowerTrace(times, watts)
    return SimulatedRun(
        system=system,
        workload=workload,
        trace=trace,
        dt=dt,
        seed=run_seed,
        noise_cv=noise_cv,
        _noise=noise,
        _times=times,
        _util=util,
        _freq_mult=freq_mult,
    )
