"""Operations on :class:`~repro.traces.powertrace.PowerTrace` objects.

These implement the segment arithmetic that Section 3 of the paper and
the EE HPC WG methodology rules are expressed in: fractional segments of
the core phase ("first 20%", "middle 80%"), sliding measurement windows,
resampling to a meter's granularity, and energy integration.
"""

from __future__ import annotations

import numpy as np

from repro.traces.powertrace import PowerTrace

__all__ = [
    "segment_average",
    "split_fractions",
    "sliding_window_averages",
    "resample",
    "align",
    "integrate_energy",
    "mean_over_fraction",
]


def segment_average(trace: PowerTrace, f0: float, f1: float) -> float:
    """Time-weighted average power over the fractional segment ``[f0, f1]``.

    ``segment_average(tr, 0.0, 0.2)`` is the paper's "first 20%" number;
    ``segment_average(tr, 0.8, 1.0)`` the "last 20%".
    """
    return trace.fraction_window(f0, f1).mean_power()


def mean_over_fraction(trace: PowerTrace, start_fraction: float,
                       length_fraction: float) -> float:
    """Average power of a window of ``length_fraction`` of the run
    beginning at ``start_fraction``.

    Convenience wrapper used by the window-placement search in
    :mod:`repro.analysis.gaming`.
    """
    return segment_average(trace, start_fraction, start_fraction + length_fraction)


def split_fractions(trace: PowerTrace, edges: list[float]) -> list[PowerTrace]:
    """Split a trace at the given fractional edges.

    ``split_fractions(tr, [0.1, 0.9])`` returns the first 10%, the middle
    80% and the last 10% as three traces.
    """
    if not edges:
        return [trace]
    if any(not (0.0 < e < 1.0) for e in edges):
        raise ValueError(f"edges must lie strictly in (0, 1), got {edges}")
    if sorted(edges) != list(edges) or len(set(edges)) != len(edges):
        raise ValueError(f"edges must be strictly increasing, got {edges}")
    bounds = [0.0, *edges, 1.0]
    return [trace.fraction_window(a, b) for a, b in zip(bounds, bounds[1:])]


def sliding_window_averages(
    trace: PowerTrace,
    window_fraction: float,
    *,
    within: tuple[float, float] = (0.0, 1.0),
    step_fraction: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Average power of a sliding window across the run.

    Returns ``(start_fractions, averages)`` where ``averages[i]`` is the
    mean power of the window ``[start_fractions[i],
    start_fractions[i] + window_fraction]``.  ``within`` restricts the
    placement, e.g. ``(0.1, 0.9)`` confines the window to the middle 80%
    as Level 1 requires.

    This is the primitive behind both the gaming analysis (find the
    window minimising reported power) and the timing-variability numbers
    in the abstract (spread of window averages).
    """
    lo, hi = within
    if not (0.0 <= lo < hi <= 1.0):
        raise ValueError(f"invalid placement range {within}")
    if not (0.0 < window_fraction <= hi - lo):
        raise ValueError(
            f"window_fraction {window_fraction} does not fit in {within}"
        )
    if step_fraction is None:
        # Default to roughly one step per sample, capped for cheapness.
        n_samples = max(len(trace) - 1, 1)
        step_fraction = max((hi - lo - window_fraction) / max(n_samples, 1), 1e-4)
    if step_fraction <= 0:
        raise ValueError(f"step_fraction must be positive, got {step_fraction}")

    n_steps = int(np.floor((hi - lo - window_fraction) / step_fraction + 1e-12)) + 1
    starts = lo + step_fraction * np.arange(n_steps)
    # Guard against float drift pushing the last window past `hi`.
    starts = starts[starts + window_fraction <= hi + 1e-12]
    if starts.size == 0:
        starts = np.array([lo])

    # Vectorised windowed means via the cumulative energy integral:
    # E(t) = ∫ P dt, window mean = (E(t0+w) - E(t0)) / w.
    t, p = trace.times, trace.watts
    if len(trace) == 1:
        return starts, np.full(starts.size, float(p[0]))
    cum = np.concatenate(([0.0], np.cumsum(np.diff(t) * (p[:-1] + p[1:]) / 2.0)))

    span = trace.duration
    t0 = trace.start + starts * span
    t1 = t0 + window_fraction * span
    e0 = _interp_cumulative(t0, t, p, cum)
    e1 = _interp_cumulative(t1, t, p, cum)
    averages = (e1 - e0) / (window_fraction * span)
    return starts, averages


def _interp_cumulative(tq: np.ndarray, t: np.ndarray, p: np.ndarray,
                       cum: np.ndarray) -> np.ndarray:
    """Evaluate the exact trapezoidal cumulative integral at query times.

    Within a sample interval the power is linear, so the cumulative
    energy is quadratic; plain ``np.interp`` on ``cum`` would be only
    first-order accurate.  We add the quadratic correction explicitly.
    """
    idx = np.clip(np.searchsorted(t, tq, side="right") - 1, 0, t.size - 2)
    tl, tr = t[idx], t[idx + 1]
    pl, pr = p[idx], p[idx + 1]
    dt = np.clip(tq - tl, 0.0, tr - tl)
    slope = (pr - pl) / (tr - tl)
    return cum[idx] + pl * dt + 0.5 * slope * dt * dt


def resample(trace: PowerTrace, interval_s: float) -> PowerTrace:
    """Resample a trace to uniform ``interval_s``-second spacing.

    Linear interpolation; used to model a meter reading the underlying
    (continuous) power signal at its own granularity — e.g. one sample
    per second for a Level 1 meter reading a sub-second simulated
    signal.
    """
    if interval_s <= 0:
        raise ValueError(f"interval_s must be positive, got {interval_s}")
    if trace.duration <= 0:
        raise ValueError("cannot resample a zero-duration trace")
    n = int(np.floor(trace.duration / interval_s)) + 1
    t = trace.start + interval_s * np.arange(n, dtype=float)
    if t[-1] < trace.end - 1e-9:
        t = np.append(t, trace.end)
    p = np.interp(t, trace.times, trace.watts)
    return PowerTrace(t, p)


def align(
    traces: list[PowerTrace], interval_s: float | None = None
) -> list[PowerTrace]:
    """Resample traces onto a common uniform grid over their overlap.

    Raises if the traces share no overlapping time span.
    """
    if not traces:
        raise ValueError("need at least one trace")
    start = max(tr.start for tr in traces)
    end = min(tr.end for tr in traces)
    if end <= start:
        raise ValueError("traces have no overlapping time span")
    if interval_s is None:
        interval_s = min(tr.sample_interval() for tr in traces if len(tr) >= 2)
    n = max(2, int(np.floor((end - start) / interval_s)) + 1)
    grid = np.linspace(start, end, n)
    out = []
    for tr in traces:
        out.append(PowerTrace(grid, np.interp(grid, tr.times, tr.watts)))
    return out


def integrate_energy(trace: PowerTrace, t0: float | None = None,
                     t1: float | None = None) -> float:
    """Energy in joules over ``[t0, t1]`` (defaults to the full trace)."""
    if t0 is None and t1 is None:
        return trace.energy()
    t0 = trace.start if t0 is None else t0
    t1 = trace.end if t1 is None else t1
    return trace.window(t0, t1).energy()
