"""Stress-test workloads: FIRESTARTER and MPrime.

Two of the paper's node-variability datasets (TU Dresden and LRZ,
Table 3) were collected under processor stress tests rather than HPL.
Both tools aim for a *constant, maximal* power draw, which is exactly
what makes them good variability probes: any node-to-node spread is
silicon and environment, not load imbalance.

FIRESTARTER (Hackenberg et al. [10]) is engineered for near-peak,
near-constant draw; MPrime (Prime95 torture test) cycles through FFT
sizes, producing a small periodic ripple on top of a high plateau.
"""

from __future__ import annotations

import numpy as np

from repro.units import SECONDS_PER_HOUR
from repro.workloads.base import PhaseTimings, Workload

__all__ = ["FirestarterWorkload", "MPrimeWorkload"]


class FirestarterWorkload(Workload):
    """FIRESTARTER: flat, near-peak utilisation for the whole run."""

    def __init__(self, core_s: float = 1800.0, *, utilisation: float = 0.99,
                 setup_s: float = 5.0, teardown_s: float = 2.0) -> None:
        if not (0.0 < utilisation <= 1.0):
            raise ValueError("utilisation must be in (0, 1]")
        self._phases = PhaseTimings(setup_s, core_s, teardown_s)
        self._util = float(utilisation)
        self.name = "FIRESTARTER"

    @property
    def phases(self) -> PhaseTimings:
        """Setup/core/teardown wall-clock structure."""
        return self._phases

    def utilisation(self, run_fraction) -> np.ndarray | float:
        x = self._check_fraction(run_fraction)
        out = np.full_like(x, self._util)
        return float(out) if np.ndim(run_fraction) == 0 else out

    def setup_utilisation(self) -> float:
        return 0.1


class MPrimeWorkload(Workload):
    """MPrime torture test: high plateau with a small FFT-size ripple.

    Parameters
    ----------
    core_s:
        Core-phase length in seconds.
    utilisation:
        Mean utilisation of the plateau.
    ripple:
        Peak-to-trough half-amplitude of the FFT-size cycle, as a
        fraction of ``utilisation`` (a few percent on real hardware).
    cycle_s:
        Wall-clock period of one FFT-size sweep.
    """

    def __init__(self, core_s: float = SECONDS_PER_HOUR, *,
                 utilisation: float = 0.96,
                 ripple: float = 0.02, cycle_s: float = 600.0,
                 setup_s: float = 10.0, teardown_s: float = 5.0) -> None:
        if not (0.0 < utilisation <= 1.0):
            raise ValueError("utilisation must be in (0, 1]")
        if not (0.0 <= ripple < 1.0):
            raise ValueError("ripple must be in [0, 1)")
        if utilisation * (1 + ripple) > 1.0:
            raise ValueError("utilisation + ripple exceeds 1")
        if cycle_s <= 0:
            raise ValueError("cycle_s must be positive")
        self._phases = PhaseTimings(setup_s, core_s, teardown_s)
        self._util = float(utilisation)
        self._ripple = float(ripple)
        self._cycle_s = float(cycle_s)
        self.name = "MPrime"

    @property
    def phases(self) -> PhaseTimings:
        """Setup/core/teardown wall-clock structure."""
        return self._phases

    def utilisation(self, run_fraction) -> np.ndarray | float:
        x = self._check_fraction(run_fraction)
        t = x * self.core_runtime_s
        out = self._util * (
            1.0 + self._ripple * np.sin(2.0 * np.pi * t / self._cycle_s)
        )
        out = np.clip(out, 0.0, 1.0)
        return float(out) if np.ndim(run_fraction) == 0 else out
