"""Workload models.

A workload maps *core-phase run fraction* to machine utilisation, plus
setup/teardown phases around the core.  The shapes here drive the
paper's Section 3 findings: out-of-core CPU HPL is flat; in-core GPU
HPL tails off hard as the trailing matrix shrinks; stress tests
(FIRESTARTER, MPrime) are constant by design.
"""

from repro.workloads.base import PhaseTimings, Workload, ConstantWorkload
from repro.workloads.hpl import HplWorkload
from repro.workloads.stress import FirestarterWorkload, MPrimeWorkload
from repro.workloads.rodinia import RodiniaCfdWorkload
from repro.workloads.graph500 import Graph500Workload
from repro.workloads.schedule import LoadSchedule, balanced, imbalanced

__all__ = [
    "PhaseTimings",
    "Workload",
    "ConstantWorkload",
    "HplWorkload",
    "FirestarterWorkload",
    "MPrimeWorkload",
    "RodiniaCfdWorkload",
    "Graph500Workload",
    "LoadSchedule",
    "balanced",
    "imbalanced",
]
