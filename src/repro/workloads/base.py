"""Workload protocol and phase timings.

The EE HPC WG methodology is phrased entirely in terms of the **core
phase** — "the time period in which the actual computation of the
benchmark happens", excluding setup and tear-down.  Every workload here
therefore exposes:

* :attr:`~Workload.core_runtime_s` — wall-clock length of the core phase,
* :meth:`~Workload.utilisation` — machine utilisation as a function of
  core-phase run fraction ``x ∈ [0, 1]`` (vectorised),
* :attr:`~Workload.phases` — setup/core/teardown durations, so the trace
  synthesiser can embed the core phase in a full-run trace and the
  metering layer can locate it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.units import SECONDS_PER_HOUR

__all__ = ["PhaseTimings", "Workload", "ConstantWorkload"]


@dataclass(frozen=True)
class PhaseTimings:
    """Wall-clock structure of a benchmark run, in seconds."""

    setup_s: float
    core_s: float
    teardown_s: float

    def __post_init__(self) -> None:
        if self.core_s <= 0:
            raise ValueError("core phase must have positive duration")
        if self.setup_s < 0 or self.teardown_s < 0:
            raise ValueError("setup/teardown must be non-negative")

    @property
    def total_s(self) -> float:
        """Full run length including setup and teardown."""
        return self.setup_s + self.core_s + self.teardown_s

    @property
    def core_start_s(self) -> float:
        """Wall-clock offset where the core phase begins."""
        return self.setup_s

    @property
    def core_end_s(self) -> float:
        """Wall-clock offset where the core phase ends."""
        return self.setup_s + self.core_s

    def core_window(self) -> tuple[float, float]:
        """The ``(start, end)`` wall-clock bounds of the core phase."""
        return (self.core_start_s, self.core_end_s)


class Workload(abc.ABC):
    """Abstract workload: utilisation vs. core-phase run fraction."""

    #: Human-readable name used in reports.
    name: str = "workload"

    @property
    @abc.abstractmethod
    def phases(self) -> PhaseTimings:
        """Setup/core/teardown wall-clock structure."""

    @property
    def core_runtime_s(self) -> float:
        """Length of the core phase in seconds."""
        return self.phases.core_s

    @abc.abstractmethod
    def utilisation(self, run_fraction) -> np.ndarray | float:
        """Machine utilisation in ``[0, 1]`` at core-phase fraction(s).

        Must accept scalars and arrays; values outside ``[0, 1]`` are a
        caller error.
        """

    def setup_utilisation(self) -> float:
        """Utilisation during setup (matrix generation, data staging)."""
        return 0.25

    def teardown_utilisation(self) -> float:
        """Utilisation during teardown (residual checks, output)."""
        return 0.20

    def mean_utilisation(self, n_grid: int = 4001) -> float:
        """Core-phase average utilisation by trapezoidal quadrature."""
        x = np.linspace(0.0, 1.0, n_grid)
        return float(np.trapezoid(self.utilisation(x), x))

    def _check_fraction(self, run_fraction) -> np.ndarray:
        x = np.asarray(run_fraction, dtype=float)
        if np.any(x < -1e-12) or np.any(x > 1.0 + 1e-12):
            raise ValueError("run_fraction must be in [0, 1]")
        return np.clip(x, 0.0, 1.0)


class ConstantWorkload(Workload):
    """A perfectly flat workload — the idealisation the original Level 1
    rules implicitly assumed.

    Useful as a control in ablations: with a constant workload, window
    placement cannot change the measured average, so all remaining
    Level 1 error is sampling error.
    """

    def __init__(self, utilisation: float = 0.95,
                 core_s: float = SECONDS_PER_HOUR,
                 setup_s: float = 120.0, teardown_s: float = 60.0,
                 name: str = "constant") -> None:
        if not (0.0 <= utilisation <= 1.0):
            raise ValueError("utilisation must be in [0, 1]")
        self._util = float(utilisation)
        self._phases = PhaseTimings(setup_s, core_s, teardown_s)
        self.name = name

    @property
    def phases(self) -> PhaseTimings:
        """Setup/core/teardown wall-clock structure."""
        return self._phases

    def utilisation(self, run_fraction) -> np.ndarray | float:
        x = self._check_fraction(run_fraction)
        out = np.full_like(x, self._util)
        return float(out) if np.ndim(run_fraction) == 0 else out
