"""High-Performance Linpack utilisation model.

HPL factorises an ``n × n`` matrix by right-looking blocked LU.  At
elimination step ``k`` the trailing matrix has dimension ``s = n − k``
and the step costs ``Θ(s²)`` flops (times the panel width).  The
machine's sustained flop rate at that step depends on how much trailing
matrix there is to keep the processors busy: DGEMM efficiency rises
with matrix size toward an asymptote.  We model per-step efficiency as

    eff(s) = (s/n) / (s/n + ρ)  ·  (1 + ρ)

normalised to 1 at the start of the run, where the single shape
parameter ``ρ = n_half / n`` is the ratio of the machine's
half-efficiency matrix size to the problem size:

* **Out-of-core CPU runs** fill main memory, so ``n`` is enormous and
  ``ρ`` is tiny — the power curve is flat until the last instants
  (Colosse, Sequoia in the paper's Figure 1).
* **In-core GPU runs** must fit in GPU memory, so ``n`` is small,
  ``ρ`` is large, and the tail-off is visible across a large fraction of
  the (much shorter) run (Piz Daint, L-CSC) — the >20% first-vs-last-20%
  gaps of Table 2.

Integrating ``dt ∝ s² / eff(s)`` over steps gives wall-clock time as a
function of progress; inverting that map yields utilisation as a
function of *run fraction*, which is what the trace synthesiser needs.
The inversion is precomputed once on a fine grid at construction.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import PhaseTimings, Workload

__all__ = ["HplWorkload"]


class HplWorkload(Workload):
    """HPL with a mechanistically derived utilisation profile.

    Parameters
    ----------
    core_s:
        Core-phase wall-clock length in seconds.
    rho:
        Shape parameter ``n_half / n``; small → flat (CPU out-of-core),
        large → pronounced tail-off (GPU in-core).  Must be positive.
    u_max:
        Utilisation at the start of the run (full trailing matrix).
    u_min:
        Utilisation floor: panel factorisation, pivoting and broadcast
        never let utilisation reach zero even on a tiny trailing matrix.
    warmup_fraction / warmup_boost:
        Optional start-of-run transient (the paper notes "some
        variations at the very beginning ... because of warming up of
        hardware components").  The boost decays linearly to zero
        across ``warmup_fraction`` of the run.  It may be *negative*:
        cold silicon leaks less, so power can start slightly low and
        rise as the machine heats (the Colosse profile); or positive
        for machines whose fans lag the load step.
    setup_s / teardown_s:
        Non-core phases (matrix generation / residual check).
    """

    _GRID = 4096  # resolution of the progress → time inversion table

    def __init__(
        self,
        core_s: float,
        *,
        rho: float = 0.01,
        u_max: float = 0.95,
        u_min: float = 0.08,
        warmup_fraction: float = 0.0,
        warmup_boost: float = 0.0,
        setup_s: float = 0.0,
        teardown_s: float = 0.0,
        name: str = "HPL",
    ) -> None:
        if rho <= 0:
            raise ValueError("rho must be positive")
        if not (0.0 < u_max <= 1.0):
            raise ValueError("u_max must be in (0, 1]")
        if not (0.0 <= u_min < u_max):
            raise ValueError("need 0 <= u_min < u_max")
        if not (0.0 <= warmup_fraction < 1.0):
            raise ValueError("warmup_fraction must be in [0, 1)")
        if warmup_boost <= -1.0:
            raise ValueError("warmup_boost must exceed -1")
        if warmup_boost != 0 and warmup_fraction == 0:
            raise ValueError("warmup_boost needs a positive warmup_fraction")
        self._phases = PhaseTimings(setup_s, core_s, teardown_s)
        self.rho = float(rho)
        self.u_max = float(u_max)
        self.u_min = float(u_min)
        self.warmup_fraction = float(warmup_fraction)
        self.warmup_boost = float(warmup_boost)
        self.name = name
        self._time_grid, self._util_grid = self._build_profile()

    # ------------------------------------------------------------------
    def _efficiency(self, s_rel: np.ndarray) -> np.ndarray:
        """Relative DGEMM efficiency at trailing-matrix fraction ``s_rel``."""
        raw = (s_rel / (s_rel + self.rho)) * (1.0 + self.rho)
        return np.clip(raw, self.u_min / self.u_max, 1.0)

    def _build_profile(self) -> tuple[np.ndarray, np.ndarray]:
        """Tabulate utilisation vs. normalised wall-clock time.

        Progress variable ``k ∈ [0, 1]`` is the eliminated fraction;
        trailing fraction ``s = 1 − k``; step work ``∝ s²``; step time
        ``∝ s² / eff(s)``.  Cumulative time, normalised to 1, gives the
        time grid; utilisation at each grid point is ``u_max · eff(s)``.
        """
        k = np.linspace(0.0, 1.0, self._GRID)
        s = 1.0 - k
        eff = self._efficiency(s)
        # Midpoint rule over progress steps: dt_i = s_i² / eff_i.
        s_mid = 0.5 * (s[:-1] + s[1:])
        eff_mid = self._efficiency(s_mid)
        dt = s_mid**2 / eff_mid
        t = np.concatenate(([0.0], np.cumsum(dt)))
        t /= t[-1]
        util = self.u_max * eff
        return t, util

    # ------------------------------------------------------------------
    @property
    def phases(self) -> PhaseTimings:
        """Setup/core/teardown wall-clock structure."""
        return self._phases

    def utilisation(self, run_fraction) -> np.ndarray | float:
        x = self._check_fraction(run_fraction)
        u = np.interp(x, self._time_grid, self._util_grid)
        if self.warmup_boost != 0:
            ramp = np.clip(1.0 - x / self.warmup_fraction, 0.0, 1.0)
            u = np.clip(u * (1.0 + self.warmup_boost * ramp), 0.0, 1.0)
        return float(u) if np.ndim(run_fraction) == 0 else u

    def trailing_fraction_at(self, run_fraction) -> np.ndarray | float:
        """Remaining-matrix fraction ``s/n`` at the given run fraction.

        Exposed for diagnostics and tests (e.g. verifying that a CPU-run
        tail where ``s/n < 0.1`` occupies well under 1% of wall-clock).
        """
        x = self._check_fraction(run_fraction)
        k = np.linspace(0.0, 1.0, self._GRID)
        prog = np.interp(x, self._time_grid, k)
        s = 1.0 - prog
        return float(s) if np.ndim(run_fraction) == 0 else s

    # ------------------------------------------------------------------
    @staticmethod
    def cpu_out_of_core(core_s: float, *, rho: float = 0.002,
                        **kwargs) -> "HplWorkload":
        """Preset for memory-filling CPU runs (Colosse/Sequoia class)."""
        kwargs.setdefault("name", "HPL-CPU")
        return HplWorkload(core_s, rho=rho, **kwargs)

    @staticmethod
    def gpu_in_core(core_s: float, *, rho: float = 0.25,
                    **kwargs) -> "HplWorkload":
        """Preset for in-core GPU runs (Piz Daint/L-CSC class): the
        matrix lives in GPU memory, so the run is short and the tail-off
        covers much of it."""
        kwargs.setdefault("name", "HPL-GPU")
        kwargs.setdefault("u_min", 0.05)
        return HplWorkload(core_s, rho=rho, **kwargs)
