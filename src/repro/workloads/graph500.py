"""Graph500 BFS workload model.

The paper names the Green Graph 500 as the analogous efficiency list
with "graph analysis as the workload of interest" (Section 2.1).  BFS
is nothing like HPL: each search proceeds level by level, alternating
compute-bound frontier expansion with communication-bound exchanges,
and the frontier size — hence utilisation — swells and collapses over
a few levels.  The run is a sequence of independent searches (the
benchmark requires 64 from random roots).

The profile this produces is *bursty* rather than flat or sloped:
time-averaged utilisation is moderate, temporal variance is high, and
no partial measurement window is representative — a stress case for
the timing rules beyond anything in the paper's HPL data.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import PhaseTimings, Workload

__all__ = ["Graph500Workload"]


class Graph500Workload(Workload):
    """Repeated BFS searches with level-structured utilisation.

    Parameters
    ----------
    core_s:
        Core-phase length (all searches).
    n_searches:
        Independent BFS roots (the benchmark's 64).
    levels_per_search:
        BFS levels per search (graph diameter scale).
    u_compute / u_comm:
        Utilisation during frontier expansion vs all-to-all exchange.
    frontier_peak_level:
        Which level (fraction of the search) carries the widest
        frontier; utilisation is scaled by the frontier's relative
        width, which rises to 1 there and decays on both sides.
    """

    def __init__(
        self,
        core_s: float = 1800.0,
        *,
        n_searches: int = 64,
        levels_per_search: int = 12,
        u_compute: float = 0.85,
        u_comm: float = 0.25,
        frontier_peak_level: float = 0.4,
        setup_s: float = 120.0,  # graph generation is substantial
        teardown_s: float = 30.0,
    ) -> None:
        if n_searches < 1 or levels_per_search < 2:
            raise ValueError("need >= 1 search of >= 2 levels")
        if not (0.0 < u_comm < u_compute <= 1.0):
            raise ValueError("need 0 < u_comm < u_compute <= 1")
        if not (0.0 < frontier_peak_level < 1.0):
            raise ValueError("frontier_peak_level must be in (0, 1)")
        self._phases = PhaseTimings(setup_s, core_s, teardown_s)
        self.n_searches = int(n_searches)
        self.levels_per_search = int(levels_per_search)
        self.u_compute = float(u_compute)
        self.u_comm = float(u_comm)
        self.frontier_peak_level = float(frontier_peak_level)
        self.name = "Graph500-BFS"

    @property
    def phases(self) -> PhaseTimings:
        """Setup/core/teardown wall-clock structure."""
        return self._phases

    def _frontier_width(self, level_frac: np.ndarray) -> np.ndarray:
        """Relative frontier width across a search, peaking at
        :attr:`frontier_peak_level` (log-space triangular profile)."""
        p = self.frontier_peak_level
        rising = level_frac / p
        falling = (1.0 - level_frac) / (1.0 - p)
        tri = np.minimum(rising, falling)
        # Frontier sizes span orders of magnitude; power utilisation
        # tracks the log of useful parallelism, floored.
        return np.clip(0.25 + 0.75 * tri, 0.0, 1.0)

    def utilisation(self, run_fraction) -> np.ndarray | float:
        x = self._check_fraction(run_fraction)
        # Position within the current search, then within its level.
        search_pos = np.mod(x * self.n_searches, 1.0)
        level_idx = np.floor(search_pos * self.levels_per_search)
        level_frac = (level_idx + 0.5) / self.levels_per_search
        within_level = np.mod(
            search_pos * self.levels_per_search, 1.0
        )
        width = self._frontier_width(np.asarray(level_frac))
        # First 60% of each level: expansion compute; rest: exchange.
        base = np.where(within_level < 0.6, self.u_compute, self.u_comm)
        out = np.clip(base * width, 0.0, 1.0)
        return float(out) if np.ndim(run_fraction) == 0 else out

    def setup_utilisation(self) -> float:
        return 0.45  # Kronecker graph generation is itself parallel
