"""Load distribution across nodes.

The paper's statistical methodology explicitly assumes **balanced**
workloads ("balanced equally across all nodes, such as HPL") and warns
it "will not be appropriate in scenarios where the distribution of
per-node power consumption contains many outliers or is heavily
skewed" — the regime Davis et al. [3] hit with data-intensive
workloads.  :class:`LoadSchedule` lets experiments span both regimes:
a per-node utilisation multiplier applied on top of the workload's
time profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LoadSchedule", "balanced", "imbalanced"]


@dataclass(frozen=True)
class LoadSchedule:
    """Per-node utilisation multipliers in ``(0, 1]``.

    ``multipliers[i]`` scales node *i*'s utilisation; the balanced
    schedule is all ones.
    """

    multipliers: np.ndarray

    def __post_init__(self) -> None:
        m = np.asarray(self.multipliers, dtype=float)
        if m.ndim != 1 or m.size == 0:
            raise ValueError("multipliers must be a non-empty 1-D array")
        if np.any(m <= 0) or np.any(m > 1.0 + 1e-12):
            raise ValueError("multipliers must lie in (0, 1]")
        m = np.clip(m, None, 1.0).copy()
        m.flags.writeable = False
        object.__setattr__(self, "multipliers", m)

    @property
    def n_nodes(self) -> int:
        """Number of nodes the schedule covers."""
        return int(self.multipliers.size)

    def is_balanced(self, tolerance: float = 1e-9) -> bool:
        """Whether all nodes carry (numerically) identical load."""
        return bool(np.ptp(self.multipliers) <= tolerance)

    def apply(self, utilisation: float) -> np.ndarray:
        """Per-node utilisations for a common base utilisation."""
        if not (0.0 <= utilisation <= 1.0):
            raise ValueError("utilisation must be in [0, 1]")
        return self.multipliers * utilisation

    def skewness(self) -> float:
        """Sample skewness of the multipliers (0 for balanced)."""
        m = self.multipliers
        if m.size < 3 or np.ptp(m) == 0:
            return 0.0
        c = m - m.mean()
        s2 = float((c**2).mean())
        return float((c**3).mean() / s2**1.5)


def balanced(n_nodes: int) -> LoadSchedule:
    """The HPL-style schedule: every node fully loaded."""
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    return LoadSchedule(np.ones(n_nodes))


def imbalanced(
    n_nodes: int,
    rng: np.random.Generator,
    *,
    spread: float = 0.3,
    straggler_rate: float = 0.0,
    straggler_level: float = 0.4,
) -> LoadSchedule:
    """A data-intensive-style schedule with uneven per-node load.

    Parameters
    ----------
    spread:
        Width of the bulk load distribution: multipliers are drawn from
        ``Uniform(1 − spread, 1)``.
    straggler_rate:
        Fraction of nodes pinned near ``straggler_level`` (nodes stuck
        on slow shards — the heavy skew Davis et al. observed).
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if not (0.0 <= spread < 1.0):
        raise ValueError("spread must be in [0, 1)")
    if not (0.0 <= straggler_rate < 1.0):
        raise ValueError("straggler_rate must be in [0, 1)")
    if not (0.0 < straggler_level <= 1.0):
        raise ValueError("straggler_level must be in (0, 1]")
    mult = 1.0 - spread * rng.random(n_nodes)
    if straggler_rate > 0:
        is_straggler = rng.random(n_nodes) < straggler_rate
        n_s = int(is_straggler.sum())
        if n_s:
            mult[is_straggler] = straggler_level * (
                1.0 + 0.1 * rng.standard_normal(n_s)
            )
            mult = np.clip(mult, 0.05, 1.0)
    return LoadSchedule(mult)
