"""Rodinia CFD workload model.

The ORNL/Titan per-GPU dataset (Table 3) was collected under the Rodinia
CFD solver [2] — an unstructured-grid Euler solver that iterates a
fixed time-stepping loop.  Its utilisation profile is a plateau with
per-iteration sawtooth structure (compute kernel then halo exchange),
after a short ramp while the grid uploads.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import PhaseTimings, Workload

__all__ = ["RodiniaCfdWorkload"]


class RodiniaCfdWorkload(Workload):
    """Iterative CFD solver: ramp-up, then a sawtooth plateau.

    Parameters
    ----------
    core_s:
        Core-phase length in seconds.
    utilisation:
        Mean plateau utilisation (GPU busy fraction).
    ramp_fraction:
        Fraction of the run spent ramping from ``ramp_start`` to the
        plateau while the mesh and state upload.
    sawtooth:
        Half-amplitude of the per-iteration compute/communicate swing,
        as a fraction of ``utilisation``.
    iterations:
        Number of solver iterations across the core phase (sets the
        sawtooth frequency).
    """

    def __init__(self, core_s: float = 1200.0, *, utilisation: float = 0.90,
                 ramp_fraction: float = 0.03, ramp_start: float = 0.3,
                 sawtooth: float = 0.04, iterations: int = 2000,
                 setup_s: float = 30.0, teardown_s: float = 10.0) -> None:
        if not (0.0 < utilisation <= 1.0):
            raise ValueError("utilisation must be in (0, 1]")
        if not (0.0 <= ramp_fraction < 1.0):
            raise ValueError("ramp_fraction must be in [0, 1)")
        if not (0.0 <= ramp_start <= 1.0):
            raise ValueError("ramp_start must be in [0, 1]")
        if not (0.0 <= sawtooth < 1.0):
            raise ValueError("sawtooth must be in [0, 1)")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self._phases = PhaseTimings(setup_s, core_s, teardown_s)
        self._util = float(utilisation)
        self._ramp_fraction = float(ramp_fraction)
        self._ramp_start = float(ramp_start)
        self._sawtooth = float(sawtooth)
        self._iterations = int(iterations)
        self.name = "Rodinia-CFD"

    @property
    def phases(self) -> PhaseTimings:
        """Setup/core/teardown wall-clock structure."""
        return self._phases

    def utilisation(self, run_fraction) -> np.ndarray | float:
        x = self._check_fraction(run_fraction)
        if self._ramp_fraction > 0:
            ramp = np.clip(x / self._ramp_fraction, 0.0, 1.0)
        else:
            ramp = np.ones_like(x)
        base = self._util * (self._ramp_start + (1.0 - self._ramp_start) * ramp)
        # Sawtooth: fractional part of iteration index, centred at 0.
        phase = np.mod(x * self._iterations, 1.0) - 0.5
        out = np.clip(base * (1.0 + 2.0 * self._sawtooth * phase), 0.0, 1.0)
        return float(out) if np.ndim(run_fraction) == 0 else out
