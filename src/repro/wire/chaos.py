"""Wire chaos harness: mangle the transport, recover, audit the label.

:func:`run_wire_chaos` is the transport analogue of
:func:`repro.faults.chaos.run_chaos`.  It replays a simulated fleet
through the full wire path::

    replay_run -> WireWriter(codec) -> WireFaultPlan -> WireReader
               -> RecoveryPipeline + ComplianceMonitor

and then puts the result on trial twice:

* **reconciliation** — the reader's CRC and sequence-gap counters, and
  the :class:`~repro.faults.quality.QualityReport` sample accounting,
  must explain the injected :class:`~repro.faults.wire.WireLedger`
  *exactly* — ``==``, no tolerances;
* **bounds** — the degraded fleet mean and node σ/μ must sit inside the
  bounds the report states, which now include the codec's declared
  per-sample error.

The emitted report carries the wire provenance: codec spec, per-sample
error bound, frame-loss counters, and — when quantile-bearing
statistics crossed a lossy codec — the
:data:`~repro.stream.estimators.P2Quantile.MERGE_CAVEAT` note.

Everything is a pure function of ``(run, codec, rates, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.faults.quality import QualityReport
from repro.faults.recovery import RecoveryPipeline
from repro.faults.wire import (
    FrameCorruption,
    FrameDrop,
    WireFaultModel,
    WireFaultPlan,
    WireLedger,
)
from repro.stream.estimators import P2Quantile
from repro.stream.ingest import replay_run
from repro.stream.monitor import ComplianceMonitor, MonitorReport
from repro.wire.session import WireReader, WireWriter

__all__ = ["WireScenario", "WireChaosOutcome", "run_wire_chaos"]

#: Detector settings that must stay inert on the wire path: quantized
#: readings may legitimately repeat, and frame loss hits all nodes at
#: once, so per-node stuck/quarantine heuristics would misfire.  Large
#: thresholds switch them off without forking the recovery layer.
_DETECTORS_OFF = 10**6


@dataclass(frozen=True)
class WireScenario:
    """A named transport-fault intensity bundle."""

    name: str = "wire"
    codec: str = "delta-varint"
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    corrupt_flips: int = 4

    def models(self) -> list[WireFaultModel]:
        """The frame-level fault models this scenario switches on."""
        out: list[WireFaultModel] = []
        if self.corrupt_rate > 0:
            out.append(
                FrameCorruption(
                    rate=self.corrupt_rate, flips=self.corrupt_flips
                )
            )
        if self.drop_rate > 0:
            out.append(FrameDrop(rate=self.drop_rate))
        return out

    def plan(self, seed: int) -> WireFaultPlan:
        """Canonical seeded wire fault plan for this scenario."""
        return WireFaultPlan.canonical(self.models(), seed)


@dataclass(frozen=True)
class WireChaosOutcome:
    """One wire chaos trial: estimates, label, and both verdicts."""

    scenario: WireScenario
    gap_policy: str
    seed: int
    clean_fleet_mean_w: float
    clean_node_cv: float
    report: QualityReport
    monitor_report: MonitorReport
    ledger: WireLedger
    bytes_on_wire: int
    samples_sent: int
    quantile_estimates: dict = field(default_factory=dict)
    reconciliation: dict = field(default_factory=dict)

    @property
    def rel_err_fleet_mean(self) -> float:
        """|degraded − clean| / clean for the fleet-mean estimate."""
        return abs(
            self.report.fleet_mean_w - self.clean_fleet_mean_w
        ) / self.clean_fleet_mean_w

    @property
    def rel_err_node_cv(self) -> float:
        """|degraded − clean| / clean for the node σ/μ estimate."""
        return abs(
            self.report.node_cv - self.clean_node_cv
        ) / self.clean_node_cv

    @property
    def bytes_per_sample(self) -> float:
        """Wire bytes per scalar sample actually framed."""
        return self.bytes_on_wire / max(self.samples_sent, 1)

    #: Slack against a stated bound of 0.0 — Welford accumulation vs
    #: direct numpy truth differs in the last bit or two.
    _BOUND_EPS = 1e-12

    @property
    def mean_within_bound(self) -> bool:
        """Does the fleet-mean error sit inside the stated bound?"""
        bound = self.report.error_bound_fleet_mean()
        return self.rel_err_fleet_mean <= bound + self._BOUND_EPS

    @property
    def cv_within_bound(self) -> bool:
        """Does the σ/μ error sit inside the stated bound?"""
        bound = self.report.error_bound_node_cv()
        return self.rel_err_node_cv <= bound + self._BOUND_EPS

    @property
    def reconciled(self) -> bool:
        """Did every exact-accounting check pass?"""
        return all(self.reconciliation.values())

    def ok(self) -> bool:
        """Reconciled *and* within both stated bounds."""
        return (
            self.reconciled
            and self.mean_within_bound
            and self.cv_within_bound
        )

    def to_dict(self) -> dict:
        """JSON-friendly rendering."""
        return {
            "scenario": self.scenario.name,
            "codec": self.scenario.codec,
            "drop_rate": self.scenario.drop_rate,
            "corrupt_rate": self.scenario.corrupt_rate,
            "gap_policy": self.gap_policy,
            "seed": self.seed,
            "clean_fleet_mean_w": self.clean_fleet_mean_w,
            "clean_node_cv": self.clean_node_cv,
            "rel_err_fleet_mean": self.rel_err_fleet_mean,
            "rel_err_node_cv": self.rel_err_node_cv,
            "bytes_on_wire": self.bytes_on_wire,
            "samples_sent": self.samples_sent,
            "bytes_per_sample": self.bytes_per_sample,
            "mean_within_bound": self.mean_within_bound,
            "cv_within_bound": self.cv_within_bound,
            "quantile_estimates": dict(self.quantile_estimates),
            "reconciliation": dict(self.reconciliation),
            "report": self.report.to_dict(),
            "monitor_report": self.monitor_report.to_dict(),
            "ledger": self.ledger.to_dict(),
        }

    def lines(self) -> list[str]:
        """Human-readable verdict block."""
        bound_mean = self.report.error_bound_fleet_mean()
        bound_cv = self.report.error_bound_node_cv()
        out = [
            f"wire scenario {self.scenario.name} "
            f"(codec={self.scenario.codec}, policy={self.gap_policy})",
            f"  wire cost     {self.bytes_per_sample:.2f} B/sample over "
            f"{self.ledger.frames_sent} frames",
            f"  fleet mean    {self.report.fleet_mean_w:.2f} W degraded "
            f"vs {self.clean_fleet_mean_w:.2f} W clean "
            f"(err {100 * self.rel_err_fleet_mean:.3f}% <= "
            f"bound {100 * bound_mean:.3f}%: "
            f"{'ok' if self.mean_within_bound else 'VIOLATED'})",
            f"  node sigma/mu {100 * self.report.node_cv:.3f}% degraded "
            f"vs {100 * self.clean_node_cv:.3f}% clean "
            f"(err {100 * self.rel_err_node_cv:.3f}% <= "
            f"bound {100 * bound_cv:.3f}%: "
            f"{'ok' if self.cv_within_bound else 'VIOLATED'})",
            f"  reconciliation {'exact' if self.reconciled else 'FAILED'} ("
            + ", ".join(
                f"{k}={'ok' if v else 'FAIL'}"
                for k, v in self.reconciliation.items()
            )
            + ")",
        ]
        out.extend("  " + line for line in self.report.lines())
        return out


def _clean_truth(batches) -> tuple[float, float, int, int]:
    """Fleet mean, node σ/μ, tick and node counts of a clean stream."""
    watts = np.vstack([b.watts for b in batches])
    node_means = watts.mean(axis=0)
    fleet_mean_w = float(node_means.mean())
    node_cv = float(node_means.std(ddof=1)) / fleet_mean_w
    return fleet_mean_w, node_cv, watts.shape[0], watts.shape[1]


def run_wire_chaos(
    run,
    scenario: WireScenario,
    *,
    seed: int,
    gap_policy: str = "hold",
    ticks_per_batch: int = 20,
    node_indices: np.ndarray | None = None,
    original_level: int = 2,
    quantiles: tuple[float, ...] = (),
) -> WireChaosOutcome:
    """Send ``run`` through a faulty wire, recover, and audit the label.

    Pure function of its arguments: the same ``(run, scenario, seed)``
    produces a bit-identical :class:`WireChaosOutcome` on every call.
    """
    batches = list(
        replay_run(
            run,
            node_indices=node_indices,
            ticks_per_batch=ticks_per_batch,
            core_only=True,
        )
    )
    clean_mean_w, clean_cv, n_ticks_clean, n_nodes = _clean_truth(batches)

    writer = WireWriter(scenario.codec)
    frames = writer.write_all(batches)
    delivery = scenario.plan(seed).apply(frames)
    ledger = delivery.ledger

    reader = WireReader(dt_s=float(run.dt))
    pipeline = RecoveryPipeline(
        gap_policy=gap_policy,
        stuck_min_repeats=_DETECTORS_OFF,
        quarantine_after=_DETECTORS_OFF,
        original_level=original_level,
    )
    t0_s, t1_s = run.core_window
    monitor = ComplianceMonitor(
        core_window_s=(float(t0_s), float(t1_s)),
        required_interval_s=float(run.dt),
    )
    # Two shards merged at the end: the same count-weighted P² roll-up
    # a distributed collector would do, so the merge caveat is honest.
    shards = [
        {q: P2Quantile(q) for q in quantiles},
        {q: P2Quantile(q) for q in quantiles},
    ]
    half_tick = n_ticks_clean // 2

    def _observe(batch) -> None:
        pipeline.observe(batch)
        finite = np.all(np.isfinite(batch.watts), axis=1)
        if finite.any():
            from repro.stream.ingest import SampleBatch

            monitor.observe(
                SampleBatch(
                    times=batch.times[finite],
                    watts=batch.watts[finite],
                    node_ids=batch.node_ids,
                )
            )
        for t, row in zip(batch.times, batch.watts):
            if not np.all(np.isfinite(row)):
                continue
            shard = shards[int(t >= t0_s + half_tick * run.dt)]
            for est in shard.values():
                est.push(float(row.mean()))

    for chunk in delivery.chunks:
        for batch in reader.feed(chunk):
            _observe(batch)
    for batch in reader.close():
        _observe(batch)

    report = pipeline.finalize(
        expected_ticks=n_ticks_clean,
        batches_retried=0,
        batches_abandoned=0,
    )

    merged = {}
    for q in quantiles:
        est = shards[0][q]
        if shards[1][q].count:
            est = est.merge(shards[1][q])
        merged[q] = est.value if est.count else float("nan")

    notes: list[str] = []
    if quantiles and writer.error_bound_w > 0.0:
        notes.append(
            f"quantile statistics crossed lossy codec "
            f"{writer.codec.name}; {P2Quantile.MERGE_CAVEAT}"
        )
    elif quantiles:
        notes.append(P2Quantile.MERGE_CAVEAT)
    report = replace(
        report,
        codec=writer.codec.name,
        codec_error_bound_w=writer.error_bound_w,
        frames_dropped=ledger.frames_dropped,
        frames_corrupt=ledger.frames_corrupted,
        notes=tuple(notes),
    )
    monitor_report = replace(monitor.report(), notes=tuple(notes))

    samples_accounted = report.samples_missing + report.samples_never_arrived
    reconciliation = {
        "crc_detects_corruption": reader.crc_failures
        == ledger.frames_corrupted,
        "frames_conserved": reader.frames_ok + ledger.frames_lost
        == ledger.frames_sent,
        "gaps_explain_losses": samples_accounted == ledger.samples_lost,
        "no_false_flags": report.samples_stuck == 0
        and report.samples_spiked == 0,
        "repairs_cover_missing": report.samples_repaired
        == report.samples_missing,
        "nothing_quarantined": report.nodes_quarantined == (),
        "no_duplicates_or_garbage": reader.frames_duplicate == 0
        and reader.garbage_bytes == 0,
    }
    return WireChaosOutcome(
        scenario=scenario,
        gap_policy=gap_policy,
        seed=seed,
        clean_fleet_mean_w=clean_mean_w,
        clean_node_cv=clean_cv,
        report=report,
        monitor_report=monitor_report,
        ledger=ledger,
        bytes_on_wire=writer.bytes_written,
        samples_sent=writer.samples_written,
        quantile_estimates=merged,
        reconciliation=reconciliation,
    )
